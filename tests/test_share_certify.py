"""Certification gate tests: isomorphism on every synth template, and
divergence detection when the shared corpus is tampered with."""

import json
import os

import pytest

from repro.cli import main
from repro.share import ShareOptions, certify_share, share_corpus
from repro.synth.templates.backbone import build_backbone
from repro.synth.templates.enterprise import build_enterprise
from repro.synth.templates.hybrid import build_hybrid
from repro.synth.templates.mixed import build_mixed
from repro.synth.templates.net5 import build_net5
from repro.synth.templates.net15 import build_net15
from repro.synth.templates.pods import build_pods
from repro.synth.templates.tier2 import build_tier2

#: One representative (small) build per synth template family.
TEMPLATE_BUILDS = {
    "enterprise": lambda: build_enterprise("ent", 3, 6, n_borders=2, n_igp_instances=2),
    "backbone": lambda: build_backbone("bb", 4, 12, pop_size=6),
    "tier2": lambda: build_tier2("t2", 5, 8),
    "net5": lambda: build_net5(scale=0.12),
    "net15": lambda: build_net15(scale=0.1),
    "hybrid": lambda: build_hybrid("hy", 6, 10),
    "pod": lambda: build_pods("pod", 7, 14),
    "mixed": lambda: build_mixed("mx", 8, n_routers=8),
}


def _write_archive(root, name, configs):
    d = os.path.join(root, name)
    os.makedirs(d)
    for router, text in configs.items():
        with open(os.path.join(d, router + ".cfg"), "w") as handle:
            handle.write(text)
    return d


class TestCertifyTemplates:
    @pytest.mark.parametrize("template", sorted(TEMPLATE_BUILDS))
    def test_certified_isomorphic(self, tmp_path, template):
        root, out = str(tmp_path / "corpus"), str(tmp_path / "shared")
        configs, _spec = TEMPLATE_BUILDS[template]()
        _write_archive(root, template, configs)
        result = share_corpus(root, out, ShareOptions(key=b"cert"))
        certification = certify_share(root, out, result.mapping)
        assert certification.ok, certification.divergent_sections()

    @pytest.mark.parametrize("decoy_template", ["enterprise", "mixed", "pod"])
    def test_certified_with_decoys(self, tmp_path, decoy_template):
        root, out = str(tmp_path / "corpus"), str(tmp_path / "shared")
        configs, _spec = TEMPLATE_BUILDS["enterprise"]()
        _write_archive(root, "net", configs)
        result = share_corpus(
            root,
            out,
            ShareOptions(key=b"cert", decoys=4, decoy_template=decoy_template),
        )
        assert result.archives[0].decoys is not None
        certification = certify_share(root, out, result.mapping)
        assert certification.ok, certification.divergent_sections()


class TestCertifyDivergence:
    def _share(self, tmp_path, **options):
        root, out = str(tmp_path / "corpus"), str(tmp_path / "shared")
        configs, _spec = TEMPLATE_BUILDS["enterprise"]()
        _write_archive(root, "net", configs)
        result = share_corpus(root, out, ShareOptions(key=b"cert", **options))
        record = result.archives[0]
        shared_dir = os.path.join(out, record.shared)
        return root, out, result, record, shared_dir

    def test_tampered_file_diverges(self, tmp_path):
        root, out, result, record, shared_dir = self._share(tmp_path)
        victim = os.path.join(shared_dir, sorted(record.files.values())[0])
        with open(victim) as handle:
            lines = handle.read().splitlines()
        kept = [line for line in lines if "ip address" not in line]
        assert kept != lines
        with open(victim, "w") as handle:
            handle.write("\n".join(kept) + "\n")
        certification = certify_share(root, out, result.mapping)
        assert not certification.ok
        assert certification.divergent_sections()

    def test_deleted_file_diverges(self, tmp_path):
        root, out, result, record, shared_dir = self._share(tmp_path)
        os.unlink(os.path.join(shared_dir, sorted(record.files.values())[0]))
        certification = certify_share(root, out, result.mapping)
        assert not certification.ok

    def test_unregistered_decoy_diverges(self, tmp_path):
        # A planted router the mapping does not list as a decoy must not
        # be silently filtered out — fail closed.
        root, out, result, record, shared_dir = self._share(tmp_path)
        with open(os.path.join(shared_dir, "stowaway.cfg"), "w") as handle:
            handle.write(
                "hostname stowaway\n"
                "interface Ethernet0\n ip address 203.0.113.1 255.255.255.0\n"
            )
        certification = certify_share(root, out, result.mapping)
        assert not certification.ok

    def test_diff_reports_section_and_archive(self, tmp_path):
        root, out, result, record, shared_dir = self._share(tmp_path)
        os.unlink(os.path.join(shared_dir, sorted(record.files.values())[0]))
        certification = certify_share(root, out, result.mapping)
        payload = certification.to_dict()
        assert payload["ok"] is False
        assert "net" in payload["archives"]
        diverged = payload["archives"]["net"]
        assert any(not matched for matched in diverged["sections"].values())
        assert diverged["diff"]


class TestShareCli:
    def test_cli_certify_exit_codes(self, tmp_path):
        root, out = str(tmp_path / "corpus"), str(tmp_path / "shared")
        configs, _spec = TEMPLATE_BUILDS["enterprise"]()
        _write_archive(root, "net", configs)
        code = main(
            ["share", root, out, "--key", "k", "--decoys", "3", "--certify"]
        )
        assert code == 0

    def test_cli_certify_writes_diff_and_json(self, tmp_path, capsys):
        root, out = str(tmp_path / "corpus"), str(tmp_path / "shared")
        configs, _spec = TEMPLATE_BUILDS["enterprise"]()
        _write_archive(root, "net", configs)
        diff_out = str(tmp_path / "diff.json")
        code = main(
            [
                "share",
                root,
                out,
                "--key",
                "k",
                "--certify",
                "--diff-out",
                diff_out,
                "--json",
            ]
        )
        assert code == 0
        with open(diff_out) as handle:
            assert json.load(handle)["ok"] is True
        assert '"certified": true' in capsys.readouterr().out

    def test_cli_divergence_exits_3(self, tmp_path, monkeypatch):
        # The share command re-emits the tree before certifying, so a clean
        # run always passes; force a divergent certification to pin the
        # degraded exit-code contract.
        root, out = str(tmp_path / "corpus"), str(tmp_path / "shared")
        configs, _spec = TEMPLATE_BUILDS["enterprise"]()
        _write_archive(root, "net", configs)
        diff_out = str(tmp_path / "diff.json")

        import repro.share as share_module
        from repro.share import ArchiveCertificate, ShareCertification

        def divergent(*_args, **_kwargs):
            broken = ArchiveCertificate(
                archive="net",
                sections={"instances": False},
                diff={"instances": {"original": [], "shared": ["i#0"]}},
            )
            return ShareCertification(archives=[broken])

        monkeypatch.setattr(share_module, "certify_share", divergent)
        code = main(
            ["share", root, out, "--key", "k", "--certify", "--diff-out", diff_out]
        )
        assert code == 3
        with open(diff_out) as handle:
            payload = json.load(handle)
        assert payload["ok"] is False
        assert payload["archives"]["net"]["sections"]["instances"] is False

    def test_cli_rejects_mapping_inside_outdir(self, tmp_path):
        root, out = str(tmp_path / "corpus"), str(tmp_path / "shared")
        configs, _spec = TEMPLATE_BUILDS["enterprise"]()
        _write_archive(root, "net", configs)
        with pytest.raises(SystemExit, match="never travel"):
            main(
                [
                    "share",
                    root,
                    out,
                    "--key",
                    "k",
                    "--mapping",
                    os.path.join(out, "mapping.json"),
                ]
            )
