"""Watchdog semantics: inline fast path, soft/hard deadlines, cancel."""

import time

import pytest

from repro.exec.chaos import SimulatedKill
from repro.exec.watchdog import StageCancelled, run_with_deadline


def _hang_forever():
    while True:
        time.sleep(0.005)


class TestInlinePath:
    """No deadlines: the call runs on the calling thread, no watchdog."""

    def test_returns_value(self):
        outcome = run_with_deadline(lambda: 41 + 1)
        assert outcome.value == 42
        assert outcome.error is None
        assert not outcome.timed_out
        assert outcome.seconds >= 0

    def test_captures_exceptions(self):
        outcome = run_with_deadline(lambda: 1 / 0)
        assert isinstance(outcome.error, ZeroDivisionError)
        assert outcome.value is None

    def test_base_exceptions_propagate(self):
        # SIGKILL stand-ins must escape the barrier, inline or threaded.
        def die():
            raise SimulatedKill("now")

        with pytest.raises(SimulatedKill):
            run_with_deadline(die)


class TestGuardedPath:
    def test_fast_call_finishes_normally(self):
        outcome = run_with_deadline(lambda: "done", hard_deadline=5.0)
        assert outcome.value == "done"
        assert not outcome.timed_out
        assert not outcome.soft_deadline_hit

    def test_worker_exception_is_captured(self):
        def boom():
            raise ValueError("bad input")

        outcome = run_with_deadline(boom, hard_deadline=5.0)
        assert isinstance(outcome.error, ValueError)
        assert not outcome.timed_out

    def test_worker_base_exception_is_captured_for_the_caller(self):
        # The watchdog records it; the *executor* decides to re-raise.
        def die():
            raise SimulatedKill("now")

        outcome = run_with_deadline(die, hard_deadline=5.0)
        assert isinstance(outcome.error, SimulatedKill)
        assert not isinstance(outcome.error, Exception)

    def test_hard_deadline_cancels_a_hang(self):
        outcome = run_with_deadline(_hang_forever, hard_deadline=0.15)
        assert outcome.timed_out
        assert outcome.value is None
        assert outcome.error is None
        assert outcome.seconds >= 0.15

    def test_soft_deadline_fires_once_and_stage_completes(self):
        fired = []

        def slowish():
            time.sleep(0.15)
            return "late but fine"

        outcome = run_with_deadline(
            slowish, soft_deadline=0.05, on_soft=fired.append
        )
        assert outcome.value == "late but fine"
        assert outcome.soft_deadline_hit
        assert len(fired) == 1
        assert not outcome.timed_out

    def test_soft_then_hard(self):
        fired = []
        outcome = run_with_deadline(
            _hang_forever,
            soft_deadline=0.05,
            hard_deadline=0.2,
            on_soft=fired.append,
        )
        assert outcome.soft_deadline_hit
        assert outcome.timed_out
        assert len(fired) == 1


def test_stage_cancelled_is_a_base_exception():
    # Stage code that catches broad Exception must not swallow the cancel.
    assert issubclass(StageCancelled, BaseException)
    assert not issubclass(StageCancelled, Exception)
