"""SIGINT mid-``repro sweep``: every checkpoint left behind is valid,
and ``--resume`` completes the sweep byte-identical (normalized) to an
uninterrupted run.

This is the real-signal companion to the in-process SimulatedKill
resume tests in ``test_sweep_cli.py``: the subprocess is interrupted by
an actual SIGINT while a chaos-hung archive pins it mid-corpus, so the
checkpoint directory is whatever the atomic-write discipline left on
disk at interrupt time — exactly what a Ctrl-C'd operator resumes from.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.exec.chaos import CHAOS_ENV
from repro.exec.checkpoint import CHECKPOINT_SCHEMA, CheckpointStore
from repro.report.sweep import normalize_sweep_payload

WAIT = 60.0


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """Two archives: net1 sweeps clean, net2 is the chaos-hang target."""
    root = tmp_path_factory.mktemp("sigint-corpus")
    assert main(["generate", "fig1", str(root / "net1"), "--seed", "1"]) == 0
    assert main(["generate", "fig1", str(root / "net2"), "--seed", "2"]) == 0
    return str(root)


def _sweep_argv(corpus, ckpt_dir, *extra):
    return [
        sys.executable,
        "-m",
        "repro",
        "sweep",
        corpus,
        "--json",
        "--jobs",
        "1",
        "--no-cache",
        "--checkpoint-dir",
        ckpt_dir,
        *extra,
    ]


def _env(tmp_path, chaos=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    env["REPRO_CACHE_DIR"] = str(tmp_path / "unused-cache")
    env.pop(CHAOS_ENV, None)
    if chaos is not None:
        env[CHAOS_ENV] = chaos
    return env


def _checkpoint_files(root):
    found = []
    for dirpath, _dirs, names in os.walk(root):
        for name in names:
            if name.endswith(".json") and not name.startswith(".tmp-"):
                found.append(os.path.join(dirpath, name))
    return found


def _run_json(argv, env):
    completed = subprocess.run(
        argv, env=env, capture_output=True, text=True, timeout=300
    )
    assert completed.returncode in (0, 3), completed.stderr
    return json.loads(completed.stdout)


def test_sigint_leaves_valid_checkpoints_and_resume_is_identical(
    corpus, tmp_path
):
    ckpt = str(tmp_path / "ckpt")

    # Interrupted run: net1 sweeps and checkpoints normally; net2's first
    # scenario hangs forever under chaos, pinning the process mid-corpus.
    process = subprocess.Popen(
        _sweep_argv(corpus, ckpt),
        env=_env(tmp_path, chaos="net2:*=hang"),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + WAIT
        while time.monotonic() < deadline:
            if len(_checkpoint_files(ckpt)) >= 3:
                break
            if process.poll() is not None:
                raise AssertionError(
                    f"sweep exited early with {process.returncode}"
                )
            time.sleep(0.05)
        else:
            raise AssertionError("no checkpoints appeared before deadline")
        process.send_signal(signal.SIGINT)
        returncode = process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
    assert returncode != 0  # the interrupted run did not report success

    # Every surviving checkpoint entry is complete, valid JSON with the
    # current schema: the atomic temp-file-then-rename write discipline
    # means SIGINT can abandon a .tmp- file but never truncate an entry.
    files = _checkpoint_files(ckpt)
    assert files, "interrupted run left no checkpoints to resume from"
    for path in files:
        with open(path) as handle:
            entry = json.load(handle)  # parses: no torn writes
        assert entry["schema"] == CHECKPOINT_SCHEMA
        assert entry["result"]["status"] in ("ok", "degraded")

    # The store itself accepts the directory wholesale (no evictions
    # needed): its entry census equals the file census.
    assert len(CheckpointStore(root=ckpt).entries()) == len(files)

    # Resumed run (chaos cleared) vs uninterrupted reference run.
    resumed = _run_json(
        _sweep_argv(corpus, ckpt, "--resume"), _env(tmp_path)
    )
    reference = _run_json(
        _sweep_argv(corpus, str(tmp_path / "ckpt-reference")),
        _env(tmp_path),
    )

    # The resume actually replayed checkpoints rather than recomputing.
    replayed = [
        row
        for archive in resumed["archives"]
        for row in archive.get("rows", [])
        if row.get("from_checkpoint")
    ]
    assert replayed, "resume replayed nothing from the checkpoint store"

    assert json.dumps(
        normalize_sweep_payload(resumed), sort_keys=True
    ) == json.dumps(normalize_sweep_payload(reference), sort_keys=True)
