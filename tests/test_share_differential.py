"""Differential suite: an anonymized corpus must analyze exactly like the
original — even when the original is damaged first.

Faults are injected into the *original* corpus, then the faulted corpus is
shared; both trees must produce isomorphic diagnostics and analysis
results under the exported mapping.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anonymize import Anonymizer
from repro.anonymize.anonymizer import split_structural_suffix
from repro.anonymize.keywords import ALL_KEYWORDS
from repro.model.network import Network
from repro.share import ShareOptions, certify_share, share_corpus
from repro.synth.faults import inject_fault
from repro.synth.templates.enterprise import build_enterprise
from repro.synth.templates.mixed import build_mixed

#: File-damage kinds exercised differentially.  ``duplicate-hostname`` is
#: excluded: skip-block renames duplicates ``~N`` in discovery order, which
#: is not a property the share mapping can (or should) preserve.
FAULT_KINDS = ["drop-lines", "inject-unknown", "truncate-file", "corrupt-ip"]

CORPORA = {
    "ios": lambda: build_enterprise("difios", 1, 6, n_borders=2)[0],
    "junos": lambda: build_mixed("difjx", 2, n_routers=8)[0],
}


def _write_faulted(tmp_path, vendor, kind, seed=7):
    configs = CORPORA[vendor]()
    faulted, fault = inject_fault(configs, kind, seed)
    root = str(tmp_path / "corpus")
    archive = os.path.join(root, "net")
    os.makedirs(archive)
    for name, text in faulted.items():
        with open(os.path.join(archive, name + ".cfg"), "w") as handle:
            handle.write(text)
    return root, archive, fault


class TestLenientDifferential:
    @pytest.mark.parametrize("vendor", sorted(CORPORA))
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_faulted_corpus_certifies(self, tmp_path, vendor, kind):
        root, _archive, _fault = _write_faulted(tmp_path, vendor, kind)
        out = str(tmp_path / "shared")
        result = share_corpus(root, out, ShareOptions(key=b"diff"))
        certification = certify_share(root, out, result.mapping)
        assert certification.ok, certification.divergent_sections()

    @pytest.mark.parametrize("vendor", sorted(CORPORA))
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_diagnostic_severities_match(self, tmp_path, vendor, kind):
        # Identical damage must surface with identical severity on both
        # sides; only the identifiers inside the messages may differ.
        root, archive, _fault = _write_faulted(tmp_path, vendor, kind)
        out = str(tmp_path / "shared")
        result = share_corpus(root, out, ShareOptions(key=b"diff"))
        shared_dir = os.path.join(out, result.archives[0].shared)
        original = Network.from_directory(archive, on_error="skip-block")
        shared = Network.from_directory(shared_dir, on_error="skip-block")
        assert original.diagnostics.counts() == shared.diagnostics.counts()
        assert original.diagnostics.exit_code() == shared.diagnostics.exit_code()
        assert len(original) == len(shared)


class TestStrictDifferential:
    @pytest.mark.parametrize("vendor", sorted(CORPORA))
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_strict_outcome_is_equivalent(self, tmp_path, vendor, kind):
        root, archive, fault = _write_faulted(tmp_path, vendor, kind)
        out = str(tmp_path / "shared")
        result = share_corpus(root, out, ShareOptions(key=b"diff"))
        shared_dir = os.path.join(out, result.archives[0].shared)

        def raises(path):
            try:
                Network.from_directory(path, on_error="strict")
            except ValueError:
                return True
            return False

        original_raised, shared_raised = raises(archive), raises(shared_dir)
        assert original_raised == shared_raised
        assert original_raised == fault.strict_raises


_name_tokens = st.from_regex(r"[A-Za-z][A-Za-z0-9-]{0,14}", fullmatch=True)
_octet = st.integers(min_value=0, max_value=255)


class TestTokenRoundTripProperties:
    @given(_name_tokens)
    @settings(max_examples=60, deadline=None)
    def test_token_mapping_is_deterministic(self, token):
        a, b = Anonymizer(key=b"p"), Anonymizer(key=b"p")
        first = a.anonymize_token(token, None)
        assert a.anonymize_token(token, None) == first
        assert b.anonymize_token(token, None) == first
        assert Anonymizer(key=b"q").anonymize_token(token, None) != first or (
            token.lower() in ALL_KEYWORDS
        )

    def test_keywords_pass_through_unchanged(self):
        anonymizer = Anonymizer(key=b"p")
        for keyword in sorted(ALL_KEYWORDS):
            assert anonymizer.anonymize_token(keyword, None) == keyword

    @given(_name_tokens, st.sampled_from([";", ",", ";;"]))
    @settings(max_examples=60, deadline=None)
    def test_structural_suffix_is_preserved(self, token, suffix):
        anonymizer = Anonymizer(key=b"p")
        result = anonymizer.anonymize_token(token + suffix, None)
        assert result.endswith(suffix)
        core, tail = split_structural_suffix(token + suffix)
        assert core == token and tail == suffix

    @given(_octet, _octet, _octet, _octet, st.integers(min_value=0, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_addr_len_form_is_preserved(self, a, b, c, d, length):
        anonymizer = Anonymizer(key=b"p")
        token = f"{a}.{b}.{c}.{d}/{length}"
        result = anonymizer.anonymize_token(token, None)
        addr, _, result_length = result.partition("/")
        assert result_length == str(length)
        assert addr.count(".") == 3
        assert all(part.isdigit() and int(part) <= 255 for part in addr.split("."))
