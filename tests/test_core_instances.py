"""Routing instance computation tests (§3.2)."""

from repro.core import build_instance_graph, compute_instances
from repro.core.instances import find_external_adjacent_instances, instance_of
from repro.core.process_graph import EXTERNAL_NODE
from repro.model import Network


class TestFloodFill:
    def test_fig1_instances(self, fig1):
        net, meta = fig1
        instances = compute_instances(net)
        got = sorted((i.protocol, tuple(sorted(i.routers))) for i in instances)
        want = sorted((p, tuple(sorted(r))) for p, r in meta["expected_instances"])
        assert got == want

    def test_instance_ids_start_at_one_and_are_dense(self, fig1):
        net, _ = fig1
        instances = compute_instances(net)
        assert [i.instance_id for i in instances] == list(range(1, len(instances) + 1))

    def test_deterministic(self, fig1):
        net, _ = fig1
        a = compute_instances(net)
        b = compute_instances(net)
        assert [(i.instance_id, i.protocol, i.routers) for i in a] == [
            (i.instance_id, i.protocol, i.routers) for i in b
        ]

    def test_bgp_instance_asn(self, fig1):
        net, meta = fig1
        instances = compute_instances(net)
        asns = {i.asn for i in instances if i.protocol == "bgp"}
        assert asns == {meta["enterprise_as"], meta["backbone_as"]}

    def test_process_membership_partition(self, fig1):
        net, _ = fig1
        instances = compute_instances(net)
        all_keys = [key for inst in instances for key in inst.processes]
        assert len(all_keys) == len(set(all_keys)) == len(net.processes)

    def test_ebgp_is_a_boundary(self, fig1):
        net, _ = fig1
        instances = compute_instances(net)
        bgp_instances = [i for i in instances if i.protocol == "bgp"]
        assert len(bgp_instances) == 2  # EBGP between them did not merge

    def test_merge_ebgp_ablation(self, fig1):
        # Dropping the EBGP boundary (the DESIGN.md ablation) collapses the
        # two BGP ASs into a single instance.
        net, _ = fig1
        merged = compute_instances(net, merge_ebgp=True)
        bgp_instances = [i for i in merged if i.protocol == "bgp"]
        assert len(bgp_instances) == 1
        assert bgp_instances[0].asn is None  # mixed ASs

    def test_process_ids_have_no_network_semantics(self):
        # Same pid on two routers that are NOT adjacent => two instances.
        config = (
            "interface Ethernet0\n ip address 10.{n}.0.1 255.255.255.0\n"
            "!\nrouter ospf 7\n network 10.{n}.0.0 0.0.0.255 area 0\n"
        )
        net = Network.from_configs(
            {"r1": config.format(n=1), "r2": config.format(n=2)}
        )
        instances = compute_instances(net)
        assert len(instances) == 2

    def test_label(self, fig1):
        net, _ = fig1
        instances = compute_instances(net)
        bgp = next(i for i in instances if i.protocol == "bgp" and i.asn == 12762)
        assert "BGP AS 12762" in bgp.label


class TestExternalAdjacency:
    def test_fig1_external_instances(self, fig1):
        net, meta = fig1
        instances = compute_instances(net)
        external_ids = find_external_adjacent_instances(net, instances)
        by_id = {i.instance_id: i for i in instances}
        external_protocols = {by_id[i].protocol for i in external_ids}
        # Only the backbone BGP instance peers with the missing R7.
        assert external_protocols == {"bgp"}
        external_asns = {by_id[i].asn for i in external_ids}
        assert external_asns == {meta["backbone_as"]}

    def test_igp_with_external_interface_is_external(self, tier2_net):
        net, spec = tier2_net
        instances = compute_instances(net)
        external_ids = find_external_adjacent_instances(net, instances)
        singles = [
            i for i in instances if i.protocol != "bgp" and i.size == 1
        ]
        assert singles  # staging instances exist
        assert all(i.instance_id in external_ids for i in singles)


class TestInstanceGraph:
    def test_fig1_graph_nodes(self, fig1):
        net, _ = fig1
        instances = compute_instances(net)
        graph = build_instance_graph(net, instances)
        ids = {n for n in graph.nodes if isinstance(n, int)}
        assert ids == {i.instance_id for i in instances}
        assert EXTERNAL_NODE in graph.nodes

    def test_fig1_redistribution_edges(self, fig1):
        net, _ = fig1
        instances = compute_instances(net)
        graph = build_instance_graph(net, instances)
        bgp_ent = next(i for i in instances if i.protocol == "bgp" and i.asn == 64780)
        ospf_128 = next(
            i for i in instances
            if i.protocol == "ospf" and i.routers == {"R1", "R2", "R3"}
        )
        kinds = {
            data["kind"]
            for _u, _v, data in graph.edges(data=True)
            if _u == bgp_ent.instance_id and _v == ospf_128.instance_id
        }
        assert "redistribution" in kinds

    def test_fig1_ebgp_edge(self, fig1):
        net, _ = fig1
        instances = compute_instances(net)
        graph = build_instance_graph(net, instances)
        bgp_ids = sorted(
            i.instance_id for i in instances if i.protocol == "bgp"
        )
        kinds = {
            data["kind"]
            for u, v, data in graph.edges(data=True)
            if isinstance(u, int) and isinstance(v, int) and sorted((u, v)) == bgp_ids
        }
        assert kinds == {"ebgp"}

    def test_external_edge_touches_backbone_bgp_only(self, fig1):
        net, meta = fig1
        instances = compute_instances(net)
        graph = build_instance_graph(net, instances)
        touched = {
            v for u, v, d in graph.edges(data=True)
            if u == EXTERNAL_NODE and d["kind"] == "external"
        }
        by_id = {i.instance_id: i for i in instances}
        assert {by_id[i].asn for i in touched} == {meta["backbone_as"]}

    def test_node_sizes(self, fig1):
        net, _ = fig1
        instances = compute_instances(net)
        graph = build_instance_graph(net, instances)
        for instance in instances:
            assert graph.nodes[instance.instance_id]["size"] == instance.size


class TestNet5Structure:
    def test_instance_count(self, net5_small):
        net, spec = net5_small
        instances = compute_instances(net)
        assert len(instances) == len(spec.expected_instances) == 24

    def test_instance_sizes_match_ground_truth(self, net5_small):
        net, spec = net5_small
        instances = compute_instances(net)
        got = sorted((i.protocol, i.size) for i in instances)
        want = sorted((e.protocol, e.size) for e in spec.expected_instances)
        assert got == want

    def test_internal_as_count(self, net5_small):
        net, spec = net5_small
        instances = compute_instances(net)
        asns = {i.asn for i in instances if i.protocol == "bgp"}
        assert len(asns) == spec.internal_as_count == 14

    def test_glue_routers_bridge_compartments(self, net5_small):
        net, spec = net5_small
        instances = compute_instances(net)
        membership = instance_of(instances)
        glue = spec.notes["glue_ab_routers"][0]
        protocols = {key[1] for key in net.processes if key[0] == glue}
        assert protocols == {"eigrp", "bgp"}
        eigrp_instances = {
            membership[key].instance_id
            for key in net.processes
            if key[0] == glue and key[1] == "eigrp"
        }
        assert len(eigrp_instances) == 2  # member of both compartments


class TestBoundedProcesses:
    """The ``max_processes`` knob the executor's degradation ladder uses."""

    def test_process_cap_shrinks_the_result(self, fig1):
        net, _ = fig1
        full = compute_instances(net)
        capped = compute_instances(net, max_processes=1)
        assert 0 < len(capped) < len(full)

    def test_generous_cap_matches_full(self, fig1):
        net, _ = fig1
        full = compute_instances(net)
        capped = compute_instances(net, max_processes=10_000)
        assert len(capped) == len(full)
