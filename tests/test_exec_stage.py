"""Stage vocabulary: StageResult, severity ordering, error-budget counts."""

import pytest

from repro.exec.stage import (
    ANALYSIS_STAGES,
    FINISHED_STATUSES,
    STATUSES,
    StageResult,
    status_counts,
    worst_status,
)


class TestStageResult:
    def test_defaults_are_ok(self):
        result = StageResult(stage="links")
        assert result.status == "ok"
        assert result.finished
        assert not result.degraded
        assert not result.from_checkpoint

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError):
            StageResult(stage="links", status="exploded")

    def test_finished_statuses(self):
        assert FINISHED_STATUSES == ("ok", "degraded")
        for status in STATUSES:
            result = StageResult(stage="x", status=status)
            assert result.finished == (status in FINISHED_STATUSES)

    def test_degraded_means_any_not_ok(self):
        for status in STATUSES:
            result = StageResult(stage="x", status=status)
            assert result.degraded == (status != "ok")

    def test_as_dict_omits_empty_strings(self):
        data = StageResult(stage="links", seconds=0.5, items=3).as_dict()
        assert data == {
            "stage": "links",
            "status": "ok",
            "seconds": 0.5,
            "items": 3,
            "attempts": 1,
        }

    def test_as_dict_keeps_populated_fields(self):
        result = StageResult(
            stage="pathways",
            status="degraded",
            detail="truncated",
            degradation="max-depth-3",
            from_checkpoint=True,
        )
        data = result.as_dict()
        assert data["detail"] == "truncated"
        assert data["degradation"] == "max-depth-3"
        assert data["from_checkpoint"] is True

    def test_roundtrip_via_dict(self):
        original = StageResult(
            stage="reachability",
            status="failed",
            seconds=1.25,
            items=7,
            attempts=2,
            error="ValueError: boom",
            degradation="max-atoms-256",
        )
        rebuilt = StageResult.from_dict(original.as_dict())
        assert rebuilt == original

    def test_value_never_serialized_and_never_compared(self):
        result = StageResult(stage="links", value=object())
        assert "value" not in result.as_dict()
        assert result == StageResult(stage="links", value="different")

    def test_data_payload_roundtrips(self):
        original = StageResult(
            stage="sweep1.router-r1",
            status="ok",
            items=4,
            data={"lost_pairs": 4, "partitioned_instances": [1, 3]},
        )
        rebuilt = StageResult.from_dict(original.as_dict())
        assert rebuilt.data == original.data
        assert rebuilt == original

    def test_empty_data_not_serialized(self):
        assert "data" not in StageResult(stage="links").as_dict()


class TestWorstStatus:
    def test_empty_is_none(self):
        assert worst_status([]) is None

    def test_ordering(self):
        assert worst_status(["ok", "ok"]) == "ok"
        assert worst_status(["ok", "degraded"]) == "degraded"
        assert worst_status(["degraded", "skipped"]) == "skipped"
        assert worst_status(["skipped", "timeout"]) == "timeout"
        assert worst_status(["timeout", "failed", "ok"]) == "failed"

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError):
            worst_status(["ok", "melted"])


class TestStatusCounts:
    def test_counts_every_status_key(self):
        results = [
            StageResult(stage="a"),
            StageResult(stage="b", status="timeout"),
            StageResult(stage="c", status="timeout"),
        ]
        counts = status_counts(results)
        assert counts["ok"] == 1
        assert counts["timeout"] == 2
        assert counts["failed"] == 0
        assert set(counts) == set(STATUSES)


def test_analysis_stages_cover_the_papers_passes():
    assert ANALYSIS_STAGES == (
        "links",
        "process_graph",
        "instances",
        "pathways",
        "address_space",
        "consistency",
        "reachability",
        "survivability",
    )
