"""Configuration consistency / vulnerability audit tests (§8.1)."""

from repro.core.consistency import (
    audit_configuration,
    dangling_references,
    incomplete_adjacencies,
    one_sided_sessions,
    unprotected_edges,
    unused_policies,
)
from repro.model import Network


class TestUnprotectedEdges:
    def test_unfiltered_external_interface_flagged(self):
        net = Network.from_configs(
            {"r1": "interface Serial0\n ip address 192.0.2.1 255.255.255.252\n"}
        )
        findings = unprotected_edges(net)
        assert any(f.category == "unfiltered-edge-interface" for f in findings)

    def test_filtered_edge_passes(self):
        config = (
            "interface Serial0\n ip address 192.0.2.1 255.255.255.252\n"
            " ip access-group 100 in\n"
            "!\naccess-list 100 permit ip any any\n"
        )
        net = Network.from_configs({"r1": config})
        assert not [
            f
            for f in unprotected_edges(net)
            if f.category == "unfiltered-edge-interface"
        ]

    def test_policyless_external_session_flagged(self):
        config = (
            "interface Serial0\n ip address 192.0.2.1 255.255.255.252\n"
            " ip access-group 100 in\n"
            "!\naccess-list 100 permit ip any any\n"
            "router bgp 65000\n neighbor 192.0.2.2 remote-as 7018\n"
        )
        net = Network.from_configs({"r1": config})
        findings = unprotected_edges(net)
        assert any(f.category == "unfiltered-external-session" for f in findings)

    def test_session_with_prefix_list_passes(self):
        config = (
            "interface Serial0\n ip address 192.0.2.1 255.255.255.252\n"
            " ip access-group 100 in\n"
            "!\naccess-list 100 permit ip any any\n"
            "router bgp 65000\n neighbor 192.0.2.2 remote-as 7018\n"
            " neighbor 192.0.2.2 prefix-list SANE in\n"
            "!\nip prefix-list SANE seq 5 permit 0.0.0.0/0 le 24\n"
        )
        net = Network.from_configs({"r1": config})
        assert not [
            f
            for f in unprotected_edges(net)
            if f.category == "unfiltered-external-session"
        ]


class TestIncompleteAdjacency:
    COVERED = (
        "interface Serial0\n ip address 10.0.0.{host} 255.255.255.252\n"
        "!\nrouter ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
    )
    UNCOVERED = "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"

    def test_half_covered_link_flagged(self):
        net = Network.from_configs(
            {"r1": self.COVERED.format(host=1), "r2": self.UNCOVERED}
        )
        (finding,) = incomplete_adjacencies(net)
        assert finding.router == "r2"
        assert "not covered" in finding.detail

    def test_fully_covered_link_passes(self):
        net = Network.from_configs(
            {"r1": self.COVERED.format(host=1), "r2": self.COVERED.format(host=2)}
        )
        assert incomplete_adjacencies(net) == []

    def test_fully_uncovered_link_passes(self):
        # Links with no IGP at all (pure BGP or static designs) are fine.
        net = Network.from_configs(
            {
                "r1": "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n",
                "r2": self.UNCOVERED,
            }
        )
        assert incomplete_adjacencies(net) == []

    PASSIVE = (
        "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
        "!\nrouter ospf 1\n passive-interface Serial0\n"
        " network 10.0.0.0 0.0.0.3 area 0\n"
    )

    def test_passive_end_flagged_as_covered_but_not_adjacent(self):
        # The passive side advertises the subnet but can never bring up an
        # adjacency — same set `find_external_adjacent_instances` uses.
        net = Network.from_configs(
            {"r1": self.COVERED.format(host=1), "r2": self.PASSIVE}
        )
        (finding,) = incomplete_adjacencies(net)
        assert finding.router == "r2"
        assert "passively" in finding.detail
        assert "no adjacency can form" in finding.detail

    def test_both_ends_passive_passes(self):
        # Neither side expects an adjacency; nothing is broken.
        passive_r1 = (
            "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
            "!\nrouter ospf 1\n passive-interface Serial0\n"
            " network 10.0.0.0 0.0.0.3 area 0\n"
        )
        net = Network.from_configs({"r1": passive_r1, "r2": self.PASSIVE})
        assert incomplete_adjacencies(net) == []

    def test_interface_active_under_another_process_passes(self):
        # Passive under ospf 1 but actively covered by ospf 2: the router
        # can still form an adjacency on the link, so no finding.
        dual = (
            "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
            "!\nrouter ospf 1\n passive-interface Serial0\n"
            " network 10.0.0.0 0.0.0.3 area 0\n"
            "!\nrouter ospf 2\n network 10.0.0.0 0.0.0.3 area 0\n"
        )
        net = Network.from_configs({"r1": self.COVERED.format(host=1), "r2": dual})
        assert incomplete_adjacencies(net) == []


class TestReferences:
    def test_dangling_access_group(self):
        net = Network.from_configs(
            {
                "r1": "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
                " ip access-group 55 in\n"
            }
        )
        (finding,) = dangling_references(net)
        assert "access-list 55" in finding.detail

    def test_dangling_route_map(self):
        config = "router ospf 1\n redistribute static route-map GONE subnets\n"
        net = Network.from_configs({"r1": config})
        findings = dangling_references(net)
        assert any("route-map GONE" in f.detail for f in findings)

    def test_unused_acl_flagged(self):
        net = Network.from_configs({"r1": "access-list 9 permit any\n"})
        (finding,) = unused_policies(net)
        assert "access-list 9" in finding.detail

    def test_used_objects_not_flagged(self):
        config = (
            "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
            " ip access-group 9 in\n"
            "!\naccess-list 9 permit any\n"
        )
        net = Network.from_configs({"r1": config})
        assert unused_policies(net) == []


class TestOneSidedSessions:
    def test_missing_reverse_neighbor_flagged(self):
        configs = {
            "a": (
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
                "!\nrouter bgp 65000\n neighbor 10.0.0.2 remote-as 65000\n"
            ),
            "b": (
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
                "!\nrouter bgp 65000\n"
            ),
        }
        net = Network.from_configs(configs)
        findings = one_sided_sessions(net)
        assert len(findings) == 1
        assert findings[0].router == "a"

    def test_bidirectional_session_passes(self):
        configs = {
            "a": (
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
                "!\nrouter bgp 65000\n neighbor 10.0.0.2 remote-as 65000\n"
            ),
            "b": (
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
                "!\nrouter bgp 65000\n neighbor 10.0.0.1 remote-as 65000\n"
            ),
        }
        net = Network.from_configs(configs)
        assert one_sided_sessions(net) == []


class TestFullAudit:
    def test_generated_networks_are_mostly_clean(self, enterprise_net):
        net, _spec = enterprise_net
        report = audit_configuration(net)
        # The generator wires everything consistently; the only expected
        # findings are the deliberately open edges (no inbound filter is
        # placed on every uplink) — never dangling refs or broken sessions.
        assert report.by_category("dangling-reference") == []
        assert report.by_category("one-sided-session") == []
        assert report.by_category("incomplete-adjacency") == []

    def test_report_shape(self, enterprise_net):
        net, _spec = enterprise_net
        report = audit_configuration(net)
        assert len(report) == len(report.findings)
        for finding in report.findings:
            assert str(finding).startswith("[")


class TestBoundedFindings:
    """The ``max_findings_per_check`` knob of the degradation ladder."""

    def test_finding_cap_truncates_and_flags(self, fig1):
        from repro.core.consistency import audit_configuration

        net, _ = fig1
        full = audit_configuration(net)
        capped = audit_configuration(net, max_findings_per_check=0)
        assert len(full) > 0
        assert not full.truncated
        assert len(capped) == 0
        assert capped.truncated

    def test_generous_cap_matches_full(self, fig1):
        from repro.core.consistency import audit_configuration

        net, _ = fig1
        full = audit_configuration(net)
        capped = audit_configuration(net, max_findings_per_check=10_000)
        assert len(capped) == len(full)
        assert not capped.truncated
