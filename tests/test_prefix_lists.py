"""Prefix-list tests: parsing, semantics, policy integration."""

import pytest

from repro.ios import parse_config, serialize_config
from repro.ios.config import PrefixList, PrefixListEntry
from repro.net import Prefix

TEXT = (
    "ip prefix-list CUSTOMERS seq 5 permit 10.0.0.0/8 le 24\n"
    "ip prefix-list CUSTOMERS seq 10 deny 10.99.0.0/16 ge 17\n"
    "ip prefix-list CUSTOMERS seq 15 permit 172.16.0.0/12\n"
)


class TestParsing:
    def test_entries(self):
        cfg = parse_config(TEXT)
        plist = cfg.prefix_lists["CUSTOMERS"]
        assert [e.sequence for e in plist.sorted_entries()] == [5, 10, 15]
        assert plist.entries[0].le == 24
        assert plist.entries[1].ge == 17
        assert plist.entries[2].prefix == Prefix("172.16.0.0/12")

    def test_implicit_sequence_numbers(self):
        cfg = parse_config(
            "ip prefix-list AUTO permit 10.0.0.0/8\n"
            "ip prefix-list AUTO permit 11.0.0.0/8\n"
        )
        assert [e.sequence for e in cfg.prefix_lists["AUTO"].entries] == [5, 10]

    def test_serializer_roundtrip(self):
        first = parse_config(TEXT)
        second = parse_config(serialize_config(first))
        assert first.prefix_lists == second.prefix_lists

    def test_neighbor_prefix_list(self):
        cfg = parse_config(
            "router bgp 65000\n"
            " neighbor 10.0.0.2 remote-as 65001\n"
            " neighbor 10.0.0.2 prefix-list CUSTOMERS in\n"
            " neighbor 10.0.0.2 prefix-list ANNOUNCE out\n"
        )
        nbr = cfg.bgp_process.neighbor("10.0.0.2")
        assert nbr.prefix_list_in == "CUSTOMERS"
        assert nbr.prefix_list_out == "ANNOUNCE"

    def test_route_map_match_prefix_list(self):
        cfg = parse_config(
            "route-map POL permit 10\n match ip address prefix-list CUSTOMERS\n"
        )
        clause = cfg.route_maps["POL"].clauses[0]
        assert clause.match_prefix_lists == ["CUSTOMERS"]
        assert clause.match_ip_address == []

    def test_malformed_rejected(self):
        from repro.ios.parser import ConfigParseError

        with pytest.raises(ConfigParseError):
            parse_config("ip prefix-list BAD permit 10.0.0.0\n")  # no /len


class TestMatchingSemantics:
    def entry(self, prefix, ge=None, le=None, action="permit", seq=5):
        return PrefixListEntry(
            sequence=seq, action=action, prefix=Prefix(prefix), ge=ge, le=le
        )

    def test_exact_match_without_bounds(self):
        entry = self.entry("10.0.0.0/8")
        assert entry.matches(Prefix("10.0.0.0/8"))
        assert not entry.matches(Prefix("10.1.0.0/16"))

    def test_le_bound(self):
        entry = self.entry("10.0.0.0/8", le=24)
        assert entry.matches(Prefix("10.1.0.0/16"))
        assert entry.matches(Prefix("10.1.2.0/24"))
        assert not entry.matches(Prefix("10.1.2.0/25"))

    def test_ge_bound(self):
        entry = self.entry("10.0.0.0/8", ge=24)
        assert not entry.matches(Prefix("10.1.0.0/16"))
        assert entry.matches(Prefix("10.1.2.0/24"))
        assert entry.matches(Prefix("10.1.2.4/30"))

    def test_ge_and_le(self):
        entry = self.entry("10.0.0.0/8", ge=16, le=24)
        assert entry.matches(Prefix("10.5.0.0/16"))
        assert not entry.matches(Prefix("10.1.2.4/30"))

    def test_containment_required(self):
        entry = self.entry("10.0.0.0/8", le=32)
        assert not entry.matches(Prefix("11.0.0.0/24"))

    def test_first_match_and_implicit_deny(self):
        plist = PrefixList(
            name="T",
            entries=[
                self.entry("10.99.0.0/16", le=32, action="deny", seq=5),
                self.entry("10.0.0.0/8", le=32, action="permit", seq=10),
            ],
        )
        assert not plist.permits(Prefix("10.99.1.0/24"))
        assert plist.permits(Prefix("10.1.0.0/24"))
        assert not plist.permits(Prefix("192.168.0.0/24"))  # implicit deny


class TestSimulatorIntegration:
    BASE = {
        "a": (
            "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
            "!\nrouter bgp 65001\n"
            " network 20.0.0.0 mask 255.0.0.0\n"
            " network 30.0.0.0 mask 255.0.0.0\n"
            " neighbor 10.0.0.2 remote-as 65002\n"
        ),
        "b": (
            "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
            "!\nrouter bgp 65002\n neighbor 10.0.0.1 remote-as 65001\n"
            " neighbor 10.0.0.1 prefix-list ONLY20 in\n"
            "!\nip prefix-list ONLY20 seq 5 permit 20.0.0.0/8\n"
        ),
    }

    def test_neighbor_prefix_list_in_filters_routes(self):
        from repro.model import Network
        from repro.routing import RoutingSimulation

        net = Network.from_configs(dict(self.BASE))
        sim = RoutingSimulation(net).run()
        assert sim.can_reach("b", "20.1.1.1")
        assert not sim.can_reach("b", "30.1.1.1")

    def test_route_map_prefix_list_match(self):
        from repro.model import Network
        from repro.routing import RoutingSimulation

        configs = dict(self.BASE)
        configs["b"] = (
            "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
            "!\nrouter bgp 65002\n neighbor 10.0.0.1 remote-as 65001\n"
            " neighbor 10.0.0.1 route-map TAGIT in\n"
            "!\nip prefix-list ONLY20 seq 5 permit 20.0.0.0/8\n"
            "route-map TAGIT permit 10\n"
            " match ip address prefix-list ONLY20\n"
            " set tag 99\n"
        )
        net = Network.from_configs(configs)
        sim = RoutingSimulation(net).run()
        route = sim.lookup("b", "20.1.1.1")
        assert route is not None and route.tag == 99
        assert not sim.can_reach("b", "30.1.1.1")  # unmatched => denied


class TestReachabilityIntegration:
    def test_session_prefix_list_compiles(self):
        from repro.core import ReachabilityAnalysis
        from repro.model import Network

        configs = {
            "edge": (
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
                "!\ninterface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n"
                "!\nrouter ospf 1\n network 10.1.0.0 0.0.0.255 area 0\n"
                " redistribute bgp 65001 subnets\n"
                "!\nrouter bgp 65001\n neighbor 10.0.0.2 remote-as 7018\n"
                " neighbor 10.0.0.2 prefix-list IN4 in\n"
                "!\nip prefix-list IN4 seq 5 permit 198.18.0.0/15 le 24\n"
            ),
            "lan": (
                "interface Ethernet0\n ip address 10.1.0.2 255.255.255.0\n"
                "!\nrouter ospf 1\n network 10.1.0.0 0.0.0.255 area 0\n"
            ),
        }
        net = Network.from_configs(configs)
        analysis = ReachabilityAnalysis(net)
        ospf = next(i for i in analysis.instances if i.protocol == "ospf")
        admitted = analysis.external_routes_into(ospf.instance_id)
        assert admitted.covers(Prefix("198.18.0.0/15"))
        assert not admitted.overlaps(Prefix("8.0.0.0/8"))
        assert not analysis.default_route_admitted(ospf.instance_id)
