"""CLI-level resilience: exit-code contract, chaos runs, checkpoint resume."""

import json
import os

import pytest

from repro.cli import main
from repro.exec import ANALYSIS_STAGES, CHAOS_ENV
from repro.exec.budget import BENCH_RESULTS_ENV, SAFETY_FACTOR
from repro.synth.templates.example_fig1 import build_example_networks


@pytest.fixture()
def corpus_dir(tmp_path):
    configs, _meta = build_example_networks()
    for archive in ("alpha", "beta"):
        d = tmp_path / "corpus" / archive
        d.mkdir(parents=True)
        for name, text in configs.items():
            # Distinct bytes per archive: identical archives would share
            # one content-addressed digest (and thus one checkpoint set).
            (d / name).write_text(f"! {archive}\n{text}")
    return os.fspath(tmp_path / "corpus")


@pytest.fixture()
def checkpoints(tmp_path):
    return os.fspath(tmp_path / "checkpoints")


def _corpus(corpus_dir, checkpoints, *flags):
    return [
        "corpus",
        "--no-cache",
        "--json",
        "--checkpoint-dir",
        checkpoints,
        *flags,
        corpus_dir,
    ]


class TestChaosAcceptance:
    """ISSUE acceptance: a corpus with a hanging stage and a raising stage
    completes with exit code 3, the payload names both, and ``--resume``
    re-executes exactly the unfinished pairs."""

    def test_hang_and_raise_then_resume(
        self, corpus_dir, checkpoints, capsys, monkeypatch
    ):
        monkeypatch.setenv(
            CHAOS_ENV, "alpha:pathways=hang;beta:consistency=raise"
        )
        code = main(
            _corpus(corpus_dir, checkpoints, "--stage-deadline", "0.3")
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 3
        assert payload["totals"]["stages"]["timeout"] == 1
        assert payload["totals"]["stages"]["failed"] == 1
        assert payload["totals"]["stages"]["ok"] == 2 * len(ANALYSIS_STAGES) - 2
        alpha, beta = payload["archives"]
        assert alpha["status"] == "timeout"
        assert beta["status"] == "failed"
        by_stage = {s["stage"]: s for s in alpha["execution"]["stages"]}
        assert by_stage["pathways"]["status"] == "timeout"
        by_stage = {s["stage"]: s for s in beta["execution"]["stages"]}
        assert by_stage["consistency"]["status"] == "failed"
        assert "ChaosError" in by_stage["consistency"]["error"]
        # Other stages carried on and left partial results behind.
        assert by_stage["reachability"]["status"] == "ok"

        monkeypatch.delenv(CHAOS_ENV)
        code = main(_corpus(corpus_dir, checkpoints, "--resume"))
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["totals"]["stages"] == {"ok": 2 * len(ANALYSIS_STAGES)}
        # The checkpoint counters prove only the unfinished pairs re-ran.
        stats = payload["execution"]["checkpoints"]
        assert stats["hits"] == 2 * len(ANALYSIS_STAGES) - 2
        assert stats["misses"] == 2
        assert stats["stores"] == 2
        fresh = [
            (entry["archive"], stage["stage"])
            for entry in payload["archives"]
            for stage in entry["execution"]["stages"]
            if not stage.get("from_checkpoint")
        ]
        assert fresh == [("alpha", "pathways"), ("beta", "consistency")]

    def test_exit_code_table_in_docstring_order(self, corpus_dir, checkpoints, capsys):
        # 0: clean.
        assert main(_corpus(corpus_dir, checkpoints)) == 0
        capsys.readouterr()

    def test_table_mode_prints_incidents(
        self, corpus_dir, checkpoints, capsys, monkeypatch
    ):
        monkeypatch.setenv(CHAOS_ENV, "beta:consistency=raise")
        code = main(
            [
                "corpus",
                "--no-cache",
                "--checkpoint-dir",
                checkpoints,
                corpus_dir,
            ]
        )
        out = capsys.readouterr().out
        assert code == 3
        assert "stage incidents:" in out
        assert "beta: stage consistency failed" in out
        assert "status" in out


class TestFailFast:
    def test_aborts_after_the_first_broken_archive(
        self, corpus_dir, checkpoints, capsys, monkeypatch
    ):
        monkeypatch.setenv(CHAOS_ENV, "alpha:links=raise")
        code = main(_corpus(corpus_dir, checkpoints, "--fail-fast"))
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert code == 3
        assert "aborted by --fail-fast" in captured.err
        # Every archive is accounted for: the broken one as failed, the
        # never-started one as skipped (it must not vanish from the
        # report just because the run aborted before reaching it).
        assert [e["archive"] for e in payload["archives"]] == ["alpha", "beta"]
        statuses = [
            s["status"] for s in payload["archives"][0]["execution"]["stages"]
        ]
        assert statuses[0] == "failed"
        assert set(statuses[1:]) == {"skipped"}
        beta = payload["archives"][1]
        assert beta["status"] == "skipped"
        assert beta["routers"] == beta["files"] == 0
        assert {
            s["status"] for s in beta["execution"]["stages"]
        } == {"skipped"}
        totals = payload["totals"]
        assert totals["archives"] == 2
        assert totals["archives_skipped"] == 1
        assert totals["stages"]["skipped"] >= len(beta["execution"]["stages"])


class TestFlagValidation:
    def test_resume_requires_checkpoints(self, corpus_dir, checkpoints):
        with pytest.raises(SystemExit):
            main(_corpus(corpus_dir, checkpoints, "--resume", "--no-checkpoint"))

    @pytest.mark.parametrize("value", ["junk", "0", "-5"])
    def test_bad_stage_deadline_rejected(self, corpus_dir, checkpoints, value):
        with pytest.raises(SystemExit):
            main(_corpus(corpus_dir, checkpoints, "--stage-deadline", value))


class TestAutoDeadline:
    def test_auto_derives_from_benchmark_results(
        self, corpus_dir, checkpoints, tmp_path, capsys, monkeypatch
    ):
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps({"stages": [{"seconds": 2.0}]}))
        monkeypatch.setenv(BENCH_RESULTS_ENV, os.fspath(bench))
        code = main(_corpus(corpus_dir, checkpoints, "--stage-deadline", "auto"))
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        execution = payload["execution"]
        assert execution["stage_deadline"] == 2.0 * SAFETY_FACTOR
        assert execution["stage_deadline_source"]["source"] == "benchmarks"

    def test_auto_fallback_when_no_benchmarks(
        self, corpus_dir, checkpoints, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(
            BENCH_RESULTS_ENV, os.fspath(tmp_path / "absent.json")
        )
        code = main(_corpus(corpus_dir, checkpoints, "--stage-deadline", "auto"))
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["execution"]["stage_deadline_source"]["source"] == "fallback"


class TestRunManifest:
    def test_manifest_records_execution_and_budget(
        self, corpus_dir, checkpoints, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(CHAOS_ENV, "beta:consistency=raise")
        report = tmp_path / "report.json"
        code = main(
            _corpus(
                corpus_dir,
                checkpoints,
                "--stage-deadline",
                "30",
                "--run-report",
                os.fspath(report),
            )
        )
        capsys.readouterr()
        assert code == 3
        manifest = json.loads(report.read_text())
        assert manifest["exit_code"] == 3
        assert manifest["totals"]["stages"]["failed"] == 1
        assert (
            manifest["totals"]["stages"]["ok"] == 2 * len(ANALYSIS_STAGES) - 1
        )
        # Satellite: the chosen budget is recorded in the manifest.
        execution_env = manifest["environment"]["execution"]
        assert execution_env["stage_deadline"] == 30.0
        assert execution_env["stage_deadline_source"] == {"source": "cli"}
        assert execution_env["checkpoints"]["stores"] == 2 * len(ANALYSIS_STAGES) - 1
        beta = manifest["archives"][1]
        by_stage = {s["stage"]: s for s in beta["execution"]["stages"]}
        assert by_stage["consistency"]["status"] == "failed"
        counters = manifest["metrics"]["counters"]
        assert counters["exec.stage.failed"] == 1
