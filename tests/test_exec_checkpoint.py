"""Checkpoint store: content addressing, validation, invalidation."""

import json
import os

from repro.exec.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    archive_digest,
)
from repro.exec.stage import StageResult
from repro.obs.manifest import FileRecord
from repro.obs.metrics import MetricsRegistry, use_registry


def _record(path, sha):
    return FileRecord(path=path, size=1, sha256=sha, disposition="parsed")


def _inventory():
    return [_record("r1.cfg", "a" * 64), _record("r2.cfg", "b" * 64)]


class TestArchiveDigest:
    def test_order_insensitive(self):
        forward = _inventory()
        assert archive_digest(forward) == archive_digest(list(reversed(forward)))

    def test_sensitive_to_file_content(self):
        edited = [_record("r1.cfg", "a" * 64), _record("r2.cfg", "c" * 64)]
        assert archive_digest(_inventory()) != archive_digest(edited)

    def test_sensitive_to_added_file(self):
        grown = _inventory() + [_record("r3.cfg", "d" * 64)]
        assert archive_digest(_inventory()) != archive_digest(grown)

    def test_empty_inventory_digests(self):
        assert len(archive_digest([])) == 64


class TestStoreRoundtrip:
    def test_store_then_load(self, tmp_path):
        with use_registry(MetricsRegistry()):
            store = CheckpointStore(root=os.fspath(tmp_path))
            digest = archive_digest(_inventory())
            result = StageResult(stage="links", items=9, seconds=0.2)
            assert store.store(digest, "alpha", result)
            loaded = store.load(digest, "links")
        assert loaded is not None
        assert loaded.from_checkpoint
        assert loaded.items == 9
        assert store.stats.stores == 1
        assert store.stats.hits == 1

    def test_data_payload_survives_the_store(self, tmp_path):
        # Sweep scenario rows persist their reachability delta in
        # ``data`` so a resumed run can rebuild the fragility report
        # without re-simulating finished scenarios.
        with use_registry(MetricsRegistry()):
            store = CheckpointStore(root=os.fspath(tmp_path))
            digest = archive_digest(_inventory())
            result = StageResult(
                stage="sweep1.router-r1",
                items=4,
                data={"lost_pairs": 4, "converged": True},
            )
            assert store.store(digest, "alpha", result)
            loaded = store.load(digest, "sweep1.router-r1")
        assert loaded is not None
        assert loaded.data == {"lost_pairs": 4, "converged": True}

    def test_absent_entry_is_a_miss(self, tmp_path):
        with use_registry(MetricsRegistry()):
            store = CheckpointStore(root=os.fspath(tmp_path))
            assert store.load("0" * 64, "links") is None
        assert store.stats.misses == 1
        assert store.stats.invalidated == 0

    def test_entries_lists_only_complete_files(self, tmp_path):
        with use_registry(MetricsRegistry()):
            store = CheckpointStore(root=os.fspath(tmp_path))
            digest = archive_digest(_inventory())
            store.store(digest, "alpha", StageResult(stage="links"))
            store.store(digest, "alpha", StageResult(stage="instances"))
        (tmp_path / digest[:2] / ".tmp-junk.json").write_text("{}")
        assert len(store.entries()) == 2


class TestEditBetweenRuns:
    """A checkpoint written under one inventory never replays on another."""

    def test_edited_file_changes_the_key(self, tmp_path):
        with use_registry(MetricsRegistry()):
            store = CheckpointStore(root=os.fspath(tmp_path))
            before = archive_digest(_inventory())
            store.store(before, "alpha", StageResult(stage="links"))
            # One config file's bytes changed between the runs.
            after = archive_digest(
                [_record("r1.cfg", "a" * 64), _record("r2.cfg", "f" * 64)]
            )
            assert after != before
            assert store.load(after, "links") is None
        assert store.stats.misses == 1

    def test_tampered_digest_field_invalidates(self, tmp_path):
        with use_registry(MetricsRegistry()):
            store = CheckpointStore(root=os.fspath(tmp_path))
            digest = archive_digest(_inventory())
            store.store(digest, "alpha", StageResult(stage="links"))
            path = store._key(digest, "links")
            entry = json.loads(open(path).read())
            entry["archive_digest"] = "0" * 64
            with open(path, "w") as handle:
                json.dump(entry, handle)
            assert store.load(digest, "links") is None
            assert not os.path.exists(path)  # deleted, not just ignored
        assert store.stats.invalidated == 1

    def test_parser_upgrade_invalidates(self, tmp_path):
        with use_registry(MetricsRegistry()):
            store = CheckpointStore(root=os.fspath(tmp_path))
            digest = archive_digest(_inventory())
            store.store(digest, "alpha", StageResult(stage="links"))
            path = store._key(digest, "links")
            entry = json.loads(open(path).read())
            entry["parser_version"] = -1
            with open(path, "w") as handle:
                json.dump(entry, handle)
            assert store.load(digest, "links") is None
        assert store.stats.invalidated == 1

    def test_wrong_schema_invalidates(self, tmp_path):
        with use_registry(MetricsRegistry()):
            store = CheckpointStore(root=os.fspath(tmp_path))
            digest = archive_digest(_inventory())
            store.store(digest, "alpha", StageResult(stage="links"))
            path = store._key(digest, "links")
            entry = json.loads(open(path).read())
            assert entry["schema"] == CHECKPOINT_SCHEMA
            entry["schema"] = "repro-checkpoint/0"
            with open(path, "w") as handle:
                json.dump(entry, handle)
            assert store.load(digest, "links") is None
        assert store.stats.invalidated == 1

    def test_unreadable_entry_degrades_to_a_miss(self, tmp_path):
        with use_registry(MetricsRegistry()):
            store = CheckpointStore(root=os.fspath(tmp_path))
            digest = archive_digest(_inventory())
            store.store(digest, "alpha", StageResult(stage="links"))
            with open(store._key(digest, "links"), "w") as handle:
                handle.write("not json{")
            assert store.load(digest, "links") is None
        assert store.stats.invalidated == 1


def test_broken_root_degrades_to_store_failure(tmp_path):
    blocker = tmp_path / "file"
    blocker.write_text("flat file, not a directory")
    with use_registry(MetricsRegistry()):
        store = CheckpointStore(root=os.fspath(blocker / "nested"))
        ok = store.store("0" * 64, "alpha", StageResult(stage="links"))
    assert not ok
    assert store.stats.stores == 0


class TestCorruptionAccounting:
    def test_corrupt_entry_counts_and_evicts(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = CheckpointStore(root=os.fspath(tmp_path))
            digest = archive_digest(_inventory())
            store.store(digest, "alpha", StageResult(stage="links"))
            path = store._key(digest, "links")
            with open(path, "w") as handle:
                handle.write("torn write {{{")
            assert store.load(digest, "links") is None
            assert not os.path.exists(path)  # evicted, not left to rot
        counters = registry.snapshot()["counters"]
        assert counters.get("checkpoint.corrupt") == 1

    def test_stale_invalidation_is_not_corruption(self, tmp_path):
        # A parser-version eviction is routine bookkeeping, not damage:
        # it must not inflate the corruption counter.
        registry = MetricsRegistry()
        with use_registry(registry):
            store = CheckpointStore(root=os.fspath(tmp_path))
            digest = archive_digest(_inventory())
            store.store(digest, "alpha", StageResult(stage="links"))
            path = store._key(digest, "links")
            entry = json.loads(open(path).read())
            entry["parser_version"] = -1
            with open(path, "w") as handle:
                json.dump(entry, handle)
            assert store.load(digest, "links") is None
        counters = registry.snapshot()["counters"]
        assert "checkpoint.corrupt" not in counters


class TestInjectedWriteFailure:
    def test_io_error_chaos_counts_write_failures(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "*:checkpoint=io-error")
        registry = MetricsRegistry()
        with use_registry(registry):
            store = CheckpointStore(root=os.fspath(tmp_path))
            digest = archive_digest(_inventory())
            assert not store.store(digest, "alpha", StageResult(stage="links"))
            assert not store.store(digest, "alpha", StageResult(stage="instances"))
            # The failed write degrades to a miss, never an exception.
            assert store.load(digest, "links") is None
        assert store.stats.write_failures == 2
        counters = registry.snapshot()["counters"]
        assert counters.get("checkpoint.write_failures") == 2

    def test_writes_succeed_once_chaos_clears(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "*:checkpoint=io-error")
        with use_registry(MetricsRegistry()):
            store = CheckpointStore(root=os.fspath(tmp_path))
            digest = archive_digest(_inventory())
            assert not store.store(digest, "alpha", StageResult(stage="links"))
            monkeypatch.delenv("REPRO_CHAOS")
            assert store.store(digest, "alpha", StageResult(stage="links"))
            assert store.load(digest, "links") is not None
