"""Unit and property tests for Prefix arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import Prefix, classful_prefix, summarize_prefixes
from repro.net.ipv4 import AddressError

prefixes = st.builds(
    Prefix,
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=32),
)


class TestConstruction:
    def test_slash_notation(self):
        p = Prefix("10.0.0.0/8")
        assert str(p) == "10.0.0.0/8"

    def test_host_bits_cleared(self):
        assert Prefix("10.0.0.1/24") == Prefix("10.0.0.0/24")

    def test_from_netmask(self):
        p = Prefix.from_netmask("66.253.32.85", "255.255.255.252")
        assert str(p) == "66.253.32.84/30"

    def test_from_wildcard(self):
        p = Prefix.from_wildcard("66.251.75.128", "0.0.0.127")
        assert str(p) == "66.251.75.128/25"

    def test_requires_length(self):
        with pytest.raises(AddressError):
            Prefix("10.0.0.0")

    def test_rejects_bad_length(self):
        with pytest.raises(AddressError):
            Prefix("10.0.0.0/33")

    def test_netmask_and_wildcard_are_complements(self):
        p = Prefix("10.0.0.0/26")
        assert p.netmask.value ^ p.wildcard.value == 0xFFFFFFFF


class TestRelations:
    def test_contains_subnet(self):
        assert Prefix("10.0.0.0/8").contains(Prefix("10.5.0.0/16"))

    def test_contains_self(self):
        p = Prefix("10.0.0.0/8")
        assert p.contains(p)

    def test_not_contains_supernet(self):
        assert not Prefix("10.5.0.0/16").contains(Prefix("10.0.0.0/8"))

    def test_disjoint(self):
        assert not Prefix("10.0.0.0/8").overlaps(Prefix("11.0.0.0/8"))

    def test_contains_address(self):
        assert Prefix("10.0.0.0/30").contains_address("10.0.0.3")
        assert not Prefix("10.0.0.0/30").contains_address("10.0.0.4")

    @given(prefixes, prefixes)
    def test_overlap_iff_nested(self, a, b):
        # IPv4 prefixes form a tree: any two are nested or disjoint.
        assert a.overlaps(b) == (a.contains(b) or b.contains(a))

    @given(prefixes)
    def test_supernet_contains(self, p):
        if p.length > 0:
            assert p.supernet().contains(p)

    def test_ordering_by_network_then_length(self):
        assert Prefix("10.0.0.0/8") < Prefix("10.0.0.0/16")
        assert Prefix("10.0.0.0/16") < Prefix("11.0.0.0/8")


class TestDerivation:
    def test_subnets_split(self):
        halves = list(Prefix("10.0.0.0/24").subnets())
        assert halves == [Prefix("10.0.0.0/25"), Prefix("10.0.0.128/25")]

    def test_subnets_deeper(self):
        quarters = list(Prefix("10.0.0.0/24").subnets(26))
        assert len(quarters) == 4
        assert quarters[-1] == Prefix("10.0.0.192/26")

    def test_nth_subnet(self):
        assert Prefix("10.0.0.0/16").nth_subnet(24, 5) == Prefix("10.0.5.0/24")

    def test_nth_subnet_out_of_range(self):
        with pytest.raises(AddressError):
            Prefix("10.0.0.0/16").nth_subnet(24, 256)

    def test_host_addresses_p2p(self):
        hosts = list(Prefix("10.0.0.0/30").host_addresses())
        assert [str(h) for h in hosts] == ["10.0.0.1", "10.0.0.2"]

    def test_host_addresses_slash31(self):
        hosts = list(Prefix("10.0.0.0/31").host_addresses())
        assert len(hosts) == 2  # RFC 3021

    def test_host_addresses_slash32(self):
        assert len(list(Prefix("10.0.0.1/32").host_addresses())) == 1

    def test_num_addresses(self):
        assert Prefix("0.0.0.0/0").num_addresses() == 1 << 32
        assert Prefix("10.0.0.0/30").num_addresses() == 4


class TestClassful:
    @pytest.mark.parametrize(
        "address,expected",
        [
            ("10.1.2.3", "10.0.0.0/8"),
            ("127.0.0.1", "127.0.0.0/8"),
            ("128.0.0.1", "128.0.0.0/16"),
            ("172.16.5.4", "172.16.0.0/16"),
            ("192.168.1.1", "192.168.1.0/24"),
            ("223.10.20.30", "223.10.20.0/24"),
        ],
    )
    def test_classes(self, address, expected):
        assert str(classful_prefix(address)) == expected


class TestSummarize:
    def test_removes_contained(self):
        result = summarize_prefixes([Prefix("10.0.0.0/8"), Prefix("10.1.0.0/16")])
        assert result == [Prefix("10.0.0.0/8")]

    def test_merges_siblings(self):
        result = summarize_prefixes([Prefix("10.0.0.0/25"), Prefix("10.0.0.128/25")])
        assert result == [Prefix("10.0.0.0/24")]

    def test_merges_recursively(self):
        quarters = list(Prefix("10.0.0.0/24").subnets(26))
        assert summarize_prefixes(quarters) == [Prefix("10.0.0.0/24")]

    def test_keeps_disjoint(self):
        inputs = [Prefix("10.0.0.0/24"), Prefix("10.0.2.0/24")]
        assert summarize_prefixes(inputs) == inputs

    def test_no_merge_across_alignment(self):
        # 10.0.1.0/24 and 10.0.2.0/24 are adjacent but not siblings.
        inputs = [Prefix("10.0.1.0/24"), Prefix("10.0.2.0/24")]
        assert summarize_prefixes(inputs) == inputs

    def test_empty(self):
        assert summarize_prefixes([]) == []

    @given(st.lists(prefixes, max_size=30))
    def test_cover_is_preserved_and_minimal(self, inputs):
        result = summarize_prefixes(inputs)
        # Every input is covered by some output.
        for p in inputs:
            assert any(r.contains(p) for r in result)
        # Outputs are disjoint and sorted.
        for i, a in enumerate(result):
            for b in result[i + 1:]:
                assert not a.overlaps(b)
        assert result == sorted(result)
