"""Dialect detection tests and parser robustness fuzzing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ios.parser import ConfigParseError, parse_config
from repro.model.dialect import detect_dialect, parse_any_config


class TestDetection:
    def test_ios_detected(self):
        assert detect_dialect("hostname r1\ninterface Ethernet0\n") == "ios"

    def test_junos_detected(self):
        assert detect_dialect("system {\n    host-name r1;\n}\n") == "junos"

    def test_junos_compact(self):
        assert detect_dialect("interfaces { ge-0/0/0 { unit 0 { } } }") == "junos"

    def test_ios_with_braces_in_description(self):
        # A brace inside an IOS description must not flip the detection.
        text = "interface Ethernet0\n description odd {name}\n"
        assert detect_dialect(text) == "ios"

    def test_empty_defaults_to_ios(self):
        assert detect_dialect("") == "ios"

    def test_parse_any_dispatches(self):
        ios = parse_any_config("hostname c1\n")
        junos = parse_any_config("system { host-name j1; }")
        assert ios.hostname == "c1"
        assert junos.hostname == "j1"


class TestParserRobustnessFuzz:
    """The IOS parser must never crash with anything but ConfigParseError."""

    @settings(max_examples=150, deadline=None)
    @given(
        st.text(
            alphabet=st.sampled_from(
                "abcdefghijklmnop 0123456789./!#-\nrouterinterfacespmt"
            ),
            max_size=400,
        )
    )
    def test_random_text_never_hard_crashes(self, text):
        try:
            config = parse_config(text)
        except ConfigParseError:
            return
        # Whatever parsed must at least be internally consistent.
        assert config.line_count >= config.command_count >= 0

    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=200))
    def test_arbitrary_unicode_never_hard_crashes(self, text):
        try:
            parse_config(text)
        except ConfigParseError:
            pass
