"""Cross-validation between the two substrates.

The static set-algebra analysis (repro.core.reachability) and the dynamic
control-plane simulator (repro.routing) answer overlapping questions; when
both can answer, they must agree.  These tests keep the two honest with
each other.
"""

import pytest

from repro.core import ReachabilityAnalysis
from repro.model import Network
from repro.routing import RoutingSimulation
from repro.synth.templates.net15 import build_net15


@pytest.fixture(scope="module")
def net15_pair():
    configs, spec = build_net15(scale=0.3, name="xval")
    network = Network.from_configs(configs, name="xval")
    analysis = ReachabilityAnalysis(network)
    simulation = RoutingSimulation(network).run()
    return network, spec, analysis, simulation


class TestReachabilityVsSimulation:
    def test_site_isolation_agrees(self, net15_pair):
        network, spec, analysis, simulation = net15_pair
        left_lan = None
        right_lan = None
        for name, router in network.routers.items():
            for iface in router.config.interfaces.values():
                if iface.kind != "FastEthernet" or iface.prefix is None:
                    continue
                if name in spec.notes["left_ospf_routers"]:
                    left_lan = (name, iface.prefix)
                elif name in spec.notes["right_ospf_routers"]:
                    right_lan = (name, iface.prefix)
        assert left_lan and right_lan

        # Static analysis: no route toward the other site's block.
        from repro.net import Prefix

        ab2 = Prefix(spec.notes["ab2"][0])
        ab4 = Prefix(spec.notes["ab4"][0])
        assert not analysis.can_send(ab2, ab4)

        # Dynamic simulation agrees: a left router has no RIB entry for a
        # right-site LAN host, and vice versa.
        left_router, left_prefix = left_lan
        right_router, right_prefix = right_lan
        assert not simulation.can_reach(left_router, right_prefix.network + 1)
        assert not simulation.can_reach(right_router, left_prefix.network + 1)

    def test_intra_site_reachability_agrees(self, net15_pair):
        network, spec, analysis, simulation = net15_pair
        left = spec.notes["left_ospf_routers"]
        # Any left router reaches any other left router's LAN both ways.
        lans = [
            (name, iface.prefix)
            for name in left
            for iface in network.routers[name].config.interfaces.values()
            if iface.kind == "FastEthernet" and iface.prefix is not None
        ]
        if len(lans) >= 2:
            (router_a, prefix_a), (router_b, prefix_b) = lans[0], lans[-1]
            assert simulation.can_reach(router_a, prefix_b.network + 1)
            assert simulation.can_reach(router_b, prefix_a.network + 1)
            assert analysis.can_communicate(prefix_a, prefix_b)

    def test_predicted_load_bounds_simulated_load(self, net15_pair):
        network, _spec, analysis, simulation = net15_pair
        instances = analysis.instances
        for instance in instances:
            if instance.protocol != "ospf":
                continue
            predicted = analysis.predicted_route_load(instance.instance_id)
            # Simulated per-process route counts include per-link subnets,
            # which the instance-level origins summarize; compare against
            # the summarized static bound with generous slack in one
            # direction only: simulation must not exceed the static bound
            # by more than the number of unsummarized internal subnets.
            simulated = max(
                simulation.process_route_count(key) for key in instance.processes
            )
            internal_subnets = sum(
                1
                for key in instance.processes
                for _n in network.processes[key].covered_interfaces
            )
            assert simulated <= predicted + internal_subnets

    def test_external_world_unreachable_without_admittance(self, net15_pair):
        network, spec, _analysis, simulation = net15_pair
        # An external destination outside A1/A3/A5 has no route anywhere.
        some_router = spec.notes["left_ospf_routers"][1]
        assert not simulation.can_reach(some_router, "8.8.8.8")
