"""Anonymizer tests (§4.1): token rules, prefix preservation, structure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.anonymize import Anonymizer, PrefixPreservingAnonymizer
from repro.ios import parse_config
from repro.net.ipv4 import parse_ipv4

from tests.test_ios_parser import FIG2


class TestPrefixPreservingIP:
    def test_deterministic(self):
        a = PrefixPreservingAnonymizer(key=b"k")
        assert a.anonymize("10.1.2.3") == a.anonymize("10.1.2.3")

    def test_key_changes_mapping(self):
        a = PrefixPreservingAnonymizer(key=b"k1")
        b = PrefixPreservingAnonymizer(key=b"k2")
        assert a.anonymize("10.1.2.3") != b.anonymize("10.1.2.3")

    def test_not_identity(self):
        a = PrefixPreservingAnonymizer(key=b"k")
        outputs = {a.anonymize(f"10.0.0.{i}") for i in range(16)}
        assert outputs != {f"10.0.0.{i}" for i in range(16)}

    @staticmethod
    def _common_prefix_len(x: int, y: int) -> int:
        for bit in range(32):
            if (x >> (31 - bit)) != (y >> (31 - bit)):
                return bit
        return 32

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_prefix_preservation_property(self, x, y):
        a = PrefixPreservingAnonymizer(key=b"prop")
        ax, ay = a.anonymize_int(x), a.anonymize_int(y)
        assert self._common_prefix_len(x, y) == self._common_prefix_len(ax, ay)

    def test_bijective_on_sample(self):
        a = PrefixPreservingAnonymizer(key=b"k")
        inputs = [parse_ipv4(f"10.{i}.{j}.1") for i in range(8) for j in range(8)]
        outputs = {a.anonymize_int(v) for v in inputs}
        assert len(outputs) == len(inputs)


class TestTokenRules:
    @pytest.fixture()
    def anon(self):
        return Anonymizer(key=b"test")

    def test_keywords_kept(self, anon):
        line = anon.anonymize_line("router ospf 64")
        assert line == "router ospf 64"

    def test_interface_names_kept(self, anon):
        assert anon.anonymize_token("Serial1/0.5", None) == "Serial1/0.5"
        assert anon.anonymize_token("FastEthernet0/1", None) == "FastEthernet0/1"

    def test_unknown_names_hashed(self, anon):
        hashed = anon.anonymize_token("CUSTOMER-EDGE-NYC", None)
        assert hashed != "CUSTOMER-EDGE-NYC"
        assert len(hashed) == 11

    def test_hashing_deterministic(self, anon):
        assert anon.hash_name("foo") == anon.hash_name("foo")
        assert anon.hash_name("foo") != anon.hash_name("bar")

    def test_netmasks_not_anonymized(self, anon):
        line = anon.anonymize_line(" ip address 10.1.2.3 255.255.255.252")
        assert "255.255.255.252" in line
        assert "10.1.2.3" not in line

    def test_wildcards_not_anonymized(self, anon):
        line = anon.anonymize_line(" network 10.1.2.0 0.0.0.255 area 0")
        assert "0.0.0.255" in line
        assert "area 0" in line

    def test_plain_integers_kept(self, anon):
        assert anon.anonymize_line(" bandwidth 1544") == " bandwidth 1544"

    def test_public_asn_mapped(self, anon):
        line = anon.anonymize_line("router bgp 7018")
        asn = int(line.split()[-1])
        assert asn != 7018
        assert 1 <= asn <= 64511

    def test_public_asn_mapping_consistent(self, anon):
        line_a = anon.anonymize_line("router bgp 7018")
        line_b = anon.anonymize_line(" neighbor 1.2.3.4 remote-as 7018")
        assert line_a.split()[-1] == line_b.split()[-1]

    def test_private_asn_kept(self, anon):
        assert anon.anonymize_line("router bgp 65001") == "router bgp 65001"

    def test_comments_stripped(self, anon):
        assert anon.anonymize_line("! secret location: NYC POP 3") == "!"

    def test_indentation_preserved(self, anon):
        line = anon.anonymize_line("  shutdown")
        assert line == "  shutdown"


class TestStructurePreservation:
    def test_anonymized_fig2_still_parses(self):
        anon = Anonymizer(key=b"s")
        text = anon.anonymize_config(FIG2)
        cfg = parse_config(text)
        assert len(cfg.interfaces) == 3
        assert [p.process_id for p in cfg.ospf_processes] == [64, 128]
        assert cfg.bgp_process is not None
        assert len(cfg.access_lists["143"].rules) == 2
        assert len(cfg.static_routes) == 1

    def test_subnet_relationships_survive(self):
        anon = Anonymizer(key=b"s2")
        text = anon.anonymize_config(
            "interface Ethernet0\n ip address 10.0.0.1 255.255.255.252\n"
        )
        cfg = parse_config(text)
        iface = cfg.interfaces["Ethernet0"]
        assert iface.prefix.length == 30
        assert iface.prefix.contains_address(iface.address)

    def test_route_map_references_stay_consistent(self):
        anon = Anonymizer(key=b"s3")
        text = anon.anonymize_config(
            "router bgp 65000\n redistribute ospf 1 route-map MY-POLICY\n"
            "!\nroute-map MY-POLICY permit 10\n match ip address 7\n"
        )
        cfg = parse_config(text)
        redist_map = cfg.bgp_process.redistributes[0].route_map
        assert redist_map in cfg.route_maps
        assert redist_map != "MY-POLICY"

    def test_same_subnet_interfaces_still_match(self):
        anon = Anonymizer(key=b"s4")
        text_a = anon.anonymize_config(
            "interface Serial0\n ip address 10.9.0.1 255.255.255.252\n"
        )
        text_b = anon.anonymize_config(
            "interface Serial0\n ip address 10.9.0.2 255.255.255.252\n"
        )
        prefix_a = parse_config(text_a).interfaces["Serial0"].prefix
        prefix_b = parse_config(text_b).interfaces["Serial0"].prefix
        assert prefix_a == prefix_b

    def test_line_count_preserved_excluding_comment_text(self):
        anon = Anonymizer(key=b"s5")
        source = "! comment\ninterface Ethernet0\n ip address 10.0.0.1 255.0.0.0\n"
        out = anon.anonymize_config(source)
        assert len(out.splitlines()) == len(source.splitlines())


class TestMappingExport:
    def test_mapping_covers_everything_rewritten(self):
        anon = Anonymizer(key=b"map")
        anon.anonymize_config(
            "hostname secret-core\n"
            "!\ninterface Ethernet0\n ip address 10.1.2.3 255.255.255.0\n"
            "!\nrouter bgp 7018\n"
        )
        mapping = anon.export_mapping()
        assert "secret-core" in mapping["names"]
        assert "7018" in mapping["asns"]
        assert "10.1.2.3" in mapping["addresses"]

    def test_mapping_inverts_the_anonymization(self):
        anon = Anonymizer(key=b"map2")
        out = anon.anonymize_line("hostname secret-core")
        mapping = anon.export_mapping()
        assert out == f"hostname {mapping['names']['secret-core']}"

    def test_mapping_is_not_in_the_output(self):
        anon = Anonymizer(key=b"map3")
        out = anon.anonymize_config("hostname secret-core\n")
        assert "secret-core" not in out

    def test_address_mapping_is_a_public_accessor(self):
        # Regression: export_mapping used to reach into the IP
        # anonymizer's private ``_cache``.
        ip = PrefixPreservingAnonymizer(key=b"acc")
        ip.anonymize("10.1.2.3")
        mapping = ip.mapping()
        assert mapping == {"10.1.2.3": ip.anonymize("10.1.2.3")}
        anon = Anonymizer(key=b"acc")
        anon.anonymize_line(" ip address 10.1.2.3 255.255.255.0")
        assert anon.export_mapping()["addresses"] == anon.ip.mapping()


class TestJunosTokens:
    """Regression: brace-dialect tokens used to be name-hashed whole."""

    @pytest.fixture()
    def anon(self):
        return Anonymizer(key=b"junos")

    def test_prefix_token_keeps_length(self, anon):
        out = anon.anonymize_token("10.0.0.1/24", None)
        addr, _, length = out.partition("/")
        assert length == "24"
        assert addr == anon.ip.anonymize("10.0.0.1")

    def test_prefix_token_with_semicolon(self, anon):
        out = anon.anonymize_token("10.0.0.1/24;", None)
        assert out.endswith("/24;")
        assert out.startswith(anon.ip.anonymize("10.0.0.1"))
        assert "10.0.0.1" not in out

    def test_address_with_semicolon(self, anon):
        out = anon.anonymize_line("address 10.0.0.1;")
        assert out == f"address {anon.ip.anonymize('10.0.0.1')};"

    def test_junos_keywords_kept(self, anon):
        line = "family inet {"
        assert anon.anonymize_line(line) == line
        assert anon.anonymize_line("peer-as 7018;") != "peer-as 7018;"
        assert anon.anonymize_line("term t1 {").startswith("term ")

    def test_peer_as_mapped_consistently_with_ios(self, anon):
        junos = anon.anonymize_line("peer-as 7018;")
        ios = anon.anonymize_line(" neighbor 1.2.3.4 remote-as 7018")
        assert junos.rstrip(";").split()[-1] == ios.split()[-1]

    def test_default_route_prefix_token(self, anon):
        out = anon.anonymize_token("0.0.0.0/0", None)
        assert out.endswith("/0")

    def test_overlong_length_is_not_a_prefix(self, anon):
        # 10.0.0.1/99 is not a valid prefix token; it must hash, not crash.
        out = anon.anonymize_token("10.0.0.1/99", None)
        assert len(out) == 11

    def test_anonymized_junos_config_still_parses(self):
        from repro.model.dialect import parse_any_config

        source = (
            "system {\n    host-name secret-core;\n}\n"
            "interfaces {\n    so-0/0/0 {\n        unit 0 {\n"
            "            family inet {\n                address 10.0.0.1/30;\n"
            "            }\n        }\n    }\n}\n"
            "routing-options {\n    autonomous-system 7018;\n}\n"
        )
        anon = Anonymizer(key=b"junos2")
        out = anon.anonymize_config(source)
        assert "secret-core" not in out
        assert "10.0.0.1" not in out
        cfg = parse_any_config(out)
        iface = next(iter(cfg.interfaces.values()))
        assert iface.prefix.length == 30


class TestAsnCollisions:
    """Regression: digest-mod pseudo-ASNs could silently merge two ASes."""

    @staticmethod
    def _digest_candidate(key: bytes, asn: int) -> int:
        import hashlib

        digest = hashlib.sha1(key + f"as:{asn}".encode("ascii")).digest()
        return int.from_bytes(digest[:4], "big") % 64511 + 1

    def _colliding_pair(self, key: bytes):
        seen = {}
        for asn in range(1, 64512):
            candidate = self._digest_candidate(key, asn)
            if candidate in seen:
                return seen[candidate], asn
            seen[candidate] = asn
        raise AssertionError("no collision in the full 16-bit public range")

    def test_colliding_asns_stay_distinct(self):
        key = b"collide"
        first, second = self._colliding_pair(key)
        anon = Anonymizer(key=key)
        assert anon.map_asn(first) != anon.map_asn(second)

    def test_probed_asn_is_stable(self):
        key = b"collide"
        first, second = self._colliding_pair(key)
        anon = Anonymizer(key=key)
        a1, b1 = anon.map_asn(first), anon.map_asn(second)
        assert (anon.map_asn(first), anon.map_asn(second)) == (a1, b1)

    def test_pseudo_asn_never_private(self):
        anon = Anonymizer(key=b"pool")
        for asn in (1, 7018, 64511, 65536, 4200000000):
            assert 1 <= anon.map_asn(asn) <= 64511

    @given(st.sets(st.integers(min_value=1, max_value=64511), max_size=40))
    def test_distinct_public_asns_never_merge(self, asns):
        anon = Anonymizer(key=b"merge")
        mapped = {anon.map_asn(asn) for asn in asns}
        assert len(mapped) == len(asns)


class TestLineContract:
    """Regression: anonymize_line was typed Optional but never returned
    None, leaving dead filtering in anonymize_config."""

    def test_comment_lines_return_separator_not_none(self):
        anon = Anonymizer(key=b"c")
        out = anon.anonymize_line("! top secret")
        assert isinstance(out, str)
        assert out == "!"

    def test_return_annotation_is_not_optional(self):
        import typing

        hints = typing.get_type_hints(Anonymizer.anonymize_line)
        assert hints["return"] is str

    def test_every_line_survives(self):
        anon = Anonymizer(key=b"c2")
        source = "! a\n\n!\nhostname x\n"
        assert len(anon.anonymize_config(source).splitlines()) == 4


class TestClassPreservation:
    """The classful class of an address survives anonymization, so bare
    ``network`` statements recover the same prefix length on both sides."""

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_class_preserved(self, value):
        from repro.net.prefix import classful_prefix

        a = PrefixPreservingAnonymizer(key=b"class")
        assert (
            classful_prefix(a.anonymize_int(value)).length
            == classful_prefix(value).length
        )

    def test_bare_network_statement_coverage_survives(self):
        anon = Anonymizer(key=b"class2")
        source = (
            "interface Ethernet0\n ip address 172.16.1.1 255.255.255.0\n"
            "!\nrouter rip\n network 172.16.0.0\n"
        )
        out = anon.anonymize_config(source)
        cfg = parse_config(out)
        prefix = cfg.routing_processes()[0].networks[0].prefix()
        assert prefix.length == 16  # class B either side
        assert prefix.contains_address(cfg.interfaces["Ethernet0"].address)
