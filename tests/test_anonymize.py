"""Anonymizer tests (§4.1): token rules, prefix preservation, structure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.anonymize import Anonymizer, PrefixPreservingAnonymizer
from repro.ios import parse_config
from repro.net.ipv4 import parse_ipv4

from tests.test_ios_parser import FIG2


class TestPrefixPreservingIP:
    def test_deterministic(self):
        a = PrefixPreservingAnonymizer(key=b"k")
        assert a.anonymize("10.1.2.3") == a.anonymize("10.1.2.3")

    def test_key_changes_mapping(self):
        a = PrefixPreservingAnonymizer(key=b"k1")
        b = PrefixPreservingAnonymizer(key=b"k2")
        assert a.anonymize("10.1.2.3") != b.anonymize("10.1.2.3")

    def test_not_identity(self):
        a = PrefixPreservingAnonymizer(key=b"k")
        outputs = {a.anonymize(f"10.0.0.{i}") for i in range(16)}
        assert outputs != {f"10.0.0.{i}" for i in range(16)}

    @staticmethod
    def _common_prefix_len(x: int, y: int) -> int:
        for bit in range(32):
            if (x >> (31 - bit)) != (y >> (31 - bit)):
                return bit
        return 32

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_prefix_preservation_property(self, x, y):
        a = PrefixPreservingAnonymizer(key=b"prop")
        ax, ay = a.anonymize_int(x), a.anonymize_int(y)
        assert self._common_prefix_len(x, y) == self._common_prefix_len(ax, ay)

    def test_bijective_on_sample(self):
        a = PrefixPreservingAnonymizer(key=b"k")
        inputs = [parse_ipv4(f"10.{i}.{j}.1") for i in range(8) for j in range(8)]
        outputs = {a.anonymize_int(v) for v in inputs}
        assert len(outputs) == len(inputs)


class TestTokenRules:
    @pytest.fixture()
    def anon(self):
        return Anonymizer(key=b"test")

    def test_keywords_kept(self, anon):
        line = anon.anonymize_line("router ospf 64")
        assert line == "router ospf 64"

    def test_interface_names_kept(self, anon):
        assert anon.anonymize_token("Serial1/0.5", None) == "Serial1/0.5"
        assert anon.anonymize_token("FastEthernet0/1", None) == "FastEthernet0/1"

    def test_unknown_names_hashed(self, anon):
        hashed = anon.anonymize_token("CUSTOMER-EDGE-NYC", None)
        assert hashed != "CUSTOMER-EDGE-NYC"
        assert len(hashed) == 11

    def test_hashing_deterministic(self, anon):
        assert anon.hash_name("foo") == anon.hash_name("foo")
        assert anon.hash_name("foo") != anon.hash_name("bar")

    def test_netmasks_not_anonymized(self, anon):
        line = anon.anonymize_line(" ip address 10.1.2.3 255.255.255.252")
        assert "255.255.255.252" in line
        assert "10.1.2.3" not in line

    def test_wildcards_not_anonymized(self, anon):
        line = anon.anonymize_line(" network 10.1.2.0 0.0.0.255 area 0")
        assert "0.0.0.255" in line
        assert "area 0" in line

    def test_plain_integers_kept(self, anon):
        assert anon.anonymize_line(" bandwidth 1544") == " bandwidth 1544"

    def test_public_asn_mapped(self, anon):
        line = anon.anonymize_line("router bgp 7018")
        asn = int(line.split()[-1])
        assert asn != 7018
        assert 1 <= asn <= 64511

    def test_public_asn_mapping_consistent(self, anon):
        line_a = anon.anonymize_line("router bgp 7018")
        line_b = anon.anonymize_line(" neighbor 1.2.3.4 remote-as 7018")
        assert line_a.split()[-1] == line_b.split()[-1]

    def test_private_asn_kept(self, anon):
        assert anon.anonymize_line("router bgp 65001") == "router bgp 65001"

    def test_comments_stripped(self, anon):
        assert anon.anonymize_line("! secret location: NYC POP 3") == "!"

    def test_indentation_preserved(self, anon):
        line = anon.anonymize_line("  shutdown")
        assert line == "  shutdown"


class TestStructurePreservation:
    def test_anonymized_fig2_still_parses(self):
        anon = Anonymizer(key=b"s")
        text = anon.anonymize_config(FIG2)
        cfg = parse_config(text)
        assert len(cfg.interfaces) == 3
        assert [p.process_id for p in cfg.ospf_processes] == [64, 128]
        assert cfg.bgp_process is not None
        assert len(cfg.access_lists["143"].rules) == 2
        assert len(cfg.static_routes) == 1

    def test_subnet_relationships_survive(self):
        anon = Anonymizer(key=b"s2")
        text = anon.anonymize_config(
            "interface Ethernet0\n ip address 10.0.0.1 255.255.255.252\n"
        )
        cfg = parse_config(text)
        iface = cfg.interfaces["Ethernet0"]
        assert iface.prefix.length == 30
        assert iface.prefix.contains_address(iface.address)

    def test_route_map_references_stay_consistent(self):
        anon = Anonymizer(key=b"s3")
        text = anon.anonymize_config(
            "router bgp 65000\n redistribute ospf 1 route-map MY-POLICY\n"
            "!\nroute-map MY-POLICY permit 10\n match ip address 7\n"
        )
        cfg = parse_config(text)
        redist_map = cfg.bgp_process.redistributes[0].route_map
        assert redist_map in cfg.route_maps
        assert redist_map != "MY-POLICY"

    def test_same_subnet_interfaces_still_match(self):
        anon = Anonymizer(key=b"s4")
        text_a = anon.anonymize_config(
            "interface Serial0\n ip address 10.9.0.1 255.255.255.252\n"
        )
        text_b = anon.anonymize_config(
            "interface Serial0\n ip address 10.9.0.2 255.255.255.252\n"
        )
        prefix_a = parse_config(text_a).interfaces["Serial0"].prefix
        prefix_b = parse_config(text_b).interfaces["Serial0"].prefix
        assert prefix_a == prefix_b

    def test_line_count_preserved_excluding_comment_text(self):
        anon = Anonymizer(key=b"s5")
        source = "! comment\ninterface Ethernet0\n ip address 10.0.0.1 255.0.0.0\n"
        out = anon.anonymize_config(source)
        assert len(out.splitlines()) == len(source.splitlines())


class TestMappingExport:
    def test_mapping_covers_everything_rewritten(self):
        anon = Anonymizer(key=b"map")
        anon.anonymize_config(
            "hostname secret-core\n"
            "!\ninterface Ethernet0\n ip address 10.1.2.3 255.255.255.0\n"
            "!\nrouter bgp 7018\n"
        )
        mapping = anon.export_mapping()
        assert "secret-core" in mapping["names"]
        assert "7018" in mapping["asns"]
        assert "10.1.2.3" in mapping["addresses"]

    def test_mapping_inverts_the_anonymization(self):
        anon = Anonymizer(key=b"map2")
        out = anon.anonymize_line("hostname secret-core")
        mapping = anon.export_mapping()
        assert out == f"hostname {mapping['names']['secret-core']}"

    def test_mapping_is_not_in_the_output(self):
        anon = Anonymizer(key=b"map3")
        out = anon.anonymize_config("hostname secret-core\n")
        assert "secret-core" not in out
