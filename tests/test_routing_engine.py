"""Control-plane simulation tests."""

import pytest

from repro.model import Network
from repro.net import Prefix
from repro.routing import RoutingSimulation


def simulate(configs, **kw):
    net = Network.from_configs(configs)
    return RoutingSimulation(net, **kw).run()


CHAIN = {
    # r1 --- r2 --- r3, one OSPF instance, LANs on r1 and r3.
    "r1": (
        "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
        "!\ninterface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n"
        "!\nrouter ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
        " network 10.1.0.0 0.0.0.255 area 0\n"
    ),
    "r2": (
        "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
        "!\ninterface Serial1\n ip address 10.0.0.5 255.255.255.252\n"
        "!\nrouter ospf 1\n network 10.0.0.0 0.0.0.7 area 0\n"
    ),
    "r3": (
        "interface Serial0\n ip address 10.0.0.6 255.255.255.252\n"
        "!\ninterface Ethernet0\n ip address 10.3.0.1 255.255.255.0\n"
        "!\nrouter ospf 1\n network 10.0.0.4 0.0.0.3 area 0\n"
        " network 10.3.0.0 0.0.0.255 area 0\n"
    ),
}


class TestIgpPropagation:
    def test_remote_lan_learned(self):
        sim = simulate(CHAIN)
        route = sim.lookup("r1", "10.3.0.50")
        assert route is not None
        assert route.protocol == "ospf"

    def test_metric_counts_hops(self):
        sim = simulate(CHAIN)
        route = sim.lookup("r1", "10.3.0.50")
        assert route.metric == 2  # r3 -> r2 -> r1

    def test_connected_beats_igp(self):
        sim = simulate(CHAIN)
        route = sim.lookup("r1", "10.1.0.5")
        assert route.protocol == "connected"

    def test_trace_follows_chain(self):
        sim = simulate(CHAIN)
        assert sim.trace("r1", "10.3.0.50") == ["r1", "r2", "r3"]

    def test_process_route_count(self):
        sim = simulate(CHAIN)
        count = sim.process_route_count(("r2", "ospf", 1))
        # r2's OSPF carries both p2p subnets plus both LANs.
        assert count == 4

    def test_reachable_destinations_sorted(self):
        sim = simulate(CHAIN)
        dests = sim.reachable_destinations("r1")
        assert dests == sorted(dests)
        assert Prefix("10.3.0.0/24") in dests

    def test_requires_run(self):
        net = Network.from_configs(CHAIN)
        sim = RoutingSimulation(net)
        with pytest.raises(RuntimeError):
            sim.lookup("r1", "10.3.0.50")


class TestFailures:
    def test_router_failure_cuts_path(self):
        sim = simulate(CHAIN, failed_routers=["r2"])
        assert not sim.can_reach("r1", "10.3.0.50")

    def test_link_failure_cuts_path(self):
        sim = simulate(CHAIN, failed_subnets=["10.0.0.4/30"])
        assert not sim.can_reach("r1", "10.3.0.50")
        assert sim.can_reach("r1", "10.0.0.2")  # first hop still up

    def test_no_failures_baseline(self):
        sim = simulate(CHAIN)
        assert sim.can_reach("r1", "10.3.0.50")


class TestFailureValidation:
    def test_unknown_router_rejected_with_near_miss(self):
        net = Network.from_configs(CHAIN)
        with pytest.raises(ValueError) as exc:
            RoutingSimulation(net, failed_routers=["r22"])
        assert "r22" in str(exc.value)
        assert "r2" in str(exc.value)  # the near-miss is suggested

    def test_unknown_subnet_rejected_with_overlap_hint(self):
        net = Network.from_configs(CHAIN)
        with pytest.raises(ValueError) as exc:
            RoutingSimulation(net, failed_subnets=["10.0.0.0/24"])
        message = str(exc.value)
        assert "10.0.0.0/24" in message
        assert "10.0.0.0/30" in message  # overlapping real link subnet

    def test_unknown_subnet_without_overlap_still_named(self):
        net = Network.from_configs(CHAIN)
        with pytest.raises(ValueError, match="192.168.0.0/24"):
            RoutingSimulation(net, failed_subnets=["192.168.0.0/24"])

    def test_interface_prefix_is_a_valid_failure_target(self):
        # The r1 LAN matches no link (single-router subnet) but is a
        # real interface prefix: failing it must be accepted.
        sim = simulate(CHAIN, failed_subnets=["10.1.0.0/24"])
        assert not sim.can_reach("r3", "10.1.0.50")

    def test_validate_false_skips_the_check(self):
        net = Network.from_configs(CHAIN)
        sim = RoutingSimulation(net, failed_routers=["ghost"], validate=False)
        assert sim.run().can_reach("r1", "10.3.0.50")


class TestDivergenceHandling:
    def test_default_raises_on_divergence(self):
        net = Network.from_configs(CHAIN)
        with pytest.raises(RuntimeError, match="no convergence"):
            RoutingSimulation(net).run(max_iterations=1)

    def test_degrade_mode_returns_partial_result(self):
        net = Network.from_configs(CHAIN)
        sim = RoutingSimulation(net).run(max_iterations=1, on_divergence="degrade")
        assert sim.diverged and not sim.converged
        # Queries work on the partial RIBs instead of raising.
        assert sim.lookup("r1", "10.1.0.5") is not None

    def test_converged_run_reports_converged(self):
        sim = simulate(CHAIN)
        assert sim.converged and not sim.diverged

    def test_unknown_policy_rejected(self):
        net = Network.from_configs(CHAIN)
        with pytest.raises(ValueError, match="on_divergence"):
            RoutingSimulation(net).run(on_divergence="explode")


class TestStaticAndRedistribution:
    def test_static_route_in_rib(self):
        configs = dict(CHAIN)
        configs["r1"] += "ip route 99.0.0.0 255.0.0.0 10.0.0.2\n"
        sim = simulate(configs)
        assert sim.lookup("r1", "99.1.2.3").protocol == "static"

    def test_redistribute_static_spreads(self):
        configs = dict(CHAIN)
        configs["r1"] = configs["r1"].replace(
            "router ospf 1\n",
            "router ospf 1\n redistribute static subnets\n",
        ) + "ip route 99.0.0.0 255.0.0.0 10.0.0.2\n"
        sim = simulate(configs)
        route = sim.lookup("r3", "99.1.2.3")
        assert route is not None
        assert route.protocol == "ospf"
        assert route.redistributed

    def test_redistribution_route_map_tag(self):
        configs = dict(CHAIN)
        configs["r1"] = (
            configs["r1"].replace(
                "router ospf 1\n",
                "router ospf 1\n redistribute static route-map T subnets\n",
            )
            + "ip route 99.0.0.0 255.0.0.0 10.0.0.2\n"
            + "route-map T permit 10\n set tag 42\n"
        )
        sim = simulate(configs)
        assert sim.lookup("r3", "99.1.2.3").tag == 42

    def test_distribute_list_out_filters(self):
        configs = dict(CHAIN)
        configs["r3"] = configs["r3"].replace(
            "router ospf 1\n",
            "router ospf 1\n distribute-list 9 out\n",
        ) + "access-list 9 deny 10.3.0.0 0.0.0.255\naccess-list 9 permit any\n"
        sim = simulate(configs)
        assert not sim.can_reach("r1", "10.3.0.50")


BGP_PAIR = {
    "a": (
        "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
        "!\nrouter bgp 65001\n network 20.0.0.0 mask 255.0.0.0\n"
        " neighbor 10.0.0.2 remote-as 65002\n"
    ),
    "b": (
        "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
        "!\nrouter bgp 65002\n neighbor 10.0.0.1 remote-as 65001\n"
    ),
}


class TestBgp:
    def test_ebgp_exchange_and_as_path(self):
        sim = simulate(BGP_PAIR)
        route = sim.lookup("b", "20.1.2.3")
        assert route is not None
        assert route.as_path == (65001,)
        assert route.admin_distance == 20

    def test_as_path_loop_prevention(self):
        configs = dict(BGP_PAIR)
        # a third router in AS 65001 peering with b would reject the route.
        configs["c"] = (
            "interface Serial0\n ip address 10.0.0.5 255.255.255.252\n"
            "!\nrouter bgp 65001\n neighbor 10.0.0.6 remote-as 65002\n"
        )
        configs["b"] = (
            "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
            "!\ninterface Serial1\n ip address 10.0.0.6 255.255.255.252\n"
            "!\nrouter bgp 65002\n neighbor 10.0.0.1 remote-as 65001\n"
            " neighbor 10.0.0.5 remote-as 65001\n"
        )
        sim = simulate(configs)
        assert not sim.can_reach("c", "20.1.2.3")

    def test_ibgp_no_readvertisement(self):
        # x -ebgp- y -ibgp- z -ibgp- w: w must NOT learn x's route via z.
        configs = {
            "x": (
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
                "!\nrouter bgp 65001\n network 20.0.0.0 mask 255.0.0.0\n"
                " neighbor 10.0.0.2 remote-as 65002\n"
            ),
            "y": (
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
                "!\ninterface Serial1\n ip address 10.0.0.5 255.255.255.252\n"
                "!\nrouter bgp 65002\n neighbor 10.0.0.1 remote-as 65001\n"
                " neighbor 10.0.0.6 remote-as 65002\n"
            ),
            "z": (
                "interface Serial0\n ip address 10.0.0.6 255.255.255.252\n"
                "!\ninterface Serial1\n ip address 10.0.0.9 255.255.255.252\n"
                "!\nrouter bgp 65002\n neighbor 10.0.0.5 remote-as 65002\n"
                " neighbor 10.0.0.10 remote-as 65002\n"
            ),
            "w": (
                "interface Serial0\n ip address 10.0.0.10 255.255.255.252\n"
                "!\nrouter bgp 65002\n neighbor 10.0.0.9 remote-as 65002\n"
            ),
        }
        sim = simulate(configs)
        assert sim.can_reach("z", "20.1.2.3")  # one IBGP hop: fine
        assert not sim.can_reach("w", "20.1.2.3")  # two hops: full-mesh rule

    def test_neighbor_distribute_list_in(self):
        configs = dict(BGP_PAIR)
        configs["b"] = configs["b"].replace(
            " neighbor 10.0.0.1 remote-as 65001\n",
            " neighbor 10.0.0.1 remote-as 65001\n"
            " neighbor 10.0.0.1 distribute-list 7 in\n",
        ) + "access-list 7 deny 20.0.0.0 0.255.255.255\naccess-list 7 permit any\n"
        sim = simulate(configs)
        assert not sim.can_reach("b", "20.1.2.3")

    def test_convergence_is_reported(self):
        sim = simulate(BGP_PAIR)
        assert sim.iterations >= 1


class TestFullTemplatesConverge:
    def test_enterprise_simulation(self, enterprise_net):
        net, _spec = enterprise_net
        sim = RoutingSimulation(net).run()
        # Every interior router learns a route toward the hub LAN.
        interior = sorted(r for r in net.routers if "-r" in r)
        lan = net.routers[interior[0]].config.interfaces["FastEthernet0/0"].prefix
        other = interior[-1]
        assert sim.can_reach(other, lan.network + 1)

    def test_fig1_example_simulation(self, fig1):
        net, _meta = fig1
        sim = RoutingSimulation(net).run()
        # R1 (enterprise interior) reaches R3's LAN over OSPF.
        r3_lan = net.routers["R3"].config.interfaces["Ethernet0/0"].prefix
        assert sim.can_reach("R1", r3_lan.network + 1)


class TestRouteReflection:
    """RFC 4456 reflection: clients learn through the RR, and the plain
    full-mesh rule still blocks multi-hop IBGP without a reflector."""

    RR_TOPOLOGY = {
        # ext -ebgp- client1 -ibgp- rr -ibgp- client2
        "ext": (
            "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
            "!\nrouter bgp 64900\n network 20.0.0.0 mask 255.0.0.0\n"
            " neighbor 10.0.0.2 remote-as 65002\n"
        ),
        "client1": (
            "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
            "!\ninterface Serial1\n ip address 10.0.0.5 255.255.255.252\n"
            "!\nrouter bgp 65002\n neighbor 10.0.0.1 remote-as 64900\n"
            " neighbor 10.0.0.6 remote-as 65002\n"
        ),
        "rr": (
            "interface Serial0\n ip address 10.0.0.6 255.255.255.252\n"
            "!\ninterface Serial1\n ip address 10.0.0.9 255.255.255.252\n"
            "!\nrouter bgp 65002\n"
            " neighbor 10.0.0.5 remote-as 65002\n"
            " neighbor 10.0.0.5 route-reflector-client\n"
            " neighbor 10.0.0.10 remote-as 65002\n"
            " neighbor 10.0.0.10 route-reflector-client\n"
        ),
        "client2": (
            "interface Serial0\n ip address 10.0.0.10 255.255.255.252\n"
            "!\nrouter bgp 65002\n neighbor 10.0.0.9 remote-as 65002\n"
        ),
    }

    def test_client_learns_through_reflector(self):
        sim = simulate(self.RR_TOPOLOGY)
        route = sim.lookup("client2", "20.1.2.3")
        assert route is not None
        assert route.via_ibgp

    def test_reflector_itself_learns(self):
        sim = simulate(self.RR_TOPOLOGY)
        assert sim.can_reach("rr", "20.1.2.3")

    def test_without_client_flag_route_stops_at_rr(self):
        flat = {
            name: text.replace(" neighbor 10.0.0.5 route-reflector-client\n", "")
            .replace(" neighbor 10.0.0.10 route-reflector-client\n", "")
            for name, text in self.RR_TOPOLOGY.items()
        }
        sim = simulate(flat)
        assert sim.can_reach("rr", "20.1.2.3")
        assert not sim.can_reach("client2", "20.1.2.3")

    def test_backbone_template_distributes_external_routes(self):
        """The RR-based backbone design actually works in simulation:
        every router's RIB holds the externally announced prefix."""
        from repro.synth.templates.backbone import build_backbone

        configs, _spec = build_backbone("bbs", 8, 12, seed=3, pop_size=4)
        net = Network.from_configs(configs)
        # Inject a route at one border by announcing it over EBGP: simulate
        # with the border's BGP originating its network statement, which
        # the template already configures.
        sim = RoutingSimulation(net).run()
        announced = next(
            stmt.prefix()
            for router in net.routers.values()
            if router.config.bgp_process
            for stmt in router.config.bgp_process.networks
        )
        reached = sum(
            1 for name in net.routers if sim.can_reach(name, announced.network + 1)
        )
        assert reached == len(net.routers)


class TestInterfaceDistributeLists:
    """Per-interface distribute-lists (the paper configlet's
    'distribute-list 44 in Serial1/0.5')."""

    def make(self, iface_qualifier):
        configs = dict(CHAIN)
        # Filter r1's inbound OSPF routes on its Serial0 only.
        configs["r1"] = configs["r1"].replace(
            "router ospf 1\n",
            f"router ospf 1\n distribute-list 44 in{iface_qualifier}\n",
        ) + (
            "access-list 44 deny 10.3.0.0 0.0.0.255\n"
            "access-list 44 permit any\n"
        )
        return configs

    def test_filter_on_the_adjacency_interface_applies(self):
        sim = simulate(self.make(" Serial0"))
        assert not sim.can_reach("r1", "10.3.0.50")

    def test_filter_on_another_interface_does_not_apply(self):
        sim = simulate(self.make(" Ethernet0"))
        assert sim.can_reach("r1", "10.3.0.50")

    def test_unqualified_filter_applies_everywhere(self):
        sim = simulate(self.make(""))
        assert not sim.can_reach("r1", "10.3.0.50")


class TestLocalPreference:
    """BGP LOCAL_PREF in the decision process: higher wins within BGP,
    set by inbound route maps, never carried across EBGP."""

    def topology(self):
        # b peers with two upstreams (x preferred via local-pref 200).
        return {
            "x": (
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
                "!\nrouter bgp 65001\n network 20.0.0.0 mask 255.0.0.0\n"
                " neighbor 10.0.0.2 remote-as 65002\n"
            ),
            "y": (
                "interface Serial0\n ip address 10.0.0.5 255.255.255.252\n"
                "!\nrouter bgp 65003\n network 20.0.0.0 mask 255.0.0.0\n"
                " neighbor 10.0.0.6 remote-as 65002\n"
            ),
            "b": (
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
                "!\ninterface Serial1\n ip address 10.0.0.6 255.255.255.252\n"
                "!\nrouter bgp 65002\n"
                " neighbor 10.0.0.1 remote-as 65001\n"
                " neighbor 10.0.0.1 route-map PREFER in\n"
                " neighbor 10.0.0.5 remote-as 65003\n"
                "!\nroute-map PREFER permit 10\n set local-preference 200\n"
            ),
        }

    def test_higher_local_pref_wins(self):
        sim = simulate(self.topology())
        route = sim.lookup("b", "20.1.1.1")
        assert route.local_pref == 200
        assert route.as_path == (65001,)

    def test_without_policy_both_equal(self):
        configs = self.topology()
        configs["b"] = configs["b"].replace(
            " neighbor 10.0.0.1 route-map PREFER in\n", ""
        )
        sim = simulate(configs)
        route = sim.lookup("b", "20.1.1.1")
        assert route.local_pref == 100

    def test_local_pref_not_exported_over_ebgp(self):
        configs = self.topology()
        # Add a downstream EBGP customer of b.
        configs["c"] = (
            "interface Serial0\n ip address 10.0.0.9 255.255.255.252\n"
            "!\nrouter bgp 65004\n neighbor 10.0.0.10 remote-as 65002\n"
        )
        configs["b"] = configs["b"].replace(
            "router bgp 65002\n",
            "router bgp 65002\n neighbor 10.0.0.9 remote-as 65004\n",
        ).replace(
            "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n",
            "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
            "!\ninterface Serial2\n ip address 10.0.0.10 255.255.255.252\n",
        )
        sim = simulate(configs)
        route = sim.lookup("c", "20.1.1.1")
        assert route is not None
        assert route.local_pref == 100


class TestOspfCosts:
    """OSPF interface costs derive from bandwidth (ref 100 Mbit)."""

    def test_bandwidth_changes_metric(self):
        configs = dict(CHAIN)
        # r1's Serial0 is a T1: cost 100000/1544 = 64.
        configs["r1"] = configs["r1"].replace(
            "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n",
            "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
            " bandwidth 1544\n",
        )
        sim = simulate(configs)
        route = sim.lookup("r1", "10.3.0.50")
        # Last hop into r1 costs 64 instead of 1; r2's hop stays 1.
        assert route.metric == 64 + 1

    def test_default_remains_hop_count(self):
        sim = simulate(CHAIN)
        assert sim.lookup("r1", "10.3.0.50").metric == 2

    def test_cost_steers_path_choice(self):
        # Square: r1-r2-r4 (fast) vs r1-r3-r4 (slow serial on r1<-r3 path).
        configs = {
            "r1": (
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
                "!\ninterface Serial1\n ip address 10.0.0.5 255.255.255.252\n"
                " bandwidth 64\n"
                "!\nrouter ospf 1\n network 10.0.0.0 0.0.0.7 area 0\n"
            ),
            "r2": (
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
                "!\ninterface Serial1\n ip address 10.0.0.9 255.255.255.252\n"
                "!\nrouter ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
                " network 10.0.0.8 0.0.0.3 area 0\n"
            ),
            "r3": (
                "interface Serial0\n ip address 10.0.0.6 255.255.255.252\n"
                "!\ninterface Serial1\n ip address 10.0.0.13 255.255.255.252\n"
                "!\nrouter ospf 1\n network 10.0.0.4 0.0.0.3 area 0\n"
                " network 10.0.0.12 0.0.0.3 area 0\n"
            ),
            "r4": (
                "interface Serial0\n ip address 10.0.0.10 255.255.255.252\n"
                "!\ninterface Serial1\n ip address 10.0.0.14 255.255.255.252\n"
                "!\ninterface Ethernet0\n ip address 10.4.0.1 255.255.255.0\n"
                "!\nrouter ospf 1\n network 10.0.0.8 0.0.0.7 area 0\n"
                " network 10.4.0.0 0.0.0.255 area 0\n"
            ),
        }
        sim = simulate(configs)
        assert sim.trace("r1", "10.4.0.9") == ["r1", "r2", "r4"]


class TestDefaultInformationOriginate:
    def test_default_floods_through_ospf(self):
        configs = dict(CHAIN)
        configs["r1"] = configs["r1"].replace(
            "router ospf 1\n",
            "router ospf 1\n default-information originate\n",
        )
        sim = simulate(configs)
        route = sim.lookup("r3", "99.99.99.99")  # only the default matches
        assert route is not None
        assert route.prefix == Prefix("0.0.0.0/0")
        assert route.protocol == "ospf"

    def test_no_default_without_origination(self):
        sim = simulate(CHAIN)
        assert not sim.can_reach("r3", "99.99.99.99")


class TestSummaryAddress:
    """OSPF summary-address collapses redistributed routes (the enterprise
    "craft a small number of key routes" move of §3.1)."""

    def topology(self, with_summary: bool):
        summary = " summary-address 99.0.0.0 255.0.0.0\n" if with_summary else ""
        configs = dict(CHAIN)
        configs["r1"] = (
            configs["r1"].replace(
                "router ospf 1\n",
                "router ospf 1\n redistribute static subnets\n" + summary,
            )
            + "ip route 99.1.0.0 255.255.0.0 10.0.0.2\n"
            + "ip route 99.2.0.0 255.255.0.0 10.0.0.2\n"
            + "ip route 99.3.0.0 255.255.0.0 10.0.0.2\n"
        )
        return configs

    def test_summary_collapses_specifics(self):
        sim = simulate(self.topology(with_summary=True))
        rib = sim.process_ribs[("r3", "ospf", 1)]
        assert Prefix("99.0.0.0/8") in rib
        assert Prefix("99.1.0.0/16") not in rib
        assert sim.can_reach("r3", "99.2.5.5")

    def test_without_summary_specifics_flood(self):
        sim = simulate(self.topology(with_summary=False))
        rib = sim.process_ribs[("r3", "ospf", 1)]
        assert Prefix("99.1.0.0/16") in rib
        assert Prefix("99.0.0.0/8") not in rib

    def test_roundtrip(self):
        from repro.ios import parse_config, serialize_config

        text = "router ospf 1\n summary-address 99.0.0.0 255.0.0.0\n"
        first = parse_config(text)
        second = parse_config(serialize_config(first))
        assert first.ospf_processes == second.ospf_processes


class TestEdgeCases:
    def test_shutdown_interface_originates_nothing(self):
        configs = dict(CHAIN)
        configs["r3"] = configs["r3"].replace(
            "interface Ethernet0\n ip address 10.3.0.1 255.255.255.0\n",
            "interface Ethernet0\n ip address 10.3.0.1 255.255.255.0\n shutdown\n",
        )
        sim = simulate(configs)
        assert not sim.can_reach("r1", "10.3.0.50")

    def test_longest_prefix_match(self):
        configs = dict(CHAIN)
        configs["r1"] += (
            "ip route 10.3.0.0 255.255.255.128 10.0.0.2\n"
            "ip route 10.3.0.0 255.255.255.0 10.0.0.2\n"
        )
        net = Network.from_configs(configs)
        sim = RoutingSimulation(net).run()
        route = sim.lookup("r1", "10.3.0.5")
        assert route.prefix == Prefix("10.3.0.0/25")

    def test_failed_router_has_no_rib(self):
        sim = simulate(CHAIN, failed_routers=["r3"])
        assert sim.router_rib("r3") == {}
        assert sim.reachable_destinations("r3") == []

    def test_lookup_unknown_router(self):
        sim = simulate(CHAIN)
        assert sim.lookup("ghost", "10.0.0.1") is None

    def test_trace_stops_on_loop_or_dead_end(self):
        sim = simulate(CHAIN, failed_subnets=["10.0.0.4/30"])
        path = sim.trace("r1", "10.3.0.50")
        assert path[0] == "r1"
        assert len(path) <= 3

    def test_static_route_beats_igp(self):
        configs = dict(CHAIN)
        # r1 statically routes r3's LAN somewhere else: AD 1 beats OSPF 110.
        configs["r1"] += "ip route 10.3.0.0 255.255.255.0 10.0.0.2\n"
        sim = simulate(configs)
        assert sim.lookup("r1", "10.3.0.50").protocol == "static"

    def test_connected_subnet_always_present(self):
        sim = simulate(CHAIN)
        for router in CHAIN:
            rib = sim.router_rib(router)
            assert any(r.protocol == "connected" for r in rib.values())
