"""The serve daemon end to end: incremental recompute, graceful
degradation under chaos, warm kill-9 recovery, signal-driven drain.

The acceptance gate lives here: for any sequence of corpus edits, the
daemon's published generation must normalize **byte-identical** to a
cold one-shot run over the final corpus state — across plain edits, a
chaos-crashed generation, and a kill-then-restart warm recovery — and
an incremental generation after a 1-file edit must re-parse exactly one
file.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.exec.chaos import CHAOS_ENV, ChaosPlan
from repro.exec.checkpoint import CheckpointStore
from repro.exec.executor import AnalysisExecutor, ExecutorConfig
from repro.ingest.cache import ParseCache
from repro.ingest.snapshot import snapshot_corpus
from repro.serve import ServeConfig, ServeDaemon
from repro.serve.generation import normalize_generation, run_generation
from repro.synth.templates.example_fig1 import build_example_networks

POLL = 0.05
WAIT = 30.0


def write_corpus(root) -> None:
    os.makedirs(root, exist_ok=True)
    configs, _meta = build_example_networks()
    for name, text in sorted(configs.items()):
        with open(os.path.join(root, name), "w") as handle:
            handle.write(text)


def edit_file(corpus: str, index: int = 0, marker: str = "edit") -> str:
    name = sorted(os.listdir(corpus))[index]
    with open(os.path.join(corpus, name), "a") as handle:
        handle.write(f"! serve-test {marker}\n")
    return name


def wait_for(predicate, what: str, timeout: float = WAIT) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {what}")


def cold_normalized(corpus: str) -> str:
    """A cold one-shot run over the corpus: no cache, no checkpoints."""
    executor = AnalysisExecutor(ExecutorConfig(chaos=ChaosPlan()))
    digest = snapshot_corpus(corpus).digest
    outcome = run_generation(corpus, digest, executor=executor, cache=None)
    assert outcome.complete, outcome.error
    return json.dumps(normalize_generation(outcome.payload), sort_keys=True)


def served_normalized(daemon: ServeDaemon) -> str:
    payload = daemon.state.published
    assert payload is not None
    return json.dumps(normalize_generation(payload), sort_keys=True)


@pytest.fixture()
def corpus(tmp_path):
    root = str(tmp_path / "corpus")
    write_corpus(root)
    return root


@pytest.fixture()
def stores(tmp_path):
    return {
        "cache": ParseCache(root=str(tmp_path / "cache")),
        "checkpoints": CheckpointStore(root=str(tmp_path / "ckpt")),
    }


def make_daemon(corpus, stores, **overrides) -> ServeDaemon:
    config = ServeConfig(
        corpus=corpus,
        poll_interval=POLL,
        cache=stores["cache"],
        checkpoints=stores["checkpoints"],
        backoff=0.05,
        max_backoff=0.2,
        grace=5.0,
        **overrides,
    )
    return ServeDaemon(config)


def get(daemon: ServeDaemon, path: str):
    try:
        with urllib.request.urlopen(daemon.http.url + path, timeout=5) as r:
            return r.status, json.loads(r.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestLifecycle:
    def test_serves_increments_and_matches_cold(self, corpus, stores):
        daemon = make_daemon(corpus, stores)
        daemon.start()
        try:
            # Liveness before readiness.
            assert get(daemon, "/health")[0] == 200
            wait_for(lambda: daemon.state.ready, "first generation")
            assert get(daemon, "/ready")[0] == 200
            code, manifest = get(daemon, "/manifest")
            assert manifest["dispositions"]["parsed"] == 6

            # Edit one file: the next generation re-parses exactly 1 file.
            edit_file(corpus, 0, "gen2")
            wait_for(lambda: daemon.state.generation >= 2, "generation 2")
            _code, manifest = get(daemon, "/manifest")
            assert manifest["dispositions"]["parsed"] == 1
            assert manifest["dispositions"]["cached"] == 5

            # A second edit sequence: remove a file, add a file.
            os.remove(os.path.join(corpus, sorted(os.listdir(corpus))[1]))
            wait_for(lambda: daemon.state.generation >= 3, "generation 3")

            # Equivalence gate: the published generation is byte-identical
            # (normalized) to a cold one-shot run over the final corpus.
            assert served_normalized(daemon) == cold_normalized(corpus)

            # The published diff names the removed file.
            diff = daemon.state.published["diff"]
            assert len(diff["removed"]) == 1

            status = get(daemon, "/status")[1]
            assert status["health"] == "ok"
            assert status["staleness"]["serving_current_corpus"] is True
            counters = get(daemon, "/metrics")[1]["counters"]
            assert counters["serve.generations.published"] >= 3
        finally:
            daemon.shutdown()
            daemon.drain()

    def test_http_surface_routes(self, corpus, stores):
        daemon = make_daemon(corpus, stores)
        daemon.start()
        try:
            wait_for(lambda: daemon.state.ready, "first generation")
            code, instances = get(daemon, "/instances")
            assert code == 200 and instances
            code, pathways = get(daemon, "/pathways")
            assert code == 200 and len(pathways) == 6
            router = sorted(pathways)[0]
            code, single = get(daemon, f"/pathways?router={router}")
            assert code == 200 and list(single) == [router]
            assert get(daemon, "/pathways?router=nope")[0] == 404
            assert get(daemon, "/diagnostics")[0] == 200
            assert get(daemon, "/nonsense")[0] == 404
        finally:
            daemon.shutdown()
            daemon.drain()

    def test_not_ready_before_first_generation(self, tmp_path, stores):
        # An empty corpus never stabilizes into a useful generation fast;
        # query the endpoints before the worker has published anything.
        corpus = str(tmp_path / "empty")
        os.makedirs(corpus)
        daemon = make_daemon(corpus, stores)
        daemon.start()
        try:
            assert get(daemon, "/health")[0] == 200
            assert get(daemon, "/ready")[0] == 503
            assert get(daemon, "/manifest")[0] == 503
            assert get(daemon, "/instances")[0] == 503
        finally:
            daemon.shutdown()
            daemon.drain()


class TestChaosSurvival:
    def test_crashed_generation_keeps_previous_serving(
        self, corpus, stores, monkeypatch
    ):
        daemon = make_daemon(corpus, stores, stage_deadline=30.0)
        daemon.start()
        try:
            wait_for(lambda: daemon.state.ready, "first generation")
            gen1 = daemon.state.published_digest

            # Arm chaos, then edit: the rebuild crashes in `pathways`.
            monkeypatch.setenv(CHAOS_ENV, "*:pathways=raise")
            edit_file(corpus, 0, "crash-me")
            wait_for(
                lambda: daemon.state.consecutive_failures >= 1,
                "failed generation",
            )
            # Old generation still serving; readiness unaffected.
            assert daemon.state.published_digest == gen1
            assert get(daemon, "/ready")[0] == 200
            status = get(daemon, "/status")[1]
            assert status["health"] == "degraded"
            assert status["staleness"]["serving_current_corpus"] is False
            assert "pathways" in (status["last_error"] or "")

            # Disarm chaos: the breaker expires and the rebuild succeeds.
            monkeypatch.delenv(CHAOS_ENV)
            wait_for(
                lambda: daemon.state.published_digest != gen1,
                "recovery generation",
            )
            assert get(daemon, "/status")[1]["health"] == "ok"
            # Equivalence holds across the crashed-generation detour.
            assert served_normalized(daemon) == cold_normalized(corpus)
        finally:
            daemon.shutdown()
            daemon.drain()

    def test_hung_generation_times_out_and_previous_serves(
        self, corpus, stores, monkeypatch
    ):
        daemon = make_daemon(corpus, stores, stage_deadline=0.5)
        daemon.start()
        try:
            wait_for(lambda: daemon.state.ready, "first generation")
            gen1_digest = daemon.state.published_digest
            monkeypatch.setenv(CHAOS_ENV, "*:instances=hang")
            edit_file(corpus, 0, "hang-me")
            wait_for(
                lambda: daemon.state.consecutive_failures >= 1,
                "hung generation to time out",
            )
            assert daemon.state.published_digest == gen1_digest
            assert get(daemon, "/ready")[0] == 200
            assert get(daemon, "/status")[1]["health"] == "degraded"
        finally:
            monkeypatch.delenv(CHAOS_ENV, raising=False)
            daemon.shutdown()
            daemon.drain()

    def test_simulated_kill_is_contained(self, corpus, stores, monkeypatch):
        daemon = make_daemon(corpus, stores)
        daemon.start()
        try:
            wait_for(lambda: daemon.state.ready, "first generation")
            monkeypatch.setenv(CHAOS_ENV, "*:reachability=kill")
            edit_file(corpus, 0, "kill-me")
            wait_for(
                lambda: daemon.state.consecutive_failures >= 1,
                "killed generation",
            )
            assert get(daemon, "/ready")[0] == 200
            assert "SimulatedKill" in (
                get(daemon, "/status")[1]["last_error"] or ""
            )
            monkeypatch.delenv(CHAOS_ENV)
            wait_for(
                lambda: daemon.state.health == "ok", "recovery after kill"
            )
            assert served_normalized(daemon) == cold_normalized(corpus)
        finally:
            daemon.shutdown()
            daemon.drain()


class TestWarmRecovery:
    def test_restart_recovers_from_caches(self, corpus, stores):
        """Simulates the kill-9 path at the store level: the first daemon
        dies without any drain; a second daemon over the same parse cache
        and checkpoint store recovers warm (zero re-parses, all stages
        replayed) and serves the identical normalized generation."""
        first = make_daemon(corpus, stores)
        first.start()
        wait_for(lambda: first.state.ready, "first daemon's generation")
        before = served_normalized(first)
        # No drain, no shutdown: emulate sudden death (kill -9 never
        # runs handlers; in-process the equivalent is simply dropping
        # the daemon without calling drain()).
        first._stop.set()
        first.http.stop()

        second = make_daemon(corpus, stores)
        second.start()
        try:
            wait_for(lambda: second.state.ready, "warm recovery generation")
            _code, manifest = get(second, "/manifest")
            # Warm: every file replays from the parse cache ...
            assert manifest["dispositions"]["parsed"] == 0
            assert manifest["dispositions"]["cached"] == 6
            # ... every stage replays from the checkpoint store ...
            stages = manifest["execution"]["stages"]
            assert all(stage.get("from_checkpoint") for stage in stages)
            # ... and the result is identical to what the dead daemon
            # served, and to a cold run.
            assert served_normalized(second) == before
            assert served_normalized(second) == cold_normalized(corpus)
        finally:
            second.shutdown()
            second.drain()

    def test_edit_while_down_is_incremental_on_restart(self, corpus, stores):
        first = make_daemon(corpus, stores)
        first.start()
        wait_for(lambda: first.state.ready, "first daemon's generation")
        first._stop.set()
        first.http.stop()

        edit_file(corpus, 2, "edited-while-down")
        second = make_daemon(corpus, stores)
        second.start()
        try:
            wait_for(lambda: second.state.ready, "restart generation")
            _code, manifest = get(second, "/manifest")
            assert manifest["dispositions"]["parsed"] == 1
            assert manifest["dispositions"]["cached"] == 5
            assert served_normalized(second) == cold_normalized(corpus)
        finally:
            second.shutdown()
            second.drain()


class TestDebounce:
    def test_mid_edit_corpus_is_not_analyzed(self, corpus, stores):
        daemon = make_daemon(corpus, stores)
        # Drive ticks manually: no worker thread, deterministic polls.
        assert daemon.tick() is None  # first scan: stats not yet stable
        outcome = daemon.tick()  # second scan: stable -> generation runs
        assert outcome is not None and outcome.complete
        edit_file(corpus, 0, "debounce")
        assert daemon.tick() is None  # stats moved: debounce, no rebuild
        outcome = daemon.tick()  # stable again: rebuild
        assert outcome is not None and outcome.complete
        assert daemon.tick() is None  # steady state: nothing to do


def _spawn_serve(corpus, tmp_path, *extra, chaos_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONUNBUFFERED"] = "1"
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env.pop(CHAOS_ENV, None)
    if chaos_env is not None:
        env[CHAOS_ENV] = chaos_env
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            corpus,
            "--port",
            "0",
            "--poll-interval",
            "0.1",
            "--grace",
            "5",
            "--checkpoint-dir",
            str(tmp_path / "ckpt"),
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    line = process.stdout.readline()
    assert "serving" in line and "http://" in line, line
    url = line.strip().rsplit(" ", 1)[-1]
    return process, url


def _wait_ready(url: str, timeout: float = WAIT) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url + "/ready", timeout=2) as r:
                if r.status == 200:
                    return
        except (urllib.error.URLError, ConnectionError, OSError):
            pass
        time.sleep(0.1)
    raise AssertionError("daemon never became ready")


class TestSignals:
    def test_sigterm_drains_and_exits_zero(self, corpus, tmp_path):
        process, url = _spawn_serve(corpus, tmp_path)
        try:
            _wait_ready(url)
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

    def test_sigint_drains_and_exits_zero(self, corpus, tmp_path):
        process, url = _spawn_serve(corpus, tmp_path)
        try:
            _wait_ready(url)
            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

    def test_kill9_then_restart_recovers_warm(self, corpus, tmp_path):
        process, url = _spawn_serve(corpus, tmp_path)
        try:
            _wait_ready(url)
        finally:
            process.kill()  # SIGKILL: no drain, no handlers
            process.wait()

        process, url = _spawn_serve(corpus, tmp_path)
        try:
            _wait_ready(url)
            with urllib.request.urlopen(url + "/manifest", timeout=5) as r:
                manifest = json.loads(r.read())
            # Warm recovery: the parse cache replays every file, the
            # checkpoint store replays every stage.
            assert manifest["dispositions"] == {
                "parsed": 0,
                "cached": 6,
                "quarantined": 0,
            }
            assert all(
                stage.get("from_checkpoint")
                for stage in manifest["execution"]["stages"]
            )
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
