"""The single-pass IOS lexer: stanza boundaries, counts, keys, trees."""

from repro.ios.blocks import ConfigBlock, materialize_stanza, split_blocks
from repro.ios.lexer import lex_config, stanza_key

SAMPLE = """\
! comment at top
hostname r1
!
interface Ethernet0
 ip address 10.0.0.1 255.255.255.0
 no shutdown

router ospf 10
 network 10.0.0.0 0.0.0.255 area 0
"""


class TestLexConfig:
    def test_stanza_boundaries(self):
        stanzas, _, _ = lex_config(SAMPLE)
        heads = [tokens[0][2] for tokens in stanzas]
        assert heads == ["hostname r1", "interface Ethernet0", "router ospf 10"]

    def test_tokens_carry_line_numbers_and_indent(self):
        stanzas, _, _ = lex_config(SAMPLE)
        interface = stanzas[1]
        assert interface[0] == (4, 0, "interface Ethernet0")
        assert interface[1] == (5, 1, "ip address 10.0.0.1 255.255.255.0")
        assert interface[2] == (6, 1, "no shutdown")

    def test_line_and_command_counts(self):
        _, line_count, command_count = lex_config(SAMPLE)
        # 9 lines, one blank; the two "!" lines count as lines, not commands.
        assert line_count == 8
        assert command_count == 6

    def test_blank_lines_do_not_split_stanzas(self):
        stanzas, _, _ = lex_config("interface E0\n\n ip address 10.0.0.1 255.0.0.0\n")
        assert len(stanzas) == 1
        assert len(stanzas[0]) == 2

    def test_separator_closes_stanza(self):
        # An indented line after "!" opens a NEW top-level stanza whose
        # recorded indent is 0 — the historical stack-reset behavior.
        stanzas, _, _ = lex_config("interface E0\n!\n description lonely\n")
        assert len(stanzas) == 2
        assert stanzas[1] == [(3, 0, "description lonely")]

    def test_tab_led_lines_are_top_level(self):
        stanzas, _, _ = lex_config("interface E0\n\tdescription tabbed\n")
        assert len(stanzas) == 2
        assert stanzas[1][0][2] == "description tabbed"

    def test_empty_input(self):
        assert lex_config("") == ([], 0, 0)
        assert lex_config("\n\n!\n") == ([], 1, 0)


class TestStanzaKey:
    def test_single_line_keys_as_bare_line(self):
        stanzas, _, _ = lex_config("hostname r1\n")
        assert stanza_key(stanzas[0]) == "hostname r1"

    def test_key_is_position_free(self):
        body = "interface E0\n ip address 10.0.0.1 255.0.0.0\n"
        early, _, _ = lex_config(body)
        late, _, _ = lex_config("!\n!\n!\n" + body)
        assert early[0] != late[0]  # line numbers differ...
        assert stanza_key(early[0]) == stanza_key(late[0])  # ...keys agree

    def test_key_is_indent_sensitive(self):
        one, _, _ = lex_config("ip access-list extended A\n permit ip any any\n")
        two, _, _ = lex_config("ip access-list extended A\n  permit ip any any\n")
        assert stanza_key(one[0]) != stanza_key(two[0])

    def test_multi_line_key_cannot_collide_with_single_line(self):
        multi, _, _ = lex_config("interface E0\n shutdown\n")
        single, _, _ = lex_config("interface E0\n")
        assert stanza_key(multi[0]) != stanza_key(single[0])


class TestMaterializeStanza:
    def test_builds_nested_tree(self):
        stanzas, _, _ = lex_config(
            "router bgp 65000\n"
            " address-family ipv4\n"
            "  neighbor 10.0.0.2 activate\n"
            " exit-address-family\n"
        )
        block = materialize_stanza(stanzas[0])
        assert block.line == "router bgp 65000"
        assert [child.line for child in block.children] == [
            "address-family ipv4",
            "exit-address-family",
        ]
        family = block.children[0]
        assert family.children[0].line == "neighbor 10.0.0.2 activate"
        assert family.indent == 1
        assert family.children[0].indent == 2

    def test_matches_split_blocks(self):
        blocks, _, _ = split_blocks(SAMPLE)
        stanzas, _, _ = lex_config(SAMPLE)
        assert [b.line for b in blocks] == [materialize_stanza(s).line for s in stanzas]
        assert blocks[1].children[0].line == "ip address 10.0.0.1 255.255.255.0"


class TestConfigBlockWords:
    def test_words_splits_once_and_caches(self):
        block = ConfigBlock(line="ip address 10.0.0.1 255.0.0.0", line_number=1)
        first = block.words
        assert first == ["ip", "address", "10.0.0.1", "255.0.0.0"]
        assert block.words is first  # memoized, not re-split

    def test_cached_words_excluded_from_equality(self):
        one = ConfigBlock(line="hostname r1", line_number=1)
        two = ConfigBlock(line="hostname r1", line_number=1)
        _ = one.words  # populate the cache on one side only
        assert one == two
