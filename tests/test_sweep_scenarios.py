"""Scenario enumeration: coverage, id safety, tags, sampled doubles."""

import pytest

from repro.core.survivability import analyze_survivability
from repro.sweep.scenarios import (
    KIND_DOUBLE,
    KIND_LINK,
    KIND_ROUTER,
    TAG_ARTICULATION,
    TAG_BRIDGE,
    _unrank_pair,
    enumerate_scenarios,
    link_scenario_id,
    router_scenario_id,
)


class TestSingleEnumeration:
    def test_one_scenario_per_link_and_router(self, fig1):
        network, _meta = fig1
        plan = enumerate_scenarios(network)
        links = {s for s in plan.scenarios if s.kind == KIND_LINK}
        routers = {s for s in plan.scenarios if s.kind == KIND_ROUTER}
        assert len(links) == len({link.subnet for link in network.links})
        assert len(routers) == len(network.routers)
        assert plan.singles == len(plan.scenarios)
        assert not plan.truncated

    def test_ids_are_chaos_and_checkpoint_safe(self, fig1):
        network, _meta = fig1
        plan = enumerate_scenarios(network)
        for scenario in plan.scenarios:
            # ":" would break REPRO_CHAOS parsing (rsplit on ":"), "/"
            # would break checkpoint filenames.
            assert ":" not in scenario.scenario_id
            assert "/" not in scenario.scenario_id

    def test_enumeration_is_deterministic(self, fig1):
        network, _meta = fig1
        first = enumerate_scenarios(network)
        second = enumerate_scenarios(network)
        assert [s.scenario_id for s in first.scenarios] == [
            s.scenario_id for s in second.scenarios
        ]

    def test_static_tags_ride_along(self, backbone_net):
        network, _spec = backbone_net
        report = analyze_survivability(network)
        plan = enumerate_scenarios(network, survivability=report)
        by_id = {s.scenario_id: s for s in plan.scenarios}
        for router in report.articulation_routers:
            assert TAG_ARTICULATION in by_id[router_scenario_id(router)].tags
        for subnet in report.bridge_links:
            assert TAG_BRIDGE in by_id[link_scenario_id(str(subnet))].tags

    def test_router_scenario_fails_exactly_that_router(self, fig1):
        network, _meta = fig1
        plan = enumerate_scenarios(network)
        for scenario in plan.scenarios:
            if scenario.kind == KIND_ROUTER:
                assert len(scenario.failed_routers) == 1
                assert scenario.failed_subnets == ()
            elif scenario.kind == KIND_LINK:
                assert len(scenario.failed_subnets) == 1
                assert scenario.failed_routers == ()


class TestDoubles:
    def test_depth_2_adds_pairs_under_budget(self, fig1):
        network, _meta = fig1
        plan = enumerate_scenarios(network, depth=2, double_budget=10)
        doubles = [s for s in plan.scenarios if s.kind == KIND_DOUBLE]
        assert len(doubles) == 10
        assert plan.doubles_sampled == 10
        assert plan.doubles_possible == plan.singles * (plan.singles - 1) // 2

    def test_small_budget_samples_deterministically(self, fig1):
        network, _meta = fig1
        first = enumerate_scenarios(network, depth=2, double_budget=5, seed=42)
        second = enumerate_scenarios(network, depth=2, double_budget=5, seed=42)
        assert [s.scenario_id for s in first.scenarios] == [
            s.scenario_id for s in second.scenarios
        ]

    def test_seed_changes_the_sample(self, fig1):
        network, _meta = fig1
        a = enumerate_scenarios(network, depth=2, double_budget=5, seed=0)
        b = enumerate_scenarios(network, depth=2, double_budget=5, seed=1)
        ids_a = {s.scenario_id for s in a.scenarios if s.kind == KIND_DOUBLE}
        ids_b = {s.scenario_id for s in b.scenarios if s.kind == KIND_DOUBLE}
        assert ids_a != ids_b

    def test_large_budget_enumerates_every_pair(self, fig1):
        network, _meta = fig1
        plan = enumerate_scenarios(network, depth=2, double_budget=10**9)
        doubles = [s for s in plan.scenarios if s.kind == KIND_DOUBLE]
        assert len(doubles) == plan.doubles_possible
        assert len({s.scenario_id for s in doubles}) == len(doubles)

    def test_double_unions_the_failure_sets(self, fig1):
        network, _meta = fig1
        plan = enumerate_scenarios(network, depth=2, double_budget=10**9)
        for scenario in plan.scenarios:
            if scenario.kind == KIND_DOUBLE:
                assert (
                    len(scenario.failed_routers) + len(scenario.failed_subnets) == 2
                )

    def test_unrank_pair_covers_all_pairs(self):
        n = 7
        pairs = {_unrank_pair(rank, n) for rank in range(n * (n - 1) // 2)}
        assert pairs == {(i, j) for i in range(n) for j in range(i + 1, n)}


class TestBounds:
    def test_max_scenarios_truncates_and_says_so(self, fig1):
        network, _meta = fig1
        plan = enumerate_scenarios(network, max_scenarios=3)
        assert len(plan.scenarios) == 3
        assert plan.truncated

    def test_bad_depth_rejected(self, fig1):
        network, _meta = fig1
        with pytest.raises(ValueError, match="depth"):
            enumerate_scenarios(network, depth=3)

    def test_negative_budget_rejected(self, fig1):
        network, _meta = fig1
        with pytest.raises(ValueError, match="budget"):
            enumerate_scenarios(network, depth=2, double_budget=-1)
