"""Chaos plan parsing and trigger behavior."""

import time

import pytest

from repro.exec.chaos import (
    CHAOS_ENV,
    ChaosError,
    ChaosPlan,
    SimulatedKill,
    parse_chaos,
)


class TestParsing:
    def test_single_clause(self):
        (rule,) = parse_chaos("net1:pathways=raise")
        assert rule.archive == "net1"
        assert rule.stage == "pathways"
        assert rule.action == "raise"
        assert rule.attempt is None

    def test_multiple_clauses_and_whitespace(self):
        rules = parse_chaos(" a:links=raise ; b:*=hang ;; ")
        assert [r.action for r in rules] == ["raise", "hang"]

    def test_attempt_suffix(self):
        (rule,) = parse_chaos("*:reachability=hang@0")
        assert rule.attempt == 0
        assert rule.action == "hang"

    def test_bounded_hang_seconds(self):
        (rule,) = parse_chaos("*:*=hang:0.25")
        assert rule.action == "hang"
        assert rule.seconds == 0.25

    def test_empty_patterns_default_to_wildcards(self):
        (rule,) = parse_chaos(":=kill")
        assert rule.archive == "*"
        assert rule.stage == "*"

    @pytest.mark.parametrize("spec", ["nonsense", "a:b=explode", "a=raise"])
    def test_junk_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_chaos(spec)


class TestPlan:
    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "alpha:links=raise")
        plan = ChaosPlan.from_env()
        assert plan
        assert plan.rules[0].archive == "alpha"
        monkeypatch.delenv(CHAOS_ENV)
        assert not ChaosPlan.from_env()

    def test_no_match_is_a_no_op(self):
        plan = ChaosPlan.from_spec("alpha:links=raise")
        plan.trigger("beta", "links", 0)  # different archive: nothing happens
        plan.trigger("alpha", "pathways", 0)  # different stage: nothing

    def test_raise_action(self):
        plan = ChaosPlan.from_spec("*:consistency=raise")
        with pytest.raises(ChaosError):
            plan.trigger("any", "consistency", 0)

    def test_kill_action_is_not_an_exception(self):
        plan = ChaosPlan.from_spec("*:*=kill")
        with pytest.raises(SimulatedKill) as exc_info:
            plan.trigger("any", "links", 0)
        assert not isinstance(exc_info.value, Exception)

    def test_bounded_hang_returns(self):
        plan = ChaosPlan.from_spec("*:*=hang:0.05")
        start = time.perf_counter()
        plan.trigger("any", "links", 0)
        assert time.perf_counter() - start >= 0.05

    def test_attempt_gating(self):
        plan = ChaosPlan.from_spec("*:*=raise@0")
        with pytest.raises(ChaosError):
            plan.trigger("any", "links", 0)
        plan.trigger("any", "links", 1)  # retries sail through

    def test_fnmatch_patterns(self):
        plan = ChaosPlan.from_spec("net*:path*=raise")
        with pytest.raises(ChaosError):
            plan.trigger("net17", "pathways", 0)
        plan.trigger("corp", "pathways", 0)
