"""Chaos plan parsing and trigger behavior."""

import time

import pytest

from repro.exec import chaos as chaos_module
from repro.exec.chaos import (
    CHAOS_ENV,
    ChaosError,
    ChaosPlan,
    SimulatedKill,
    maybe_io_error,
    parse_chaos,
)


class TestParsing:
    def test_single_clause(self):
        (rule,) = parse_chaos("net1:pathways=raise")
        assert rule.archive == "net1"
        assert rule.stage == "pathways"
        assert rule.action == "raise"
        assert rule.attempt is None

    def test_multiple_clauses_and_whitespace(self):
        rules = parse_chaos(" a:links=raise ; b:*=hang ;; ")
        assert [r.action for r in rules] == ["raise", "hang"]

    def test_attempt_suffix(self):
        (rule,) = parse_chaos("*:reachability=hang@0")
        assert rule.attempt == 0
        assert rule.action == "hang"

    def test_bounded_hang_seconds(self):
        (rule,) = parse_chaos("*:*=hang:0.25")
        assert rule.action == "hang"
        assert rule.seconds == 0.25

    def test_empty_patterns_default_to_wildcards(self):
        (rule,) = parse_chaos(":=kill")
        assert rule.archive == "*"
        assert rule.stage == "*"

    @pytest.mark.parametrize("spec", ["nonsense", "a:b=explode", "a=raise"])
    def test_junk_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_chaos(spec)


class TestPlan:
    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "alpha:links=raise")
        plan = ChaosPlan.from_env()
        assert plan
        assert plan.rules[0].archive == "alpha"
        monkeypatch.delenv(CHAOS_ENV)
        assert not ChaosPlan.from_env()

    def test_no_match_is_a_no_op(self):
        plan = ChaosPlan.from_spec("alpha:links=raise")
        plan.trigger("beta", "links", 0)  # different archive: nothing happens
        plan.trigger("alpha", "pathways", 0)  # different stage: nothing

    def test_raise_action(self):
        plan = ChaosPlan.from_spec("*:consistency=raise")
        with pytest.raises(ChaosError):
            plan.trigger("any", "consistency", 0)

    def test_kill_action_is_not_an_exception(self):
        plan = ChaosPlan.from_spec("*:*=kill")
        with pytest.raises(SimulatedKill) as exc_info:
            plan.trigger("any", "links", 0)
        assert not isinstance(exc_info.value, Exception)

    def test_bounded_hang_returns(self):
        plan = ChaosPlan.from_spec("*:*=hang:0.05")
        start = time.perf_counter()
        plan.trigger("any", "links", 0)
        assert time.perf_counter() - start >= 0.05

    def test_attempt_gating(self):
        plan = ChaosPlan.from_spec("*:*=raise@0")
        with pytest.raises(ChaosError):
            plan.trigger("any", "links", 0)
        plan.trigger("any", "links", 1)  # retries sail through

    def test_fnmatch_patterns(self):
        plan = ChaosPlan.from_spec("net*:path*=raise")
        with pytest.raises(ChaosError):
            plan.trigger("net17", "pathways", 0)
        plan.trigger("corp", "pathways", 0)


class TestIoError:
    def test_parses_as_an_action(self):
        (rule,) = parse_chaos("*:cache=io-error")
        assert rule.action == "io-error"
        assert rule.stage == "cache"

    def test_trigger_skips_io_error_rules(self):
        # A stage attempt must sail through an io-error rule — in
        # particular it must NOT fall through to the hang branch.
        plan = ChaosPlan.from_spec("*:*=io-error")
        start = time.perf_counter()
        plan.trigger("any", "links", 0)
        assert time.perf_counter() - start < 0.5

    def test_io_error_matches_kind_and_path(self):
        plan = ChaosPlan.from_spec("*/cache/*:cache=io-error")
        with pytest.raises(OSError, match="injected io-error"):
            plan.io_error("cache", "/tmp/cache/ab/entry.json")
        plan.io_error("checkpoint", "/tmp/cache/ab/entry.json")  # wrong kind
        plan.io_error("cache", "/elsewhere/entry.json")  # wrong path

    def test_other_actions_never_fire_from_writes(self):
        plan = ChaosPlan.from_spec("*:*=raise")
        plan.io_error("cache", "/any/path")  # raise targets stages only


class TestMaybeIoError:
    def test_noop_when_env_unset(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        maybe_io_error("cache", "/any/path")

    def test_fires_and_memoizes_plain_specs(self, monkeypatch):
        monkeypatch.setattr(chaos_module, "_io_plan_cache", (None, None))
        monkeypatch.setenv(CHAOS_ENV, "*:checkpoint=io-error")
        with pytest.raises(OSError):
            maybe_io_error("checkpoint", "/ckpt/entry.json")
        cached_spec, cached_plan = chaos_module._io_plan_cache
        assert cached_spec == "*:checkpoint=io-error"
        assert cached_plan is not None
        with pytest.raises(OSError):  # second call uses the memo
            maybe_io_error("checkpoint", "/ckpt/entry.json")
        maybe_io_error("cache", "/ckpt/entry.json")  # other kinds unaffected

    def test_malformed_spec_never_breaks_the_write_path(self, monkeypatch):
        monkeypatch.setattr(chaos_module, "_io_plan_cache", (None, None))
        monkeypatch.setenv(CHAOS_ENV, "total junk !!!")
        maybe_io_error("cache", "/any/path")  # swallowed, not raised

    def test_file_indirection_reread_each_call(self, monkeypatch, tmp_path):
        spec_file = tmp_path / "chaos.spec"
        monkeypatch.setenv(CHAOS_ENV, f"@{spec_file}")
        maybe_io_error("cache", "/any/path")  # missing file: empty plan
        spec_file.write_text("*:cache=io-error\n")
        with pytest.raises(OSError):
            maybe_io_error("cache", "/any/path")
        spec_file.write_text("")  # live disarm: next call sees it
        maybe_io_error("cache", "/any/path")


class TestFileIndirection:
    def test_from_env_reads_spec_file(self, monkeypatch, tmp_path):
        spec_file = tmp_path / "chaos.spec"
        spec_file.write_text("alpha:links=raise")
        monkeypatch.setenv(CHAOS_ENV, f"@{spec_file}")
        plan = ChaosPlan.from_env()
        assert plan.rules[0].archive == "alpha"

    def test_missing_file_is_empty_plan(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CHAOS_ENV, f"@{tmp_path / 'nope.spec'}")
        assert not ChaosPlan.from_env()

    def test_malformed_file_is_empty_plan(self, monkeypatch, tmp_path):
        spec_file = tmp_path / "chaos.spec"
        spec_file.write_text("garbage without structure")
        monkeypatch.setenv(CHAOS_ENV, f"@{spec_file}")
        assert not ChaosPlan.from_env()
