"""Corpus snapshots, stat scans, and digest diffs (repro.ingest.snapshot)."""

import os

from repro.exec.checkpoint import archive_digest
from repro.ingest.snapshot import (
    diff_snapshots,
    scan_stats,
    snapshot_corpus,
)
from repro.model import Network
from repro.synth.templates.example_fig1 import build_example_networks


def _write_corpus(root) -> None:
    configs, _meta = build_example_networks()
    os.makedirs(root, exist_ok=True)
    for name, text in sorted(configs.items()):
        with open(os.path.join(root, name), "w") as handle:
            handle.write(text)


class TestScanStats:
    def test_counts_regular_files_only(self, tmp_path):
        _write_corpus(tmp_path)
        (tmp_path / "subdir").mkdir()
        (tmp_path / "subdir" / "nested.cfg").write_text("hostname nested\n")
        stats = scan_stats(str(tmp_path))
        assert len(stats) == 6  # fig1 files; the subdirectory is ignored
        assert all("/" not in path for path in stats)

    def test_records_size_and_mtime(self, tmp_path):
        (tmp_path / "config1").write_text("hostname r1\n")
        stats = scan_stats(str(tmp_path))
        assert stats["config1"].size == len("hostname r1\n")
        assert stats["config1"].mtime_ns > 0

    def test_missing_directory_is_empty(self, tmp_path):
        assert scan_stats(str(tmp_path / "nope")) == {}

    def test_edit_changes_stats(self, tmp_path):
        _write_corpus(tmp_path)
        before = scan_stats(str(tmp_path))
        target = sorted(before)[0]
        with open(tmp_path / target, "a") as handle:
            handle.write("! edited\n")
        after = scan_stats(str(tmp_path))
        assert after[target] != before[target]
        assert {p: s for p, s in after.items() if p != target} == {
            p: s for p, s in before.items() if p != target
        }


class TestSnapshot:
    def test_digest_stable_across_rescans(self, tmp_path):
        _write_corpus(tmp_path)
        assert (
            snapshot_corpus(str(tmp_path)).digest
            == snapshot_corpus(str(tmp_path)).digest
        )

    def test_digest_changes_on_any_edit(self, tmp_path):
        _write_corpus(tmp_path)
        before = snapshot_corpus(str(tmp_path))
        target = sorted(before.files)[0]
        with open(tmp_path / target, "a") as handle:
            handle.write("! edited\n")
        assert snapshot_corpus(str(tmp_path)).digest != before.digest

    def test_digest_matches_executor_archive_digest(self, tmp_path):
        """The serve layer's corpus digest and the executor's checkpoint
        digest are the same construction over the same bytes — what makes
        a published generation's digest comparable to checkpoint keys."""
        _write_corpus(tmp_path)
        snapshot = snapshot_corpus(str(tmp_path))
        network = Network.from_directory(str(tmp_path), on_error="skip-block")
        assert snapshot.digest == archive_digest(network.inventory)

    def test_len_counts_files(self, tmp_path):
        _write_corpus(tmp_path)
        assert len(snapshot_corpus(str(tmp_path))) == 6


class TestDiff:
    def test_empty_diff_is_falsy(self, tmp_path):
        _write_corpus(tmp_path)
        snapshot = snapshot_corpus(str(tmp_path))
        diff = diff_snapshots(snapshot, snapshot)
        assert not diff
        assert len(diff) == 0

    def test_changed_added_removed(self, tmp_path):
        _write_corpus(tmp_path)
        before = snapshot_corpus(str(tmp_path))
        names = sorted(before.files)
        with open(tmp_path / names[0], "a") as handle:
            handle.write("! edited\n")
        os.remove(tmp_path / names[1])
        (tmp_path / "confignew").write_text("hostname shiny\n")
        diff = diff_snapshots(before, snapshot_corpus(str(tmp_path)))
        assert diff.changed == (names[0],)
        assert diff.removed == (names[1],)
        assert diff.added == ("confignew",)
        assert len(diff) == 3
        assert diff.as_dict() == {
            "changed": [names[0]],
            "added": ["confignew"],
            "removed": [names[1]],
        }
