"""Unit tests for IPv4 address parsing, formatting, and mask conversion."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.ipv4 import (
    AddressError,
    IPv4Address,
    format_ipv4,
    mask_to_prefix_len,
    parse_ipv4,
    prefix_len_to_mask,
    wildcard_to_prefix_len,
)


class TestParseFormat:
    def test_parse_simple(self):
        assert parse_ipv4("10.0.0.1") == (10 << 24) + 1

    def test_parse_zero(self):
        assert parse_ipv4("0.0.0.0") == 0

    def test_parse_max(self):
        assert parse_ipv4("255.255.255.255") == 0xFFFFFFFF

    def test_format_simple(self):
        assert format_ipv4((192 << 24) | (168 << 16) | 5) == "192.168.0.5"

    @pytest.mark.parametrize(
        "bad",
        ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3", "-1.0.0.0"],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            parse_ipv4(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            format_ipv4(1 << 32)
        with pytest.raises(AddressError):
            format_ipv4(-1)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_roundtrip(self, value):
        assert parse_ipv4(format_ipv4(value)) == value

    def test_parse_strips_whitespace(self):
        assert parse_ipv4(" 10.0.0.1 ") == parse_ipv4("10.0.0.1")


class TestMasks:
    def test_prefix_len_to_mask_30(self):
        assert format_ipv4(prefix_len_to_mask(30)) == "255.255.255.252"

    def test_prefix_len_to_mask_0(self):
        assert prefix_len_to_mask(0) == 0

    def test_prefix_len_to_mask_32(self):
        assert prefix_len_to_mask(32) == 0xFFFFFFFF

    def test_prefix_len_out_of_range(self):
        with pytest.raises(AddressError):
            prefix_len_to_mask(33)
        with pytest.raises(AddressError):
            prefix_len_to_mask(-1)

    @given(st.integers(min_value=0, max_value=32))
    def test_mask_roundtrip(self, length):
        assert mask_to_prefix_len(prefix_len_to_mask(length)) == length

    def test_noncontiguous_mask_rejected(self):
        with pytest.raises(AddressError):
            mask_to_prefix_len(parse_ipv4("255.0.255.0"))

    def test_wildcard_to_prefix_len(self):
        assert wildcard_to_prefix_len(parse_ipv4("0.0.0.3")) == 30
        assert wildcard_to_prefix_len(parse_ipv4("0.0.255.255")) == 16

    def test_wildcard_noncontiguous_rejected(self):
        with pytest.raises(AddressError):
            wildcard_to_prefix_len(parse_ipv4("0.255.0.255"))


class TestIPv4Address:
    def test_from_string(self):
        assert IPv4Address("10.0.0.1").value == parse_ipv4("10.0.0.1")

    def test_from_int(self):
        assert str(IPv4Address(0)) == "0.0.0.0"

    def test_copy_constructor(self):
        a = IPv4Address("1.2.3.4")
        assert IPv4Address(a) == a

    def test_rejects_bad_type(self):
        with pytest.raises(AddressError):
            IPv4Address(3.14)

    def test_rejects_out_of_range_int(self):
        with pytest.raises(AddressError):
            IPv4Address(1 << 32)

    def test_equality_with_int_and_str(self):
        a = IPv4Address("10.0.0.1")
        assert a == parse_ipv4("10.0.0.1")
        assert a == "10.0.0.1"
        assert a != "10.0.0.2"

    def test_ordering(self):
        assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")
        assert IPv4Address("9.255.255.255") < IPv4Address("10.0.0.0")

    def test_hashable(self):
        assert len({IPv4Address("1.1.1.1"), IPv4Address("1.1.1.1")}) == 1

    def test_add_offset(self):
        assert IPv4Address("10.0.0.1") + 5 == IPv4Address("10.0.0.6")

    def test_subtract_address_gives_distance(self):
        assert IPv4Address("10.0.0.6") - IPv4Address("10.0.0.1") == 5

    def test_subtract_int_gives_address(self):
        assert IPv4Address("10.0.0.6") - 5 == IPv4Address("10.0.0.1")

    def test_repr_contains_dotted_quad(self):
        assert "10.0.0.1" in repr(IPv4Address("10.0.0.1"))

    @pytest.mark.parametrize(
        "address,private",
        [
            ("10.0.0.1", True),
            ("172.16.0.1", True),
            ("172.31.255.255", True),
            ("172.32.0.0", False),
            ("192.168.1.1", True),
            ("192.169.0.0", False),
            ("8.8.8.8", False),
        ],
    )
    def test_is_private(self, address, private):
        assert IPv4Address(address).is_private() is private
