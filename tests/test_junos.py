"""JunOS front-end tests: dialect parsing and mixed-vendor analysis."""

import pytest

from repro.core import compute_instances
from repro.junos import JunosParseError, parse_junos_config
from repro.junos.blocks import JunosSyntaxError, parse_blocks
from repro.model import Network
from repro.model.network import Router
from repro.net import Prefix

SAMPLE = """
system {
    host-name pe1;
}
interfaces {
    so-0/0/0 {
        unit 0 {
            family inet {
                address 10.0.0.1/30;
            }
        }
    }
    ge-0/1/0 {
        unit 0 {
            description "customer lan";
            family inet {
                address 10.1.0.1/24;
                filter {
                    input block-web;
                }
            }
        }
    }
    lo0 {
        unit 0 {
            family inet {
                address 10.9.0.1/32;
            }
        }
    }
}
routing-options {
    autonomous-system 65010;
    static {
        route 172.16.0.0/16 next-hop 10.0.0.2;
    }
}
protocols {
    ospf {
        export statics;
        area 0.0.0.0 {
            interface so-0/0/0.0;
            interface lo0.0 {
                passive;
            }
        }
    }
    bgp {
        group upstream {
            type external;
            peer-as 7018;
            export announce-lan;
            neighbor 10.0.0.2;
        }
    }
}
policy-options {
    policy-statement statics {
        term 1 {
            from protocol static;
            then accept;
        }
    }
    policy-statement announce-lan {
        term 1 {
            from {
                route-filter 10.1.0.0/24;
            }
            then accept;
        }
        term last {
            then reject;
        }
    }
}
firewall {
    family inet {
        filter block-web {
            term drop-http {
                from {
                    protocol tcp;
                    destination-port http;
                }
                then discard;
            }
            term default {
                then accept;
            }
        }
    }
}
"""


@pytest.fixture(scope="module")
def pe1():
    return parse_junos_config(SAMPLE)


class TestBlocks:
    def test_nesting(self):
        root = parse_blocks("a { b { c d; } }")
        assert root.child("a").child("b").child("c").words == ["c", "d"]

    def test_comments_stripped(self):
        root = parse_blocks("# comment\na { /* inline */ b c; }")
        assert root.child("a").leaf_value("b") == "c"

    def test_unbalanced_raises(self):
        with pytest.raises(JunosSyntaxError):
            parse_blocks("a { b;")
        with pytest.raises(JunosSyntaxError):
            parse_blocks("a; }")

    def test_missing_semicolon_raises(self):
        with pytest.raises(JunosSyntaxError):
            parse_blocks("a { b }")


class TestConversion:
    def test_hostname(self, pe1):
        assert pe1.hostname == "pe1"

    def test_interfaces_and_kinds(self, pe1):
        assert set(pe1.interfaces) == {"so-0/0/0.0", "ge-0/1/0.0", "lo0.0"}
        assert pe1.interfaces["so-0/0/0.0"].kind == "POS"
        assert pe1.interfaces["ge-0/1/0.0"].kind == "GigabitEthernet"
        assert pe1.interfaces["lo0.0"].kind == "Loopback"

    def test_addresses(self, pe1):
        assert pe1.interfaces["so-0/0/0.0"].prefix == Prefix("10.0.0.0/30")
        assert str(pe1.interfaces["ge-0/1/0.0"].address) == "10.1.0.1"

    def test_filter_binding(self, pe1):
        assert pe1.interfaces["ge-0/1/0.0"].access_group_in == "block-web"

    def test_firewall_filter_lowered_to_acl(self, pe1):
        acl = pe1.access_lists["block-web"]
        assert acl.rules[0].action == "deny"
        assert acl.rules[0].protocol == "tcp"
        assert acl.rules[0].port == "80"  # "http" resolved
        assert acl.rules[1].action == "permit"

    def test_static_route(self, pe1):
        (route,) = pe1.static_routes
        assert route.prefix == Prefix("172.16.0.0/16")
        assert str(route.next_hop) == "10.0.0.2"

    def test_ospf_coverage(self, pe1):
        (process,) = pe1.ospf_processes
        covered = [stmt for stmt in process.networks]
        assert len(covered) == 2  # so-0/0/0.0 and lo0.0
        assert process.passive_interfaces == ["lo0.0"]
        assert covered[0].matches_interface(pe1.interfaces["so-0/0/0.0"].address)
        assert not covered[0].matches_interface(pe1.interfaces["ge-0/1/0.0"].address)

    def test_ospf_export_becomes_redistribution(self, pe1):
        (process,) = pe1.ospf_processes
        (redist,) = process.redistributes
        assert redist.source_protocol == "static"
        assert redist.route_map == "statics"

    def test_bgp_group(self, pe1):
        bgp = pe1.bgp_process
        assert bgp.asn == 65010
        nbr = bgp.neighbor("10.0.0.2")
        assert nbr.remote_as == 7018
        assert nbr.route_map_out == "announce-lan"

    def test_policy_statement_lowered_to_route_map(self, pe1):
        route_map = pe1.route_maps["announce-lan"]
        clauses = route_map.sorted_clauses()
        assert clauses[0].action == "permit"
        assert clauses[0].match_ip_address == ["PL-announce-lan"]
        assert clauses[1].action == "deny"
        acl = pe1.access_lists["PL-announce-lan"]
        assert acl.rules[0].source_prefix() == Prefix("10.1.0.0/24")


class TestMixedVendorNetwork:
    def test_junos_and_ios_form_one_instance(self):
        junos_text = """
        system { host-name j1; }
        interfaces {
            so-0/0/0 { unit 0 { family inet { address 10.0.0.1/30; } } }
        }
        protocols {
            ospf { area 0.0.0.0 { interface so-0/0/0.0; } }
        }
        """
        ios_text = (
            "hostname c1\n"
            "!\ninterface POS0/0\n ip address 10.0.0.2 255.255.255.252\n"
            "!\nrouter ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
        )
        from repro.ios import parse_config

        network = Network(
            [
                Router("j1", parse_junos_config(junos_text)),
                Router("c1", parse_config(ios_text)),
            ],
            name="mixed",
        )
        assert len(network.links) == 1
        instances = compute_instances(network)
        ospf = [i for i in instances if i.protocol == "ospf"]
        assert len(ospf) == 1
        assert ospf[0].routers == {"j1", "c1"}

    def test_census_merges_vendor_names(self, pe1):
        network = Network([Router("pe1", pe1)], name="solo")
        census = network.interface_type_census()
        assert census == {"POS": 1, "GigabitEthernet": 1, "Loopback": 1}


class TestQuotedStrings:
    def test_description_with_spaces(self):
        cfg = parse_junos_config(
            'interfaces { ge-0/0/0 { unit 0 { description "customer lan uplink"; '
            "family inet { address 10.0.0.1/24; } } } }"
        )
        assert cfg.interfaces["ge-0/0/0.0"].description == "customer lan uplink"

    def test_unterminated_string_raises(self):
        with pytest.raises(JunosSyntaxError):
            parse_blocks('a { b "unterminated; }')


class TestSerializerRoundTrip:
    FIELDS = ("hostname", "interfaces", "ospf_processes", "bgp_process", "static_routes")

    def test_sample_roundtrip(self):
        from repro.junos import serialize_junos_config

        first = parse_junos_config(SAMPLE)
        second = parse_junos_config(serialize_junos_config(first))
        for field in self.FIELDS:
            assert getattr(first, field) == getattr(second, field), field

    def test_serialization_is_fixpoint(self):
        from repro.junos import serialize_junos_config

        first = parse_junos_config(SAMPLE)
        once = serialize_junos_config(first)
        twice = serialize_junos_config(parse_junos_config(once))
        assert once == twice

    def test_policies_survive(self):
        from repro.junos import serialize_junos_config

        first = parse_junos_config(SAMPLE)
        second = parse_junos_config(serialize_junos_config(first))
        rm1 = first.route_maps["announce-lan"].sorted_clauses()
        rm2 = second.route_maps["announce-lan"].sorted_clauses()
        assert [(c.action, bool(c.match_ip_address)) for c in rm1] == [
            (c.action, bool(c.match_ip_address)) for c in rm2
        ]

    def test_firewall_survives(self):
        from repro.junos import serialize_junos_config

        first = parse_junos_config(SAMPLE)
        second = parse_junos_config(serialize_junos_config(first))
        assert first.access_lists["block-web"] == second.access_lists["block-web"]


class TestMixedVendorTemplate:
    def test_one_design_across_vendors(self):
        from repro.synth.templates.mixed import build_mixed

        configs, spec = build_mixed("mv", 33, n_routers=10, seed=4)
        # Core files are brace-structured; access files are IOS.
        for router in spec.notes["junos_routers"]:
            assert "{" in configs[router]
        for router in spec.notes["ios_routers"]:
            assert "{" not in configs[router]

        network = Network.from_configs(configs, name="mv")
        instances = compute_instances(network)
        got = sorted((i.protocol, i.size) for i in instances)
        want = sorted((e.protocol, e.size) for e in spec.expected_instances)
        assert got == want

    def test_external_interface_recovered(self):
        from repro.synth.templates.mixed import build_mixed

        configs, spec = build_mixed("mv2", 34, n_routers=8, seed=5)
        network = Network.from_configs(configs, name="mv2")
        assert network.external_interfaces == set(spec.external_interfaces)

    def test_census_spans_vendor_naming(self):
        from repro.synth.templates.mixed import build_mixed

        configs, _spec = build_mixed("mv3", 35, n_routers=8, seed=6)
        network = Network.from_configs(configs, name="mv3")
        census = network.interface_type_census()
        assert census.get("POS", 0) >= 4
        assert census.get("FastEthernet", 0) >= 4


class TestJunosRobustness:
    def test_empty_config(self):
        cfg = parse_junos_config("")
        assert cfg.hostname is None
        assert not cfg.interfaces

    def test_interface_without_address(self):
        cfg = parse_junos_config("interfaces { ge-0/0/0 { unit 0 { } } }")
        iface = cfg.interfaces["ge-0/0/0.0"]
        assert not iface.is_numbered

    def test_disabled_interface(self):
        cfg = parse_junos_config(
            "interfaces { ge-0/0/0 { unit 0 { disable; "
            "family inet { address 10.0.0.1/24; } } } }"
        )
        assert cfg.interfaces["ge-0/0/0.0"].shutdown

    def test_multiple_addresses_become_secondary(self):
        cfg = parse_junos_config(
            "interfaces { ge-0/0/0 { unit 0 { family inet { "
            "address 10.0.0.1/24; address 10.0.1.1/24; } } } }"
        )
        iface = cfg.interfaces["ge-0/0/0.0"]
        assert str(iface.address) == "10.0.0.1"
        assert len(iface.secondary_addresses) == 1

    def test_multiple_units(self):
        cfg = parse_junos_config(
            "interfaces { so-0/0/0 { "
            "unit 0 { family inet { address 10.0.0.1/30; } } "
            "unit 5 { family inet { address 10.0.0.5/30; } } } }"
        )
        assert set(cfg.interfaces) == {"so-0/0/0.0", "so-0/0/0.5"}

    def test_ospf_interface_referencing_missing_interface(self):
        # A dangling area interface reference is tolerated (ignored).
        cfg = parse_junos_config(
            "protocols { ospf { area 0 { interface ge-9/9/9.0; } } }"
        )
        assert cfg.ospf_processes[0].networks == []

    def test_bgp_without_local_as_uses_zero(self):
        cfg = parse_junos_config(
            "protocols { bgp { group x { peer-as 7018; neighbor 10.0.0.2; } } }"
        )
        assert cfg.bgp_process.asn == 0
        assert cfg.bgp_process.neighbors[0].remote_as == 7018

    def test_line_and_command_counts(self):
        cfg = parse_junos_config(SAMPLE)
        assert cfg.line_count > 0
        assert cfg.command_count > 0


class TestJunosErrorPaths:
    """Strict-mode failures mirror the IOS parser's ConfigParseError tests."""

    def test_malformed_address_raises(self):
        with pytest.raises(ValueError):
            parse_junos_config(
                "interfaces { ge-0/0/0 { unit 0 { family inet { "
                "address 999.0.0.1/24; } } } }"
            )

    def test_bad_prefix_length_raises(self):
        with pytest.raises(ValueError):
            parse_junos_config(
                "interfaces { ge-0/0/0 { unit 0 { family inet { "
                "address 10.0.0.1/99; } } } }"
            )

    def test_bad_peer_as_raises(self):
        with pytest.raises(ValueError):
            parse_junos_config(
                "protocols { bgp { group x { peer-as banana; "
                "neighbor 10.0.0.2; } } }"
            )

    def test_bad_static_route_raises(self):
        with pytest.raises(ValueError):
            parse_junos_config(
                "routing-options { static { route nonsense next-hop 10.0.0.2; } }"
            )

    def test_bad_autonomous_system_raises(self):
        with pytest.raises(JunosParseError):
            parse_junos_config("routing-options { autonomous-system banana; }")

    def test_syntax_error_reports_line_number(self):
        with pytest.raises(JunosSyntaxError) as excinfo:
            parse_blocks("system {\n    host-name x;\n")
        assert "line" in str(excinfo.value)

    def test_missing_hostname_yields_none(self):
        cfg = parse_junos_config("interfaces { lo0 { unit 0 { } } }")
        assert cfg.hostname is None
