"""Route preference and administrative distance tests."""

from repro.routing import ADMIN_DISTANCE, Route
from repro.net import Prefix


class TestAdminDistance:
    def test_cisco_values(self):
        assert ADMIN_DISTANCE["connected"] == 0
        assert ADMIN_DISTANCE["static"] == 1
        assert ADMIN_DISTANCE["ebgp"] == 20
        assert ADMIN_DISTANCE["eigrp"] == 90
        assert ADMIN_DISTANCE["igrp"] == 100
        assert ADMIN_DISTANCE["ospf"] == 110
        assert ADMIN_DISTANCE["rip"] == 120
        assert ADMIN_DISTANCE["ibgp"] == 200

    def test_bgp_distance_depends_on_session_type(self):
        p = Prefix("10.0.0.0/8")
        ebgp = Route(prefix=p, protocol="bgp", via_ibgp=False)
        ibgp = Route(prefix=p, protocol="bgp", via_ibgp=True)
        assert ebgp.admin_distance == 20
        assert ibgp.admin_distance == 200

    def test_unknown_protocol_is_worst(self):
        route = Route(prefix=Prefix("10.0.0.0/8"), protocol="martian")
        assert route.admin_distance == 255


class TestPreference:
    def test_connected_beats_everything(self):
        p = Prefix("10.0.0.0/24")
        connected = Route(prefix=p, protocol="connected")
        ospf = Route(prefix=p, protocol="ospf")
        assert connected.better_than(ospf)
        assert not ospf.better_than(connected)

    def test_lower_metric_wins_within_protocol(self):
        p = Prefix("10.0.0.0/24")
        near = Route(prefix=p, protocol="ospf", metric=1)
        far = Route(prefix=p, protocol="ospf", metric=5)
        assert near.better_than(far)

    def test_shorter_as_path_wins_for_bgp(self):
        p = Prefix("10.0.0.0/24")
        short = Route(prefix=p, protocol="bgp", as_path=(1,))
        long = Route(prefix=p, protocol="bgp", as_path=(1, 2, 3))
        assert short.better_than(long)

    def test_better_than_none(self):
        route = Route(prefix=Prefix("10.0.0.0/24"), protocol="rip")
        assert route.better_than(None)

    def test_advanced_increments_metric_and_sets_via(self):
        route = Route(prefix=Prefix("10.0.0.0/24"), protocol="ospf", metric=3)
        hop = route.advanced(via_router="r9")
        assert hop.metric == 4
        assert hop.via_router == "r9"
        assert hop.prefix == route.prefix

    def test_routes_are_immutable(self):
        route = Route(prefix=Prefix("10.0.0.0/24"), protocol="ospf")
        try:
            route.metric = 9
        except AttributeError:
            pass
        else:
            raise AssertionError("Route should be frozen")
