"""Property: resuming after a mid-run kill converges to the uninterrupted run.

The executor's determinism contract (diagnostics derived from result
summaries, never from timing; checkpoint provenance stripped by
``normalize_manifest``) exists so that a corpus run killed at *any*
stage and then finished with ``--resume`` produces the same normalized
run manifest as a run that was never interrupted.  Hypothesis picks the
kill point.
"""

import json
import os
import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.exec import ANALYSIS_STAGES, CHAOS_ENV, SimulatedKill
from repro.obs.manifest import normalize_manifest
from repro.synth.templates.example_fig1 import build_example_networks


def _normalized(path):
    manifest = json.loads(open(path).read())
    core = normalize_manifest(manifest)
    # Checkpoint hit/miss counters legitimately differ between an
    # interrupted-then-resumed run and an uninterrupted one; everything
    # else in the normalized core must agree exactly.
    core.pop("counters")
    return core


@settings(max_examples=5, deadline=None)
@given(stage=st.sampled_from(ANALYSIS_STAGES))
def test_resume_after_kill_matches_uninterrupted_run(stage):
    workdir = tempfile.mkdtemp(prefix="repro-resume-")
    try:
        corpusdir = os.path.join(workdir, "corpus")
        archive = os.path.join(corpusdir, "net")
        os.makedirs(archive)
        configs, _meta = build_example_networks()
        for name, text in configs.items():
            with open(os.path.join(archive, name), "w") as handle:
                handle.write(text)
        checkpoint_a = os.path.join(workdir, "ckpt-a")
        checkpoint_b = os.path.join(workdir, "ckpt-b")
        report_a = os.path.join(workdir, "a.json")
        report_b = os.path.join(workdir, "b.json")
        base = ["corpus", "--no-cache", "--json"]

        # Run 1: killed mid-flight at the chosen stage.  SimulatedKill is
        # a BaseException no barrier catches — the in-process stand-in
        # for SIGKILL; checkpoints written before it fires survive.
        os.environ[CHAOS_ENV] = f"*:{stage}=kill"
        try:
            killed = False
            try:
                main(base + ["--checkpoint-dir", checkpoint_a, corpusdir])
            except SimulatedKill:
                killed = True
            assert killed
        finally:
            os.environ.pop(CHAOS_ENV, None)

        # Run 2: resume to completion, writing a manifest.
        code = main(
            base
            + [
                "--checkpoint-dir",
                checkpoint_a,
                "--resume",
                "--run-report",
                report_a,
                corpusdir,
            ]
        )
        assert code == 0

        # Reference: the same corpus, never interrupted.
        code = main(
            base
            + [
                "--checkpoint-dir",
                checkpoint_b,
                "--run-report",
                report_b,
                corpusdir,
            ]
        )
        assert code == 0

        assert _normalized(report_a) == _normalized(report_b)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
