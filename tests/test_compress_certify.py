"""Certification: quotient-then-expand equals direct, byte for byte.

The contract (ISSUE: topology compression): on every design template the
compressed pipeline's normalized payload must serialize to exactly the
same canonical JSON as the direct pipeline's.  ``KNOWN_GAPS`` is the
only escape hatch and it must stay empty — a template that stops
certifying is a regression, not a waiver.
"""

import json

import pytest

from repro.compress import (
    KNOWN_GAPS,
    analyze_compressed,
    analyze_direct,
    build_compression_plan,
    certify_compression,
    normalize_analysis_payload,
)
from repro.model import Network
from repro.synth.templates.backbone import build_backbone
from repro.synth.templates.enterprise import build_enterprise
from repro.synth.templates.example_fig1 import build_example_networks
from repro.synth.templates.hybrid import build_hybrid
from repro.synth.templates.mixed import build_mixed
from repro.synth.templates.net5 import build_net5
from repro.synth.templates.net15 import build_net15
from repro.synth.templates.pods import build_pods
from repro.synth.templates.tier2 import build_tier2


def _template_cases():
    yield "backbone", build_backbone("bb", 1, 36, seed=3)[0]
    yield "enterprise", build_enterprise("ent", 2, 28, seed=5, n_borders=2)[0]
    yield "hybrid", build_hybrid("hyb", 3, 30, seed=7)[0]
    yield "mixed", build_mixed("mix", 4, 12, seed=9)[0]
    yield "tier2", build_tier2("t2", 5, 24, seed=11)[0]
    yield "net5", build_net5(scale=0.05, name="net5")[0]
    yield "net15", build_net15(scale=0.4)[0]
    yield "fig1", build_example_networks()[0]
    yield "pods", build_pods("pod", 6, 64, access_per_pod=6)[0]


CASES = list(_template_cases())


@pytest.mark.parametrize("name,configs", CASES, ids=[c[0] for c in CASES])
def test_certifies_on_template(name, configs):
    network = Network.from_configs(configs, name=name)
    result = certify_compression(network)
    assert result.identical, (
        f"{name}: quotient-then-expand diverged from direct analysis "
        f"at {result.divergence}"
    )
    assert result.waived is None
    assert result.passed


def test_known_gaps_ships_empty():
    # The escape hatch exists for future templates with a documented
    # divergence; nothing may hide in it silently.
    assert KNOWN_GAPS == {}


def test_certification_also_holds_under_max_depth():
    configs = build_pods("pod", 7, 40, access_per_pod=4)[0]
    network = Network.from_configs(configs, name="pod-depth")
    result = certify_compression(network, max_depth=2)
    assert result.identical, result.divergence


def test_expanded_payloads_carry_provenance():
    configs = build_pods("pod", 8, 40, access_per_pod=4)[0]
    network = Network.from_configs(configs, name="pod-prov")
    plan = build_compression_plan(network)
    payload = analyze_compressed(network, plan=plan)
    assert payload["compression"]["classes"] == plan.n_classes
    for router, pathway in payload["pathways"].items():
        assert pathway["expanded_from"] == plan.router_class[router]
    # Normalization strips exactly the provenance, nothing else.
    normalized = normalize_analysis_payload(payload)
    assert "compression" not in normalized
    assert all(
        "expanded_from" not in p for p in normalized["pathways"].values()
    )


def test_normalized_payloads_compare_equal_as_json():
    configs = build_net5(scale=0.04, name="net5-json")[0]
    network = Network.from_configs(configs, name="net5-json")
    direct = normalize_analysis_payload(analyze_direct(network))
    compressed = normalize_analysis_payload(analyze_compressed(network))
    assert json.dumps(direct, sort_keys=True) == json.dumps(
        compressed, sort_keys=True
    )
