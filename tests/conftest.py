"""Shared fixtures: small-scale generated networks, parsed once per session."""

from __future__ import annotations

import pytest

from repro.model import Network
from repro.synth.corpus import paper_corpus
from repro.synth.templates.backbone import build_backbone
from repro.synth.templates.enterprise import build_enterprise
from repro.synth.templates.example_fig1 import build_example_networks
from repro.synth.templates.net5 import build_net5
from repro.synth.templates.net15 import build_net15
from repro.synth.templates.tier2 import build_tier2

#: Scale used for corpus-wide tests: full structure, sharply reduced size.
TEST_SCALE = 0.06


@pytest.fixture(autouse=True)
def _isolated_parse_cache(tmp_path_factory, monkeypatch):
    """Keep the CLI's default parse cache away from the user's ~/.cache."""
    monkeypatch.setenv(
        "REPRO_CACHE_DIR", str(tmp_path_factory.getbasetemp() / "parse-cache")
    )


@pytest.fixture(scope="session")
def fig1():
    """The paper's running example: ``(network, meta)``."""
    configs, meta = build_example_networks()
    return Network.from_configs(configs, name="fig1"), meta


@pytest.fixture(scope="session")
def enterprise_net():
    configs, spec = build_enterprise("ent", 1, 25, seed=3, igp="ospf", n_borders=2)
    return Network.from_configs(configs, name="ent"), spec


@pytest.fixture(scope="session")
def backbone_net():
    configs, spec = build_backbone("bb", 2, 48, seed=5, pop_size=6)
    return Network.from_configs(configs, name="bb"), spec


@pytest.fixture(scope="session")
def tier2_net():
    configs, spec = build_tier2("t2", 3, 30, seed=7)
    return Network.from_configs(configs, name="t2"), spec


@pytest.fixture(scope="session")
def net5_small():
    configs, spec = build_net5(scale=0.12)
    return Network.from_configs(configs, name="net5"), spec


@pytest.fixture(scope="session")
def net15_full():
    configs, spec = build_net15(scale=1.0)
    return Network.from_configs(configs, name="net15"), spec


@pytest.fixture(scope="session")
def small_corpus():
    """The 31-network corpus at test scale, networks parsed lazily."""
    return paper_corpus(scale=TEST_SCALE)
