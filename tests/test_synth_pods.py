"""The replicated pod template and its CLI / executor integration.

Covers the template's structural promises (single network-wide OSPF
instance, dual-homing, exact replication), the ``repro generate pod``
entry point, and the end-to-end ``--compress`` contract: a corpus run
with compression produces the same normalized JSON payload as the
direct run.
"""

import json
import os

import pytest

from repro.cli import main
from repro.core.instances import compute_instances
from repro.model import Network
from repro.report.corpus import normalize_corpus_payload
from repro.synth.templates.pods import OSPF_PROCESS, build_pods, pod_count


def test_pod_count_rounds_up():
    assert pod_count(14, access_per_pod=8) == 1
    assert pod_count(104, access_per_pod=8) == 10
    assert pod_count(105, access_per_pod=8) == 11


def test_single_network_wide_ospf_instance():
    configs, spec = build_pods("pod", 1, 40, access_per_pod=4)
    network = Network.from_configs(configs, name="pod")
    instances = compute_instances(network)
    ospf = [i for i in instances if i.protocol == "ospf"]
    assert len(ospf) == 1
    assert ospf[0].size == len(network) == spec.router_count
    bgp = [i for i in instances if i.protocol == "bgp"]
    assert len(bgp) == 1 and bgp[0].size == 2


def test_pods_are_exact_replicas_up_to_addresses():
    configs, _spec = build_pods("pod", 1, 40, access_per_pod=4)

    def shape(text):
        # Strip addresses; keep command shapes and stanza order.
        lines = []
        for line in text.splitlines():
            if line.startswith("hostname"):
                continue
            lines.append(" ".join(
                tok for tok in line.split()
                if not tok[0].isdigit() or tok.isdigit() and int(tok) < 300
            ))
        return "\n".join(lines)

    assert shape(configs["pod-p0-acc0"]) == shape(configs["pod-p2-acc3"])
    assert shape(configs["pod-p0-agg0"]) == shape(configs["pod-p1-agg1"])


def test_access_routers_dual_home_to_pod_aggs():
    configs, _spec = build_pods("pod", 1, 40, access_per_pod=4)
    network = Network.from_configs(configs, name="pod")
    neighbors = {name: set() for name in network.routers}
    for link in network.links:
        members = {end.router for end in link.ends}
        for member in members:
            neighbors[member] |= members - {member}
    assert neighbors["pod-p0-acc0"] == {"pod-p0-agg0", "pod-p0-agg1"}
    assert {"pod-core0", "pod-core1"} <= neighbors["pod-p1-agg0"]


def test_external_interfaces_live_on_borders_only():
    configs, spec = build_pods("pod", 1, 40, access_per_pod=4)
    network = Network.from_configs(configs, name="pod")
    external_routers = {router for router, _ in network.external_interfaces}
    assert external_routers == {"pod-border0", "pod-border1"}
    assert set(spec.external_interfaces) <= set(network.external_interfaces)


def test_rejects_fabrics_too_small_for_one_pod():
    with pytest.raises(ValueError):
        build_pods("pod", 1, 5)


def test_generate_cli_emits_pod_archive(tmp_path, capsys):
    outdir = os.fspath(tmp_path / "pod")
    code = main(["generate", "pod", outdir, "--routers", "24"])
    assert code == 0
    capsys.readouterr()
    files = os.listdir(outdir)
    assert any(name.endswith("core0") for name in files)
    network = Network.from_configs(
        {
            name: open(os.path.join(outdir, name)).read()
            for name in files
        },
        name="pod",
    )
    assert len(network) >= 24


def test_corpus_payload_identical_with_and_without_compress(tmp_path, capsys):
    # The end-to-end --compress contract: same corpus, same normalized
    # JSON payload, whichever pathway runner executed.
    configs, _spec = build_pods("pod", 1, 26, access_per_pod=4)
    archive = tmp_path / "corpus" / "fabric"
    archive.mkdir(parents=True)
    for name, text in configs.items():
        (archive / name).write_text(text)
    corpus = os.fspath(archive.parent)

    normalized = {}
    for flags in ((), ("--compress",)):
        code = main(
            ["corpus", "--no-cache", "--json", "--no-checkpoint", *flags, corpus]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["compress"] is bool(flags)
        normalized[flags] = json.dumps(
            normalize_corpus_payload(payload), sort_keys=True
        )
    assert normalized[()] == normalized[("--compress",)]
