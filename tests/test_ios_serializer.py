"""Serializer round-trip tests: parse(serialize(model)) == model."""

import pytest

from repro.ios import parse_config, serialize_config
from repro.synth.templates.backbone import build_backbone
from repro.synth.templates.enterprise import build_enterprise

from tests.test_ios_parser import FIG2

MODEL_FIELDS = (
    "hostname",
    "interfaces",
    "ospf_processes",
    "eigrp_processes",
    "rip_process",
    "bgp_process",
    "access_lists",
    "route_maps",
    "static_routes",
)


def assert_equivalent(a, b):
    for field in MODEL_FIELDS:
        assert getattr(a, field) == getattr(b, field), f"field {field} differs"


class TestRoundTrip:
    def test_fig2_roundtrip(self):
        first = parse_config(FIG2)
        second = parse_config(serialize_config(first))
        assert_equivalent(first, second)

    def test_roundtrip_is_fixpoint(self):
        first = parse_config(FIG2)
        once = serialize_config(first)
        twice = serialize_config(parse_config(once))
        assert once == twice

    def test_unmodeled_lines_survive(self):
        cfg = parse_config("ip cef\nsnmp-server community abc RO\n")
        text = serialize_config(cfg)
        reparsed = parse_config(text)
        assert reparsed.unmodeled_lines == cfg.unmodeled_lines

    @pytest.mark.parametrize("seed", range(5))
    def test_generated_enterprise_roundtrips(self, seed):
        configs, _spec = build_enterprise(
            "rt", seed + 1, 12, seed=seed, igp=("ospf", "eigrp", "rip")[seed % 3]
        )
        for text in configs.values():
            first = parse_config(text)
            second = parse_config(serialize_config(first))
            assert_equivalent(first, second)

    def test_generated_backbone_roundtrips(self):
        configs, _spec = build_backbone("rtb", 9, 16, seed=4, pop_size=4)
        for text in configs.values():
            first = parse_config(text)
            second = parse_config(serialize_config(first))
            assert_equivalent(first, second)


class TestSerializedSyntax:
    def test_interface_lines(self):
        cfg = parse_config(FIG2)
        text = serialize_config(cfg)
        assert "interface Serial1/0.5 point-to-point" in text
        assert " ip address 66.253.32.85 255.255.255.252" in text
        assert " frame-relay interface-dlci 28" in text

    def test_stanza_separators(self):
        cfg = parse_config(FIG2)
        text = serialize_config(cfg)
        assert "\n!\n" in text

    def test_acl_any_form(self):
        cfg = parse_config("access-list 10 permit any\n")
        assert "access-list 10 permit any" in serialize_config(cfg)

    def test_static_route_text(self):
        cfg = parse_config("ip route 10.1.0.0 255.255.0.0 10.0.0.1 tag 5\n")
        assert "ip route 10.1.0.0 255.255.0.0 10.0.0.1 tag 5" in serialize_config(cfg)
