"""Route policy evaluation tests (ACLs and route maps on routes)."""

from repro.ios import parse_config
from repro.net import Prefix
from repro.routing.policy import acl_permits_route, apply_route_map
from repro.routing.route import Route


def build_tables(text):
    cfg = parse_config(text)
    return cfg.access_lists, cfg.route_maps


class TestAclOnRoutes:
    def test_permit_by_containment(self):
        acls, _ = build_tables("access-list 1 permit 10.0.0.0 0.255.255.255\n")
        route = Route(prefix=Prefix("10.5.0.0/16"), protocol="ospf")
        assert acl_permits_route(acls["1"], route)

    def test_implicit_deny(self):
        acls, _ = build_tables("access-list 1 permit 10.0.0.0 0.255.255.255\n")
        route = Route(prefix=Prefix("11.0.0.0/16"), protocol="ospf")
        assert not acl_permits_route(acls["1"], route)

    def test_first_match_deny(self):
        acls, _ = build_tables(
            "access-list 1 deny 10.1.0.0 0.0.255.255\n"
            "access-list 1 permit 10.0.0.0 0.255.255.255\n"
        )
        denied = Route(prefix=Prefix("10.1.5.0/24"), protocol="ospf")
        allowed = Route(prefix=Prefix("10.2.0.0/16"), protocol="ospf")
        assert not acl_permits_route(acls["1"], denied)
        assert acl_permits_route(acls["1"], allowed)


class TestRouteMapOnRoutes:
    TEXT = (
        "access-list 1 permit 10.0.0.0 0.255.255.255\n"
        "access-list 2 permit 172.16.0.0 0.15.255.255\n"
        "route-map POL deny 10\n"
        " match ip address 2\n"
        "route-map POL permit 20\n"
        " match ip address 1\n"
        " set tag 777\n"
        " set metric 5\n"
    )

    def test_matching_clause_transforms(self):
        acls, maps = build_tables(self.TEXT)
        route = Route(prefix=Prefix("10.3.0.0/16"), protocol="bgp")
        result = apply_route_map(maps["POL"], acls, route)
        assert result.tag == 777
        assert result.metric == 5

    def test_deny_clause_drops(self):
        acls, maps = build_tables(self.TEXT)
        route = Route(prefix=Prefix("172.16.5.0/24"), protocol="bgp")
        assert apply_route_map(maps["POL"], acls, route) is None

    def test_unmatched_route_denied(self):
        acls, maps = build_tables(self.TEXT)
        route = Route(prefix=Prefix("192.168.0.0/16"), protocol="bgp")
        assert apply_route_map(maps["POL"], acls, route) is None

    def test_clause_without_match_matches_all(self):
        acls, maps = build_tables("route-map ALL permit 10\n set tag 5\n")
        route = Route(prefix=Prefix("8.0.0.0/8"), protocol="bgp")
        assert apply_route_map(maps["ALL"], acls, route).tag == 5

    def test_match_tag(self):
        acls, maps = build_tables("route-map TAGGED permit 10\n match tag 99\n")
        tagged = Route(prefix=Prefix("10.0.0.0/8"), protocol="ospf", tag=99)
        untagged = Route(prefix=Prefix("10.0.0.0/8"), protocol="ospf")
        assert apply_route_map(maps["TAGGED"], acls, tagged) is not None
        assert apply_route_map(maps["TAGGED"], acls, untagged) is None

    def test_sequence_order_respected(self):
        acls, maps = build_tables(
            "route-map SEQ permit 20\n set tag 20\n"
            "route-map SEQ deny 10\n"
        )
        route = Route(prefix=Prefix("10.0.0.0/8"), protocol="ospf")
        # Clause 10 (deny-all) runs first despite being defined second.
        assert apply_route_map(maps["SEQ"], acls, route) is None
