"""Report formatting tests."""

from repro.report import format_cdf, format_histogram, format_table
from repro.report.tables import cdf_points, fraction_at_least


class TestFormatTable:
    def test_headers_and_rows(self):
        out = format_table(["name", "count"], [["ospf", 12], ["rip", 3]])
        lines = out.splitlines()
        assert "name" in lines[0] and "count" in lines[0]
        assert "ospf" in lines[2]

    def test_title(self):
        out = format_table(["a"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_alignment_width(self):
        out = format_table(["x"], [["longvalue"]])
        header, rule, row = out.splitlines()
        assert len(header) == len(rule) == len(row)


class TestHistogramAndCdf:
    def test_histogram_bars(self):
        out = format_histogram(["<10", "10+"], [0.25, 0.75], width=4)
        assert "#" in out
        assert "75.0%" in out

    def test_cdf_points(self):
        points = cdf_points([30.0, 10.0, 20.0])
        assert points == [(10.0, 1 / 3), (20.0, 2 / 3), (30.0, 1.0)]

    def test_format_cdf_empty(self):
        assert "(empty)" in format_cdf([])

    def test_format_cdf_monotone(self):
        out = format_cdf([5.0, 1.0, 3.0])
        assert out.index("x=    1.00") < out.index("x=    5.00")

    def test_fraction_at_least(self):
        assert fraction_at_least([10, 40, 50, 90], 40) == 0.75
        assert fraction_at_least([], 40) == 0.0


class TestExecutionFormatting:
    def _execution(self, *results):
        from repro.exec import ArchiveExecution

        return ArchiveExecution(archive="net1", digest="0" * 64, results=list(results))

    def test_status_counts_elide_zeros(self):
        from repro.report import format_status_counts

        assert format_status_counts({"ok": 7, "timeout": 1}) == "7 ok, 1 timeout"
        assert format_status_counts({"ok": 8}) == "8 ok"
        assert format_status_counts({}) == "0 stages"

    def test_status_counts_fixed_order(self):
        from repro.report import format_status_counts

        rendered = format_status_counts(
            {"failed": 1, "ok": 2, "degraded": 3, "skipped": 4, "timeout": 5}
        )
        assert rendered == "2 ok, 3 degraded, 5 timeout, 1 failed, 4 skipped"

    def test_execution_lines_skip_ok_stages(self):
        from repro.exec import StageResult
        from repro.report import format_execution_lines

        execution = self._execution(
            StageResult(stage="links"),
            StageResult(
                stage="pathways",
                status="degraded",
                degradation="max-depth-8",
                detail="truncated",
            ),
            StageResult(stage="consistency", status="failed", error="ChaosError: x"),
        )
        lines = format_execution_lines("net1", execution)
        assert len(lines) == 2
        assert lines[0] == (
            "net1: stage pathways degraded (rung max-depth-8; truncated)"
        )
        assert "ChaosError: x" in lines[1]

    def test_clean_execution_renders_nothing(self):
        from repro.exec import StageResult
        from repro.report import format_execution_lines

        execution = self._execution(StageResult(stage="links"))
        assert format_execution_lines("net1", execution) == []
