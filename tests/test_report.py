"""Report formatting tests."""

from repro.report import format_cdf, format_histogram, format_table
from repro.report.tables import cdf_points, fraction_at_least


class TestFormatTable:
    def test_headers_and_rows(self):
        out = format_table(["name", "count"], [["ospf", 12], ["rip", 3]])
        lines = out.splitlines()
        assert "name" in lines[0] and "count" in lines[0]
        assert "ospf" in lines[2]

    def test_title(self):
        out = format_table(["a"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_alignment_width(self):
        out = format_table(["x"], [["longvalue"]])
        header, rule, row = out.splitlines()
        assert len(header) == len(rule) == len(row)


class TestHistogramAndCdf:
    def test_histogram_bars(self):
        out = format_histogram(["<10", "10+"], [0.25, 0.75], width=4)
        assert "#" in out
        assert "75.0%" in out

    def test_cdf_points(self):
        points = cdf_points([30.0, 10.0, 20.0])
        assert points == [(10.0, 1 / 3), (20.0, 2 / 3), (30.0, 1.0)]

    def test_format_cdf_empty(self):
        assert "(empty)" in format_cdf([])

    def test_format_cdf_monotone(self):
        out = format_cdf([5.0, 1.0, 3.0])
        assert out.index("x=    1.00") < out.index("x=    5.00")

    def test_fraction_at_least(self):
        assert fraction_at_least([10, 40, 50, 90], 40) == 0.75
        assert fraction_at_least([], 40) == 0.0
