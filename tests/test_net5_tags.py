"""§6.1: net5's tag-based route selection, verified in simulation.

"External routes were tagged to indicate their source as they were first
redistributed into the network's IGP instances.  Route selection ... was
configured to key off the tag, and since the IGP can propagate these tags,
the need for an IBGP mesh and related BGP configuration was avoided."
"""

import pytest

from repro.model import Network
from repro.routing import RoutingSimulation
from repro.synth.templates.net5 import build_net5


@pytest.fixture(scope="module")
def net5_sim():
    configs, spec = build_net5(scale=0.04, name="tagtest")
    network = Network.from_configs(configs, name="tagtest")
    return RoutingSimulation(network).run(), network, spec


class TestTagPropagation:
    def test_injected_routes_carry_tags(self, net5_sim):
        sim, network, _spec = net5_sim
        # Any EIGRP RIB entry that was redistributed from a BGP edge router
        # must carry the tag configured on the redistribution.
        tagged = [
            route
            for key, rib in sim.process_ribs.items()
            if key[1] == "eigrp"
            for route in rib.values()
            if route.tag is not None
        ]
        assert tagged, "tagged routes must exist inside the EIGRP instances"

    def test_tags_propagate_across_the_igp(self, net5_sim):
        from repro.synth.templates.net5 import AS_GLUE_AB

        sim, network, _spec = net5_sim
        # Routes injected by the glue AS are tagged 65001 and the tag is
        # visible deep inside compartment A — on plain compartment routers
        # that run no BGP at all.
        glue_routers = {name for name in network.routers if "-gab" in name}
        carried_elsewhere = [
            route
            for key, rib in sim.process_ribs.items()
            if key[1] == "eigrp"
            and key[0] not in glue_routers
            and network.routers[key[0]].config.bgp_process is None
            for route in rib.values()
            if route.tag == AS_GLUE_AB
        ]
        assert carried_elsewhere

    def test_no_ibgp_mesh_exists(self, net5_sim):
        _sim, network, _spec = net5_sim
        # The design's point: compartment routers carry NO BGP config.
        compartment_routers = [
            name for name in network.routers
            if name.startswith(("tagtest-a", "tagtest-b", "tagtest-c"))
            and "-gab" not in name
        ]
        assert compartment_routers
        for name in compartment_routers:
            assert network.routers[name].config.bgp_process is None

    def test_simulation_converges(self, net5_sim):
        sim, _network, _spec = net5_sim
        assert sim.iterations >= 1
