"""NetworkBuilder invariants."""

import random

import pytest

from repro.ios import parse_config
from repro.model import Network
from repro.net import Prefix
from repro.synth.addressing import NetworkAddressPlan
from repro.synth.builder import NetworkBuilder


@pytest.fixture()
def builder():
    return NetworkBuilder(NetworkAddressPlan.standard(50), rng=random.Random(1))


class TestRoutersAndInterfaces:
    def test_duplicate_router_rejected(self, builder):
        builder.add_router("a")
        with pytest.raises(ValueError):
            builder.add_router("a")

    def test_interface_names_unique_and_sequential(self, builder):
        builder.add_router("a")
        names = [builder.add_lan("a").name for _ in range(10)]
        assert len(set(names)) == 10
        assert names[0] == "FastEthernet0/0"
        assert names[8] == "FastEthernet1/0"  # 8 ports per slot

    def test_connect_allocates_shared_slash30(self, builder):
        builder.add_router("a")
        builder.add_router("b")
        end_a, end_b = builder.connect("a", "b")
        assert end_a.prefix == end_b.prefix
        assert end_a.prefix.length == 30
        assert end_a.address != end_b.address

    def test_loopback_is_host_route(self, builder):
        builder.add_router("a")
        loopback = builder.add_loopback("a")
        assert loopback.prefix.length == 32
        assert loopback.name == "Loopback0"

    def test_external_link_recorded(self, builder):
        builder.add_router("a")
        iface = builder.add_external_link("a")
        assert (iface.router, iface.name) in builder.external_interfaces

    def test_external_neighbor_address_is_the_far_end(self, builder):
        builder.add_router("a")
        iface = builder.add_external_link("a")
        far = builder.external_neighbor_address(iface)
        assert far != iface.address
        assert iface.prefix.contains_address(far)


class TestProcesses:
    def test_ensure_is_idempotent(self, builder):
        builder.add_router("a")
        assert builder.ensure_ospf("a", 1) is builder.ensure_ospf("a", 1)
        assert builder.ensure_bgp("a", 65000) is builder.ensure_bgp("a", 65000)

    def test_second_bgp_asn_rejected(self, builder):
        builder.add_router("a")
        builder.ensure_bgp("a", 65000)
        with pytest.raises(ValueError):
            builder.ensure_bgp("a", 65001)

    def test_cover_ospf_emits_matching_statement(self, builder):
        builder.add_router("a")
        lan = builder.add_lan("a")
        builder.cover_ospf(lan, 1)
        stmt = builder.routers["a"].ospf(1).networks[0]
        assert stmt.matches_interface(lan.address)

    def test_ibgp_session_both_sides(self, builder):
        builder.add_router("a")
        builder.add_router("b")
        lb_a, lb_b = builder.add_loopback("a"), builder.add_loopback("b")
        builder.ibgp_session(lb_a, lb_b, 65000)
        assert builder.routers["a"].bgp_process.neighbor(str(lb_b.address))
        assert builder.routers["b"].bgp_process.neighbor(str(lb_a.address))


class TestPoliciesAndOutput:
    def test_prefix_acl_round_trip(self, builder):
        builder.add_router("a")
        number = builder.add_prefix_acl(
            "a", permits=[Prefix("10.0.0.0/8")], denies=[Prefix("10.9.0.0/16")]
        )
        acl = builder.routers["a"].access_lists[number]
        assert [r.action for r in acl.rules] == ["deny", "permit"]

    def test_packet_filter_rule_count(self, builder):
        builder.add_router("a")
        lan = builder.add_lan("a")
        builder.add_packet_filter(lan, 7, direction="in")
        name = builder.routers["a"].interfaces[lan.name].access_group_in
        assert len(builder.routers["a"].access_lists[name].rules) == 7

    def test_acl_numbers_roll_into_expanded_ranges(self, builder):
        builder.add_router("a")
        lan = builder.add_lan("a")
        numbers = {builder.add_packet_filter(lan, 2) for _ in range(150)}
        assert len(numbers) == 150
        assert any(int(n) >= 2000 for n in numbers)

    def test_serialized_configs_parse_and_analyze(self, builder):
        builder.add_router("a")
        builder.add_router("b")
        end_a, end_b = builder.connect("a", "b")
        builder.cover_ospf(end_a, 1)
        builder.cover_ospf(end_b, 1)
        configs = builder.serialize()
        net = Network.from_configs(configs)
        assert len(net.igp_adjacencies) == 1

    def test_serialized_hostname_matches_router_name(self, builder):
        builder.add_router("core-1")
        configs = builder.serialize()
        assert parse_config(configs["core-1"]).hostname == "core-1"
