"""CLI tests (exercised in-process via repro.cli.main)."""

import os

import pytest

from repro.cli import main
from repro.exec import ANALYSIS_STAGES
from repro.synth.templates.example_fig1 import build_example_networks


@pytest.fixture(scope="module")
def config_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("configs")
    configs, _meta = build_example_networks()
    for name, text in configs.items():
        (path / name).write_text(text)
    return os.fspath(path)


class TestAnalyze:
    def test_summary_output(self, config_dir, capsys):
        assert main(["analyze", config_dir]) == 0
        out = capsys.readouterr().out
        assert "routers: 6" in out
        assert "routing instances: 5" in out
        assert "address blocks:" in out

    def test_rejects_missing_dir(self):
        with pytest.raises(SystemExit):
            main(["analyze", "/nonexistent/place"])


class TestInstances:
    def test_listing(self, config_dir, capsys):
        assert main(["instances", config_dir]) == 0
        out = capsys.readouterr().out
        assert "bgp" in out and "ospf" in out
        assert "12762" in out


class TestPathway:
    def test_pathway_output(self, config_dir, capsys):
        assert main(["pathway", config_dir, "R1"]) == 0
        out = capsys.readouterr().out
        assert "depth 0" in out
        assert "External World" in out

    def test_unknown_router(self, config_dir):
        with pytest.raises(SystemExit):
            main(["pathway", config_dir, "R99"])


class TestAnonymize:
    def test_produces_parseable_archive(self, config_dir, tmp_path, capsys):
        out_dir = os.fspath(tmp_path / "anon")
        assert main(["anonymize", config_dir, out_dir, "--key", "k"]) == 0
        assert main(["analyze", out_dir]) == 0
        out = capsys.readouterr().out
        assert "routing instances: 5" in out

    def test_file_names_are_pseudonymous(self, config_dir, tmp_path):
        # Regression: output files used to keep their original stems,
        # leaking the hostnames the content anonymization just scrubbed.
        import json

        out_dir = os.fspath(tmp_path / "anon2")
        main(["anonymize", config_dir, out_dir, "--key", "k"])
        originals = sorted(os.listdir(config_dir))
        produced = sorted(os.listdir(out_dir))
        assert len(produced) == len(originals)
        assert not set(produced) & set(originals)
        with open(out_dir + ".mapping.json") as handle:
            mapping = json.load(handle)
        assert sorted(mapping["files"]) == originals
        assert sorted(mapping["files"].values()) == produced

    def test_mapping_path_inside_outdir_rejected(self, config_dir, tmp_path):
        out_dir = os.fspath(tmp_path / "anon3")
        with pytest.raises(SystemExit, match="never travel"):
            main(
                ["anonymize", config_dir, out_dir, "--key", "k",
                 "--mapping", os.path.join(out_dir, "mapping.json")]
            )


class TestSurvivability:
    def test_reports_spofs(self, config_dir, capsys):
        assert main(["survivability", config_dir]) == 0
        out = capsys.readouterr().out
        assert "articulation routers" in out
        assert "SINGLE POINT OF FAILURE" in out


class TestDiff:
    def test_no_change_exit_zero(self, config_dir, capsys):
        assert main(["diff", config_dir, config_dir]) == 0
        assert "no design-level changes" in capsys.readouterr().out

    def test_change_exit_one(self, config_dir, tmp_path, capsys):
        import shutil

        altered = tmp_path / "altered"
        shutil.copytree(config_dir, altered)
        (altered / "R1").unlink()
        assert main(["diff", config_dir, os.fspath(altered)]) == 1
        assert "-1 routers" in capsys.readouterr().out


class TestGenerate:
    def test_generate_enterprise(self, tmp_path, capsys):
        out_dir = os.fspath(tmp_path / "gen")
        assert main(["generate", "enterprise", out_dir, "--routers", "8"]) == 0
        assert len(os.listdir(out_dir)) == 8
        assert main(["analyze", out_dir]) == 0
        assert "design class: enterprise" in capsys.readouterr().out

    def test_generate_unknown_template(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "martian", os.fspath(tmp_path / "x")])


class TestFlow:
    def test_permitted_flow(self, config_dir, capsys):
        # R1's LAN host to R3's LAN host inside the enterprise.
        from repro.model import Network

        net = Network.from_directory(config_dir)
        r1_lan = net.routers["R1"].config.interfaces["Ethernet0/0"].prefix
        r3_lan = net.routers["R3"].config.interfaces["Ethernet0/0"].prefix
        code = main(
            [
                "flow",
                config_dir,
                str(r1_lan.network + 5),
                str(r3_lan.network + 5),
                "--protocol",
                "tcp",
                "--port",
                "80",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "PERMITTED" in out
        assert "R1 -> R2 -> R3" in out

    def test_unknown_hosts(self, config_dir, capsys):
        assert main(["flow", config_dir, "203.0.113.9", "203.0.113.10"]) == 2


class TestReport:
    def test_report_to_stdout(self, config_dir, capsys):
        assert main(["report", config_dir]) == 0
        out = capsys.readouterr().out
        for section in (
            "# Routing design report",
            "## Inventory",
            "## Design classification",
            "## Routing instances",
            "## Protocol roles",
            "## Address space structure",
            "## Packet filtering",
            "## Survivability",
        ):
            assert section in out

    def test_report_to_file(self, config_dir, tmp_path, capsys):
        out_file = os.fspath(tmp_path / "report.md")
        assert main(["report", config_dir, "-o", out_file]) == 0
        text = open(out_file).read()
        assert "## Routing instances" in text
        assert "| id | protocol | AS | routers |" in text


class TestGraph:
    def test_dot_output(self, config_dir, capsys):
        assert main(["graph", config_dir]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "External World" in out
        assert "BGP AS 12762" in out
        assert "dir=both" in out

    def test_dot_file(self, config_dir, tmp_path):
        out_file = os.fspath(tmp_path / "g.dot")
        assert main(["graph", config_dir, "-o", out_file]) == 0
        text = open(out_file).read()
        assert text.count("inst") >= 5


class TestAudit:
    def test_audit_reports_open_edges(self, config_dir, capsys):
        # The fig1 example has an unfiltered uplink toward R7.
        code = main(["audit", config_dir])
        out = capsys.readouterr().out
        assert code == 1
        assert "unfiltered" in out

    def test_audit_clean_network(self, tmp_path, capsys):
        (tmp_path / "r1").write_text(
            "hostname r1\n"
            "!\ninterface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
        )
        code = main(["audit", os.fspath(tmp_path)])
        assert code == 0
        assert "consistent" in capsys.readouterr().out


class TestLint:
    def test_clean_archive_exits_zero(self, config_dir, capsys):
        assert main(["lint", config_dir]) == 0
        out = capsys.readouterr().out
        assert "no diagnostics" in out

    def test_warnings_exit_one(self, tmp_path, capsys):
        (tmp_path / "config1").write_text("hostname twin\n")
        (tmp_path / "config2").write_text("hostname twin\n")
        assert main(["lint", os.fspath(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "duplicate router name" in out

    def test_errors_exit_two(self, config_dir, tmp_path, capsys):
        from repro.synth import inject_fault

        configs, _meta = build_example_networks()
        mutated, fault = inject_fault(configs, "corrupt-ip", seed=1)
        for name, text in mutated.items():
            (tmp_path / name).write_text(text)
        assert main(["lint", os.fspath(tmp_path)]) == 2
        out = capsys.readouterr().out
        assert fault.file in out
        assert "error" in out

    def test_strict_flag_reports_first_failure(self, tmp_path, capsys):
        from repro.synth import inject_fault

        configs, _meta = build_example_networks()
        mutated, _fault = inject_fault(configs, "corrupt-ip", seed=1)
        for name, text in mutated.items():
            (tmp_path / name).write_text(text)
        assert main(["lint", "--strict", os.fspath(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().out

    def test_rejects_missing_dir(self):
        with pytest.raises(SystemExit):
            main(["lint", "/nonexistent/place"])


class TestExitCodeFolding:
    def test_lenient_analyze_folds_ingestion_errors(self, tmp_path, capsys):
        from repro.synth import inject_fault

        configs, _meta = build_example_networks()
        mutated, _fault = inject_fault(configs, "corrupt-ip", seed=2)
        for name, text in mutated.items():
            (tmp_path / name).write_text(text)
        code = main(["analyze", "--lenient", os.fspath(tmp_path)])
        assert code == 2
        captured = capsys.readouterr()
        assert "routers:" in captured.out  # analysis still ran
        assert "ingestion:" in captured.err

    def test_clean_archive_unaffected(self, config_dir, capsys):
        assert main(["analyze", "--lenient", config_dir]) == 0
        assert capsys.readouterr().err == ""

    def test_strict_and_lenient_flags_conflict(self, config_dir, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "--strict", "--lenient", config_dir])
        capsys.readouterr()

    def test_analyze_defaults_to_strict(self, tmp_path):
        # Regression: a shared parent-parser action once let lint's
        # lenient default leak into every other command.
        from repro.ios.parser import ConfigParseError
        from repro.synth import inject_fault

        configs, _meta = build_example_networks()
        mutated, _fault = inject_fault(configs, "corrupt-ip", seed=2)
        for name, text in mutated.items():
            (tmp_path / name).write_text(text)
        with pytest.raises(ConfigParseError):
            main(["analyze", os.fspath(tmp_path)])


class TestIngestFlags:
    def test_jobs_flag_matches_serial_output(self, config_dir, capsys):
        assert main(["analyze", "--no-cache", config_dir]) == 0
        serial_out = capsys.readouterr().out
        assert main(["analyze", "--no-cache", "--jobs", "4", config_dir]) == 0
        assert capsys.readouterr().out == serial_out

    def test_cache_dir_warm_run_matches(self, config_dir, tmp_path, capsys):
        cache = os.fspath(tmp_path / "cache")
        assert main(["analyze", "--cache-dir", cache, config_dir]) == 0
        cold_out = capsys.readouterr().out
        assert main(["analyze", "--cache-dir", cache, config_dir]) == 0
        assert capsys.readouterr().out == cold_out
        assert os.path.isdir(os.path.join(cache, "objects"))

    def test_negative_jobs_rejected(self, config_dir, capsys):
        with pytest.raises(ValueError):
            main(["analyze", "--no-cache", "--jobs", "-2", config_dir])
        capsys.readouterr()


class TestCorpus:
    @pytest.fixture()
    def corpus_dir(self, tmp_path):
        configs, _meta = build_example_networks()
        for archive in ("alpha", "beta"):
            d = tmp_path / "corpus" / archive
            d.mkdir(parents=True)
            for name, text in configs.items():
                (d / name).write_text(text)
        return os.fspath(tmp_path / "corpus")

    def test_table_lists_every_archive(self, corpus_dir, capsys):
        assert main(["corpus", "--no-cache", corpus_dir]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "beta" in out
        assert "TOTAL" in out
        for column in ("parse s", "links s", "inst s", "path s", "parsed/s"):
            assert column in out

    def test_json_payload_shape(self, corpus_dir, capsys):
        import json as json_mod

        assert main(["corpus", "--no-cache", "--json", corpus_dir]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["totals"]["archives"] == 2
        assert payload["totals"]["parsed"] == payload["totals"]["files"] == 12
        names = [e["archive"] for e in payload["archives"]]
        assert names == ["alpha", "beta"]
        stage_names = [s["name"] for s in payload["archives"][0]["stages"]]
        assert stage_names == ["read", "parse", *ANALYSIS_STAGES]
        assert payload["archives"][0]["status"] == "ok"
        assert payload["totals"]["stages"] == {"ok": 2 * len(ANALYSIS_STAGES)}

    def test_warm_cache_parses_zero_files(self, corpus_dir, tmp_path, capsys):
        import json as json_mod

        cache = os.fspath(tmp_path / "cache")
        assert main(["corpus", "--json", "--cache-dir", cache, corpus_dir]) == 0
        cold = json_mod.loads(capsys.readouterr().out)
        # alpha and beta hold identical bytes: the content-addressed cache
        # dedupes across archives even within the cold run.
        assert cold["totals"]["parsed"] == 6
        assert cold["totals"]["cached"] == 6
        assert main(["corpus", "--json", "--cache-dir", cache, corpus_dir]) == 0
        warm = json_mod.loads(capsys.readouterr().out)
        assert warm["totals"]["parsed"] == 0
        assert warm["totals"]["cached"] == 12
        # Timing aside, the warm payload describes the same corpus.
        for cold_e, warm_e in zip(cold["archives"], warm["archives"]):
            assert cold_e["routers"] == warm_e["routers"]
            assert cold_e["exit_code"] == warm_e["exit_code"]
            assert cold_e["quarantined"] == warm_e["quarantined"]

    def test_flat_directory_is_one_archive(self, config_dir, capsys):
        assert main(["corpus", "--no-cache", config_dir]) == 0
        out = capsys.readouterr().out
        assert "1 archive(s)" in out

    def test_rejects_missing_dir(self):
        with pytest.raises(SystemExit):
            main(["corpus", "/nonexistent/place"])

    def test_faulted_archive_folds_exit_code(self, tmp_path, capsys):
        from repro.synth import inject_fault

        configs, _meta = build_example_networks()
        mutated, _fault = inject_fault(configs, "corrupt-ip", seed=2)
        d = tmp_path / "corpus" / "damaged"
        d.mkdir(parents=True)
        for name, text in mutated.items():
            (d / name).write_text(text)
        code = main(["corpus", "--no-cache", os.fspath(tmp_path / "corpus")])
        assert code == 2
        capsys.readouterr()
