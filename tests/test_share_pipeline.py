"""Share pipeline tests: renaming, mapping hygiene, decoy admissibility."""

import json
import os

import pytest

from repro.share import (
    DecoySet,
    ShareError,
    ShareMapping,
    ShareOptions,
    check_decoy_admissible,
    default_mapping_path,
    ensure_mapping_outside,
    share_corpus,
    synthesize_decoys,
)
from repro.synth.templates.enterprise import build_enterprise


def _write_corpus(root, n_networks=2, n_routers=5, **kwargs):
    archives = {}
    for i in range(n_networks):
        d = os.path.join(root, f"net{i}")
        os.makedirs(d)
        configs, _spec = build_enterprise(f"net{i}", i, n_routers, **kwargs)
        for name, text in configs.items():
            with open(os.path.join(d, name + ".cfg"), "w") as handle:
                handle.write(text)
        archives[f"net{i}"] = configs
    return archives


class TestSharePipeline:
    def test_file_names_are_pseudonymous(self, tmp_path):
        root, out = str(tmp_path / "corpus"), str(tmp_path / "shared")
        archives = _write_corpus(root)
        result = share_corpus(root, out, ShareOptions(key=b"k"))
        original_names = {name for configs in archives.values() for name in configs}
        for record in result.archives:
            assert record.shared not in archives  # archive dirs renamed too
            for original, shared in record.files.items():
                stem = os.path.splitext(original)[0]
                assert stem in original_names
                assert stem not in shared
                assert shared.endswith(".cfg")  # extension is structure

    def test_file_stem_matches_content_hostname(self, tmp_path):
        # A file named after its hostname gets the hostname's pseudo-name,
        # so the shared archive remains self-consistent.
        root, out = str(tmp_path / "corpus"), str(tmp_path / "shared")
        _write_corpus(root, n_networks=1)
        result = share_corpus(root, out, ShareOptions(key=b"k"))
        record = result.archives[0]
        for original, shared in record.files.items():
            stem = os.path.splitext(original)[0]
            assert os.path.splitext(shared)[0] == result.mapping.names[stem]
            with open(os.path.join(out, record.shared, shared)) as handle:
                assert f"hostname {result.mapping.names[stem]}" in handle.read()

    def test_no_original_identifier_in_shared_tree(self, tmp_path):
        root, out = str(tmp_path / "corpus"), str(tmp_path / "shared")
        archives = _write_corpus(root)
        share_corpus(root, out, ShareOptions(key=b"k"))
        leaked = []
        for dirpath, _dirs, files in os.walk(out):
            for file_name in files:
                with open(os.path.join(dirpath, file_name)) as handle:
                    text = handle.read()
                for configs in archives.values():
                    for router in configs:
                        if router in text or router in file_name:
                            leaked.append(router)
        assert not leaked

    def test_flat_directory_is_one_archive(self, tmp_path):
        root, out = str(tmp_path / "corpus"), str(tmp_path / "shared")
        os.makedirs(root)
        configs, _spec = build_enterprise("flat", 0, 4)
        for name, text in configs.items():
            with open(os.path.join(root, name + ".cfg"), "w") as handle:
                handle.write(text)
        result = share_corpus(root, out, ShareOptions(key=b"k"))
        assert len(result.archives) == 1
        assert result.archives[0].shared is None
        assert len(os.listdir(out)) == len(configs)

    def test_binary_files_are_skipped(self, tmp_path):
        root, out = str(tmp_path / "corpus"), str(tmp_path / "shared")
        _write_corpus(root, n_networks=1)
        with open(os.path.join(root, "net0", "core.dump"), "wb") as handle:
            handle.write(b"\x00\x01\x02")
        result = share_corpus(root, out, ShareOptions(key=b"k"))
        assert result.archives[0].skipped == ["core.dump"]
        assert "core.dump" not in result.archives[0].files

    def test_share_is_deterministic_per_key(self, tmp_path):
        root = str(tmp_path / "corpus")
        _write_corpus(root, n_networks=1)
        a = share_corpus(root, str(tmp_path / "a"), ShareOptions(key=b"k"))
        b = share_corpus(root, str(tmp_path / "b"), ShareOptions(key=b"k"))
        assert a.mapping.names == b.mapping.names
        assert a.mapping.addresses == b.mapping.addresses
        c = share_corpus(root, str(tmp_path / "c"), ShareOptions(key=b"other"))
        assert c.mapping.names != a.mapping.names


class TestMappingHygiene:
    def test_default_mapping_path_is_outside(self, tmp_path):
        out = str(tmp_path / "shared")
        path = default_mapping_path(out)
        ensure_mapping_outside(out, path)  # must not raise
        assert not os.path.normpath(path).startswith(os.path.normpath(out) + os.sep)

    def test_mapping_inside_outdir_rejected(self, tmp_path):
        out = str(tmp_path / "shared")
        os.makedirs(out)
        with pytest.raises(ValueError, match="never travel"):
            ensure_mapping_outside(out, os.path.join(out, "mapping.json"))
        with pytest.raises(ValueError, match="never travel"):
            ensure_mapping_outside(out, os.path.join(out, "deep", "mapping.json"))

    def test_mapping_round_trip(self, tmp_path):
        root, out = str(tmp_path / "corpus"), str(tmp_path / "shared")
        _write_corpus(root, n_networks=1)
        result = share_corpus(root, out, ShareOptions(key=b"k", decoys=3))
        path = str(tmp_path / "mapping.json")
        result.mapping.write(path)
        loaded = ShareMapping.read(path)
        assert loaded.key == b"k"
        assert loaded.names == result.mapping.names
        assert loaded.decoy_routers("net0") == result.mapping.decoy_routers("net0")

    def test_mapping_schema_guard(self, tmp_path):
        path = str(tmp_path / "bogus.json")
        with open(path, "w") as handle:
            json.dump({"schema": "something-else"}, handle)
        with pytest.raises(ValueError, match="share mapping"):
            ShareMapping.read(path)

    def test_mapping_records_decoy_inventory(self, tmp_path):
        root, out = str(tmp_path / "corpus"), str(tmp_path / "shared")
        _write_corpus(root, n_networks=1)
        result = share_corpus(root, out, ShareOptions(key=b"k", decoys=3))
        decoys = result.mapping.archives["net0"]["decoys"]
        assert decoys["count"] == len(decoys["routers"]) > 0
        assert set(decoys["files"]) <= set(
            os.listdir(os.path.join(out, result.archives[0].shared))
        )
        # every decoy router is role-stamped for the trusted party
        assert set(decoys["role_stamps"]) == set(decoys["routers"])


class TestDecoyAdmissibility:
    def test_admissible_decoys_found(self, tmp_path):
        root = str(tmp_path / "corpus")
        _write_corpus(root, n_networks=1)
        result = share_corpus(
            root, str(tmp_path / "shared"), ShareOptions(key=b"k", decoys=4)
        )
        assert result.archives[0].decoys is not None
        assert len(result.archives[0].decoys.routers) >= 4

    def test_name_collision_rejected(self):
        configs, _spec = build_enterprise("real", 0, 4)
        real_files = {name + ".cfg": text for name, text in configs.items()}
        decoy = DecoySet(
            salt=0,
            template="enterprise",
            files={"real-r0.cfg": "hostname real-r0\n"},
            routers=("real-r0",),
        )
        reason = check_decoy_admissible(real_files, decoy)
        assert reason is not None and "collision" in reason

    def test_shared_subnet_rejected(self):
        configs, _spec = build_enterprise("real", 0, 4)
        real_files = {name + ".cfg": text for name, text in configs.items()}
        # A decoy squatting on one of the real network's own interfaces.
        real_text = next(iter(configs.values()))
        address_line = next(
            line for line in real_text.splitlines() if "ip address" in line
        )
        decoy_text = f"hostname intruder\ninterface Ethernet0\n{address_line}\n"
        decoy = DecoySet(
            salt=0,
            template="enterprise",
            files={"intruder.cfg": decoy_text},
            routers=("intruder",),
        )
        reason = check_decoy_admissible(real_files, decoy)
        assert reason is not None

    def test_broken_decoy_rejected(self):
        configs, _spec = build_enterprise("real", 0, 4)
        real_files = {name + ".cfg": text for name, text in configs.items()}
        decoy = DecoySet(
            salt=0,
            template="enterprise",
            files={"ghost.cfg": "interface \n"},
            routers=("ghost",),
        )
        assert check_decoy_admissible(real_files, decoy) is not None

    def test_synthesized_decoys_reroll_with_salt(self):
        a = synthesize_decoys("net0", b"k", 0, 4)
        b = synthesize_decoys("net0", b"k", 1, 4)
        assert set(a.files) != set(b.files)
        assert a.routers != b.routers

    def test_exhausted_probe_budget_raises(self, tmp_path, monkeypatch):
        root = str(tmp_path / "corpus")
        _write_corpus(root, n_networks=1)
        import repro.share.pipeline as pipeline_module

        monkeypatch.setattr(
            pipeline_module,
            "check_decoy_admissible",
            lambda files, decoy: "vetoed by test",
        )
        with pytest.raises(ShareError, match="vetoed by test"):
            share_corpus(
                root,
                str(tmp_path / "shared"),
                ShareOptions(key=b"k", decoys=4, max_salt_probes=2),
            )

    def test_bad_template_rejected(self):
        with pytest.raises(ShareError, match="template"):
            ShareOptions(key=b"k", decoys=2, decoy_template="nonsense")
