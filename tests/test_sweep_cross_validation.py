"""Static §8.1 predictions cross-validated against the dynamic sweep.

The paper's survivability battery is a *static* analysis: articulation
routers and single-point-of-failure instance couplings are read off the
graph structure without simulating anything.  The sweep engine is the
*dynamic* check: actually fail the router and measure what the rest of
the network loses.  This module asserts the two agree on every synth
template — each statically-predicted fragile router must, when failed in
simulation, cost surviving routers reachability pairs or partition a
routing instance.

Known gaps
----------
``KNOWN_GAPS`` documents statically-predicted routers whose dynamic
failure shows no impact — static-only false positives.  A graph
articulation point can be dynamically harmless when redundant routing
information (e.g. static routes or a parallel BGP path) covers the cut;
the static battery cannot see that.  As of the current templates the
list is **empty**: every articulation router and every fragile-coupling
router measurably damages reachability.  If a template change introduces
a genuine false positive, add ``(template, router)`` here with a comment
explaining the covering mechanism rather than weakening the assertion.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

import pytest

from repro.core.survivability import analyze_survivability
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.sweep import ScenarioPlan, SweepConfig, enumerate_scenarios, run_network_sweep

#: ``(template, router)`` pairs where the static battery flags fragility
#: the dynamic sweep cannot reproduce.  Empty today; see the module
#: docstring before adding entries.
KNOWN_GAPS: Set[Tuple[str, str]] = set()

TEMPLATES = ("fig1", "enterprise_net", "backbone_net", "tier2_net", "net5_small")


def _static_targets(report) -> Dict[str, Set[str]]:
    """``{router: why}`` for every statically-predicted fragile router."""
    targets: Dict[str, Set[str]] = {}
    for router in report.articulation_routers:
        targets.setdefault(router, set()).add("articulation")
    for coupling in report.couplings:
        if coupling.is_single_point_of_failure:
            for router in coupling.routers:
                targets.setdefault(router, set()).add("fragile-coupling")
    return targets


@pytest.mark.parametrize("template", TEMPLATES)
def test_static_fragility_reproduces_dynamically(template, request):
    network, _meta = request.getfixturevalue(template)
    report = analyze_survivability(network)
    targets = _static_targets(report)
    if not targets:
        pytest.skip(f"{template}: static battery predicts no fragile routers")

    plan = enumerate_scenarios(network, survivability=report)
    subset = [
        scenario
        for scenario in plan.scenarios
        if scenario.kind == "router" and scenario.failed_routers[0] in targets
    ]
    assert len(subset) == len(targets)  # every prediction gets simulated
    with use_registry(MetricsRegistry()):
        result = run_network_sweep(
            network,
            template,
            config=SweepConfig(jobs=0),  # auto: parallel only when it pays
            plan=ScenarioPlan(scenarios=subset, singles=len(subset)),
        )
    assert result.worst_status == "ok"

    unreproduced = []
    for row in result.rows:
        router = row["failed_routers"][0]
        delta = row["delta"]
        dynamic_impact = delta["lost_pairs"] > 0 or delta["partitioned_instances"]
        if not dynamic_impact and (template, router) not in KNOWN_GAPS:
            unreproduced.append((router, sorted(targets[router]), delta))
    assert not unreproduced, (
        "statically-predicted fragile routers with no dynamic impact "
        f"(add to KNOWN_GAPS only with an explained covering mechanism): "
        f"{unreproduced}"
    )


def test_known_gaps_stay_current(request):
    """Every KNOWN_GAPS entry must still be a static prediction — stale
    entries (template changed, router renamed) must be pruned."""
    for template, router in sorted(KNOWN_GAPS):
        network, _meta = request.getfixturevalue(template)
        targets = _static_targets(analyze_survivability(network))
        assert router in targets, (
            f"KNOWN_GAPS entry ({template!r}, {router!r}) is no longer a "
            "static prediction; remove it"
        )
