"""Template ground-truth recovery: the analyzer must blindly rediscover
what each generator built, from serialized IOS text alone."""

from collections import Counter

import pytest

from repro.core import compute_instances
from repro.core.instances import find_external_adjacent_instances
from repro.model import Network
from repro.synth.templates.enterprise import build_enterprise
from repro.synth.templates.hybrid import build_hybrid
from repro.synth.templates.net5 import build_net5


def recovered_instances(configs):
    net = Network.from_configs(configs)
    return net, compute_instances(net)


class TestEnterpriseTemplate:
    @pytest.mark.parametrize("igp", ["ospf", "eigrp", "rip"])
    def test_igp_variants(self, igp):
        configs, spec = build_enterprise("e", 20, 10, seed=2, igp=igp)
        net, instances = recovered_instances(configs)
        got = sorted((i.protocol, i.size) for i in instances)
        want = sorted((e.protocol, e.size) for e in spec.expected_instances)
        assert got == want

    def test_two_igp_instances_variant(self):
        configs, spec = build_enterprise(
            "e2", 21, 15, seed=3, n_igp_instances=2
        )
        _net, instances = recovered_instances(configs)
        ospf = [i for i in instances if i.protocol == "ospf"]
        assert len(ospf) == 2

    def test_external_interfaces_recovered_exactly(self):
        configs, spec = build_enterprise("e3", 22, 12, seed=4, n_borders=2)
        net = Network.from_configs(configs)
        assert net.external_interfaces == set(spec.external_interfaces)

    def test_without_filters(self):
        configs, spec = build_enterprise("e4", 23, 8, seed=5, with_filters=False)
        assert all("access-group" not in text for text in configs.values())


class TestHybridTemplate:
    def test_instance_multiset_matches_ground_truth(self):
        configs, spec = build_hybrid("h", 24, 40, seed=6)
        _net, instances = recovered_instances(configs)
        got = Counter((i.protocol, i.size) for i in instances)
        want = Counter((e.protocol, e.size) for e in spec.expected_instances)
        assert got == want

    def test_external_igp_leaves_recovered(self):
        configs, spec = build_hybrid("h2", 25, 60, seed=7, p_leaf_external=0.5)
        net, instances = recovered_instances(configs)
        external_ids = find_external_adjacent_instances(net, instances)
        got_external_igp = sum(
            1
            for i in instances
            if i.protocol != "bgp" and i.instance_id in external_ids
        )
        want = sum(
            1 for e in spec.expected_instances if e.protocol != "bgp" and e.external
        )
        assert got_external_igp == want

    def test_no_bgp_variant(self):
        configs, spec = build_hybrid("h3", 26, 20, seed=8, use_bgp=False)
        net = Network.from_configs(configs)
        assert not any(r.config.bgp_process for r in net.routers.values())
        # Static uplinks still give the network an edge.
        assert net.external_interfaces

    def test_router_count_exact(self):
        configs, spec = build_hybrid("h4", 27, 37, seed=9)
        assert len(configs) == 37 == spec.router_count


class TestNet5Template:
    def test_scaling_preserves_structure(self):
        for scale in (0.1, 0.25):
            configs, spec = build_net5(scale=scale, name="n5s")
            _net, instances = recovered_instances(configs)
            assert len(instances) == 24
            bgp_asns = {i.asn for i in instances if i.protocol == "bgp"}
            assert len(bgp_asns) == 14

    def test_full_scale_router_count(self):
        # Generation only (no parse): the full-scale net5 is 881 routers.
        configs, spec = build_net5(scale=1.0, name="n5f")
        assert len(configs) == 881 == spec.router_count

    def test_three_named_compartments_dominate(self, net5_small):
        _net, spec = net5_small
        eigrp_sizes = sorted(
            (e.size for e in spec.expected_instances if e.protocol == "eigrp"),
            reverse=True,
        )
        assert eigrp_sizes[0] > sum(eigrp_sizes[1:]) / 2


class TestNet15Template:
    def test_six_instances(self, net15_full):
        net, spec = net15_full
        instances = compute_instances(net)
        assert len(instances) == 6
        assert Counter(i.protocol for i in instances) == {"bgp": 4, "ospf": 2}

    def test_router_count_79(self, net15_full):
        net, _spec = net15_full
        assert len(net) == 79

    def test_policies_in_ground_truth(self, net15_full):
        _net, spec = net15_full
        assert set(spec.notes["policies"]) == {"A1", "A2", "A3", "A4", "A5"}
