"""Observability primitives: structured logging, metrics, tracing."""

import io
import json
import logging

import pytest

from repro.obs.logging import (
    JsonFormatter,
    KeyValueFormatter,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    use_registry,
)
from repro.obs.trace import Tracer, activate_tracer, current_tracer, traced


class TestMetricsPrimitives:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(8)
        gauge.dec(3)
        gauge.inc(1)
        assert gauge.value == 6

    def test_histogram_summary(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        summary = histogram.as_dict()
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == 2.0


class TestRegistry:
    def test_same_name_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_labels_partition_series(self):
        registry = MetricsRegistry()
        registry.counter("diag", severity="error").inc()
        registry.counter("diag", severity="warning").inc(2)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["diag{severity=error}"] == 1
        assert snapshot["counters"]["diag{severity=warning}"] == 2

    def test_snapshot_is_sorted_and_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        json.dumps(snapshot)  # must not raise

    def test_use_registry_isolates(self):
        outer = get_registry()
        with use_registry() as inner:
            assert get_registry() is inner
            inner.counter("scoped").inc()
        assert get_registry() is outer
        assert "scoped" not in outer.snapshot()["counters"]


class TestTracer:
    def test_nested_spans(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", detail=1):
                pass
        (root,) = tracer.roots
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner"]
        assert root.children[0].attributes == {"detail": 1}

    def test_span_tree_shape(self):
        tracer = Tracer()
        with tracer.span("a") as span:
            span.set(items=3)
        tree = tracer.span_tree()
        assert tree[0]["name"] == "a"
        assert tree[0]["attributes"] == {"items": 3}
        assert tree[0]["seconds"] >= 0

    def test_chrome_trace_events(self):
        tracer = Tracer()
        with tracer.span("a"):
            tracer.add_complete("b", 0.01, items=2)
        trace = tracer.chrome_trace()
        names = [event["name"] for event in trace["traceEvents"]]
        assert names == ["a", "b"]
        for event in trace["traceEvents"]:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
        json.dumps(trace)

    def test_activate_tracer_scoping(self):
        assert current_tracer() is None
        tracer = Tracer()
        with activate_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_activate_none_is_noop(self):
        with activate_tracer(None) as active:
            assert active is None
            assert current_tracer() is None


class TestTracedDecorator:
    def test_records_metrics_and_span(self):
        @traced("thing", metric="analysis.thing")
        def work(x):
            return x * 2

        tracer = Tracer()
        with use_registry() as registry, activate_tracer(tracer):
            assert work(21) == 42
        counters = registry.snapshot()["counters"]
        assert counters["analysis.thing.calls"] == 1
        assert registry.snapshot()["histograms"]["analysis.thing.seconds"]["count"] == 1
        assert [s.name for s in tracer.roots] == ["thing"]

    def test_works_without_tracer(self):
        @traced("quiet")
        def work():
            return "ok"

        with use_registry() as registry:
            assert work() == "ok"
        assert registry.snapshot()["counters"]["analysis.quiet.calls"] == 1


class TestStructuredLogging:
    def _capture(self, json_mode, level="info"):
        stream = io.StringIO()
        configure_logging(level=level, json_mode=json_mode, stream=stream)
        return stream

    def teardown_method(self):
        # Leave the root logger quiet for other tests.
        configure_logging(level="warning")

    def test_key_value_rendering(self):
        stream = self._capture(json_mode=False)
        get_logger("test").info("something happened", files=3, archive="x")
        line = stream.getvalue().strip()
        assert "something happened" in line
        assert "files=3" in line
        assert "archive=x" in line

    def test_json_rendering(self):
        stream = self._capture(json_mode=True)
        get_logger("test").warning("bad thing", count=2)
        record = json.loads(stream.getvalue())
        assert record["event"] == "bad thing"
        assert record["count"] == 2
        assert record["level"] == "warning"
        assert record["logger"] == "repro.test"

    def test_level_filtering(self):
        stream = self._capture(json_mode=False, level="error")
        get_logger("test").info("dropped")
        get_logger("test").error("kept")
        assert "dropped" not in stream.getvalue()
        assert "kept" in stream.getvalue()

    def test_configure_is_idempotent(self):
        stream = self._capture(json_mode=False)
        stream2 = io.StringIO()
        configure_logging(level="info", json_mode=False, stream=stream2)
        get_logger("test").info("once")
        assert stream.getvalue() == ""  # old handler replaced, not stacked
        assert stream2.getvalue().count("once") == 1

    def test_formatters_handle_plain_records(self):
        # Records emitted by stdlib logging without our fields attribute.
        record = logging.LogRecord("x", logging.INFO, "f", 1, "plain %s", ("msg",), None)
        assert "plain msg" in KeyValueFormatter().format(record)
        assert json.loads(JsonFormatter().format(record))["event"] == "plain msg"


class TestPipelineMetrics:
    def test_ingest_populates_counters(self, tmp_path):
        from repro.model import Network

        config = "hostname r1\ninterface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
        (tmp_path / "r1.cfg").write_text(config)
        (tmp_path / "junk.bin").write_bytes(b"\x00\x01\x02")
        with use_registry() as registry:
            network = Network.from_directory(str(tmp_path), on_error="skip-block")
        counters = registry.snapshot()["counters"]
        assert counters["ingest.files.parsed"] == 1
        assert counters["ingest.files.quarantined"] == 1
        assert counters["ingest.parse.files"] == 1
        assert len(network.inventory) == 2

    def test_cache_counters_reconcile_with_stats(self, tmp_path):
        from repro.ingest import ParseCache
        from repro.model import Network

        archive = tmp_path / "archive"
        archive.mkdir()
        (archive / "r1.cfg").write_text(
            "hostname r1\ninterface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
        )
        cache = ParseCache(root=str(tmp_path / "cache"))
        with use_registry() as registry:
            Network.from_directory(str(archive), cache=cache)
            Network.from_directory(str(archive), cache=cache)
        counters = registry.snapshot()["counters"]
        assert counters["cache.misses"] == cache.stats.misses == 1
        assert counters["cache.stores"] == cache.stats.stores == 1
        assert counters["cache.hits"] == cache.stats.hits == 1

    def test_analysis_timings_recorded(self, enterprise_net):
        from repro.core import compute_instances

        net, _spec = enterprise_net
        with use_registry() as registry:
            compute_instances(net)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["analysis.instances.calls"] == 1
        assert snapshot["histograms"]["analysis.instances.seconds"]["count"] == 1

    def test_stage_timer_forwards_to_tracer(self):
        from repro.ingest import StageTimer

        tracer = Tracer()
        timer = StageTimer()
        with activate_tracer(tracer):
            with timer.stage("read") as record:
                record.items = 7
            timer.record("parse", 0.5, items=3, counters={"cached": 1})
        names = [span.name for span in tracer.roots]
        assert names == ["stage:read", "stage:parse"]
        assert tracer.roots[0].attributes["items"] == 7
        assert tracer.roots[1].attributes == {"items": 3, "cached": 1}
