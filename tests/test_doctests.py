"""Run the doctest examples embedded in docstrings."""

import doctest

import pytest

import repro.ios.config
import repro.net.ipv4


@pytest.mark.parametrize(
    "module",
    [repro.net.ipv4, repro.ios.config],
    ids=lambda m: m.__name__,
)
def test_doctests(module):
    results = doctest.testmod(module)
    assert results.failed == 0
    assert results.attempted > 0
