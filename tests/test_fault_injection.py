"""Fault-injection harness: every mutator, many seeds, lenient recovery.

The acceptance bar: for any single injected fault, lenient ingestion must
complete, analyze the surviving routers, and emit at least one diagnostic
naming the damaged file — while strict mode still refuses archives whose
fault is strict-detectable.
"""

import os

import pytest

from repro.model import Network
from repro.synth import fault_kinds, inject_fault
from repro.synth.templates.example_fig1 import build_example_networks

SEEDS = range(20)

JUNOS_PE9 = """\
system {
    host-name pe9;
}
interfaces {
    so-0/0/0 {
        unit 0 {
            family inet {
                address 10.200.0.1/30;
            }
        }
    }
    lo0 {
        unit 0 {
            family inet {
                address 10.200.9.9/32;
            }
        }
    }
}
routing-options {
    autonomous-system 65010;
    static {
        route 172.30.0.0/16 next-hop 10.200.0.2;
    }
}
protocols {
    ospf {
        area 0.0.0.0 {
            interface so-0/0/0.0;
        }
    }
}
"""


def base_corpus():
    configs, _meta = build_example_networks()
    configs = dict(configs)
    configs["pe9"] = JUNOS_PE9
    return configs


@pytest.fixture(scope="module")
def corpus():
    return base_corpus()


def write_archive(path, configs):
    for name, text in configs.items():
        (path / name).write_text(text)
    return os.fspath(path)


class TestHarnessBasics:
    def test_all_kinds_registered(self):
        assert set(fault_kinds()) == {
            "truncate-file",
            "drop-lines",
            "inject-unknown",
            "corrupt-ip",
            "duplicate-hostname",
            "splice-files",
        }

    def test_unknown_kind_rejected(self, corpus):
        with pytest.raises(ValueError):
            inject_fault(corpus, "set-on-fire", seed=0)

    def test_deterministic_per_seed(self, corpus):
        first_configs, first_fault = inject_fault(corpus, "drop-lines", seed=11)
        again_configs, again_fault = inject_fault(corpus, "drop-lines", seed=11)
        assert first_configs == again_configs
        assert first_fault == again_fault

    def test_seeds_differ(self, corpus):
        outcomes = {
            inject_fault(corpus, "corrupt-ip", seed=s)[1].description
            for s in range(10)
        }
        assert len(outcomes) > 1

    def test_originals_untouched(self, corpus):
        pristine = base_corpus()
        inject_fault(corpus, "truncate-file", seed=0)
        assert corpus == pristine

    def test_fault_names_real_file(self, corpus):
        for kind in fault_kinds():
            _, fault = inject_fault(corpus, kind, seed=3)
            assert fault.files
            assert all(name in corpus for name in fault.files)


@pytest.mark.parametrize("kind", sorted(fault_kinds()))
@pytest.mark.parametrize("seed", SEEDS)
class TestSingleFaultRecovery:
    def test_lenient_survives_and_diagnoses(self, corpus, tmp_path, kind, seed):
        mutated, fault = inject_fault(corpus, kind, seed=seed)
        archive = write_archive(tmp_path, mutated)

        network = Network.from_directory(archive, on_error="skip-block")

        # Ingestion completed and kept every router outside the blast radius.
        assert len(network.routers) >= len(corpus) - len(fault.files)
        # The damage is reported, not silently absorbed.
        assert any(d.file in fault.files for d in network.diagnostics), fault
        # The surviving model still supports the paper's analyses.
        network.links
        network.processes
        network.bgp_sessions

    def test_strict_raises_when_fault_is_detectable(
        self, corpus, tmp_path, kind, seed
    ):
        mutated, fault = inject_fault(corpus, kind, seed=seed)
        archive = write_archive(tmp_path, mutated)
        if not fault.strict_raises:
            Network.from_directory(archive, on_error="strict")
        else:
            with pytest.raises(Exception):
                Network.from_directory(archive, on_error="strict")


class TestAnalysisMutators:
    """Valid-config workload amplifiers for the resilient executor.

    These live in their own registry: they must never appear in
    ``fault_kinds()`` (the lint harness asserts every parse-fault kind is
    diagnosable as damage — these are not damage), and strict ingestion
    must accept every mutated corpus without complaint.
    """

    def test_registry_is_disjoint_from_parse_faults(self):
        from repro.synth import analysis_fault_kinds

        assert set(analysis_fault_kinds()) == {
            "adjacency-storm",
            "redist-chain",
            "subnet-spray",
        }
        assert not set(analysis_fault_kinds()) & set(fault_kinds())

    def test_unknown_kind_rejected(self, corpus):
        from repro.synth import inject_analysis_fault

        with pytest.raises(ValueError):
            inject_analysis_fault(corpus, "gravity-storm", seed=0)

    def test_deterministic_per_seed(self, corpus):
        from repro.synth import inject_analysis_fault

        first = inject_analysis_fault(corpus, "subnet-spray", seed=11)
        again = inject_analysis_fault(corpus, "subnet-spray", seed=11)
        assert first == again

    @pytest.mark.parametrize(
        "kind", ["adjacency-storm", "redist-chain", "subnet-spray"]
    )
    def test_mutated_corpus_still_parses_strict(self, corpus, kind):
        from repro.synth import inject_analysis_fault

        mutated, fault = inject_analysis_fault(corpus, kind, seed=5)
        assert not fault.strict_raises
        network = Network.from_configs(mutated, name="amplified")
        assert len(network) == len(Network.from_configs(corpus, name="base"))

    def test_adjacency_storm_inflates_the_process_graph(self, corpus):
        from repro.core.process_graph import build_process_graph
        from repro.synth import inject_analysis_fault

        mutated, _fault = inject_analysis_fault(corpus, "adjacency-storm", seed=5)
        base = build_process_graph(Network.from_configs(corpus, name="base"))
        storm = build_process_graph(Network.from_configs(mutated, name="storm"))
        assert storm.number_of_edges() > 3 * base.number_of_edges()

    def test_redist_chain_deepens_one_router(self, corpus):
        from repro.synth import inject_analysis_fault

        mutated, fault = inject_analysis_fault(corpus, "redist-chain", seed=5)
        network = Network.from_configs(mutated, name="chained")
        config = network.routers[os.path.splitext(fault.file)[0]].config
        assert len(config.ospf_processes) + len(config.eigrp_processes) >= 12

    def test_subnet_spray_multiplies_prefixes(self, corpus):
        from repro.synth import inject_analysis_fault

        mutated, fault = inject_analysis_fault(corpus, "subnet-spray", seed=5)
        assert (
            mutated[fault.file].count("interface Loopback")
            >= corpus[fault.file].count("interface Loopback") + 96
        )
