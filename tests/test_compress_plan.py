"""Compression-plan construction: determinism, exactness, quotient shape."""

import random

from repro.compress import build_compression_plan, build_quotient
from repro.compress.signature import local_signature, signature_colors
from repro.model import Network
from repro.synth.templates.pods import build_pods


def _pod_network(n_routers=40, access_per_pod=4, name="pod"):
    configs, _spec = build_pods("pod", 1, n_routers, access_per_pod=access_per_pod)
    return Network.from_configs(configs, name=name), configs


def test_pod_fabric_collapses_to_position_classes():
    network, _ = _pod_network(64, access_per_pod=6)
    plan = build_compression_plan(network)
    # Core, border, aggregation, access — one class per pod position.
    assert plan.n_classes == 4
    assert plan.n_routers == len(network)
    roles = {cls.role for cls in plan.classes}
    assert "border" in roles or "glue" in roles
    by_size = sorted(cls.size for cls in plan.classes)
    assert by_size[:2] == [2, 2]  # cores and borders


def test_every_router_lands_in_exactly_one_class():
    network, _ = _pod_network()
    plan = build_compression_plan(network)
    covered = [m for cls in plan.classes for m in cls.members]
    assert sorted(covered) == sorted(network.routers)
    assert set(covered) == set(plan.router_class)
    for cls in plan.classes:
        assert cls.representative == cls.members[0]
        assert all(plan.router_class[m] == cls.class_id for m in cls.members)


def test_plan_is_ingestion_order_independent():
    network, configs = _pod_network()
    items = list(configs.items())
    random.Random(7).shuffle(items)
    shuffled = Network.from_configs(dict(items), name="pod")
    plan_a = build_compression_plan(network)
    plan_b = build_compression_plan(shuffled)
    assert [cls.members for cls in plan_a.classes] == [
        cls.members for cls in plan_b.classes
    ]
    assert plan_a.router_class == plan_b.router_class


def test_class_members_share_local_signature():
    network, _ = _pod_network()
    plan = build_compression_plan(network)
    for cls in plan.classes:
        signatures = {local_signature(network, m) for m in cls.members}
        assert len(signatures) == 1


def test_wl_colors_split_topologically_distinct_routers():
    network, _ = _pod_network(40, access_per_pod=4)
    colors = signature_colors(network)
    core = "pod-core0"
    access = "pod-p0-acc0"
    assert colors[core] != colors[access]


def test_quotient_preserves_link_mass():
    network, _ = _pod_network()
    summary = build_quotient(network)
    assert summary.n_concrete_links == len(network.links)
    assert summary.n_quotient_links <= summary.n_concrete_links
    assert len(summary.quotient) == summary.plan.n_classes
    # Multiplicity keys reference real class ids.
    class_ids = {cls.class_id for cls in summary.plan.classes}
    for key in summary.link_multiplicity:
        assert set(key) <= class_ids
