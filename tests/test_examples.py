"""Examples-as-tests: every shipped example must run to completion.

Keeps the README's runnable walk-throughs from rotting as the library
evolves.  Each example is executed in-process with output captured.
"""

import runpy
import sys

import pytest

EXAMPLES = [
    "examples/quickstart.py",
    "examples/reachability_analysis.py",
    "examples/anonymize_and_share.py",
    "examples/what_if_analysis.py",
    "examples/vendor_migration.py",
]


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.split("/")[-1])
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), "examples must narrate what they do"


def test_enterprise_audit_small_scale(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/enterprise_audit.py", "0.08"])
    runpy.run_path("examples/enterprise_audit.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "routing instances" in out
    assert "can NO LONGER" in out  # the partition question answered


def test_corpus_study_small_scale(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/corpus_study.py", "0.05"])
    runpy.run_path("examples/corpus_study.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "4 backbone, 7 enterprise, 20 unclassifiable" in out
