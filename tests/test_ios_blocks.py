"""Tests for the line/block structure layer."""

from repro.ios.blocks import split_blocks


class TestSplitBlocks:
    def test_flat_commands(self):
        blocks, lines, commands = split_blocks("ip cef\nip classless\n")
        assert [b.line for b in blocks] == ["ip cef", "ip classless"]
        assert (lines, commands) == (2, 2)

    def test_children_attach_to_parent(self):
        blocks, _, _ = split_blocks("interface Ethernet0\n ip address 1.2.3.4 255.0.0.0\n")
        assert len(blocks) == 1
        assert blocks[0].child_lines() == ["ip address 1.2.3.4 255.0.0.0"]

    def test_bang_separator_closes_stanza(self):
        text = "interface Ethernet0\n!\n shutdown\n"
        blocks, _, _ = split_blocks(text)
        # After "!", the indented line cannot attach to the interface.
        assert blocks[0].children == []
        assert blocks[1].line == "shutdown"

    def test_comments_counted_as_lines_not_commands(self):
        _, lines, commands = split_blocks("! a comment\nip cef\n")
        assert (lines, commands) == (2, 1)

    def test_blank_lines_ignored(self):
        _, lines, commands = split_blocks("\n\nip cef\n\n")
        assert (lines, commands) == (1, 1)

    def test_nested_indentation(self):
        text = "router bgp 1\n address-family ipv4\n  network 10.0.0.0\n"
        blocks, _, _ = split_blocks(text)
        family = blocks[0].children[0]
        assert family.line == "address-family ipv4"
        assert family.children[0].line == "network 10.0.0.0"

    def test_sibling_after_nested(self):
        text = "router bgp 1\n address-family ipv4\n  network 10.0.0.0\n neighbor 1.1.1.1 remote-as 2\n"
        blocks, _, _ = split_blocks(text)
        assert [c.line for c in blocks[0].children] == [
            "address-family ipv4",
            "neighbor 1.1.1.1 remote-as 2",
        ]

    def test_walk_visits_all(self):
        text = "a\n b\n  c\n d\n"
        blocks, _, _ = split_blocks(text)
        assert [node.line for node in blocks[0].walk()] == ["a", "b", "c", "d"]

    def test_line_numbers(self):
        blocks, _, _ = split_blocks("ip cef\n\ninterface Ethernet0\n")
        assert blocks[0].line_number == 1
        assert blocks[1].line_number == 3

    def test_words(self):
        blocks, _, _ = split_blocks("ip route 10.0.0.0 255.0.0.0 1.1.1.1\n")
        assert blocks[0].words[:2] == ["ip", "route"]
