"""Property-based serialize/parse round trips over random configurations.

Hypothesis builds arbitrary (valid) RouterConfig models; serializing and
reparsing must reproduce an equivalent model.  This pins down the
parser/serializer contract far beyond the hand-written cases.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ios import parse_config, serialize_config
from repro.ios.config import (
    AccessList,
    AclRule,
    BgpNeighbor,
    BgpProcess,
    EigrpProcess,
    InterfaceConfig,
    NetworkStatement,
    OspfProcess,
    RedistributeConfig,
    RouteMap,
    RouteMapClause,
    RouterConfig,
    StaticRoute,
)
from repro.net import IPv4Address, Prefix
from repro.net.ipv4 import prefix_len_to_mask

# -- strategies -------------------------------------------------------------

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF).map(IPv4Address)
masked_lengths = st.integers(min_value=1, max_value=30)
names = st.text(
    alphabet=st.sampled_from("ABCDEFGHIJKLMNOPQRSTUVWXYZ-0123456789"),
    min_size=1,
    max_size=12,
).filter(lambda s: not s[0].isdigit() and not s.startswith("-"))


@st.composite
def prefixed_interfaces(draw, index):
    kind = draw(st.sampled_from(["Serial", "FastEthernet", "Ethernet", "POS", "Hssi"]))
    name = f"{kind}{index}/0"
    length = draw(masked_lengths)
    address = draw(addresses)
    iface = InterfaceConfig(
        name=name,
        address=address,
        netmask=IPv4Address(prefix_len_to_mask(length)),
        point_to_point=draw(st.booleans()),
        shutdown=draw(st.booleans()),
        bandwidth_kbit=draw(st.one_of(st.none(), st.integers(1, 10_000_000))),
    )
    return iface


@st.composite
def network_statements(draw, with_area=False):
    length = draw(masked_lengths)
    stmt = NetworkStatement(
        address=Prefix(draw(addresses).value, length).network,
        wildcard=IPv4Address((~prefix_len_to_mask(length)) & 0xFFFFFFFF),
    )
    if with_area:
        stmt.area = str(draw(st.integers(0, 100)))
    return stmt


@st.composite
def redistributes(draw):
    protocol = draw(st.sampled_from(["connected", "static", "ospf", "bgp", "eigrp", "rip"]))
    source_id = None
    if protocol in ("ospf", "bgp", "eigrp"):
        source_id = draw(st.integers(1, 65535))
    return RedistributeConfig(
        source_protocol=protocol,
        source_id=source_id,
        metric=draw(st.one_of(st.none(), st.integers(1, 1000))),
        subnets=draw(st.booleans()),
        tag=draw(st.one_of(st.none(), st.integers(1, 4000))),
    )


@st.composite
def acl_rules(draw):
    action = draw(st.sampled_from(["permit", "deny"]))
    if draw(st.booleans()):
        return AclRule(action=action, source_any=True)
    length = draw(masked_lengths)
    return AclRule(
        action=action,
        source=Prefix(draw(addresses).value, length).network,
        source_wildcard=IPv4Address((~prefix_len_to_mask(length)) & 0xFFFFFFFF),
    )


@st.composite
def router_configs(draw):
    config = RouterConfig(hostname=draw(names))
    n_ifaces = draw(st.integers(1, 5))
    for index in range(n_ifaces):
        iface = draw(prefixed_interfaces(index))
        config.interfaces[iface.name] = iface

    if draw(st.booleans()):
        process = OspfProcess(process_id=draw(st.integers(1, 65535)))
        process.networks.extend(
            draw(st.lists(network_statements(with_area=True), max_size=3))
        )
        process.redistributes.extend(draw(st.lists(redistributes(), max_size=2)))
        config.ospf_processes.append(process)
    if draw(st.booleans()):
        process = EigrpProcess(asn=draw(st.integers(1, 65535)))
        process.networks.extend(draw(st.lists(network_statements(), max_size=3)))
        config.eigrp_processes.append(process)
    if draw(st.booleans()):
        bgp = BgpProcess(asn=draw(st.integers(1, 65535)))
        # Neighbor addresses must be distinct: IOS (and the parser) treats
        # repeated "neighbor <addr>" statements as one peer's options.
        neighbor_addresses = draw(
            st.lists(addresses, max_size=3, unique_by=lambda a: a.value)
        )
        for address in neighbor_addresses:
            bgp.neighbors.append(
                BgpNeighbor(
                    address=address,
                    remote_as=draw(st.integers(1, 65535)),
                    next_hop_self=draw(st.booleans()),
                )
            )
        config.bgp_process = bgp
    for number in range(draw(st.integers(0, 2))):
        acl_name = str(10 + number)
        config.access_lists[acl_name] = AccessList(
            name=acl_name, rules=draw(st.lists(acl_rules(), min_size=1, max_size=4))
        )
    if draw(st.booleans()):
        rm_name = draw(names)
        config.route_maps[rm_name] = RouteMap(
            name=rm_name,
            clauses=[
                RouteMapClause(
                    action=draw(st.sampled_from(["permit", "deny"])),
                    sequence=10 * (index + 1),
                    set_tag=draw(st.one_of(st.none(), st.integers(1, 100))),
                )
                for index in range(draw(st.integers(1, 3)))
            ],
        )
    for _ in range(draw(st.integers(0, 2))):
        length = draw(masked_lengths)
        config.static_routes.append(
            StaticRoute(
                prefix=Prefix(draw(addresses).value, length),
                next_hop=draw(addresses),
                tag=draw(st.one_of(st.none(), st.integers(1, 500))),
            )
        )
    return config


MODEL_FIELDS = (
    "hostname",
    "interfaces",
    "ospf_processes",
    "eigrp_processes",
    "rip_process",
    "bgp_process",
    "access_lists",
    "route_maps",
    "static_routes",
)


@settings(max_examples=120, deadline=None)
@given(router_configs())
def test_serialize_parse_roundtrip(config):
    reparsed = parse_config(serialize_config(config))
    for field in MODEL_FIELDS:
        assert getattr(reparsed, field) == getattr(config, field), field


@settings(max_examples=60, deadline=None)
@given(router_configs())
def test_serialization_is_fixpoint(config):
    once = serialize_config(config)
    twice = serialize_config(parse_config(once))
    assert once == twice


@settings(max_examples=60, deadline=None)
@given(router_configs())
def test_anonymized_output_still_parses(config):
    from repro.anonymize import Anonymizer

    text = serialize_config(config)
    anonymized = Anonymizer(key=b"prop").anonymize_config(text)
    reparsed = parse_config(anonymized)
    assert len(reparsed.interfaces) == len(config.interfaces)
    assert len(reparsed.ospf_processes) == len(config.ospf_processes)
    assert (reparsed.bgp_process is None) == (config.bgp_process is None)
    assert len(reparsed.static_routes) == len(config.static_routes)
