"""Analysis results must not depend on config ingestion order.

The analyses iterate dict-backed indexes (interfaces, processes,
sessions) whose insertion order follows the order configs were handed
to :meth:`Network.from_configs` — which varies with filesystem listing
order.  Every consumer whose *output* (or whose behavior under a
truncation bound) could leak that order now sorts explicitly; these
tests feed the same network in shuffled orders and demand identical
results, including under ``max_edges`` / ``max_couplings`` truncation
where construction order decides what survives.
"""

import json
import random

import pytest

from repro.compress import analyze_direct
from repro.core.process_graph import build_process_graph
from repro.core.survivability import instance_couplings
from repro.model import Network
from repro.synth.templates.enterprise import build_enterprise
from repro.synth.templates.net5 import build_net5


def _shuffles(configs, n=3):
    items = list(configs.items())
    for seed in range(n):
        shuffled = items[:]
        random.Random(seed).shuffle(shuffled)
        yield Network.from_configs(dict(shuffled), name="shuffled")


CONFIGS_NET5 = build_net5(scale=0.04, name="inv")[0]
CONFIGS_ENT = build_enterprise("inv", 1, 24, seed=3, n_borders=2, n_igp_instances=2)[0]


@pytest.mark.parametrize("configs", [CONFIGS_NET5, CONFIGS_ENT], ids=["net5", "ent"])
def test_full_analysis_payload_is_order_invariant(configs):
    payloads = [
        json.dumps(analyze_direct(network), sort_keys=True)
        for network in _shuffles(configs)
    ]
    assert len(set(payloads)) == 1


def test_address_map_winner_is_order_invariant():
    # Duplicate-address misconfiguration: whichever interface "owns" the
    # address must not depend on which router parsed first.
    base = {
        "a1": "hostname a1\ninterface Serial0/0\n ip address 10.0.0.1 255.255.255.252\n",
        "b2": "hostname b2\ninterface Serial0/1\n ip address 10.0.0.1 255.255.255.252\n",
    }
    forward = Network.from_configs(base, name="dup")
    backward = Network.from_configs(dict(reversed(base.items())), name="dup")
    assert forward.address_map == backward.address_map
    # Sorted-first-wins: a1's interface takes the contested address.
    assert forward.address_map[(10 << 24) + 1][0] == "a1"


@pytest.mark.parametrize("max_edges", [10, 25, 60])
def test_process_graph_truncation_is_order_invariant(max_edges):
    snapshots = []
    for network in _shuffles(CONFIGS_ENT):
        graph = build_process_graph(network, max_edges=max_edges)
        snapshots.append(
            (
                sorted(map(str, graph.nodes())),
                sorted(
                    (str(u), str(v), data.get("kind"))
                    for u, v, data in graph.edges(data=True)
                ),
                graph.graph["truncated"],
            )
        )
    assert all(snapshot == snapshots[0] for snapshot in snapshots)


@pytest.mark.parametrize("max_couplings", [1, 2])
def test_coupling_truncation_is_order_invariant(max_couplings):
    # Under a bound, *which* instance pairs make the cut depends on
    # iteration order — which must therefore be canonical.
    snapshots = []
    for network in _shuffles(CONFIGS_ENT):
        couplings = instance_couplings(network, max_couplings=max_couplings)
        snapshots.append(
            [
                (c.instance_a, c.instance_b, sorted(c.routers), sorted(c.mechanisms))
                for c in couplings
            ]
        )
    assert all(snapshot == snapshots[0] for snapshot in snapshots)


def test_link_ends_are_sorted():
    for network in _shuffles(CONFIGS_NET5, n=2):
        for link in network.links:
            ends = [(end.router, end.interface) for end in link.ends]
            assert ends == sorted(ends)
