"""The stanza-level parse cache: equivalence, persistence, exclusions.

The cache is only sound if a cached parse is *indistinguishable* from a
direct one — same config, same diagnostics, in both modes — so most of
these tests compare a cache-off parse against cold and warm cached
parses of the same text.
"""

import os

import pytest

from repro.diag import DiagnosticSink
from repro.ios import blockcache
from repro.ios.blockcache import DISK_MIN_LINES, BlockCache, get_block_cache
from repro.ios.parser import parse_config

GOOD = """\
hostname r1
interface Serial0/0
 description uplink
 ip address 10.1.0.1 255.255.255.252
 bandwidth 1544
router ospf 10
 network 10.1.0.0 0.0.0.3 area 0
 redistribute static metric 20 subnets
access-list 5 permit 10.1.0.0 0.0.255.255
route-map RM permit 10
 match ip address 5
 set local-preference 200
ip route 0.0.0.0 0.0.0.0 10.1.0.2
banner motd ^C not modeled ^C
"""

# The interface stanza has a malformed address: lenient mode must skip
# the block with a diagnostic, identically with and without the cache.
DAMAGED = """\
hostname r2
interface Serial0/0
 ip address 999.1.0.1 255.255.255.252
 bandwidth 1544
router ospf 10
 network 10.1.0.0 0.0.0.3 area 0
"""


def private_cache(root=None):
    """A BlockCache with its own memo, isolated from the shared one."""
    return BlockCache(root=root, memo={})


def parse_pair(text, mode, cache):
    sink = DiagnosticSink()
    config = parse_config(text, mode=mode, sink=sink, source="t.cfg",
                          block_cache=cache)
    return config, tuple(sink.diagnostics)


class TestEquivalence:
    @pytest.mark.parametrize("mode", ["strict", "lenient"])
    @pytest.mark.parametrize("text", [GOOD, DAMAGED])
    def test_cold_and_warm_match_uncached(self, mode, text):
        if mode == "strict" and text is DAMAGED:
            pytest.skip("strict mode raises on the damaged fixture")
        cache = private_cache()
        plain = parse_pair(text, mode, None)
        cold = parse_pair(text, mode, cache)
        warm = parse_pair(text, mode, cache)
        assert cold == plain
        assert warm == plain
        assert cache.hits > 0  # the warm parse really did replay stanzas

    def test_damaged_strict_raises_identically(self):
        with pytest.raises(ValueError) as plain:
            parse_config(DAMAGED, block_cache=None)
        cache = private_cache()
        with pytest.raises(ValueError) as cached:
            parse_config(DAMAGED, block_cache=cache)
        assert str(cached.value) == str(plain.value)

    def test_fragment_cached_under_one_mode_replays_under_the_other(self):
        cache = private_cache()
        strict = parse_pair(GOOD, "strict", cache)
        lenient = parse_pair(GOOD, "lenient", cache)
        assert strict[0] == lenient[0]

    def test_stanzas_shared_across_files(self):
        shared = "interface Serial0/0\n ip address 10.1.0.1 255.255.255.252\n"
        cache = private_cache()
        parse_config("hostname a\n" + shared, block_cache=cache)
        before = cache.hits
        cached = parse_config("hostname b\n" + shared, block_cache=cache)
        assert cache.hits > before
        assert cached == parse_config("hostname b\n" + shared, block_cache=None)

    def test_failed_stanzas_are_not_cached(self):
        cache = private_cache()
        sink = DiagnosticSink()
        parse_config(DAMAGED, mode="lenient", sink=sink, block_cache=cache)
        first = tuple(sink.diagnostics)
        assert first  # the bad interface produced a diagnostic
        sink = DiagnosticSink()
        parse_config(DAMAGED, mode="lenient", sink=sink, block_cache=cache)
        assert tuple(sink.diagnostics) == first  # replay did not eat it


class TestExclusions:
    def test_prefix_lists_never_cached(self):
        # Default sequence numbers continue from earlier stanzas, so the
        # same text parses differently depending on what came before it —
        # caching by stanza content would replay the wrong sequence.
        cache = private_cache()
        text = (
            "ip prefix-list PL permit 10.0.0.0/8\n"
            "ip prefix-list PL permit 11.0.0.0/8\n"
        )
        config = parse_config(text, block_cache=cache)
        assert [e.sequence for e in config.prefix_lists["PL"].entries] == [5, 10]
        assert not cache.memo
        again = parse_config(text, block_cache=cache)
        assert [e.sequence for e in again.prefix_lists["PL"].entries] == [5, 10]

    def test_router_rip_never_cached(self):
        cache = private_cache()
        text = "router rip\n version 2\n network 10.0.0.0\n"
        parse_config(text, block_cache=cache)
        assert not cache.memo

    def test_unmodeled_stanzas_never_cached(self):
        cache = private_cache()
        parse_config("banner motd ^C hi ^C\nntp server 10.0.0.1\n",
                     block_cache=cache)
        assert not cache.memo


class TestPersistentTier:
    def test_large_stanzas_persist_and_replay_from_disk(self, tmp_path):
        root = str(tmp_path)
        first = private_cache(root=root)
        plain = parse_config(GOOD, block_cache=None)
        assert parse_config(GOOD, block_cache=first) == plain
        entries = [
            os.path.join(base, name)
            for base, _dirs, names in os.walk(os.path.join(root, "blocks"))
            for name in names
        ]
        assert entries  # the 4-line interface stanza reached the disk tier
        # A fresh process (fresh memo) replays those stanzas from disk.
        second = private_cache(root=root)
        assert parse_config(GOOD, block_cache=second) == plain
        assert second.disk_hits > 0

    def test_small_stanzas_stay_memo_only(self, tmp_path):
        root = str(tmp_path)
        cache = private_cache(root=root)
        short = "interface E0\n ip address 10.0.0.1 255.0.0.0\n"
        assert len(short.splitlines()) < DISK_MIN_LINES
        parse_config(short, block_cache=cache)
        assert cache.memo  # memoized...
        assert not os.path.isdir(os.path.join(root, "blocks"))  # ...not stored

    def test_parser_version_keys_the_disk_tier(self, tmp_path, monkeypatch):
        root = str(tmp_path)
        parse_config(GOOD, block_cache=private_cache(root=root))
        # After a (simulated) parser release, old entries must not load.
        monkeypatch.setattr("repro.model.dialect.PARSER_VERSION", "9999.test")
        aged = private_cache(root=root)
        assert parse_config(GOOD, block_cache=aged) == parse_config(
            GOOD, block_cache=None
        )
        assert aged.disk_hits == 0

    def test_corrupt_disk_entry_degrades_to_miss(self, tmp_path):
        root = str(tmp_path)
        parse_config(GOOD, block_cache=private_cache(root=root))
        blocks_dir = os.path.join(root, "blocks")
        for base, _dirs, names in os.walk(blocks_dir):
            for name in names:
                with open(os.path.join(base, name), "wb") as handle:
                    handle.write(b"not a pickle")
        fresh = private_cache(root=root)
        assert parse_config(GOOD, block_cache=fresh) == parse_config(
            GOOD, block_cache=None
        )
        # The damaged entries were evicted and rewritten by the re-parse.
        remaining = [
            name for base, _dirs, names in os.walk(blocks_dir) for name in names
        ]
        assert remaining

    def test_corrupt_entry_counts_and_is_removed(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry, use_registry

        cache = private_cache(root=str(tmp_path))
        cache.put("key", ("payload",), DISK_MIN_LINES)
        path = cache._path("key")
        with open(path, "wb") as handle:
            handle.write(b"garbage")
        registry = MetricsRegistry()
        with use_registry(registry):
            assert BlockCache(root=str(tmp_path), memo={}).get("key") is None
        assert not os.path.exists(path)  # evicted, not left to re-fail
        counters = registry.snapshot()["counters"]
        assert counters.get("blockcache.corrupt") == 1

    def test_wrong_shape_pickle_is_corruption_too(self, tmp_path):
        # A readable pickle of the wrong type must be evicted like a torn
        # one — otherwise it is re-read and rejected on every lookup.
        import pickle

        from repro.obs.metrics import MetricsRegistry, use_registry

        cache = private_cache(root=str(tmp_path))
        cache.put("key", ("payload",), DISK_MIN_LINES)
        path = cache._path("key")
        with open(path, "wb") as handle:
            pickle.dump({"not": "a tuple"}, handle)
        registry = MetricsRegistry()
        with use_registry(registry):
            assert BlockCache(root=str(tmp_path), memo={}).get("key") is None
        assert not os.path.exists(path)
        assert registry.snapshot()["counters"].get("blockcache.corrupt") == 1

    def test_injected_write_failure_counts_and_degrades(
        self, tmp_path, monkeypatch
    ):
        from repro.obs.metrics import MetricsRegistry, use_registry

        blockcache._reset_write_failure_log()
        monkeypatch.setenv("REPRO_CHAOS", "*:blockcache=io-error")
        registry = MetricsRegistry()
        with use_registry(registry):
            cache = private_cache(root=str(tmp_path))
            cache.put("key", ("payload",), DISK_MIN_LINES)  # must not raise
        assert cache.memo["key"] == ("payload",)  # memo tier still serves
        assert not os.path.isdir(os.path.join(str(tmp_path), "blocks"))
        counters = registry.snapshot()["counters"]
        assert counters.get("blockcache.write_failures") == 1
        # Chaos cleared: the same put persists normally again.
        monkeypatch.delenv("REPRO_CHAOS")
        with use_registry(MetricsRegistry()):
            cache.put("key2", ("payload2",), DISK_MIN_LINES)
        assert os.path.isdir(os.path.join(str(tmp_path), "blocks"))


class TestProcessDefaults:
    def test_disable_switch(self):
        was = blockcache.is_enabled()
        try:
            blockcache.set_enabled(False)
            assert get_block_cache() is None
            blockcache.set_enabled(True)
            assert get_block_cache() is not None
        finally:
            blockcache.set_enabled(was)

    def test_shared_stats_accumulate(self):
        blockcache.clear_shared_memo()
        before = blockcache.shared_stats()
        parse_config(GOOD)  # default cache: the shared memo
        parse_config(GOOD)
        after = blockcache.shared_stats()
        assert after["stores"] > before["stores"]
        assert after["hits"] > before["hits"]
        assert after["memo_entries"] > 0
        assert after["enabled"] is blockcache.is_enabled()

    def test_memo_cap_clears_wholesale(self):
        cache = private_cache()
        cache.memo.update({f"k{i}": () for i in range(blockcache.MEMO_CAP)})
        cache.put("fresh", ("payload",), n_lines=1)
        assert list(cache.memo) == ["fresh"]
