"""Route pathway graph tests (§3.3, Figures 7 and 10)."""

import pytest

from repro.core import compute_instances, route_pathway
from repro.core.pathways import ROUTER_RIB
from repro.model import Network
from repro.synth.templates.example_fig1 import build_example_networks


@pytest.fixture(scope="module")
def split_networks():
    """The Figure 1 example analyzed per administrative domain, so the
    enterprise sees the backbone as external (as in Figure 7)."""
    configs, meta = build_example_networks()
    enterprise = Network.from_configs(
        {name: configs[name] for name in meta["enterprise_routers"]},
        name="enterprise",
    )
    backbone = Network.from_configs(
        {name: configs[name] for name in meta["backbone_routers"]},
        name="backbone",
    )
    return enterprise, backbone


class TestFig7Enterprise:
    def test_router1_pathway(self, split_networks):
        enterprise, _ = split_networks
        pathway = route_pathway(enterprise, "R1")
        # Figure 7(a): Router RIB <- OSPF instance <- BGP instance <- external.
        assert pathway.layers[ROUTER_RIB] == 0
        assert pathway.reaches_external
        assert pathway.external_depth() == 3

    def test_router1_sees_one_ospf_instance_directly(self, split_networks):
        enterprise, _ = split_networks
        pathway = route_pathway(enterprise, "R1")
        depth_one = [n for n, d in pathway.layers.items() if d == 1]
        assert len(depth_one) == 1

    def test_border_router_direct_instances(self, split_networks):
        enterprise, _ = split_networks
        pathway = route_pathway(enterprise, "R2")
        # R2 runs ospf 64, ospf 128, and BGP: three depth-1 instances.
        depth_one = [n for n, d in pathway.layers.items() if d == 1]
        assert len(depth_one) == 3
        assert pathway.external_depth() == 2


class TestFig7Backbone:
    def test_router5_pathway(self, split_networks):
        _, backbone = split_networks
        pathway = route_pathway(backbone, "R5")
        # Figure 7(b): external routes arrive via the BGP instance directly.
        assert pathway.external_depth() == 2
        depth_one = [n for n, d in pathway.layers.items() if d == 1]
        assert len(depth_one) == 2  # the OSPF instance and the BGP instance

    def test_backbone_ospf_not_on_external_path(self, split_networks):
        _, backbone = split_networks
        instances = compute_instances(backbone)
        pathway = route_pathway(backbone, "R5", instances=instances)
        ospf_id = next(i.instance_id for i in instances if i.protocol == "ospf")
        # The hallmark: external routes never flow through the IGP, so the
        # OSPF instance has no incoming edge in the pathway graph.
        assert not list(pathway.graph.predecessors(ospf_id))


class TestNet5Pathway:
    def test_middle_router_depth_at_least_three(self, net5_small):
        net, spec = net5_small
        pathway = route_pathway(net, spec.notes["middle_router"])
        # §5.1: external routes cross at least 3 layers of protocols and
        # redistribution before reaching the middle of net5.
        assert pathway.external_depth() is not None
        assert pathway.external_depth() >= 3

    def test_unknown_router_raises(self, net5_small):
        net, _ = net5_small
        with pytest.raises(KeyError):
            route_pathway(net, "nonexistent")


class TestPathwayShape:
    def test_bfs_layer_invariant(self, split_networks):
        enterprise, _ = split_networks
        pathway = route_pathway(enterprise, "R1")
        # BFS guarantees a source is discovered at most one layer beyond
        # its consumer (bidirectional exchanges create same-layer edges).
        for source, target in pathway.graph.edges:
            assert pathway.layers[source] <= pathway.layers[target] + 1

    def test_depth_property(self, split_networks):
        enterprise, _ = split_networks
        pathway = route_pathway(enterprise, "R1")
        assert pathway.depth == max(pathway.layers.values())

    def test_instances_listing(self, split_networks):
        enterprise, _ = split_networks
        pathway = route_pathway(enterprise, "R1")
        assert all(isinstance(i, int) for i in pathway.instances)


class TestPolicyLocation:
    """§3.3: pathways locate the policies affecting a router's routes."""

    def test_enterprise_pathway_carries_border_policy(self, split_networks):
        enterprise, _ = split_networks
        pathway = route_pathway(enterprise, "R1")
        # R2's EXT-SUMMARY route map governs what R1 can ever learn.
        names = {name for _s, _t, name in pathway.policies}
        assert "EXT-SUMMARY" in names

    def test_backbone_pathway_has_no_redistribution_policies(self, split_networks):
        _, backbone = split_networks
        pathway = route_pathway(backbone, "R5")
        assert pathway.policies == []

    def test_net5_pathway_locates_compartment_policies(self, net5_small):
        net, spec = net5_small
        pathway = route_pathway(net, spec.notes["middle_router"])
        names = {name for _s, _t, name in pathway.policies}
        # The address-based compartment route maps of §6.1.
        assert any(name.startswith("INTO-EIGRP") for name in names)
        assert any(name.startswith("FROM-EIGRP") for name in names)


def _dual_ospf_configs(map_r1: str, map_r2: str):
    """Two routers, two links, two OSPF instances spanning both routers.

    Each router redistributes ospf 2 into ospf 1 under its own route map,
    so the instance graph carries two *parallel* redistribution edges
    between the same pair of instances (a MultiDiGraph necessity).
    """
    template = (
        "hostname {name}\n"
        "interface Serial0\n ip address 10.0.0.{host} 255.255.255.252\n"
        "!\ninterface Serial1\n ip address 10.0.1.{host} 255.255.255.252\n"
        "!\nroute-map {rmap} permit 10\n"
        "!\nrouter ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
        " redistribute ospf 2 route-map {rmap} subnets\n"
        "!\nrouter ospf 2\n network 10.0.1.0 0.0.0.3 area 0\n"
    )
    return {
        "r1": template.format(name="r1", host=1, rmap=map_r1),
        "r2": template.format(name="r2", host=2, rmap=map_r2),
    }


class TestParallelRedistributionEdges:
    """Parallel MultiDiGraph edges between one instance pair (§3.3)."""

    def test_distinct_route_maps_on_parallel_edges_both_collected(self):
        net = Network.from_configs(_dual_ospf_configs("MAP-A", "MAP-B"))
        instances = compute_instances(net)
        assert len(instances) == 2  # ospf 1 and ospf 2, each spanning both
        pathway = route_pathway(net, "r1")
        names = {name for _s, _t, name in pathway.policies}
        # Each parallel edge carries its own policy; losing either means
        # the audit would miss a route map that shapes r1's routes.
        assert names == {"MAP-A", "MAP-B"}

    def test_parallel_edges_share_pathway_endpoints(self):
        net = Network.from_configs(_dual_ospf_configs("MAP-A", "MAP-B"))
        pathway = route_pathway(net, "r1")
        endpoints = {(s, t) for s, t, _name in pathway.policies}
        assert len(endpoints) == 1  # same instance pair, two policies

    def test_same_route_map_on_parallel_edges_deduplicated(self):
        net = Network.from_configs(_dual_ospf_configs("MAP-SAME", "MAP-SAME"))
        pathway = route_pathway(net, "r1")
        assert len(pathway.policies) == 1
        assert pathway.policies[0][2] == "MAP-SAME"


class TestBoundedDepth:
    """The ``max_depth`` knob the executor's degradation ladder uses."""

    def test_depth_cap_sets_truncated(self, fig1):
        from repro.core import build_instance_graph

        net, _ = fig1
        instances = compute_instances(net)
        graph = build_instance_graph(net, instances)
        full = route_pathway(net, "R1", instances=instances, instance_graph=graph)
        capped = route_pathway(
            net, "R1", instances=instances, instance_graph=graph, max_depth=1
        )
        assert not full.truncated
        assert capped.truncated

    def test_generous_depth_is_exact(self, fig1):
        from repro.core import build_instance_graph

        net, _ = fig1
        instances = compute_instances(net)
        graph = build_instance_graph(net, instances)
        capped = route_pathway(
            net, "R1", instances=instances, instance_graph=graph, max_depth=100
        )
        assert not capped.truncated
