"""Data-plane (packet filter) reachability tests (§2.4, §5.3)."""

from repro.core.packet_reach import Flow, PacketReachability
from repro.model import Network
from repro.net import IPv4Address


def triangle_with_filters(extra_r2=""):
    """r1 -- r2 -- r3, LANs on r1 and r3; filters configurable on r2."""
    return {
        "r1": (
            "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
            "!\ninterface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n"
        ),
        "r2": (
            "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
            "!\ninterface Serial1\n ip address 10.0.0.5 255.255.255.252\n"
            + extra_r2
        ),
        "r3": (
            "interface Serial0\n ip address 10.0.0.6 255.255.255.252\n"
            "!\ninterface Ethernet0\n ip address 10.3.0.1 255.255.255.0\n"
        ),
    }


WEB_FLOW = Flow.between("10.1.0.50", "10.3.0.50", protocol="tcp", port=80)
APP_FLOW = Flow.between("10.1.0.50", "10.3.0.50", protocol="tcp", port=8080)
PIM_FLOW = Flow.between("10.1.0.50", "10.3.0.50", protocol="pim")


class TestAclFlowSemantics:
    def test_port_eq(self):
        from repro.ios import parse_config

        cfg = parse_config(
            "access-list 101 deny tcp any any eq 8080\n"
            "access-list 101 permit ip any any\n"
        )
        acl = cfg.access_lists["101"]
        src, dst = IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2")
        assert not acl.permits_flow(src, dst, "tcp", 8080)
        assert acl.permits_flow(src, dst, "tcp", 80)
        assert acl.permits_flow(src, dst, "udp", 8080)  # tcp rule skipped

    def test_port_range(self):
        from repro.ios import parse_config

        cfg = parse_config(
            "access-list 102 permit udp any any range 5000 6000\n"
        )
        acl = cfg.access_lists["102"]
        src, dst = IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2")
        assert acl.permits_flow(src, dst, "udp", 5500)
        assert not acl.permits_flow(src, dst, "udp", 6500)

    def test_protocol_specific_deny(self):
        from repro.ios import parse_config

        cfg = parse_config(
            "access-list 103 deny pim any any\naccess-list 103 permit ip any any\n"
        )
        acl = cfg.access_lists["103"]
        src, dst = IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2")
        assert not acl.permits_flow(src, dst, "pim")
        assert acl.permits_flow(src, dst, "tcp", 22)

    def test_ip_protocol_matches_everything(self):
        from repro.ios import parse_config

        cfg = parse_config("access-list 104 permit ip any any\n")
        acl = cfg.access_lists["104"]
        src, dst = IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2")
        assert acl.permits_flow(src, dst, "icmp")

    def test_dest_matching(self):
        from repro.ios import parse_config

        cfg = parse_config(
            "access-list 105 permit tcp any host 10.3.0.50 eq 80\n"
        )
        acl = cfg.access_lists["105"]
        src = IPv4Address("1.1.1.1")
        assert acl.permits_flow(src, IPv4Address("10.3.0.50"), "tcp", 80)
        assert not acl.permits_flow(src, IPv4Address("10.3.0.51"), "tcp", 80)


class TestUnfilteredPath:
    def test_flow_allowed(self):
        net = Network.from_configs(triangle_with_filters())
        reach = PacketReachability(net)
        verdict = reach.trace_flow("r1", "r3", WEB_FLOW)
        assert verdict.allowed
        assert verdict.path == ["r1", "r2", "r3"]

    def test_host_location(self):
        net = Network.from_configs(triangle_with_filters())
        reach = PacketReachability(net)
        assert reach.locate_host("10.1.0.50") == ("r1", "Ethernet0")
        assert reach.locate_host("10.3.0.99") == ("r3", "Ethernet0")
        assert reach.locate_host("99.0.0.1") is None

    def test_host_flow_end_to_end(self):
        net = Network.from_configs(triangle_with_filters())
        reach = PacketReachability(net)
        assert reach.host_flow(WEB_FLOW).allowed


class TestInternalFilters:
    PORT_FILTER = (
        " ip access-group 101 in\n"
        "!\naccess-list 101 deny tcp any any eq 8080\n"
        "access-list 101 permit ip any any\n"
    )

    def make(self):
        configs = triangle_with_filters()
        configs["r2"] = configs["r2"].replace(
            "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n",
            "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
            + self.PORT_FILTER.split("!\n")[0],
        ) + "access-list 101 deny tcp any any eq 8080\naccess-list 101 permit ip any any\n"
        return Network.from_configs(configs)

    def test_port_blocked_midpath(self):
        reach = PacketReachability(self.make())
        verdict = reach.trace_flow("r1", "r3", APP_FLOW)
        assert not verdict.allowed
        assert verdict.blocked_at.router == "r2"
        assert verdict.blocked_at.direction == "in"
        assert verdict.blocked_at.acl == "101"

    def test_other_ports_pass(self):
        reach = PacketReachability(self.make())
        assert reach.trace_flow("r1", "r3", WEB_FLOW).allowed

    def test_reverse_direction_unfiltered(self):
        # The filter is inbound on r2's r1-facing interface only.
        reach = PacketReachability(self.make())
        back = Flow.between("10.3.0.50", "10.1.0.50", protocol="tcp", port=8080)
        assert reach.trace_flow("r3", "r1", back).allowed


class TestProtocolDisabling:
    def test_pim_disabled_in_part_of_network(self):
        # §5.3: "drop packets of a specific protocol (e.g., PIM) ...
        # effectively disabling that protocol in all or parts of the network"
        configs = triangle_with_filters()
        configs["r3"] = configs["r3"].replace(
            "interface Serial0\n ip address 10.0.0.6 255.255.255.252\n",
            "interface Serial0\n ip address 10.0.0.6 255.255.255.252\n"
            " ip access-group 120 in\n",
        ) + "access-list 120 deny pim any any\naccess-list 120 permit ip any any\n"
        net = Network.from_configs(configs)
        reach = PacketReachability(net)
        assert reach.protocol_disabled_between("r1", "r3", "pim")
        assert not reach.protocol_disabled_between("r1", "r3", "tcp")
        assert not reach.protocol_disabled_between("r1", "r2", "pim")


class TestLanEdgeFilters:
    def test_source_lan_ingress_filter(self):
        configs = triangle_with_filters()
        configs["r1"] = configs["r1"].replace(
            "interface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n",
            "interface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n"
            " ip access-group 130 in\n",
        ) + (
            "access-list 130 deny tcp host 10.1.0.50 any eq 80\n"
            "access-list 130 permit ip any any\n"
        )
        net = Network.from_configs(configs)
        reach = PacketReachability(net)
        # §5.3: "dictate which set of hosts can use a particular application"
        blocked_host = Flow.between("10.1.0.50", "10.3.0.50", "tcp", 80)
        allowed_host = Flow.between("10.1.0.51", "10.3.0.50", "tcp", 80)
        assert not reach.host_flow(blocked_host).allowed
        assert reach.host_flow(blocked_host).blocked_at.interface == "Ethernet0"
        assert reach.host_flow(allowed_host).allowed

    def test_disconnected_routers(self):
        configs = triangle_with_filters()
        configs["island"] = (
            "interface Ethernet0\n ip address 172.20.0.1 255.255.255.0\n"
        )
        net = Network.from_configs(configs)
        reach = PacketReachability(net)
        verdict = reach.trace_flow("r1", "island", WEB_FLOW)
        assert not verdict.allowed
        assert verdict.path == []
