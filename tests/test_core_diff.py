"""Design diff tests (§8.2 longitudinal analysis)."""

from repro.core import diff_designs
from repro.model import Network
from repro.synth.templates.enterprise import build_enterprise


def make_snapshot(n_routers, seed=5, **kw):
    configs, _spec = build_enterprise("snap", 40, n_routers, seed=seed, **kw)
    return configs


class TestDiff:
    def test_identical_snapshots_empty(self):
        configs = make_snapshot(10)
        before = Network.from_configs(configs, name="t0")
        after = Network.from_configs(dict(configs), name="t1")
        diff = diff_designs(before, after)
        assert diff.is_empty
        assert diff.summary_lines() == ["no design-level changes"]

    def test_removed_router_detected(self):
        configs = make_snapshot(10)
        before = Network.from_configs(configs, name="t0")
        shrunk = {k: v for k, v in configs.items() if k != "snap-r5"}
        after = Network.from_configs(shrunk, name="t1")
        diff = diff_designs(before, after)
        assert diff.routers_removed == ["snap-r5"]
        assert not diff.routers_added
        assert diff.links_removed  # its uplink disappears with it

    def test_instance_resize_detected(self):
        before = Network.from_configs(make_snapshot(10), name="t0")
        after = Network.from_configs(make_snapshot(13), name="t1")
        diff = diff_designs(before, after)
        resized = [c for c in diff.instances_changed if c.protocol == "ospf"]
        assert resized
        assert resized[0].grew
        assert resized[0].routers_added

    def test_new_instance_detected(self):
        configs = make_snapshot(10)
        before = Network.from_configs(configs, name="t0")
        grown = dict(configs)
        grown["snap-lab"] = (
            "hostname snap-lab\n"
            "!\ninterface Ethernet0\n ip address 172.20.0.1 255.255.255.0\n"
            "!\nrouter rip\n version 2\n network 172.20.0.0\n"
        )
        after = Network.from_configs(grown, name="t1")
        diff = diff_designs(before, after)
        assert ("rip", 1) in diff.instances_added

    def test_filter_volume_change(self):
        configs = make_snapshot(10)
        before = Network.from_configs(configs, name="t0")
        hardened = dict(configs)
        name = "snap-r1"
        hardened[name] = hardened[name].replace(
            "interface FastEthernet0/0\n",
            "interface FastEthernet0/0\n ip access-group 1333 in\n",
            1,
        ) + "access-list 1333 deny 10.66.0.0 0.0.255.255\naccess-list 1333 permit any\n"
        after = Network.from_configs(hardened, name="t1")
        diff = diff_designs(before, after)
        assert diff.filter_rules_after == diff.filter_rules_before + 2

    def test_summary_mentions_changes(self):
        configs = make_snapshot(10)
        before = Network.from_configs(configs, name="t0")
        shrunk = {k: v for k, v in configs.items() if k != "snap-r5"}
        after = Network.from_configs(shrunk, name="t1")
        lines = diff_designs(before, after).summary_lines()
        assert any("routers" in line for line in lines)
