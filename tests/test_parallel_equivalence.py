"""Parallel-vs-serial ingestion equivalence.

The ingestion contract of PR 2: whatever the ``jobs`` setting and cache
state, ``Network.from_directory``/``from_configs`` produce identical
routers, links, diagnostics, and quarantine lists.  This suite pins that
down on clean archives and on archives damaged by every fault kind of
``repro.synth.faults``.
"""

import os

import pytest

from repro.ingest import ParseCache
from repro.model import Network
from repro.synth import fault_kinds, inject_fault
from repro.synth.templates.example_fig1 import build_example_networks

PARALLEL_JOBS = 4


@pytest.fixture(scope="module")
def clean_configs():
    configs, _meta = build_example_networks()
    return configs


def write_archive(configs, path):
    os.makedirs(path, exist_ok=True)
    for name, text in configs.items():
        with open(os.path.join(path, name), "w") as handle:
            handle.write(text)
    return os.fspath(path)


def fingerprint(network: Network):
    """Everything the equivalence contract covers, in comparable form."""
    return {
        "routers": sorted(network.routers),
        "sources": {r.name: r.source for r in network.routers.values()},
        "interfaces": {
            name: sorted(router.interfaces) for name, router in network.routers.items()
        },
        "links": sorted(repr(link) for link in network.links),
        "processes": sorted(map(repr, network.processes)),
        "diagnostics": [str(d) for d in network.diagnostics],
        "quarantined": network.quarantined,
        "exit_code": network.diagnostics.exit_code(),
    }


class TestCleanArchive:
    @pytest.mark.parametrize("on_error", ["strict", "skip-block", "skip-file"])
    def test_jobs4_matches_jobs1(self, clean_configs, tmp_path, on_error):
        archive = write_archive(clean_configs, tmp_path / "arch")
        serial = Network.from_directory(archive, on_error=on_error, jobs=1)
        parallel = Network.from_directory(
            archive, on_error=on_error, jobs=PARALLEL_JOBS
        )
        assert fingerprint(serial) == fingerprint(parallel)

    def test_from_configs_jobs4_matches_jobs1(self, clean_configs):
        serial = Network.from_configs(clean_configs, on_error="skip-block", jobs=1)
        parallel = Network.from_configs(
            clean_configs, on_error="skip-block", jobs=PARALLEL_JOBS
        )
        assert fingerprint(serial) == fingerprint(parallel)

    def test_auto_jobs_matches_serial(self, clean_configs, tmp_path):
        archive = write_archive(clean_configs, tmp_path / "arch")
        serial = Network.from_directory(archive, on_error="skip-block", jobs=1)
        auto = Network.from_directory(archive, on_error="skip-block", jobs=0)
        assert fingerprint(serial) == fingerprint(auto)


class TestFaultedArchives:
    """Every mutator, two seeds: lenient parallel == lenient serial."""

    @pytest.mark.parametrize("kind", sorted(fault_kinds()))
    @pytest.mark.parametrize("seed", [1, 7])
    def test_lenient_equivalence(self, clean_configs, tmp_path, kind, seed):
        mutated, fault = inject_fault(dict(clean_configs), kind, seed=seed)
        archive = write_archive(mutated, tmp_path / f"{kind}-{seed}")
        serial = Network.from_directory(archive, on_error="skip-block", jobs=1)
        parallel = Network.from_directory(
            archive, on_error="skip-block", jobs=PARALLEL_JOBS
        )
        assert fingerprint(serial) == fingerprint(parallel)
        # The fault is diagnosed identically on both paths.
        if fault.files:
            assert any(
                d.file in fault.files for d in parallel.diagnostics
            ) or any(q in fault.files for q in parallel.quarantined)

    @pytest.mark.parametrize("kind", sorted(fault_kinds()))
    def test_skip_file_equivalence(self, clean_configs, tmp_path, kind):
        mutated, _fault = inject_fault(dict(clean_configs), kind, seed=3)
        archive = write_archive(mutated, tmp_path / f"{kind}-sf")
        serial = Network.from_directory(archive, on_error="skip-file", jobs=1)
        parallel = Network.from_directory(
            archive, on_error="skip-file", jobs=PARALLEL_JOBS
        )
        assert fingerprint(serial) == fingerprint(parallel)

    @pytest.mark.parametrize("kind", sorted(fault_kinds()))
    def test_strict_failures_agree(self, clean_configs, tmp_path, kind):
        """When strict serial raises, strict parallel raises the same way."""
        mutated, _fault = inject_fault(dict(clean_configs), kind, seed=1)
        archive = write_archive(mutated, tmp_path / f"{kind}-strict")
        serial_exc = parallel_exc = None
        serial_net = parallel_net = None
        try:
            serial_net = Network.from_directory(archive, on_error="strict", jobs=1)
        except Exception as exc:  # noqa: BLE001 — comparing behavior
            serial_exc = exc
        try:
            parallel_net = Network.from_directory(
                archive, on_error="strict", jobs=PARALLEL_JOBS
            )
        except Exception as exc:  # noqa: BLE001
            parallel_exc = exc
        if serial_exc is None:
            assert parallel_exc is None
            assert fingerprint(serial_net) == fingerprint(parallel_net)
        else:
            assert parallel_exc is not None
            assert type(parallel_exc) is type(serial_exc)
            assert str(parallel_exc) == str(serial_exc)


class TestCacheEquivalence:
    """Cold cache, warm cache, no cache: identical results."""

    def test_clean_archive_cold_then_warm(self, clean_configs, tmp_path):
        archive = write_archive(clean_configs, tmp_path / "arch")
        cache = ParseCache(root=str(tmp_path / "cache"))
        plain = Network.from_directory(archive, on_error="skip-block", jobs=1)
        cold = Network.from_directory(
            archive, on_error="skip-block", jobs=1, cache=cache
        )
        warm = Network.from_directory(
            archive, on_error="skip-block", jobs=1, cache=cache
        )
        assert fingerprint(plain) == fingerprint(cold) == fingerprint(warm)
        assert cache.stats.hits == len(warm.routers)

    @pytest.mark.parametrize("kind", sorted(fault_kinds()))
    def test_faulted_archive_warm_cache_replays(self, clean_configs, tmp_path, kind):
        mutated, _fault = inject_fault(dict(clean_configs), kind, seed=5)
        archive = write_archive(mutated, tmp_path / "arch")
        cache = ParseCache(root=str(tmp_path / "cache"))
        cold = Network.from_directory(
            archive, on_error="skip-block", jobs=1, cache=cache
        )
        warm = Network.from_directory(
            archive, on_error="skip-block", jobs=PARALLEL_JOBS, cache=cache
        )
        assert fingerprint(cold) == fingerprint(warm)

    def test_cache_shared_across_jobs_settings(self, clean_configs, tmp_path):
        archive = write_archive(clean_configs, tmp_path / "arch")
        cache = ParseCache(root=str(tmp_path / "cache"))
        cold = Network.from_directory(
            archive, on_error="skip-block", jobs=PARALLEL_JOBS, cache=cache
        )
        warm = Network.from_directory(
            archive, on_error="skip-block", jobs=1, cache=cache
        )
        assert fingerprint(cold) == fingerprint(warm)
        assert cache.stats.hits == len(warm.routers)
