"""Missing-router detection tests (§3.4)."""

from repro.core import find_suspect_external_interfaces
from repro.model import Network
from repro.synth.templates.enterprise import build_enterprise


def parse_subset(configs, drop):
    kept = {name: text for name, text in configs.items() if name != drop}
    return Network.from_configs(kept, name="partial")


class TestMissingRouterDetection:
    def test_complete_data_set_has_no_suspects(self, enterprise_net):
        net, _spec = enterprise_net
        assert find_suspect_external_interfaces(net) == []

    def test_dropping_a_spoke_creates_a_suspect(self):
        configs, _spec = build_enterprise("md", 11, 14, seed=9)
        # Drop an interior spoke; its hub-side interface lands mid-block.
        victim = "md-r5"
        partial = parse_subset(configs, victim)
        suspects = find_suspect_external_interfaces(partial)
        assert suspects, "expected the hub's orphaned interface to be flagged"
        # The flagged interface's address sits inside an internal block.
        assert all(str(s.block).startswith("10.") for s in suspects)

    def test_true_external_interfaces_not_flagged(self):
        configs, spec = build_enterprise("md2", 12, 14, seed=10)
        net = Network.from_configs(configs, name="md2")
        suspects = find_suspect_external_interfaces(net)
        flagged = {(s.router, s.interface) for s in suspects}
        # The provider uplink is genuinely external: from the external
        # address block, so never flagged.
        assert not flagged & set(spec.external_interfaces)

    def test_min_neighbors_threshold(self):
        configs, _spec = build_enterprise("md3", 13, 14, seed=11)
        partial = parse_subset(configs, "md3-r5")
        strict = find_suspect_external_interfaces(partial, min_internal_neighbors=10**6)
        assert strict == []

    def test_suspect_fields(self):
        configs, _spec = build_enterprise("md4", 14, 14, seed=12)
        partial = parse_subset(configs, "md4-r5")
        for suspect in find_suspect_external_interfaces(partial):
            assert suspect.router in partial.routers
            assert suspect.internal_neighbors_in_block >= 3
