"""Scenario ids stay unique when hostname sanitization collides.

``_safe`` maps every unsafe character to ``_``, so hostnames like
``r 1``, ``r.1``... wait — ``.`` is safe — like ``r 1`` and ``r:1``
collide with a literal ``r_1``.  Scenario ids key the sweep result
table and the checkpoint store; a collision silently overwrote one
scenario's verdict with another's.  Now colliding ids get deterministic
``.2``/``.3`` suffixes and each rename emits a diagnostic.
"""

from repro.model import Network
from repro.sweep.scenarios import (
    Scenario,
    dedupe_scenario_ids,
    enumerate_scenarios,
    router_scenario_id,
)

# Three hostnames whose sanitized forms all collide on "router-r_1".
COLLIDING = """\
hostname {name}
interface Serial0/0
 ip address {address} 255.255.255.252
router ospf 1
 network 0.0.0.0 255.255.255.255 area 0
"""


def _network():
    configs = {
        "r_1": COLLIDING.format(name="r_1", address="10.0.0.1"),
        "r 1": COLLIDING.format(name="r 1", address="10.0.0.2"),
        "r:1": COLLIDING.format(name="r:1", address="10.0.1.1"),
        "peer": COLLIDING.format(name="peer", address="10.0.1.2"),
    }
    return Network.from_configs(configs, name="collide")


def test_sanitizer_really_collides():
    assert router_scenario_id("r 1") == router_scenario_id("r_1") == "router-r_1"


def test_enumerate_scenarios_keeps_every_router():
    network = _network()
    plan = enumerate_scenarios(network)
    router_scenarios = [s for s in plan.scenarios if s.kind == "router"]
    assert len(router_scenarios) == len(network)
    ids = [s.scenario_id for s in plan.scenarios]
    assert len(ids) == len(set(ids))
    # Deterministic suffixes in sorted-router order.
    colliding = sorted(
        s.scenario_id for s in router_scenarios if s.scenario_id.startswith("router-r_1")
    )
    assert colliding == ["router-r_1", "router-r_1.2", "router-r_1.3"]


def test_collision_emits_diagnostic_not_silence():
    network = _network()
    before = len(network.diagnostics)
    enumerate_scenarios(network)
    messages = [
        d.message for d in network.diagnostics.diagnostics[before:]
        if "scenario id collision" in d.message
    ]
    assert len(messages) == 2  # two of the three colliders were renamed


def test_each_renamed_scenario_keeps_its_own_failure_set():
    network = _network()
    plan = enumerate_scenarios(network)
    by_id = {s.scenario_id: s for s in plan.scenarios if s.kind == "router"}
    failed = {by_id[i].failed_routers[0] for i in by_id}
    assert failed == set(network.routers)


def test_doubles_inherit_unique_ids():
    network = _network()
    plan = enumerate_scenarios(network, depth=2, double_budget=100, seed=1)
    ids = [s.scenario_id for s in plan.scenarios]
    assert len(ids) == len(set(ids))


def test_dedupe_is_deterministic_and_suffixes_are_safe():
    scenarios = [
        Scenario(scenario_id="router-x", kind="router", failed_routers=(n,))
        for n in ("a", "b", "c")
    ]
    deduped = dedupe_scenario_ids(list(scenarios))
    assert [s.scenario_id for s in deduped] == [
        "router-x", "router-x.2", "router-x.3"
    ]
    # Suffixed ids stay checkpoint-key safe (no unsafe characters).
    import re
    for s in deduped:
        assert not re.search(r"[^A-Za-z0-9_.+-]", s.scenario_id)
