"""BGP community tests: parsing, policy semantics, propagation."""

from repro.ios import parse_config, serialize_config
from repro.model import Network
from repro.net import Prefix
from repro.routing import RoutingSimulation
from repro.routing.policy import _apply_set_community, apply_route_map
from repro.routing.route import Route


class TestParsing:
    def test_community_list(self):
        cfg = parse_config(
            "ip community-list 7 permit 65000:100\n"
            "ip community-list 7 deny 65000:666\n"
        )
        clist = cfg.community_lists["7"]
        assert clist.entries == [("permit", "65000:100"), ("deny", "65000:666")]

    def test_match_community(self):
        cfg = parse_config("route-map POL permit 10\n match community 7\n")
        assert cfg.route_maps["POL"].clauses[0].match_communities == ["7"]

    def test_set_community_parsed(self):
        cfg = parse_config("route-map POL permit 10\n set community 65000:100 additive\n")
        assert cfg.route_maps["POL"].clauses[0].set_community == "65000:100 additive"

    def test_roundtrip(self):
        text = (
            "ip community-list CUST permit 65000:100\n"
            "route-map POL permit 10\n match community CUST\n set community 65000:200\n"
        )
        first = parse_config(text)
        second = parse_config(serialize_config(first))
        assert first.community_lists == second.community_lists
        assert first.route_maps == second.route_maps


class TestSetCommunitySemantics:
    def test_replace(self):
        assert _apply_set_community(("1:1",), "2:2") == ("2:2",)

    def test_additive(self):
        assert _apply_set_community(("1:1",), "2:2 additive") == ("1:1", "2:2")

    def test_none_clears(self):
        assert _apply_set_community(("1:1", "2:2"), "none") == ()

    def test_additive_dedups(self):
        assert _apply_set_community(("1:1",), "1:1 additive") == ("1:1",)


class TestRouteMapCommunityMatch:
    def test_match_and_transform(self):
        cfg = parse_config(
            "ip community-list 7 permit 65000:100\n"
            "route-map POL permit 10\n match community 7\n set local-preference 300\n"
            "route-map POL deny 20\n"
        )
        tagged = Route(
            prefix=Prefix("20.0.0.0/8"), protocol="bgp", communities=("65000:100",)
        )
        plain = Route(prefix=Prefix("20.0.0.0/8"), protocol="bgp")
        rm = cfg.route_maps["POL"]
        out = apply_route_map(
            rm, cfg.access_lists, tagged, community_lists=cfg.community_lists
        )
        assert out is not None and out.local_pref == 300
        assert (
            apply_route_map(
                rm, cfg.access_lists, plain, community_lists=cfg.community_lists
            )
            is None
        )


class TestPropagation:
    def topology(self, send_community: bool):
        send = " neighbor 10.0.0.2 send-community\n" if send_community else ""
        return {
            "a": (
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
                "!\nrouter bgp 65001\n"
                " redistribute connected route-map TAG\n"
                " neighbor 10.0.0.2 remote-as 65002\n" + send +
                "!\ninterface Ethernet0\n ip address 20.0.0.1 255.255.255.0\n"
                "!\nroute-map TAG permit 10\n set community 65001:42\n"
            ),
            "b": (
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
                "!\nrouter bgp 65002\n neighbor 10.0.0.1 remote-as 65001\n"
            ),
        }

    def test_send_community_carries_values(self):
        net = Network.from_configs(self.topology(send_community=True))
        sim = RoutingSimulation(net).run()
        route = sim.lookup("b", "20.0.0.5")
        assert route is not None
        assert route.communities == ("65001:42",)

    def test_default_strips_communities(self):
        net = Network.from_configs(self.topology(send_community=False))
        sim = RoutingSimulation(net).run()
        route = sim.lookup("b", "20.0.0.5")
        assert route is not None
        assert route.communities == ()

    def test_community_based_filtering_downstream(self):
        # b denies routes carrying 65001:42.
        configs = self.topology(send_community=True)
        configs["b"] = (
            "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
            "!\nrouter bgp 65002\n neighbor 10.0.0.1 remote-as 65001\n"
            " neighbor 10.0.0.1 route-map NO-TAGGED in\n"
            "!\nip community-list 9 permit 65001:42\n"
            "route-map NO-TAGGED deny 10\n match community 9\n"
            "route-map NO-TAGGED permit 20\n"
        )
        net = Network.from_configs(configs)
        sim = RoutingSimulation(net).run()
        assert not sim.can_reach("b", "20.0.0.5")
