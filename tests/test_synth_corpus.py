"""Corpus composition tests (§4.2)."""

from repro.core.classify import DesignClass
from repro.synth.corpus import build_corpus, paper_corpus, repository_sizes


class TestComposition:
    def test_thirty_one_networks(self, small_corpus):
        assert len(small_corpus) == 31

    def test_unique_names(self, small_corpus):
        names = [cn.name for cn in small_corpus]
        assert len(set(names)) == 31

    def test_design_mix(self, small_corpus):
        designs = [cn.spec.design for cn in small_corpus]
        assert designs.count(DesignClass.BACKBONE) == 4
        assert designs.count(DesignClass.ENTERPRISE) == 7
        assert designs.count(DesignClass.UNCLASSIFIABLE) == 20

    def test_three_networks_without_filters(self, small_corpus):
        assert sum(1 for cn in small_corpus if not cn.spec.has_filters) == 3

    def test_net5_and_net15_present(self, small_corpus):
        names = {cn.name for cn in small_corpus}
        assert {"net5", "net15"} <= names

    def test_lazy_build_is_cached(self, small_corpus):
        cn = small_corpus[0]
        assert cn.configs is cn.configs
        assert cn.network() is cn.network()

    def test_memoization(self):
        assert paper_corpus(scale=0.06) is paper_corpus(scale=0.06)

    def test_full_scale_size_marginals(self):
        # Check the declared sizes without generating anything.
        build_corpus(scale=1.0)
        from repro.synth.corpus import (
            _BACKBONE_ROWS,
            _ENTERPRISE_ROWS,
            _HYBRID_ROWS,
            _TIER2_ROWS,
        )

        backbone_sizes = [row[1] for row in _BACKBONE_ROWS]
        assert all(400 <= size <= 600 for size in backbone_sizes)
        enterprise_sizes = [row[1] for row in _ENTERPRISE_ROWS]
        assert min(enterprise_sizes) == 19 and max(enterprise_sizes) == 101
        unclass_sizes = sorted(
            [row[1] for row in _HYBRID_ROWS]
            + [row[1] for row in _TIER2_ROWS]
            + [881, 79]
        )
        assert len(unclass_sizes) == 20
        median = (unclass_sizes[9] + unclass_sizes[10]) / 2
        assert median == 36  # §7.2
        assert max(unclass_sizes) == 1750
        assert min(unclass_sizes) == 4
        # Four unclassifiable networks larger than the largest backbone.
        assert sum(1 for size in unclass_sizes if size > 600) == 4

    def test_total_file_count_near_8035(self):
        build_corpus(scale=1.0)
        from repro.synth.corpus import (
            _BACKBONE_ROWS,
            _ENTERPRISE_ROWS,
            _HYBRID_ROWS,
            _TIER2_ROWS,
        )

        total = (
            sum(row[1] for row in _BACKBONE_ROWS)
            + sum(row[1] for row in _ENTERPRISE_ROWS)
            + sum(row[1] for row in _HYBRID_ROWS)
            + sum(row[1] for row in _TIER2_ROWS)
            + 881
            + 79
        )
        assert abs(total - 8035) / 8035 < 0.05


class TestRepositorySizes:
    def test_count(self):
        assert len(repository_sizes(2400)) == 2400

    def test_deterministic(self):
        assert repository_sizes(100, seed=1) == repository_sizes(100, seed=1)

    def test_skews_small(self):
        sizes = repository_sizes(2400)
        under_10 = sum(1 for size in sizes if size < 10)
        assert under_10 / len(sizes) > 0.4

    def test_bounds(self):
        sizes = repository_sizes(500)
        assert all(1 <= size <= 3000 for size in sizes)


class TestDeterminism:
    def test_corpus_configs_deterministic(self):
        from repro.synth.corpus import build_corpus

        a = build_corpus(scale=0.05)
        b = build_corpus(scale=0.05)
        # Compare a few networks' serialized text byte-for-byte.
        for index in (0, 7, 14, 30):
            assert a[index].configs == b[index].configs, a[index].name

    def test_scale_changes_output(self):
        from repro.synth.corpus import build_corpus

        a = build_corpus(scale=0.05)
        b = build_corpus(scale=0.08)
        # Index 7 is a backbone (400 routers at full scale), so scaling
        # visibly changes the router count; tiny networks clamp to their
        # minimum size at both scales.
        assert len(a[7].configs) != len(b[7].configs)
