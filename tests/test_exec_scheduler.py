"""Corpus scheduler: budget split, determinism, abort, concurrent stores.

The tentpole contract under test: ``repro corpus --archive-jobs N`` is a
pure wall-time knob.  Whatever N is, the normalized ``--json`` payload,
the normalized run manifest, and the exit code are identical to the
serial run — including over a corpus that mixes clean archives, a
faulted archive, and a chaos-injected stage failure.
"""

import json
import os
import threading

import pytest

from repro.cli import main
from repro.exec import (
    CHAOS_ENV,
    ArchiveOutcome,
    CheckpointStore,
    CorpusScheduler,
    StageResult,
    archive_name,
    resolve_archive_jobs,
)
from repro.ingest import MAX_AUTO_JOBS, WorkerBudget, available_cpus
from repro.obs import normalize_manifest
from repro.obs.trace import Tracer, activate_tracer
from repro.report import normalize_corpus_payload
from repro.synth import inject_fault
from repro.synth.templates.example_fig1 import build_example_networks

#: In sorted order — the order the corpus walks (and reports) archives.
ARCHIVES = ("alpha", "beta", "delta", "gamma")


@pytest.fixture()
def corpus_dir(tmp_path):
    """Four archives with distinct bytes; ``delta`` carries a parse fault.

    Distinct bytes matter twice over: identical archives would share one
    checkpoint digest, and — under a shared cold cache — which archive
    parses and which replays would become a scheduling race.
    """
    configs, _meta = build_example_networks()
    faulted, _fault = inject_fault(configs, "corrupt-ip", seed=2)
    for archive in ARCHIVES:
        d = tmp_path / "corpus" / archive
        d.mkdir(parents=True)
        source = faulted if archive == "delta" else configs
        for name, text in source.items():
            (d / name).write_text(f"! {archive}\n{text}")
    return os.fspath(tmp_path / "corpus")


def _corpus(corpus_dir, *flags):
    return ["corpus", "--no-cache", "--json", *flags, corpus_dir]


class TestWorkerBudget:
    def test_share_splits_the_token_pool(self):
        budget = WorkerBudget(total=8, archive_jobs=4)
        assert budget.share == 2
        assert budget.concurrent
        assert budget.grant(16) == 2
        assert budget.grant(1) == 1

    def test_serial_budget_grants_up_to_total(self):
        budget = WorkerBudget(total=8)
        assert budget.share == 8
        assert not budget.concurrent
        assert budget.grant(16) == 8

    def test_oversubscribed_split_degrades_to_one_worker_each(self):
        # More archive threads than tokens: every archive still gets one
        # parse worker (bounded oversubscription, never a deadlock).
        budget = WorkerBudget(total=2, archive_jobs=8)
        assert budget.share == 1
        assert budget.grant(4) == 1

    @pytest.mark.parametrize("total,archive_jobs", [(0, 1), (1, 0), (-3, 2)])
    def test_rejects_nonpositive_parts(self, total, archive_jobs):
        with pytest.raises(ValueError):
            WorkerBudget(total=total, archive_jobs=archive_jobs)


class TestResolveArchiveJobs:
    def test_flag_absent_stays_serial(self):
        assert resolve_archive_jobs(None, 8) == 1

    def test_zero_auto_detects_capped_by_cpus_and_archives(self):
        expected = max(1, min(available_cpus(), MAX_AUTO_JOBS, 3))
        assert resolve_archive_jobs(0, 3) == expected

    def test_explicit_request_capped_by_archive_count(self):
        assert resolve_archive_jobs(16, 4) == 4
        assert resolve_archive_jobs(2, 4) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_archive_jobs(-1, 4)

    def test_empty_corpus_is_serial(self):
        assert resolve_archive_jobs(8, 0) == 1


class TestCorpusScheduler:
    def test_results_come_back_in_archive_order(self):
        scheduler = CorpusScheduler(archive_jobs=4)
        outcomes = scheduler.run(
            ["/c/one", "/c/two", "/c/three"], lambda path: path.upper()
        )
        assert [o.name for o in outcomes] == ["one", "two", "three"]
        assert [o.value for o in outcomes] == ["/C/ONE", "/C/TWO", "/C/THREE"]
        assert not any(o.skipped for o in outcomes)

    def test_serial_and_threaded_agree(self):
        paths = [f"/corpus/net{i}" for i in range(6)]
        serial = CorpusScheduler(archive_jobs=1).run(paths, archive_name)
        threaded = CorpusScheduler(archive_jobs=4).run(paths, archive_name)
        assert [o.value for o in serial] == [o.value for o in threaded]

    def test_first_error_in_archive_order_is_reraised(self):
        failures = {"two": ValueError("two"), "four": ValueError("four")}

        def worker(path):
            error = failures.get(archive_name(path))
            if error is not None:
                raise error
            return path

        scheduler = CorpusScheduler(archive_jobs=4)
        with pytest.raises(ValueError, match="two"):
            scheduler.run(["/c/one", "/c/two", "/c/three", "/c/four"], worker)

    def test_error_stops_new_archives_from_starting(self):
        started = []
        gate = threading.Event()

        def worker(path):
            started.append(archive_name(path))
            if archive_name(path) == "one":
                gate.set()
                raise RuntimeError("boom")
            return path

        scheduler = CorpusScheduler(archive_jobs=1)
        with pytest.raises(RuntimeError):
            scheduler.run(["/c/one", "/c/two", "/c/three"], worker)
        assert gate.is_set()
        assert started == ["one"]

    def test_pre_set_abort_skips_everything(self):
        abort = threading.Event()
        abort.set()
        scheduler = CorpusScheduler(archive_jobs=2, abort=abort)
        outcomes = scheduler.run(
            ["/c/one", "/c/two"], lambda path: pytest.fail("must not run")
        )
        assert all(o.skipped for o in outcomes)

    def test_abort_mid_run_yields_skipped_not_dropped(self):
        abort = threading.Event()

        def worker(path):
            if archive_name(path) == "one":
                abort.set()
            return path

        scheduler = CorpusScheduler(archive_jobs=1, abort=abort)
        outcomes = scheduler.run(["/c/one", "/c/two", "/c/three"], worker)
        assert [o.skipped for o in outcomes] == [False, True, True]
        assert len(outcomes) == 3

    def test_threaded_spans_graft_in_archive_order(self):
        tracer = Tracer()
        scheduler = CorpusScheduler(archive_jobs=3)
        with activate_tracer(tracer):
            scheduler.run(["/c/one", "/c/two", "/c/three"], archive_name)
        names = [span["name"] for span in tracer.span_tree()]
        assert names == ["archive:one", "archive:two", "archive:three"]


class TestArchiveJobsEquivalence:
    """ISSUE acceptance: ``--archive-jobs 4`` output is identical to
    ``--archive-jobs 1`` over a faulted and chaos-injected corpus."""

    def _run(self, corpus_dir, tmp_path, capsys, tag, *flags):
        manifest = os.fspath(tmp_path / f"manifest-{tag}.json")
        checkpoints = os.fspath(tmp_path / f"checkpoints-{tag}")
        code = main(
            _corpus(
                corpus_dir,
                "--checkpoint-dir",
                checkpoints,
                "--run-report",
                manifest,
                *flags,
            )
        )
        payload = json.loads(capsys.readouterr().out)
        with open(manifest) as handle:
            return code, payload, json.load(handle)

    def test_parallel_matches_serial(
        self, corpus_dir, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(CHAOS_ENV, "gamma:consistency=raise")
        serial_code, serial_payload, serial_manifest = self._run(
            corpus_dir, tmp_path, capsys, "serial"
        )
        parallel_code, parallel_payload, parallel_manifest = self._run(
            corpus_dir, tmp_path, capsys, "parallel", "--archive-jobs", "4"
        )
        assert serial_code == parallel_code == 3  # delta faulted, gamma failed
        assert parallel_payload["archive_jobs"] == 4
        assert normalize_corpus_payload(parallel_payload) == (
            normalize_corpus_payload(serial_payload)
        )
        assert normalize_manifest(parallel_manifest) == (
            normalize_manifest(serial_manifest)
        )
        # The normalized view still carries the interesting structure.
        normalized = normalize_corpus_payload(serial_payload)
        assert [e["archive"] for e in normalized["archives"]] == list(ARCHIVES)
        by_archive = {e["archive"]: e for e in normalized["archives"]}
        assert by_archive["gamma"]["status"] == "failed"
        assert by_archive["delta"]["exit_code"] == 2

    def test_chaos_targets_archives_deterministically(
        self, corpus_dir, tmp_path, capsys, monkeypatch
    ):
        # The chaos key is archive:stage, so concurrent workers inject
        # into exactly the same (archive, stage) pair as the serial run.
        monkeypatch.setenv(CHAOS_ENV, "beta:pathways=raise")
        code, payload, _manifest = self._run(
            corpus_dir, tmp_path, capsys, "chaos", "--archive-jobs", "4"
        )
        assert code == 3
        by_archive = {e["archive"]: e for e in payload["archives"]}
        stages = {
            s["stage"]: s["status"]
            for s in by_archive["beta"]["execution"]["stages"]
        }
        assert stages["pathways"] == "failed"
        assert by_archive["alpha"]["status"] == "ok"

    def test_auto_archive_jobs_smoke(self, corpus_dir, capsys):
        code = main(_corpus(corpus_dir, "--no-checkpoint", "--archive-jobs", "0"))
        payload = json.loads(capsys.readouterr().out)
        assert code == 2  # delta's parse fault
        assert payload["archive_jobs"] >= 1
        assert [e["archive"] for e in payload["archives"]] == list(ARCHIVES)

    def test_negative_archive_jobs_rejected(self, corpus_dir, capsys):
        with pytest.raises(SystemExit):
            main(_corpus(corpus_dir, "--archive-jobs", "-2"))
        capsys.readouterr()


class TestFailFastParallel:
    def test_every_archive_is_accounted_for(
        self, corpus_dir, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(CHAOS_ENV, "alpha:links=raise")
        code = main(
            _corpus(
                corpus_dir,
                "--no-checkpoint",
                "--fail-fast",
                "--archive-jobs",
                "4",
            )
        )
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert code == 3
        # In-flight archives may finish or skip depending on timing, but
        # all four are listed and the totals fold every one of them in.
        assert [e["archive"] for e in payload["archives"]] == list(ARCHIVES)
        assert payload["totals"]["archives"] == 4
        statuses = {e["archive"]: e["status"] for e in payload["archives"]}
        assert statuses["alpha"] == "failed"
        assert payload["totals"]["archives_skipped"] == sum(
            1 for e in payload["archives"] if e["status"] == "skipped" and not e["files"]
        )


class TestCorpusRootDiagnostics:
    def test_loose_files_beside_archives_are_named(self, tmp_path, capsys):
        configs, _meta = build_example_networks()
        root = tmp_path / "corpus"
        archive = root / "alpha"
        archive.mkdir(parents=True)
        for name, text in configs.items():
            (archive / name).write_text(text)
        (root / "stray-config").write_text("hostname stray\n")
        code = main(_corpus(os.fspath(root), "--no-checkpoint"))
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert code == 0
        assert "stray-config" in captured.err
        assert payload["ignored_files"] == ["stray-config"]
        assert [e["archive"] for e in payload["archives"]] == ["alpha"]

    def test_flat_directory_still_one_archive_no_diagnostic(
        self, tmp_path, capsys
    ):
        configs, _meta = build_example_networks()
        root = tmp_path / "flat"
        root.mkdir()
        for name, text in configs.items():
            (root / name).write_text(text)
        code = main(_corpus(os.fspath(root), "--no-checkpoint"))
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert code == 0
        assert payload["ignored_files"] == []
        assert "ignoring loose file" not in captured.err


class TestParsedThroughput:
    def test_warm_cache_reports_no_parse_throughput(
        self, corpus_dir, tmp_path, capsys
    ):
        cache = os.fspath(tmp_path / "cache")
        args = [
            "corpus",
            "--json",
            "--no-checkpoint",
            "--cache-dir",
            cache,
            corpus_dir,
        ]
        assert main(args) == 2
        cold = json.loads(capsys.readouterr().out)
        assert main(args) == 2
        warm = json.loads(capsys.readouterr().out)
        # Cold: real parses happened, so a rate is reported.
        assert any(e["parsed_per_second"] for e in cold["archives"])
        # Warm: everything replays from cache — zero parses, no rate,
        # and the replays are visible as the cached count instead of
        # inflating a files-per-second figure.
        for entry in warm["archives"]:
            assert entry["parsed"] == 0
            assert entry["parsed_per_second"] is None
            assert entry["cached"] == entry["files"]


class TestConcurrentCheckpointWriters:
    def test_parallel_stores_and_loads_stay_consistent(self, tmp_path):
        store = CheckpointStore(root=os.fspath(tmp_path / "ckpt"))
        digests = [f"{i:02x}" * 32 for i in range(8)]
        errors = []
        barrier = threading.Barrier(8)

        def hammer(digest):
            try:
                barrier.wait(timeout=10)
                for round_index in range(10):
                    result = StageResult(
                        stage="links", status="ok", items=round_index
                    )
                    assert store.store(digest, "net", result)
                    loaded = store.load(digest, "links")
                    # A concurrent writer may have replaced the entry,
                    # but a reader must never see a torn or invalid one.
                    assert loaded is not None
                    assert loaded.stage == "links"
                    assert loaded.status == "ok"
                    assert loaded.from_checkpoint
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [
            # Four writers per digest pair: heavy same-key contention.
            threading.Thread(target=hammer, args=(digests[i % 2],))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = store.stats.as_dict()
        assert stats["stores"] == 80
        assert stats["hits"] == 80
        assert stats["invalidated"] == 0
        # No temp droppings left behind by the atomic-replace protocol.
        assert all(".tmp-" not in path for path in store.entries())
