"""Direct tests for the report generators (DOT and markdown)."""

import pytest

from repro.report.design_report import generate_design_report
from repro.report.dot import instance_graph_to_dot


class TestDotExport:
    def test_fig1_dot_structure(self, fig1):
        network, _meta = fig1
        dot = instance_graph_to_dot(network)
        assert dot.startswith('digraph "fig1"')
        assert dot.rstrip().endswith("}")
        assert dot.count("inst") >= 5
        assert "External World" in dot
        # EBGP edges are heavy and bidirectional.
        assert "style=bold" in dot
        assert "dir=both" in dot

    def test_redistribution_edges_carry_route_maps(self, fig1):
        network, _meta = fig1
        dot = instance_graph_to_dot(network)
        assert 'label="EXT-SUMMARY"' in dot

    def test_quoting_is_safe(self, fig1):
        network, _meta = fig1
        dot = instance_graph_to_dot(network)
        # Every label is quoted; no bare spaces in node ids.
        for line in dot.splitlines():
            if "label=" in line:
                assert 'label="' in line

    def test_net5_dot_has_24_instances(self, net5_small):
        network, _spec = net5_small
        dot = instance_graph_to_dot(network)
        import re

        node_lines = [
            line
            for line in dot.splitlines()
            if re.match(r"^\s*inst\d+ \[label=", line)
        ]
        assert len(node_lines) == 24


class TestDesignReport:
    @pytest.fixture(scope="class")
    def report(self, net5_small):
        network, _spec = net5_small
        return generate_design_report(network)

    def test_all_sections_present(self, report):
        for section in (
            "## Inventory",
            "## Design classification",
            "## Routing instances",
            "## Protocol roles",
            "## Address space structure",
            "## Packet filtering",
            "## Survivability",
        ):
            assert section in report

    def test_instances_table_complete(self, report):
        # 24 instance rows below the header.
        table_lines = [l for l in report.splitlines() if l.startswith("| ")]
        data_rows = [l for l in table_lines if not l.startswith("| id") and "---" not in l]
        assert len(data_rows) == 24

    def test_unconventional_usage_surfaces(self, report):
        assert "intra-network" in report  # EBGP-as-intra-domain line
        assert "**unclassifiable**" in report

    def test_filters_section_quantified(self, report):
        assert "filter rules" in report
        assert "% of rules applied to" in report or "of rules applied to" in report

    def test_report_is_valid_markdown_tables(self, report):
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.count("|") >= 3
