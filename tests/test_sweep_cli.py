"""``repro sweep``: table/JSON output, exit codes, kill/resume equivalence."""

import json
import os

import pytest

from repro.cli import main
from repro.exec.chaos import SimulatedKill
from repro.report.sweep import normalize_sweep_payload


@pytest.fixture(scope="module")
def corpus8(tmp_path_factory):
    """Eight small archives: the acceptance-test corpus."""
    root = tmp_path_factory.mktemp("sweep-corpus")
    for index in range(8):
        template = "fig1" if index % 2 else "enterprise"
        assert (
            main(
                [
                    "generate",
                    template,
                    str(root / f"net{index}"),
                    "--routers",
                    "8",
                    "--seed",
                    str(index),
                ]
            )
            == 0
        )
    return str(root)


@pytest.fixture(scope="module")
def one_archive(tmp_path_factory):
    root = tmp_path_factory.mktemp("sweep-single")
    assert main(["generate", "fig1", str(root / "net"), "--seed", "0"]) == 0
    return str(root / "net")


def run_sweep(capsys, *extra, chaos=None, monkeypatch=None):
    if chaos is not None:
        monkeypatch.setenv("REPRO_CHAOS", chaos)
    try:
        code = main(["sweep", *extra, "--no-cache"])
    finally:
        if chaos is not None:
            monkeypatch.delenv("REPRO_CHAOS", raising=False)
    return code, capsys.readouterr().out


class TestTableOutput:
    def test_single_archive_table(self, one_archive, capsys):
        code, out = run_sweep(capsys, one_archive, "--no-checkpoint")
        assert code == 0
        assert "fragility ranking" in out
        assert "baseline:" in out

    def test_top_limits_rows(self, one_archive, capsys):
        code, out = run_sweep(capsys, one_archive, "--no-checkpoint", "--top", "2")
        assert code == 0
        assert "lower-impact scenario(s) not shown" in out


class TestJsonPayload:
    def test_payload_shape(self, one_archive, capsys):
        code, out = run_sweep(capsys, one_archive, "--no-checkpoint", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["totals"]["archives"] == 1
        (entry,) = payload["archives"]
        assert entry["rows"]
        for row in entry["rows"]:
            assert row["status"] == "ok"
            assert row["delta"]["lost_pairs"] >= 0

    def test_chaos_failure_exits_degraded(
        self, one_archive, capsys, monkeypatch
    ):
        code, out = run_sweep(
            capsys,
            one_archive,
            "--no-checkpoint",
            "--json",
            chaos="*:router-*=raise",
            monkeypatch=monkeypatch,
        )
        assert code == 3
        payload = json.loads(out)
        counts = payload["archives"][0]["status_counts"]
        assert counts["failed"] > 0
        assert counts.get("ok", 0) > 0  # link scenarios survived

    def test_depth_2_samples_doubles(self, one_archive, capsys):
        code, out = run_sweep(
            capsys,
            one_archive,
            "--no-checkpoint",
            "--json",
            "--depth",
            "2",
            "--double-budget",
            "6",
        )
        assert code == 0
        entry = json.loads(out)["archives"][0]
        assert entry["plan"]["doubles_sampled"] == 6
        assert sum(1 for row in entry["rows"] if row["kind"] == "double") == 6


class TestResumeNeedsCheckpoints:
    def test_resume_without_store_is_an_error(self, one_archive):
        with pytest.raises(SystemExit, match="--resume needs checkpointing"):
            main(["sweep", one_archive, "--no-cache", "--no-checkpoint", "--resume"])


class TestKillResumeEquivalence:
    """The acceptance criterion: a sweep over an 8-archive corpus killed
    mid-run resumes with ``--resume`` to a payload byte-identical (after
    normalization) to an uninterrupted run, at any ``--jobs`` value."""

    def _sweep(self, capsys, corpus, ckpt, *extra):
        code = main(
            [
                "sweep",
                corpus,
                "--json",
                "--no-cache",
                "--checkpoint-dir",
                ckpt,
                *extra,
            ]
        )
        return code, capsys.readouterr().out

    @pytest.mark.parametrize("jobs", ["1", "4"])
    def test_killed_sweep_resumes_byte_identical(
        self, corpus8, tmp_path, capsys, monkeypatch, jobs
    ):
        reference_ckpt = str(tmp_path / "ref-ckpt")
        code, out = self._sweep(capsys, corpus8, reference_ckpt, "--jobs", "1")
        assert code == 0
        reference = normalize_sweep_payload(json.loads(out))
        assert reference["totals"]["archives"] == 8

        # Kill mid-run: the chaos rule fires inside a scenario of the
        # fifth archive, after earlier archives checkpointed progress.
        ckpt = str(tmp_path / f"ckpt-{jobs}")
        monkeypatch.setenv("REPRO_CHAOS", "net4:router-*=kill")
        with pytest.raises(SimulatedKill):
            self._sweep(capsys, corpus8, ckpt, "--jobs", jobs)
        monkeypatch.delenv("REPRO_CHAOS")
        capsys.readouterr()  # drop the killed run's partial output
        assert os.path.isdir(ckpt)  # progress survived on disk

        code, out = self._sweep(
            capsys, corpus8, ckpt, "--jobs", jobs, "--resume"
        )
        assert code == 0
        resumed = normalize_sweep_payload(json.loads(out))
        assert any(
            row.get("from_checkpoint")
            for entry in json.loads(out)["archives"]
            for row in entry["rows"]
        )
        assert json.dumps(resumed, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    def test_jobs_equivalence_without_interruption(
        self, corpus8, tmp_path, capsys
    ):
        a_code, a_out = self._sweep(
            capsys, corpus8, str(tmp_path / "a"), "--jobs", "1"
        )
        b_code, b_out = self._sweep(
            capsys, corpus8, str(tmp_path / "b"), "--jobs", "4"
        )
        assert a_code == b_code == 0
        assert json.dumps(
            normalize_sweep_payload(json.loads(a_out)), sort_keys=True
        ) == json.dumps(normalize_sweep_payload(json.loads(b_out)), sort_keys=True)


class TestFailFastAcrossArchives:
    def test_later_archives_are_listed_not_swept(
        self, corpus8, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS", "net2:router-*=raise")
        code = main(
            [
                "sweep",
                corpus8,
                "--json",
                "--no-cache",
                "--no-checkpoint",
                "--fail-fast",
            ]
        )
        monkeypatch.delenv("REPRO_CHAOS")
        out = capsys.readouterr().out
        assert code == 3
        payload = json.loads(out)
        entries = {e["archive"]: e for e in payload["archives"]}
        assert len(entries) == 8
        assert entries["net2"].get("stopped_after", "").startswith("router-")
        for name in ("net0", "net1"):
            assert not entries[name].get("skipped")
        for name in ("net3", "net4", "net5", "net6", "net7"):
            assert entries[name]["skipped"]


class TestManifestBlock:
    def test_run_report_carries_sweep_summary(self, one_archive, tmp_path, capsys):
        report = tmp_path / "run.json"
        code = main(
            [
                "sweep",
                one_archive,
                "--no-cache",
                "--no-checkpoint",
                "--json",
                "--run-report",
                str(report),
            ]
        )
        capsys.readouterr()
        assert code == 0
        manifest = json.loads(report.read_text())
        sweep = manifest["environment"]["sweep"]
        assert sweep["archives"] == 1
        assert sweep["scenarios"] > 0
        assert sweep["statuses"] == {"ok": sweep["scenarios"]}
