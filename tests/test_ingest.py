"""The ingestion engine: stage timing, parse cache, parallel workers."""

import os
import pickle

import pytest

from repro.diag import ERROR, DiagnosticSink
from repro.ingest import (
    CacheEntry,
    ParseCache,
    ParseTask,
    StageTimer,
    parse_many,
    parse_one,
    resolve_jobs,
)
from repro.ingest.parallel import MAX_AUTO_JOBS, PARALLEL_THRESHOLD
from repro.ios.parser import ConfigParseError
from repro.junos.blocks import JunosSyntaxError

IOS_OK = """\
hostname r1
interface Ethernet0
 ip address 10.0.0.1 255.255.255.0
"""

IOS_BAD = """\
hostname r2
interface Ethernet0
 ip address 999.0.0.1 255.255.255.0
"""

JUNOS_UNBALANCED = """\
system {
    host-name j1;
"""


class TestStageTimer:
    def test_stage_records_time_and_items(self):
        timer = StageTimer()
        with timer.stage("parse") as record:
            record.items = 42
        assert timer.items("parse") == 42
        assert timer.seconds("parse") >= 0
        assert len(timer) == 1

    def test_stage_records_on_exception(self):
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("parse"):
                raise RuntimeError("boom")
        assert len(timer) == 1  # the stage is still on the books

    def test_repeated_stage_names_aggregate(self):
        timer = StageTimer()
        timer.record("parse", 1.0, items=10)
        timer.record("parse", 2.0, items=5)
        timer.record("links", 0.5, items=3)
        assert timer.seconds("parse") == pytest.approx(3.0)
        assert timer.items("parse") == 15
        assert timer.stage_names() == ["parse", "links"]

    def test_counters_aggregate(self):
        timer = StageTimer()
        timer.record("parse", 1.0, counters={"cached": 3})
        timer.record("parse", 1.0, counters={"cached": 4, "parsed": 1})
        assert timer.counter("parse", "cached") == 7
        assert timer.counter("parse", "parsed") == 1
        assert timer.counter("parse", "missing") == 0

    def test_as_dict_shape(self):
        timer = StageTimer()
        timer.record("parse", 2.0, items=10, counters={"cached": 2})
        data = timer.as_dict()
        assert data["total_seconds"] == pytest.approx(2.0)
        (stage,) = data["stages"]
        assert stage["name"] == "parse"
        assert stage["items"] == 10
        assert stage["items_per_second"] == pytest.approx(5.0)
        assert stage["counters"] == {"cached": 2}


class TestResolveJobs:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1, 10)

    def test_zero_items_is_serial(self):
        assert resolve_jobs(8, 0) == 1
        assert resolve_jobs(None, 0) == 1

    def test_auto_stays_serial_below_threshold(self):
        assert resolve_jobs(None, PARALLEL_THRESHOLD - 1) == 1
        assert resolve_jobs(0, PARALLEL_THRESHOLD - 1) == 1

    def test_auto_parallelizes_large_batches(self):
        jobs = resolve_jobs(None, 10_000)
        assert 1 <= jobs <= MAX_AUTO_JOBS

    def test_explicit_request_capped_by_items(self):
        assert resolve_jobs(8, 3) == 3
        assert resolve_jobs(2, 100) == 2
        assert resolve_jobs(1, 100) == 1


class TestParseOne:
    def test_success_carries_diagnostics(self):
        outcome = parse_one(ParseTask("f1", IOS_OK, "skip-block"))
        assert outcome.config is not None
        assert outcome.config.hostname == "r1"
        assert not outcome.quarantined
        assert outcome.error is None

    def test_strict_failure_returns_error(self):
        outcome = parse_one(ParseTask("f1", IOS_BAD, "strict"))
        assert outcome.config is None
        assert isinstance(outcome.error, ValueError)

    def test_skip_file_quarantines(self):
        outcome = parse_one(ParseTask("f1", IOS_BAD, "skip-file"))
        assert outcome.config is None
        assert outcome.quarantined
        assert outcome.error is None
        assert any(d.severity == ERROR for d in outcome.diagnostics)

    def test_unknown_policy_is_an_error_outcome(self):
        outcome = parse_one(ParseTask("f1", IOS_OK, "bogus"))
        assert isinstance(outcome.error, ValueError)


class TestExceptionPickling:
    """Strict-mode errors must cross the process boundary intact."""

    def test_config_parse_error_roundtrip(self):
        exc = ConfigParseError("bad mask", line_number=12, line="ip address x")
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is ConfigParseError
        assert str(clone) == str(exc)
        assert clone.line_number == 12
        assert clone.line == "ip address x"

    def test_junos_syntax_error_roundtrip(self):
        exc = JunosSyntaxError("unbalanced braces", line_number=3)
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is JunosSyntaxError
        assert str(clone) == str(exc)  # "(line 3)" suffix not doubled
        assert clone.line_number == 3


class TestParseCache:
    def test_roundtrip_replays_config_and_diagnostics(self, tmp_path):
        cache = ParseCache(root=str(tmp_path))
        outcome = parse_one(ParseTask("f1", IOS_OK, "skip-block"))
        key = cache.key(IOS_OK.encode(), "skip-block")
        assert cache.get(key) is None  # cold
        cache.put(
            key,
            CacheEntry(outcome.config, outcome.diagnostics, outcome.quarantined),
        )
        entry = cache.get(key)
        assert entry is not None
        assert entry.config.hostname == "r1"
        assert entry.diagnostics == outcome.diagnostics
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_key_depends_on_content_and_mode(self, tmp_path):
        cache = ParseCache(root=str(tmp_path))
        base = cache.key(b"abc", "strict")
        assert cache.key(b"abd", "strict") != base
        assert cache.key(b"abc", "skip-block") != base
        assert cache.key(b"abc", "strict") == base  # stable

    def test_key_depends_on_parser_version(self, tmp_path, monkeypatch):
        import repro.model.dialect as dialect

        cache = ParseCache(root=str(tmp_path))
        before = cache.key(b"abc", "strict")
        monkeypatch.setattr(dialect, "PARSER_VERSION", "next-version")
        assert cache.key(b"abc", "strict") != before

    def test_corrupt_entry_degrades_to_miss_and_evicts(self, tmp_path):
        cache = ParseCache(root=str(tmp_path))
        key = cache.key(b"abc", "strict")
        cache.put(key, CacheEntry(None, (), True))
        path = cache._path(key)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get(key) is None
        assert cache.stats.evictions == 1
        assert not os.path.exists(path)

    def test_non_entry_pickle_is_rejected(self, tmp_path):
        cache = ParseCache(root=str(tmp_path))
        key = cache.key(b"abc", "strict")
        os.makedirs(os.path.dirname(cache._path(key)), exist_ok=True)
        with open(cache._path(key), "wb") as handle:
            pickle.dump({"not": "an entry"}, handle)
        assert cache.get(key) is None
        assert cache.stats.evictions == 1

    def test_unwritable_root_degrades_gracefully(self, tmp_path):
        # A root that cannot be a directory (it's under a regular file):
        # put() must fail soft, never raise into the pipeline.
        blocker = tmp_path / "blocker"
        blocker.write_text("in the way")
        cache = ParseCache(root=str(blocker / "cache"))
        key = cache.key(b"abc", "strict")
        assert cache.put(key, CacheEntry(None, (), True)) is False
        assert cache.stats.stores == 0
        assert cache.get(key) is None

    def test_coerce(self, tmp_path):
        assert ParseCache.coerce(None) is None
        cache = ParseCache(root=str(tmp_path))
        assert ParseCache.coerce(cache) is cache
        coerced = ParseCache.coerce(str(tmp_path))
        assert isinstance(coerced, ParseCache)
        assert coerced.root == str(tmp_path)

    def test_write_failures_are_counted_and_metered(self, tmp_path, monkeypatch):
        from repro.obs.metrics import MetricsRegistry, use_registry

        monkeypatch.setenv("REPRO_CHAOS", "*:cache=io-error")
        registry = MetricsRegistry()
        with use_registry(registry):
            cache = ParseCache(root=str(tmp_path))
            key = cache.key(b"abc", "strict")
            assert cache.put(key, CacheEntry(None, (), True)) is False
            assert cache.put(key, CacheEntry(None, (), True)) is False
            assert cache.get(key) is None  # degraded to a plain miss
        assert cache.stats.write_failures == 2
        assert cache.stats.as_dict()["write_failures"] == 2
        counters = registry.snapshot()["counters"]
        assert counters.get("cache.write_failures") == 2
        # Chaos cleared: the very same cache instance writes again.
        monkeypatch.delenv("REPRO_CHAOS")
        with use_registry(MetricsRegistry()):
            assert cache.put(key, CacheEntry(None, (), True)) is True
            assert cache.get(key) is not None


class TestParseMany:
    def _tasks(self, n=4, on_error="skip-block"):
        texts = [IOS_OK.replace("r1", f"r{i}") for i in range(n)]
        return [ParseTask(f"f{i}", text, on_error) for i, text in enumerate(texts)]

    def test_outcomes_in_task_order(self):
        outcomes = parse_many(self._tasks(6), jobs=1)
        assert [o.source for o in outcomes] == [f"f{i}" for i in range(6)]
        assert [o.config.hostname for o in outcomes] == [f"r{i}" for i in range(6)]

    def test_parallel_outcomes_match_serial(self):
        tasks = self._tasks(8)
        serial = parse_many(tasks, jobs=1)
        parallel = parse_many(tasks, jobs=4)
        assert [o.config.hostname for o in serial] == [
            o.config.hostname for o in parallel
        ]
        assert [o.diagnostics for o in serial] == [o.diagnostics for o in parallel]

    def test_cache_hits_skip_parsing(self, tmp_path):
        cache = ParseCache(root=str(tmp_path))
        tasks = self._tasks(4)
        timer_cold, timer_warm = StageTimer(), StageTimer()
        cold = parse_many(tasks, jobs=1, cache=cache, timer=timer_cold)
        warm = parse_many(tasks, jobs=1, cache=cache, timer=timer_warm)
        assert timer_cold.counter("parse", "parsed") == 4
        assert timer_warm.counter("parse", "parsed") == 0
        assert timer_warm.counter("parse", "cached") == 4
        assert all(o.cached for o in warm)
        assert [o.config.hostname for o in cold] == [
            o.config.hostname for o in warm
        ]
        assert [o.diagnostics for o in cold] == [o.diagnostics for o in warm]

    def test_strict_errors_are_not_cached(self, tmp_path):
        cache = ParseCache(root=str(tmp_path))
        tasks = [ParseTask("bad", IOS_BAD, "strict")]
        first = parse_many(tasks, jobs=1, cache=cache)
        second = parse_many(tasks, jobs=1, cache=cache)
        assert first[0].error is not None
        assert second[0].error is not None
        assert not second[0].cached

    def test_quarantine_decision_is_cached(self, tmp_path):
        cache = ParseCache(root=str(tmp_path))
        tasks = [ParseTask("bad", JUNOS_UNBALANCED, "skip-file")]
        cold = parse_many(tasks, jobs=1, cache=cache)
        warm = parse_many(tasks, jobs=1, cache=cache)
        assert cold[0].quarantined and warm[0].quarantined
        assert warm[0].cached
        assert [str(d) for d in cold[0].diagnostics] == [
            str(d) for d in warm[0].diagnostics
        ]

    def test_timer_counts_workers(self, monkeypatch):
        # Worker counts are clamped to the usable CPUs, so pretend the
        # host is wide enough for the requested pool.
        monkeypatch.setattr("repro.ingest.parallel.available_cpus", lambda: 8)
        timer = StageTimer()
        parse_many(self._tasks(4), jobs=3, timer=timer)
        assert timer.counter("parse", "workers") == 3

    def test_explicit_jobs_clamped_to_cpus(self, monkeypatch):
        monkeypatch.setattr("repro.ingest.parallel.available_cpus", lambda: 2)
        timer = StageTimer()
        parse_many(self._tasks(4), jobs=8, timer=timer)
        assert timer.counter("parse", "workers") == 2


class TestWorkerSinkIsolation:
    def test_worker_sink_never_leaks_between_tasks(self):
        # Each outcome carries only its own file's diagnostics.
        tasks = [
            ParseTask("good", IOS_OK, "skip-block"),
            ParseTask("bad", IOS_BAD, "skip-block"),
        ]
        good, bad = parse_many(tasks, jobs=1)
        assert all(d.file in (None, "good") for d in good.diagnostics)
        assert any(d.file == "bad" for d in bad.diagnostics)

    def test_merge_reconstructs_shared_sink_stream(self):
        tasks = [
            ParseTask("a", IOS_BAD, "skip-file"),
            ParseTask("b", IOS_OK, "skip-block"),
        ]
        merged = DiagnosticSink()
        for outcome in parse_many(tasks, jobs=1):
            merged.merge(outcome.diagnostics)
        shared = DiagnosticSink()
        from repro.ingest.parallel import _parse_with_policy

        _parse_with_policy(IOS_BAD, "a", "skip-file", shared)
        _parse_with_policy(IOS_OK, "b", "skip-block", shared)
        assert [str(d) for d in merged] == [str(d) for d in shared]
        assert merged.exit_code() == shared.exit_code()
