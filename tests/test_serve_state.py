"""ServeState: atomic publish, staleness, failure counting, circuit breaker."""

from repro.serve.state import HEALTH_DEGRADED, HEALTH_OK, ServeState


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_state(**kwargs):
    clock = FakeClock()
    state = ServeState(clock=clock, **kwargs)
    return state, clock


class TestPublish:
    def test_initially_not_ready(self):
        state, _clock = make_state()
        assert not state.ready
        assert state.published is None
        assert state.generation == 0
        assert state.health == HEALTH_OK

    def test_publish_makes_ready_and_counts_generations(self):
        state, _clock = make_state()
        assert state.publish({"x": 1}, "d1") == 1
        assert state.ready
        assert state.published == {"x": 1}
        assert state.published_digest == "d1"
        assert state.publish({"x": 2}, "d2") == 2
        assert state.generation == 2

    def test_publish_clears_failure_state(self):
        state, _clock = make_state()
        state.record_failure("d1", "boom")
        assert state.health == HEALTH_DEGRADED
        state.publish({}, "d1")
        assert state.health == HEALTH_OK
        assert state.consecutive_failures == 0
        assert state.status_payload()["last_error"] is None


class TestBreaker:
    def test_backoff_doubles_and_caps(self):
        state, _clock = make_state(backoff=1.0, max_backoff=5.0)
        assert state.record_failure("d", "e1") == 1.0
        assert state.record_failure("d", "e2") == 2.0
        assert state.record_failure("d", "e3") == 4.0
        assert state.record_failure("d", "e4") == 5.0  # capped
        assert state.consecutive_failures == 4

    def test_same_digest_blocked_until_backoff_expires(self):
        state, clock = make_state(backoff=10.0)
        state.record_failure("d1", "boom")
        assert not state.should_attempt("d1")
        clock.advance(9.0)
        assert not state.should_attempt("d1")
        clock.advance(2.0)
        assert state.should_attempt("d1")  # breaker expired: retry allowed

    def test_new_digest_clears_breaker_immediately(self):
        state, _clock = make_state(backoff=1000.0)
        state.record_failure("d1", "boom")
        assert not state.should_attempt("d1")
        assert state.should_attempt("d2")  # changed corpus: fresh attempt
        # ... and the breaker stays cleared for the old digest too.
        assert state.should_attempt("d1")

    def test_published_digest_never_reattempted(self):
        state, _clock = make_state()
        state.publish({}, "d1")
        assert not state.should_attempt("d1")
        assert state.should_attempt("d2")


class TestStatusPayload:
    def test_degraded_with_breaker_armed(self):
        state, clock = make_state(backoff=8.0)
        state.publish({"ok": True}, "d1")
        clock.advance(30.0)
        state.observe_corpus("d2")
        state.record_failure("d2", "stage pathways failed")
        status = state.status_payload()
        assert status["health"] == HEALTH_DEGRADED
        assert status["ready"] is True  # still serving the old generation
        assert status["generation"] == 1
        assert status["consecutive_failures"] == 1
        assert status["breaker"]["armed"] is True
        assert status["breaker"]["seconds_remaining"] == 8.0
        assert status["last_error"] == "stage pathways failed"
        assert status["staleness"]["serving_current_corpus"] is False
        assert status["staleness"]["seconds_since_publish"] == 30.0

    def test_healthy_serving_current(self):
        state, clock = make_state()
        state.publish({}, "d1")
        state.observe_corpus("d1")
        clock.advance(2.5)
        status = state.status_payload()
        assert status["health"] == HEALTH_OK
        assert status["staleness"]["serving_current_corpus"] is True
        assert status["staleness"]["seconds_since_publish"] == 2.5
        assert status["breaker"]["armed"] is False

    def test_unpublished_status(self):
        state, _clock = make_state()
        status = state.status_payload()
        assert status["ready"] is False
        assert status["staleness"]["seconds_since_publish"] is None
        assert status["staleness"]["serving_current_corpus"] is False
