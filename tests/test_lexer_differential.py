"""Differential testing of the lexer/cache parse path on realistic input.

Property: for any configuration text — template-generated or
fault-mutated — the cached parse path is *observably identical* to the
direct one (same config, same diagnostics, same counts, both modes), and
a lenient parse's serialized model is a serializer fixpoint.  Hypothesis
drives file choice, fault kind, and fault seed, so each run explores a
different slice of mangled-input space around the synthetic corpus.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diag import DiagnosticSink
from repro.ios.blockcache import BlockCache
from repro.ios.parser import parse_config
from repro.ios.serializer import serialize_config
from repro.synth.faults import fault_kinds, inject_fault
from repro.synth.templates.enterprise import build_enterprise
from repro.synth.templates.net5 import build_net5


def _base_corpus():
    configs = {}
    enterprise, _spec = build_enterprise("diff-e", 40, 12, seed=11)
    configs.update(enterprise)
    net5, _spec = build_net5("diff-n5", 41, seed=12)
    configs.update(net5)
    return configs


BASE = _base_corpus()
FILES = sorted(BASE)


def parse_every_way(text):
    """Parse ``text`` uncached, cold-cached, and warm-cached, per mode."""
    results = {}
    for mode in ("strict", "lenient"):
        cache = BlockCache(memo={})
        for variant, block_cache in (
            ("plain", None),
            ("cold", cache),
            ("warm", cache),
        ):
            sink = DiagnosticSink()
            try:
                config = parse_config(
                    text, mode=mode, sink=sink, source="d.cfg",
                    block_cache=block_cache,
                )
                results[(mode, variant)] = (
                    config,
                    tuple(sink.diagnostics),
                    config.line_count,
                    config.command_count,
                )
            except ValueError as exc:
                results[(mode, variant)] = ("raised", str(exc))
    return results


def assert_variants_agree(text):
    results = parse_every_way(text)
    for mode in ("strict", "lenient"):
        plain = results[(mode, "plain")]
        assert results[(mode, "cold")] == plain, (mode, "cold")
        assert results[(mode, "warm")] == plain, (mode, "warm")
    return results


def assert_serializer_fixpoint(config):
    once = serialize_config(config)
    reparsed = parse_config(once, block_cache=None)
    assert serialize_config(reparsed) == once


def assert_serializer_converges(config):
    """Lenient parses of damaged text reach a serializer fixpoint in one
    extra round trip: retained (unmodeled) block lines serialize flat, so
    the first re-parse may re-model a previously skipped head line, after
    which serialize/parse is stable."""
    text = serialize_config(config)
    for _ in range(2):
        sink = DiagnosticSink()
        reparsed = parse_config(text, mode="lenient", sink=sink,
                                block_cache=None)
        again = serialize_config(reparsed)
        if again == text:
            return
        text = again
    sink = DiagnosticSink()
    reparsed = parse_config(text, mode="lenient", sink=sink, block_cache=None)
    assert serialize_config(reparsed) == text


@pytest.mark.parametrize("name", FILES[:4])
def test_template_configs_parse_identically(name):
    results = assert_variants_agree(BASE[name])
    config, diags, _lines, _commands = results[("strict", "plain")]
    # Template output may contain unmodeled commands (info), never errors.
    assert not [d for d in diags if d.severity == "error"]
    assert_serializer_fixpoint(config)


@settings(max_examples=50, deadline=None)
@given(
    name=st.sampled_from(FILES),
    kind=st.sampled_from(sorted(fault_kinds())),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_mutated_configs_parse_identically(name, kind, seed):
    # Mutators run over the whole corpus (some, like splice-files, need
    # several files to work with); we then check every file they touched.
    mutated, fault = inject_fault(dict(BASE), kind, seed)
    for touched in fault.files or (name,):
        results = assert_variants_agree(mutated[touched])
        lenient = results[("lenient", "plain")]
        # Whatever the mutation did, lenient mode must still produce a
        # model (file-level failures raise identically, asserted above).
        if lenient[0] != "raised":
            config = lenient[0]
            assert config.line_count >= config.command_count
            assert_serializer_converges(config)


@settings(max_examples=25, deadline=None)
@given(
    kinds=st.lists(
        st.sampled_from(sorted(fault_kinds())), min_size=2, max_size=3
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_stacked_faults_parse_identically(kinds, seed):
    mutated = dict(BASE)
    touched = set()
    for offset, kind in enumerate(kinds):
        mutated, fault = inject_fault(mutated, kind, seed + offset)
        touched.update(fault.files)
    for name in sorted(touched):
        assert_variants_agree(mutated[name])
