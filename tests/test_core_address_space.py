"""Address space structure recovery tests (§3.4)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.address_space import (
    AddressBlock,
    extract_address_space,
    join_blocks,
    mentioned_subnets,
)
from repro.model import Network
from repro.net import Prefix


class TestJoinBlocks:
    def test_adjacent_halves_join(self):
        blocks = join_blocks([Prefix("10.0.0.0/25"), Prefix("10.0.0.128/25")])
        assert [b.prefix for b in blocks] == [Prefix("10.0.0.0/24")]

    def test_two_bit_join_when_half_used(self):
        # Two /26s inside a /24: exactly half the /24 is used.
        blocks = join_blocks([Prefix("10.0.0.0/26"), Prefix("10.0.0.192/26")])
        assert [b.prefix for b in blocks] == [Prefix("10.0.0.0/24")]

    def test_three_bit_gap_does_not_join(self):
        # Two /27s inside a /24 use only a quarter: no join at the default
        # 2-bit / 50% thresholds.
        blocks = join_blocks([Prefix("10.0.0.0/27"), Prefix("10.0.0.224/27")])
        assert len(blocks) == 2

    def test_distant_blocks_stay_apart(self):
        blocks = join_blocks([Prefix("10.0.0.0/24"), Prefix("172.16.0.0/24")])
        assert len(blocks) == 2

    def test_chain_of_subnets_coalesces(self):
        subnets = list(Prefix("10.1.0.0/22").subnets(26))  # 16 x /26, all used
        blocks = join_blocks(subnets)
        assert [b.prefix for b in blocks] == [Prefix("10.1.0.0/22")]

    def test_utilization_accounting(self):
        blocks = join_blocks([Prefix("10.0.0.0/25"), Prefix("10.0.0.128/25")])
        assert blocks[0].used_addresses == 256
        assert blocks[0].utilization == 1.0

    def test_threshold_parameters(self):
        subnets = [Prefix("10.0.0.0/27"), Prefix("10.0.0.224/27")]
        # Lowering the utilization requirement lets the /24 form.
        loose = join_blocks(subnets, min_utilization=0.25, max_join_bits=3)
        assert [b.prefix for b in loose] == [Prefix("10.0.0.0/24")]

    def test_duplicates_do_not_double_count(self):
        blocks = join_blocks([Prefix("10.0.0.0/25"), Prefix("10.0.0.0/25")])
        assert blocks[0].used_addresses == 128

    def test_empty_input(self):
        assert join_blocks([]) == []

    def test_interleaved_block_does_not_prevent_join(self):
        # §3.4 joins "any two" subnets, not just sort-order neighbors.
        # The two /26s share a /24 supernet (2-bit join, 129/256 > 50%
        # used with the /30 counted); the interleaved /30 sorts between
        # them and must be absorbed, not block the pair.
        blocks = join_blocks(
            [
                Prefix("10.0.0.0/26"),
                Prefix("10.0.0.64/30"),
                Prefix("10.0.0.192/26"),
            ]
        )
        assert [b.prefix for b in blocks] == [Prefix("10.0.0.0/24")]
        assert blocks[0].used_addresses == 64 + 4 + 64

    def test_interleaved_corpus_is_fully_joined(self):
        # A denser interleaving: four /26s of one /24 plus scattered /30s
        # from a second /24 whose own blocks also pair up.
        subnets = list(Prefix("10.0.0.0/24").subnets(26)) + [
            Prefix("10.0.1.0/25"),
            Prefix("10.0.1.128/25"),
        ]
        blocks = join_blocks(subnets)
        assert [b.prefix for b in blocks] == [Prefix("10.0.0.0/23")]
        assert blocks[0].utilization == 1.0

    def test_overlapping_merge_does_not_inflate_utilization(self):
        # A /24 block and a /25 nested inside it reach join_blocks as one
        # summarized prefix; utilization counts each address once.
        blocks = join_blocks(
            [Prefix("10.0.0.0/24"), Prefix("10.0.0.0/25"), Prefix("10.0.0.128/26")]
        )
        assert len(blocks) == 1
        assert blocks[0].used_addresses == 256
        assert blocks[0].utilization <= 1.0

    def test_absorbed_subnets_never_double_count(self):
        # AddressBlock built directly with nested subnets (as an absorb
        # step could have done) still reports distinct addresses only.
        block = AddressBlock(
            prefix=Prefix("10.0.0.0/24"),
            subnets=[Prefix("10.0.0.0/25"), Prefix("10.0.0.0/26")],
        )
        assert block.used_addresses == 128
        assert block.utilization <= 1.0

    @given(
        st.lists(
            st.builds(
                Prefix,
                st.integers(min_value=0, max_value=0xFFFFFFFF),
                st.integers(min_value=8, max_value=30),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_utilization_never_exceeds_one(self, subnets):
        for block in join_blocks(subnets):
            assert 0.0 < block.utilization <= 1.0

    @given(
        st.lists(
            st.builds(
                Prefix,
                st.integers(min_value=0, max_value=0xFFFFFFFF),
                st.integers(min_value=8, max_value=30),
            ),
            max_size=20,
        )
    )
    def test_blocks_cover_all_inputs_and_are_disjoint(self, subnets):
        blocks = join_blocks(subnets)
        for subnet in subnets:
            assert any(block.prefix.contains(subnet) for block in blocks)
        for i, a in enumerate(blocks):
            for b in blocks[i + 1:]:
                assert not a.prefix.overlaps(b.prefix)

    @given(
        st.lists(
            st.builds(
                Prefix,
                st.integers(min_value=0, max_value=0xFFFFFFFF),
                st.integers(min_value=8, max_value=30),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_every_block_meets_the_utilization_bar_or_is_original(self, subnets):
        for block in join_blocks(subnets):
            assert block.utilization >= 0.5 or len(block.subnets) == 1


class TestMentionedSubnets:
    def test_collects_interfaces_networks_and_statics(self):
        config = (
            "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
            "!\nrouter ospf 1\n network 10.0.1.0 0.0.0.255 area 0\n"
            "!\nip route 10.0.2.0 255.255.255.0 10.0.0.2\n"
        )
        net = Network.from_configs({"r1": config})
        subnets = mentioned_subnets(net)
        for expected in ("10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24"):
            assert any(s.contains(Prefix(expected)) for s in subnets)

    def test_default_routes_excluded(self):
        config = "ip route 0.0.0.0 0.0.0.0 10.0.0.1\n"
        net = Network.from_configs({"r1": config})
        assert Prefix("0.0.0.0/0") not in mentioned_subnets(net)


class TestExtraction:
    def test_compartment_blocks_recovered(self, net5_small):
        # §6.1: each net5 compartment draws from its own block; the
        # recovery should produce blocks nested inside those plans.
        net, spec = net5_small
        blocks = extract_address_space(net)
        compartments = [Prefix(p) for p in spec.notes["compartment_blocks"].values()]
        for compartment in compartments:
            assert any(
                compartment.contains(b.prefix) or b.prefix.contains(compartment)
                for b in blocks
            )

    def test_internal_and_external_space_distinct(self, enterprise_net):
        net, _spec = enterprise_net
        blocks = extract_address_space(net)
        internal = [b for b in blocks if str(b.prefix).startswith("10.")]
        external = [b for b in blocks if not str(b.prefix).startswith("10.")]
        assert internal and external

    def test_str(self):
        block = AddressBlock(prefix=Prefix("10.0.0.0/24"), subnets=[Prefix("10.0.0.0/25")])
        assert "10.0.0.0/24" in str(block)


class TestBoundedSubnets:
    """The ``max_subnets`` knob the executor's degradation ladder uses."""

    def test_subnet_cap_shrinks_the_inventory(self, fig1):
        from repro.core.address_space import extract_address_space

        net, _ = fig1
        full = extract_address_space(net)
        capped = extract_address_space(net, max_subnets=1)
        assert len(capped) < len(full)

    def test_generous_cap_matches_full(self, fig1):
        from repro.core.address_space import extract_address_space

        net, _ = fig1
        full = extract_address_space(net)
        capped = extract_address_space(net, max_subnets=10_000)
        assert len(capped) == len(full)
