"""Network model tests: indexes, external classification, adjacencies."""

import pytest

from repro.model import Network
from repro.net import Prefix


def make_network(configs, name="test"):
    return Network.from_configs(configs, name=name)


P2P = "interface Serial0\n ip address {a} 255.255.255.252\n"


class TestIndexes:
    def test_address_map(self):
        net = make_network(
            {
                "r1": P2P.format(a="10.0.0.1"),
                "r2": P2P.format(a="10.0.0.2"),
            }
        )
        assert net.address_map[Prefix("10.0.0.1/32").network_int] == ("r1", "Serial0")
        assert net.owns_address("10.0.0.2")
        assert not net.owns_address("10.0.0.5")

    def test_duplicate_router_names_rejected(self):
        from repro.model.network import Router
        from repro.ios import parse_config

        router = Router("dup", parse_config(""))
        with pytest.raises(ValueError):
            Network([router, Router("dup", parse_config(""))])

    def test_internal_address_space(self):
        net = make_network(
            {
                "r1": "interface Ethernet0\n ip address 10.0.0.1 255.255.255.128\n",
                "r2": "interface Ethernet0\n ip address 10.0.0.129 255.255.255.128\n",
            }
        )
        assert net.internal_address_space == [Prefix("10.0.0.0/24")]


class TestExternalClassification:
    def test_unmatched_p2p_is_external(self):
        net = make_network({"r1": P2P.format(a="10.0.0.1")})
        assert net.is_external_interface("r1", "Serial0")

    def test_matched_p2p_is_internal(self):
        net = make_network(
            {"r1": P2P.format(a="10.0.0.1"), "r2": P2P.format(a="10.0.0.2")}
        )
        assert not net.external_interfaces

    def test_unmatched_lan_is_internal_by_default(self):
        # Multipoint subnets connect hosts; no evidence of an external router.
        net = make_network(
            {"r1": "interface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n"}
        )
        assert not net.is_external_interface("r1", "Ethernet0")

    def test_unmatched_lan_with_external_next_hop_is_external(self):
        config = (
            "interface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n"
            "!\n"
            "ip route 99.0.0.0 255.0.0.0 10.1.0.254\n"
        )
        net = make_network({"r1": config})
        assert net.is_external_interface("r1", "Ethernet0")

    def test_lan_next_hop_to_internal_destination_stays_internal(self):
        config = (
            "interface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n"
            "!\n"
            "ip route 10.1.0.0 255.255.255.0 10.1.0.254\n"
        )
        net = make_network({"r1": config})
        assert not net.is_external_interface("r1", "Ethernet0")

    def test_matched_multipoint_with_external_bgp_neighbor(self):
        shared = "interface Ethernet0\n ip address 10.1.0.{host} 255.255.255.0\n"
        r1 = shared.format(host=1) + (
            "!\nrouter bgp 65000\n neighbor 10.1.0.200 remote-as 7018\n"
        )
        net = make_network({"r1": r1, "r2": shared.format(host=2)})
        assert net.is_external_interface("r1", "Ethernet0")
        assert net.is_external_interface("r2", "Ethernet0")


class TestIgpAdjacency:
    def test_ospf_adjacency_requires_coverage(self):
        covered = (
            "interface Serial0\n ip address 10.0.0.{host} 255.255.255.252\n"
            "!\nrouter ospf {pid}\n network 10.0.0.0 0.0.0.3 area 0\n"
        )
        net = make_network(
            {"r1": covered.format(host=1, pid=1), "r2": covered.format(host=2, pid=2)}
        )
        # OSPF process ids are router-local; different pids still adjacent.
        assert len(net.igp_adjacencies) == 1

    def test_no_adjacency_when_one_side_uncovered(self):
        covered = (
            "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
            "!\nrouter ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
        )
        uncovered = "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
        net = make_network({"r1": covered, "r2": uncovered})
        assert not net.igp_adjacencies

    def test_eigrp_requires_matching_asn(self):
        config = (
            "interface Serial0\n ip address 10.0.0.{host} 255.255.255.252\n"
            "!\nrouter eigrp {asn}\n network 10.0.0.0 0.0.0.3\n"
        )
        net = make_network(
            {"r1": config.format(host=1, asn=100), "r2": config.format(host=2, asn=200)}
        )
        assert not net.igp_adjacencies
        net2 = make_network(
            {"r1": config.format(host=1, asn=100), "r2": config.format(host=2, asn=100)}
        )
        assert len(net2.igp_adjacencies) == 1

    def test_passive_interface_blocks_adjacency(self):
        active = (
            "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
            "!\nrouter ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
        )
        passive = (
            "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
            "!\nrouter ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
            " passive-interface Serial0\n"
        )
        net = make_network({"r1": active, "r2": passive})
        assert not net.igp_adjacencies

    def test_different_protocols_never_adjacent(self):
        ospf = (
            "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
            "!\nrouter ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
        )
        eigrp = (
            "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
            "!\nrouter eigrp 1\n network 10.0.0.0 0.0.0.3\n"
        )
        net = make_network({"r1": ospf, "r2": eigrp})
        assert not net.igp_adjacencies


class TestBgpSessions:
    BASE = (
        "interface Serial0\n ip address 10.0.0.{host} 255.255.255.252\n"
        "!\nrouter bgp {asn}\n neighbor 10.0.0.{peer} remote-as {remote}\n"
    )

    def test_resolved_ibgp(self):
        net = make_network(
            {
                "r1": self.BASE.format(host=1, peer=2, asn=65000, remote=65000),
                "r2": self.BASE.format(host=2, peer=1, asn=65000, remote=65000),
            }
        )
        sessions = net.bgp_sessions
        assert len(sessions) == 2  # one configured statement per side
        assert all(s.is_resolved and not s.is_ebgp for s in sessions)

    def test_resolved_ebgp(self):
        net = make_network(
            {
                "r1": self.BASE.format(host=1, peer=2, asn=65000, remote=65010),
                "r2": self.BASE.format(host=2, peer=1, asn=65010, remote=65000),
            }
        )
        assert all(s.is_ebgp and s.is_resolved for s in net.bgp_sessions)

    def test_unresolved_external_session(self):
        net = make_network(
            {"r1": self.BASE.format(host=1, peer=2, asn=65000, remote=7018)}
        )
        (session,) = net.bgp_sessions
        assert session.crosses_network_boundary
        assert session.is_ebgp
        assert session.remote_key is None

    def test_asn_mismatch_does_not_resolve(self):
        # r1 thinks the peer is AS 65010 but r2 actually runs 65020.
        net = make_network(
            {
                "r1": self.BASE.format(host=1, peer=2, asn=65000, remote=65010),
                "r2": self.BASE.format(host=2, peer=1, asn=65020, remote=65000),
            }
        )
        r1_session = next(s for s in net.bgp_sessions if s.local[0] == "r1")
        assert not r1_session.is_resolved


class TestStatistics:
    def test_interface_type_census(self, fig1):
        net, _meta = fig1
        census = net.interface_type_census()
        assert census["Serial"] >= 2
        assert census["Hssi"] >= 3

    def test_config_sizes_positive(self, fig1):
        net, _meta = fig1
        assert all(size > 0 for size in net.config_sizes())

    def test_len_and_repr(self, fig1):
        net, _meta = fig1
        assert len(net) == 6
        assert "fig1" in repr(net)
