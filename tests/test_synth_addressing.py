"""Address pool and plan tests."""

import pytest

from repro.net import Prefix
from repro.synth.addressing import AddressPool, NetworkAddressPlan, PoolExhausted


class TestAddressPool:
    def test_sequential_allocation(self):
        pool = AddressPool(Prefix("10.0.0.0/24"))
        assert pool.allocate(26) == Prefix("10.0.0.0/26")
        assert pool.allocate(26) == Prefix("10.0.0.64/26")

    def test_alignment(self):
        pool = AddressPool(Prefix("10.0.0.0/24"))
        pool.allocate(30)
        # Next /26 must skip to an aligned boundary.
        assert pool.allocate(26) == Prefix("10.0.0.64/26")

    def test_exhaustion(self):
        pool = AddressPool(Prefix("10.0.0.0/30"))
        pool.allocate(30)
        with pytest.raises(PoolExhausted):
            pool.allocate(30)

    def test_cannot_allocate_larger_than_pool(self):
        pool = AddressPool(Prefix("10.0.0.0/24"))
        with pytest.raises(ValueError):
            pool.allocate(16)

    def test_subpool_is_disjoint_from_rest(self):
        pool = AddressPool(Prefix("10.0.0.0/16"))
        sub = pool.subpool(20)
        nxt = pool.allocate(20)
        assert not sub.prefix.overlaps(nxt)

    def test_allocations_are_disjoint(self):
        pool = AddressPool(Prefix("10.0.0.0/20"))
        seen = []
        for length in (30, 24, 26, 30, 25, 28):
            prefix = pool.allocate(length)
            for other in seen:
                assert not prefix.overlaps(other)
            seen.append(prefix)

    def test_string_prefix_accepted(self):
        pool = AddressPool("10.0.0.0/24")
        assert pool.allocate(25) == Prefix("10.0.0.0/25")


class TestNetworkAddressPlan:
    def test_standard_plans_are_disjoint_pools(self):
        plan = NetworkAddressPlan.standard(3)
        pools = [plan.loopbacks.prefix, plan.p2p.prefix, plan.lans.prefix, plan.spare.prefix]
        for i, a in enumerate(pools):
            for b in pools[i + 1:]:
                assert not a.overlaps(b)

    def test_internal_and_external_disjoint(self):
        plan = NetworkAddressPlan.standard(3)
        assert not plan.internal.overlaps(plan.external.prefix)

    def test_different_indexes_do_not_collide(self):
        a = NetworkAddressPlan.standard(1)
        b = NetworkAddressPlan.standard(2)
        assert not a.internal.overlaps(b.internal)

    def test_allocation_helpers(self):
        plan = NetworkAddressPlan.standard(4)
        assert plan.loopback().length == 32
        assert plan.p2p_subnet().length == 30
        assert plan.lan_subnet().length == 24
        assert plan.lan_subnet(26).length == 26
        assert plan.external_subnet().length == 30
