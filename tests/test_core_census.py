"""Census tests (Figure 4, Figure 8, Table 3)."""

from repro.core.census import (
    config_size_distribution,
    corpus_size_histogram,
    interface_census,
)


class TestInterfaceCensus:
    def test_aggregates_over_networks(self, small_corpus):
        nets = [cn.network() for cn in small_corpus[:5]]
        census = interface_census(nets)
        assert sum(census.values()) == sum(
            len(r.config.interfaces) for n in nets for r in n.routers.values()
        )

    def test_serial_most_common(self, small_corpus):
        nets = [cn.network() for cn in small_corpus]
        census = interface_census(nets)
        assert max(census, key=census.get) == "Serial"

    def test_fastethernet_second(self, small_corpus):
        nets = [cn.network() for cn in small_corpus]
        census = interface_census(nets)
        ranked = sorted(census, key=census.get, reverse=True)
        assert ranked[1] == "FastEthernet"


class TestConfigSizes:
    def test_sorted_series(self, net5_small):
        net, _spec = net5_small
        series = config_size_distribution(net)
        assert series == sorted(series)
        assert len(series) == len(net)

    def test_sizes_have_spread(self, net5_small):
        # Figure 4 shows a wide distribution, not a constant.
        net, _spec = net5_small
        series = config_size_distribution(net)
        assert series[-1] > series[0]


class TestHistogram:
    BOUNDS = [10, 20, 40, 80]

    def test_fractions_sum_to_one(self):
        fractions = corpus_size_histogram([5, 15, 25, 50, 100], self.BOUNDS)
        assert abs(sum(fractions) - 1.0) < 1e-9

    def test_bucket_assignment(self):
        fractions = corpus_size_histogram([5, 15, 25, 50, 100], self.BOUNDS)
        assert fractions == [0.2, 0.2, 0.2, 0.2, 0.2]

    def test_boundary_goes_to_upper_bucket(self):
        fractions = corpus_size_histogram([10], self.BOUNDS)
        assert fractions[1] == 1.0

    def test_empty(self):
        assert corpus_size_histogram([], self.BOUNDS) == [0.0] * 5
