"""Differential harness: block-cached parses vs. direct parses.

The stanza cache shares parsed fragments *across routers*: a pod fabric
replicates the same OSPF / interface / filter stanzas hundreds of times,
so a warm cache assembles most of a router from fragments first seen in
a different file.  That is exactly where a fragment-merge bug would
hide — so this harness parses pod-replicated configs three ways
(cache-off, cold cache, warm cache) and demands identical models and
diagnostics, then repeats the exercise on re-indented and re-ordered
variants of the same configs (differing indentation must not share
fragments; fragment merge order must not change the result).
"""

import random

import pytest

from repro.diag import DiagnosticSink
from repro.ios.blockcache import BlockCache
from repro.ios.parser import parse_config
from repro.synth.templates.pods import build_pods

CONFIGS = build_pods("pod", 1, 24, access_per_pod=4)[0]


def _parse(text, cache, mode="lenient"):
    sink = DiagnosticSink()
    config = parse_config(
        text, mode=mode, sink=sink, source="t.cfg", block_cache=cache
    )
    return config, tuple(sink.diagnostics)


def _blocks(text):
    """Split a config into its ``!``-separated stanza blocks."""
    blocks, current = [], []
    for line in text.splitlines():
        if line.strip() == "!":
            if current:
                blocks.append(current)
            current = []
        else:
            current.append(line)
    if current:
        blocks.append(current)
    return blocks


def _reordered(text, seed):
    """The same config with its stanza blocks permuted (hostname first)."""
    blocks = _blocks(text)
    head, rest = blocks[0], blocks[1:]
    random.Random(seed).shuffle(rest)
    return "\n".join("\n".join(block) for block in [head, *rest]) + "\n"


def _reindented(text):
    """The same config with stanza bodies indented three spaces deep."""
    lines = [
        ("   " + line.lstrip()) if line.startswith(" ") else line
        for line in text.splitlines()
    ]
    return "\n".join(lines) + "\n"


class TestPodCorpusDifferential:
    def test_cross_router_warm_cache_equals_direct(self):
        # One cache for the whole fabric: later routers replay stanzas
        # first parsed (and cached) for earlier pod positions.
        cache = BlockCache(memo={})
        direct = {name: _parse(text, None) for name, text in CONFIGS.items()}
        cached = {name: _parse(text, cache) for name, text in CONFIGS.items()}
        assert cache.hits > 0  # replication really exercised sharing
        for name in CONFIGS:
            assert cached[name] == direct[name], name

    def test_second_pass_fully_warm(self):
        cache = BlockCache(memo={})
        for text in CONFIGS.values():
            _parse(text, cache)
        for name, text in CONFIGS.items():
            assert _parse(text, cache) == _parse(text, None), name


@pytest.mark.parametrize("name", ["pod-p0-acc0", "pod-border0", "pod-core0"])
class TestVariantDifferential:
    def test_reindented_configs_do_not_false_share(self, name):
        # Prime the cache with the original indentation, then parse the
        # re-indented text: the stanza key includes the indent, so the
        # variant must parse from scratch — and identically to direct.
        cache = BlockCache(memo={})
        original = CONFIGS[name]
        variant = _reindented(original)
        assert variant != original
        _parse(original, cache)
        assert _parse(variant, cache) == _parse(variant, None)

    def test_reordered_stanza_stream_merges_identically(self, name):
        # Same fragments, different merge order: the cached assembly of
        # a permuted config must equal its direct parse.
        cache = BlockCache(memo={})
        original = CONFIGS[name]
        _parse(original, cache)
        for seed in (1, 2, 3):
            variant = _reordered(original, seed)
            assert _parse(variant, cache) == _parse(variant, None), seed

    def test_merge_is_idempotent_across_passes(self, name):
        # Cold and warm parses of every variant agree with each other.
        cache = BlockCache(memo={})
        for seed in (1, 2):
            variant = _reordered(CONFIGS[name], seed)
            cold = _parse(variant, cache)
            warm = _parse(variant, cache)
            assert cold == warm, seed
