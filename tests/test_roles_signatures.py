"""Property tests: role/signature assignment over random pod fabrics.

The compression planner is only sound if the equivalence machinery is
*stable over the template family*, not just on one lucky instance: for
any pod fabric, routers occupying the same template position must get
identical local signatures (and land in one class), and routers in
different roles must never merge.  Hypothesis drives the template
parameters; the properties must hold for every draw.
"""

from hypothesis import given, settings, strategies as st

from repro.compress import build_compression_plan
from repro.compress.signature import local_signature
from repro.core.roles import ROLE_BORDER, classify_router_roles
from repro.model import Network
from repro.synth.templates.pods import build_pods

fabrics = st.builds(
    lambda pods, access, index: (4 + pods * (2 + access), access, index),
    pods=st.integers(min_value=1, max_value=4),
    access=st.integers(min_value=2, max_value=6),
    index=st.integers(min_value=0, max_value=9),
)


def _network(n_routers, access, index):
    configs, _spec = build_pods(
        "hyp", index, n_routers, access_per_pod=access
    )
    return Network.from_configs(configs, name=f"hyp-{index}")


@settings(max_examples=12, deadline=None)
@given(fabrics)
def test_same_position_same_signature(params):
    n_routers, access, index = params
    network = _network(n_routers, access, index)
    positions = {}
    for router in network.routers:
        # pod-position key: strip the pod number out of the name.
        if "-p" in router:
            position = router.split("-")[-1].rstrip("0123456789")
        else:
            position = router.rstrip("0123456789")
        positions.setdefault(position, []).append(router)
    for position, members in positions.items():
        signatures = {local_signature(network, m) for m in members}
        assert len(signatures) == 1, (position, members)


@settings(max_examples=12, deadline=None)
@given(fabrics)
def test_distinct_roles_never_merge(params):
    n_routers, access, index = params
    network = _network(n_routers, access, index)
    roles = classify_router_roles(network)
    plan = build_compression_plan(network)
    for cls in plan.classes:
        member_roles = {roles[m].role for m in cls.members}
        assert len(member_roles) == 1, cls
    # Borders (EBGP + redistribution) must be isolated from pure-IGP
    # routers in every draw.
    border_classes = {
        plan.router_class[r] for r, role in roles.items() if role.role == ROLE_BORDER
    }
    interior_classes = {
        plan.router_class[r] for r, role in roles.items() if role.role != ROLE_BORDER
    }
    assert border_classes.isdisjoint(interior_classes)


@settings(max_examples=8, deadline=None)
@given(fabrics)
def test_class_count_is_independent_of_fabric_size(params):
    # The whole point of the template: class count stays O(positions)
    # while the router count grows with pods × access.
    n_routers, access, index = params
    network = _network(n_routers, access, index)
    plan = build_compression_plan(network)
    assert plan.n_classes <= 6
    assert plan.n_routers == len(network)
