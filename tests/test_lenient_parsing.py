"""Lenient ingestion: skip-and-diagnose parsing, fault policies, recovery."""

import pytest

import repro.model.dialect as dialect_module
from repro.diag import DiagnosticSink, ERROR, INFO, WARNING
from repro.ios.parser import ConfigParseError, parse_config
from repro.junos import parse_junos_config
from repro.junos.blocks import JunosSyntaxError
from repro.model import Network

IOS_ONE_BAD_BLOCK = """\
hostname r1
!
interface Ethernet0
 ip address 10.0.0.1 255.255.255.0
!
interface Ethernet1
 ip address 999.0.0.1 255.255.255.0
!
interface Ethernet2
 ip address 10.0.2.1 255.255.255.0
"""

JUNOS_ONE_BAD_UNIT = """\
system {
    host-name pe1;
}
interfaces {
    so-0/0/0 {
        unit 0 {
            family inet {
                address 10.0.0.1/30;
            }
        }
    }
    ge-0/1/0 {
        unit 0 {
            family inet {
                address 999.0.0.1/24;
            }
        }
    }
}
"""


class TestIosLenient:
    def test_strict_still_raises(self):
        with pytest.raises(ConfigParseError):
            parse_config(IOS_ONE_BAD_BLOCK)

    def test_lenient_skips_bad_block(self):
        sink = DiagnosticSink()
        cfg = parse_config(IOS_ONE_BAD_BLOCK, mode="lenient", sink=sink, source="R1")
        assert list(cfg.interfaces) == ["Ethernet0", "Ethernet2"]
        assert sink.has_errors

    def test_diagnostic_names_the_file_and_line(self):
        sink = DiagnosticSink()
        parse_config(IOS_ONE_BAD_BLOCK, mode="lenient", sink=sink, source="R1")
        errors = sink.by_severity(ERROR)
        assert errors[0].file == "R1"
        assert errors[0].line_number > 0
        assert "skipped block" in errors[0].message

    def test_skipped_block_counted_as_unmodeled(self):
        cfg = parse_config(IOS_ONE_BAD_BLOCK, mode="lenient", sink=DiagnosticSink())
        assert any("Ethernet1" in line for line in cfg.unmodeled_lines)

    def test_unmodeled_command_gets_info_diag(self):
        sink = DiagnosticSink()
        parse_config("hostname r1\nscheduler allocate 4000 400\n",
                     mode="lenient", sink=sink, source="R1")
        infos = sink.by_severity(INFO)
        assert any("unmodeled command" in d.message for d in infos)

    def test_lenient_without_sink(self):
        cfg = parse_config(IOS_ONE_BAD_BLOCK, mode="lenient")
        assert len(cfg.interfaces) == 2


class TestJunosLenient:
    def test_strict_still_raises(self):
        with pytest.raises(ValueError):
            parse_junos_config(JUNOS_ONE_BAD_UNIT)

    def test_lenient_skips_bad_unit(self):
        sink = DiagnosticSink()
        cfg = parse_junos_config(
            JUNOS_ONE_BAD_UNIT, mode="lenient", sink=sink, source="pe1"
        )
        assert "so-0/0/0.0" in cfg.interfaces
        assert "ge-0/1/0.0" not in cfg.interfaces
        errors = sink.by_severity(ERROR)
        assert errors and errors[0].file == "pe1"
        assert errors[0].line_number > 0

    def test_brace_imbalance_raises_even_lenient(self):
        # File-level structural damage cannot be skipped block-wise.
        with pytest.raises(JunosSyntaxError):
            parse_junos_config(
                "system {\n    host-name x;\n", mode="lenient", sink=DiagnosticSink()
            )

    def test_bad_autonomous_system(self):
        text = "system {\n    host-name x;\n}\nrouting-options {\n    autonomous-system banana;\n}\n"
        with pytest.raises(ValueError):
            parse_junos_config(text)
        sink = DiagnosticSink()
        cfg = parse_junos_config(text, mode="lenient", sink=sink, source="pe1")
        assert cfg.hostname == "x"
        assert sink.has_errors

    def test_unknown_section_gets_info_diag(self):
        sink = DiagnosticSink()
        parse_junos_config(
            "system {\n    host-name x;\n}\nsnmp {\n    community public;\n}\n",
            mode="lenient",
            sink=sink,
        )
        assert any("unmodeled section" in d.message for d in sink.by_severity(INFO))


class TestFromConfigsPolicies:
    def test_strict_raises(self):
        with pytest.raises(ConfigParseError):
            Network.from_configs({"R1": IOS_ONE_BAD_BLOCK})

    def test_skip_block_recovers(self):
        network = Network.from_configs({"R1": IOS_ONE_BAD_BLOCK}, on_error="skip-block")
        assert "R1" in network.routers
        assert network.diagnostics.has_errors
        assert network.quarantined == []

    def test_skip_file_quarantines(self):
        network = Network.from_configs(
            {"R1": IOS_ONE_BAD_BLOCK, "R2": "hostname r2\n"}, on_error="skip-file"
        )
        assert network.quarantined == ["R1"]
        assert list(network.routers) == ["R2"]
        assert any(
            "quarantined" in d.message for d in network.diagnostics.by_severity(ERROR)
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Network.from_configs({"R1": "hostname r1\n"}, on_error="ignore")

    def test_junos_file_level_fault_quarantined_in_skip_block(self):
        # skip-block degrades to quarantine when the fault is file-level.
        network = Network.from_configs(
            {"pe1": "system {\n    host-name pe1;\n"}, on_error="skip-block"
        )
        assert network.quarantined == ["pe1"]
        assert len(network.routers) == 0

    def test_from_configs_keys_networks_by_mapping_name(self):
        network = Network.from_configs({"A": "hostname other\n"})
        assert list(network.routers) == ["A"]


class TestDuplicateHostnames:
    def _write(self, path, entries):
        for name, text in entries.items():
            (path / name).write_text(text)

    def test_strict_raises(self, tmp_path):
        self._write(
            tmp_path,
            {"config1": "hostname twin\n", "config2": "hostname twin\n"},
        )
        with pytest.raises(ValueError, match="duplicate router name"):
            Network.from_directory(str(tmp_path))

    def test_lenient_renames_with_suffix(self, tmp_path):
        self._write(
            tmp_path,
            {
                "config1": "hostname twin\n",
                "config2": "hostname twin\n",
                "config3": "hostname twin\n",
            },
        )
        network = Network.from_directory(str(tmp_path), on_error="skip-block")
        assert sorted(network.routers) == ["twin", "twin~2", "twin~3"]
        warnings = network.diagnostics.by_severity(WARNING)
        assert any("duplicate router name" in d.message for d in warnings)

    def test_rename_diag_names_the_file(self, tmp_path):
        self._write(
            tmp_path,
            {"config1": "hostname twin\n", "config2": "hostname twin\n"},
        )
        network = Network.from_directory(str(tmp_path), on_error="skip-block")
        warning = network.diagnostics.by_severity(WARNING)[0]
        assert warning.file == "config2"


class TestDirectoryHardening:
    def test_binary_file_skipped_with_warning(self, tmp_path):
        (tmp_path / "config1").write_text("hostname r1\n")
        (tmp_path / "core.bin").write_bytes(b"\x7fELF\x00\x00\x00garbage")
        network = Network.from_directory(str(tmp_path))
        assert list(network.routers) == ["r1"]
        assert network.quarantined == ["core.bin"]
        warnings = network.diagnostics.by_severity(WARNING)
        assert any("binary" in d.message for d in warnings)

    def test_binary_skip_applies_even_in_strict(self, tmp_path):
        (tmp_path / "blob").write_bytes(b"\x00" * 64)
        network = Network.from_directory(str(tmp_path), on_error="strict")
        assert network.quarantined == ["blob"]

    def test_undecodable_file_skipped(self, tmp_path):
        (tmp_path / "config1").write_text("hostname r1\n")
        (tmp_path / "junk").write_bytes(bytes(range(128, 256)) * 8)
        network = Network.from_directory(str(tmp_path))
        assert list(network.routers) == ["r1"]
        assert "junk" in network.quarantined

    def test_missing_hostname_falls_back_to_filename(self, tmp_path):
        (tmp_path / "edge7.conf").write_text("interface Ethernet0\n shutdown\n")
        network = Network.from_directory(str(tmp_path))
        assert list(network.routers) == ["edge7"]
        infos = network.diagnostics.by_severity(INFO)
        assert any("no hostname" in d.message for d in infos)

    def test_each_file_parsed_exactly_once(self, tmp_path, monkeypatch):
        for i in range(3):
            (tmp_path / f"config{i}").write_text(f"hostname r{i}\n")
        calls = []
        real = dialect_module.parse_any_config

        def counting(text, **kwargs):
            calls.append(kwargs.get("source"))
            return real(text, **kwargs)

        monkeypatch.setattr(dialect_module, "parse_any_config", counting)
        Network.from_directory(str(tmp_path))
        assert sorted(calls) == ["config0", "config1", "config2"]
