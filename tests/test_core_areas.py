"""OSPF area structure tests."""

from repro.core.areas import _normalize_area, analyze_ospf_areas
from repro.model import Network


def ospf_router(name_suffix, stanzas):
    """Helper: interfaces plus an OSPF process covering them."""
    lines = []
    networks = []
    for index, (subnet_octet, host, area) in enumerate(stanzas):
        lines.append(
            f"interface Serial{index}\n"
            f" ip address 10.0.{subnet_octet}.{host} 255.255.255.252\n!"
        )
        networks.append(f" network 10.0.{subnet_octet}.{(host - 1) // 4 * 4} 0.0.0.3 area {area}")
    return "\n".join(lines) + "\nrouter ospf 1\n" + "\n".join(networks) + "\n"


MULTI_AREA = {
    # backbone link r1-r2 in area 0; r2-r3 in area 1; r3-r4 in area 1.
    "r1": ospf_router("r1", [(0, 1, "0")]),
    "r2": ospf_router("r2", [(0, 2, "0"), (4, 5, "1")]),
    "r3": ospf_router("r3", [(4, 6, "1"), (8, 9, "1")]),
    "r4": ospf_router("r4", [(8, 10, "1")]),
}


class TestNormalize:
    def test_int_form(self):
        assert _normalize_area("0") == "0"
        assert _normalize_area("23") == "23"

    def test_dotted_form(self):
        assert _normalize_area("0.0.0.0") == "0"
        assert _normalize_area("0.0.0.11") == "11"
        assert _normalize_area("0.0.1.0") == "256"

    def test_none(self):
        assert _normalize_area(None) == "0"


class TestAreaRecovery:
    def test_areas_and_membership(self):
        net = Network.from_configs(MULTI_AREA)
        (structure,) = analyze_ospf_areas(net)
        assert structure.area_ids == ["0", "1"]
        assert structure.areas["0"] == {"r1", "r2"}
        assert structure.areas["1"] == {"r2", "r3", "r4"}

    def test_abr_detection(self):
        net = Network.from_configs(MULTI_AREA)
        (structure,) = analyze_ospf_areas(net)
        assert structure.border_routers == {"r2"}
        assert structure.abr_count() == 1

    def test_backbone_attached(self):
        net = Network.from_configs(MULTI_AREA)
        (structure,) = analyze_ospf_areas(net)
        assert structure.has_backbone
        assert structure.detached_areas() == []

    def test_detached_area_flagged(self):
        # Area 2 exists on r4 only — no ABR joins it to the backbone.
        configs = dict(MULTI_AREA)
        configs["r4"] = ospf_router("r4", [(8, 10, "1")]).replace(
            "router ospf 1\n",
            "interface Ethernet0\n ip address 10.0.20.1 255.255.255.0\n"
            "!\nrouter ospf 1\n network 10.0.20.0 0.0.0.255 area 2\n",
        )
        configs["r5"] = (
            "interface Ethernet0\n ip address 10.0.20.2 255.255.255.0\n"
            "!\nrouter ospf 1\n network 10.0.20.0 0.0.0.255 area 2\n"
        )
        net = Network.from_configs(configs)
        (structure,) = analyze_ospf_areas(net)
        assert "2" in structure.area_ids
        assert structure.detached_areas() == ["2"]

    def test_single_area_instance(self, enterprise_net):
        net, _spec = enterprise_net
        structures = analyze_ospf_areas(net)
        assert structures
        assert all(s.is_single_area for s in structures)
        assert all(s.detached_areas() == [] for s in structures)

    def test_junos_areas_normalize_with_ios(self):
        junos = """
        system { host-name j1; }
        interfaces { so-0/0/0 { unit 0 { family inet { address 10.0.0.1/30; } } } }
        protocols { ospf { area 0.0.0.0 { interface so-0/0/0.0; } } }
        """
        ios = (
            "hostname c1\n"
            "!\ninterface POS0/0\n ip address 10.0.0.2 255.255.255.252\n"
            "!\nrouter ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
        )
        net = Network.from_configs({"j1": junos, "c1": ios})
        (structure,) = analyze_ospf_areas(net)
        # "0.0.0.0" (JunOS) and "0" (IOS) are the same area.
        assert structure.area_ids == ["0"]
        assert structure.areas["0"] == {"j1", "c1"}
