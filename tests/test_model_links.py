"""Link inference tests (§2.1)."""

from repro.ios.config import InterfaceConfig
from repro.model.links import infer_links
from repro.net import IPv4Address, Prefix


def iface(address, masklen, name="Serial0", **kw):
    prefix = Prefix(address + f"/{masklen}")
    return InterfaceConfig(
        name=name,
        address=IPv4Address(address),
        netmask=prefix.netmask,
        **kw,
    )


class TestInferLinks:
    def test_p2p_match(self):
        links, unmatched = infer_links(
            {
                ("r1", "Serial0"): iface("10.0.0.1", 30),
                ("r2", "Serial0"): iface("10.0.0.2", 30),
            }
        )
        assert len(links) == 1
        assert not unmatched
        assert links[0].is_point_to_point
        assert links[0].routers == ("r1", "r2")
        assert not links[0].may_have_external

    def test_unmatched_interface(self):
        links, unmatched = infer_links({("r1", "Serial0"): iface("10.0.0.1", 30)})
        assert not links
        assert unmatched == [("r1", "Serial0")]

    def test_different_subnets_do_not_match(self):
        _, unmatched = infer_links(
            {
                ("r1", "Serial0"): iface("10.0.0.1", 30),
                ("r2", "Serial0"): iface("10.0.0.5", 30),
            }
        )
        assert len(unmatched) == 2

    def test_multipoint_link(self):
        links, _ = infer_links(
            {
                ("r1", "Ethernet0"): iface("10.1.0.1", 24, "Ethernet0"),
                ("r2", "Ethernet0"): iface("10.1.0.2", 24, "Ethernet0"),
                ("r3", "Ethernet0"): iface("10.1.0.3", 24, "Ethernet0"),
            }
        )
        assert len(links) == 1
        assert len(links[0].ends) == 3
        assert not links[0].is_point_to_point
        assert links[0].may_have_external  # 251 spare addresses

    def test_full_p2p_has_no_room_for_external(self):
        links, _ = infer_links(
            {
                ("r1", "Serial0"): iface("10.0.0.1", 30),
                ("r2", "Serial0"): iface("10.0.0.2", 30),
            }
        )
        assert not links[0].may_have_external

    def test_shutdown_ignored(self):
        _, unmatched = infer_links(
            {("r1", "Serial0"): iface("10.0.0.1", 30, shutdown=True)}
        )
        assert not unmatched

    def test_unnumbered_ignored(self):
        _, unmatched = infer_links(
            {("r1", "Serial0"): InterfaceConfig(name="Serial0")}
        )
        assert not unmatched

    def test_loopbacks_never_link_or_unmatch(self):
        links, unmatched = infer_links(
            {
                ("r1", "Loopback0"): iface("10.9.0.1", 32, "Loopback0"),
                ("r2", "Loopback0"): iface("10.9.0.2", 32, "Loopback0"),
            }
        )
        assert not links
        assert not unmatched

    def test_same_router_two_interfaces_same_subnet_is_not_a_link(self):
        links, unmatched = infer_links(
            {
                ("r1", "Ethernet0"): iface("10.1.0.1", 24, "Ethernet0"),
                ("r1", "Ethernet1"): iface("10.1.0.2", 24, "Ethernet1"),
            }
        )
        assert not links
        assert len(unmatched) == 2
