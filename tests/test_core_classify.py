"""Design classification tests (§7)."""

from collections import Counter

from repro.core import classify_design, compute_instances
from repro.core.classify import DesignClass, is_staging_instance
from repro.core.instances import find_external_adjacent_instances


class TestTemplateClassification:
    def test_enterprise(self, enterprise_net):
        net, spec = enterprise_net
        evidence = classify_design(net)
        assert evidence.design == DesignClass.ENTERPRISE
        assert evidence.bgp_redistributed_into_igp
        assert evidence.igp_to_igp_redistribution_count == 0

    def test_backbone(self, backbone_net):
        net, spec = backbone_net
        evidence = classify_design(net)
        assert evidence.design == DesignClass.BACKBONE
        assert not evidence.bgp_redistributed_into_igp
        assert evidence.largest_bgp_instance_size == len(net.routers)
        assert evidence.ebgp_external_sessions >= 2

    def test_tier2_is_not_a_textbook_backbone(self, tier2_net):
        net, spec = tier2_net
        evidence = classify_design(net)
        assert evidence.design == DesignClass.UNCLASSIFIABLE
        assert evidence.staging_instance_count == spec.notes["staging_instances"]

    def test_net5_unclassifiable(self, net5_small):
        net, _spec = net5_small
        evidence = classify_design(net)
        assert evidence.design == DesignClass.UNCLASSIFIABLE
        assert evidence.internal_as_count == 14

    def test_net15_unclassifiable(self, net15_full):
        net, _spec = net15_full
        evidence = classify_design(net)
        assert evidence.design == DesignClass.UNCLASSIFIABLE


class TestCorpusClassification:
    def test_section7_counts(self, small_corpus):
        designs = Counter(
            classify_design(cn.network()).design for cn in small_corpus
        )
        assert designs[DesignClass.BACKBONE] == 4
        assert designs[DesignClass.ENTERPRISE] == 7
        assert designs[DesignClass.UNCLASSIFIABLE] == 20

    def test_every_network_matches_its_ground_truth(self, small_corpus):
        for cn in small_corpus:
            evidence = classify_design(cn.network())
            assert evidence.design == cn.spec.design, cn.name

    def test_backbones_never_redistribute_bgp_into_igp(self, small_corpus):
        for cn in small_corpus:
            evidence = classify_design(cn.network())
            if evidence.design == DesignClass.BACKBONE:
                assert not evidence.bgp_redistributed_into_igp


class TestStagingDetection:
    def test_staging_definition(self, tier2_net):
        net, _spec = tier2_net
        instances = compute_instances(net)
        external_ids = find_external_adjacent_instances(net, instances)
        staging = [
            i for i in instances if is_staging_instance(i, external_ids)
        ]
        assert staging
        assert all(i.size == 1 and i.protocol != "bgp" for i in staging)

    def test_multi_router_instance_is_not_staging(self, enterprise_net):
        net, _spec = enterprise_net
        instances = compute_instances(net)
        external_ids = find_external_adjacent_instances(net, instances)
        assert not any(is_staging_instance(i, external_ids) for i in instances)
