"""Deadline suggestions derived from benchmark timing data."""

import json

from repro.exec.budget import (
    BENCH_RESULTS_ENV,
    FALLBACK_STAGE_DEADLINE,
    MIN_STAGE_DEADLINE,
    SAFETY_FACTOR,
    suggest_stage_deadline,
)


def _write(tmp_path, payload):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(payload))
    return str(path)


class TestSuggestion:
    def test_missing_file_falls_back(self, tmp_path):
        suggestion = suggest_stage_deadline(str(tmp_path / "absent.json"))
        assert suggestion.source == "fallback"
        assert suggestion.seconds == FALLBACK_STAGE_DEADLINE

    def test_malformed_json_falls_back(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{broken")
        suggestion = suggest_stage_deadline(str(path))
        assert suggestion.source == "fallback"

    def test_slowest_stage_scaled_by_safety_factor(self, tmp_path):
        path = _write(
            tmp_path,
            {"stages": [{"name": "parse", "seconds": 2.0}, {"seconds": 8.0}]},
        )
        suggestion = suggest_stage_deadline(path)
        assert suggestion.source == "benchmarks"
        assert suggestion.seconds == 8.0 * SAFETY_FACTOR
        assert "slowest measured stage" in suggestion.detail

    def test_tiny_measurements_are_floored(self, tmp_path):
        path = _write(tmp_path, {"stages": [{"seconds": 0.001}]})
        suggestion = suggest_stage_deadline(path)
        assert suggestion.seconds == MIN_STAGE_DEADLINE

    def test_full_analysis_total_counts_as_a_stage(self, tmp_path):
        path = _write(tmp_path, {"stages": [], "seconds_full_analysis": 4.0})
        suggestion = suggest_stage_deadline(path)
        assert suggestion.seconds == 4.0 * SAFETY_FACTOR

    def test_env_override_points_at_the_file(self, tmp_path, monkeypatch):
        path = _write(tmp_path, {"stages": [{"seconds": 1.0}]})
        monkeypatch.setenv(BENCH_RESULTS_ENV, path)
        suggestion = suggest_stage_deadline()
        assert suggestion.source == "benchmarks"
        assert suggestion.seconds == 1.0 * SAFETY_FACTOR

    def test_as_dict_carries_provenance(self, tmp_path):
        suggestion = suggest_stage_deadline(str(tmp_path / "absent.json"))
        data = suggestion.as_dict()
        assert data["source"] == "fallback"
        assert data["seconds"] == FALLBACK_STAGE_DEADLINE
        assert "detail" in data
