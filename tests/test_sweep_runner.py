"""Sweep runner semantics: determinism, barriers, deadlines, resume."""

import hashlib
import json
import random

import pytest

from repro.exec.chaos import ChaosPlan, SimulatedKill
from repro.exec.checkpoint import CheckpointStore
from repro.obs.manifest import FileRecord
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.sweep import (
    SCENARIO_STAGE_PREFIX,
    SweepConfig,
    enumerate_scenarios,
    run_network_sweep,
)


@pytest.fixture(autouse=True)
def _registry():
    with use_registry(MetricsRegistry()):
        yield


def _inventory(network):
    inventory = getattr(network, "inventory", None)
    if inventory:
        return list(inventory)
    return [
        FileRecord(
            path=name,
            size=1,
            sha256=hashlib.sha256(name.encode()).hexdigest(),
            disposition="parsed",
        )
        for name in sorted(network.routers)
    ]


def normalized(result):
    """The jobs-/order-/resume-invariant view of a sweep result."""
    data = result.as_dict()
    for key in ("seconds", "workers", "replayed"):
        data.pop(key, None)
    for row in data["rows"]:
        row.pop("seconds", None)
        row.pop("from_checkpoint", None)
    return json.dumps(data, sort_keys=True)


class TestBasicSweep:
    def test_all_scenarios_produce_rows(self, fig1):
        network, _meta = fig1
        result = run_network_sweep(network, "fig1")
        plan = enumerate_scenarios(network)
        assert len(result.rows) == len(plan.scenarios)
        assert {row["scenario"] for row in result.rows} == {
            s.scenario_id for s in plan.scenarios
        }
        assert result.worst_status == "ok"

    def test_rows_ranked_most_damaging_first(self, fig1):
        network, _meta = fig1
        result = run_network_sweep(network, "fig1")
        losses = [row["delta"]["lost_pairs"] for row in result.rows]
        assert losses == sorted(losses, reverse=True)

    def test_failing_a_router_loses_reachability(self, fig1):
        network, _meta = fig1
        result = run_network_sweep(network, "fig1")
        router_rows = [row for row in result.rows if row["kind"] == "router"]
        assert any(row["delta"]["lost_pairs"] > 0 for row in router_rows)


class TestDeterminism:
    def test_jobs_value_never_changes_results(self, fig1):
        network, _meta = fig1
        serial = run_network_sweep(network, "fig1", config=SweepConfig(jobs=1))
        parallel = run_network_sweep(network, "fig1", config=SweepConfig(jobs=4))
        assert normalized(serial) == normalized(parallel)

    def test_scenario_order_never_changes_results(self, fig1):
        network, _meta = fig1
        reference = run_network_sweep(network, "fig1", config=SweepConfig(jobs=2))
        plan = enumerate_scenarios(network)
        random.Random(11).shuffle(plan.scenarios)
        permuted = run_network_sweep(
            network, "fig1", config=SweepConfig(jobs=2), plan=plan
        )
        assert normalized(reference) == normalized(permuted)


class TestScenarioBarriers:
    def test_chaos_raise_becomes_failed_row(self, fig1):
        network, _meta = fig1
        victim = enumerate_scenarios(network).scenarios[0].scenario_id
        chaos = ChaosPlan.from_spec(f"fig1:{victim}=raise")
        result = run_network_sweep(network, "fig1", config=SweepConfig(chaos=chaos))
        by_id = {row["scenario"]: row for row in result.rows}
        assert by_id[victim]["status"] == "failed"
        assert "ChaosError" in by_id[victim]["error"]
        # The rest of the sweep survived the crash.
        assert sum(1 for row in result.rows if row["status"] == "ok") == (
            len(result.rows) - 1
        )
        assert result.worst_status == "failed"

    def test_hang_becomes_timeout_row_under_deadline(self, fig1):
        network, _meta = fig1
        victim = enumerate_scenarios(network).scenarios[0].scenario_id
        chaos = ChaosPlan.from_spec(f"fig1:{victim}=hang")
        result = run_network_sweep(
            network,
            "fig1",
            config=SweepConfig(chaos=chaos, scenario_deadline=0.3),
        )
        by_id = {row["scenario"]: row for row in result.rows}
        assert by_id[victim]["status"] == "timeout"
        assert result.worst_status == "timeout"

    def test_parallel_chaos_still_isolated_per_scenario(self, fig1):
        network, _meta = fig1
        victim = enumerate_scenarios(network).scenarios[0].scenario_id
        chaos = ChaosPlan.from_spec(f"fig1:{victim}=raise")
        result = run_network_sweep(
            network, "fig1", config=SweepConfig(jobs=3, chaos=chaos)
        )
        by_id = {row["scenario"]: row for row in result.rows}
        assert by_id[victim]["status"] == "failed"
        assert sum(1 for row in result.rows if row["status"] == "ok") == (
            len(result.rows) - 1
        )

    def test_kill_propagates_out_of_the_sweep(self, fig1):
        network, _meta = fig1
        victim = enumerate_scenarios(network).scenarios[-1].scenario_id
        chaos = ChaosPlan.from_spec(f"fig1:{victim}=kill")
        with pytest.raises(SimulatedKill):
            run_network_sweep(network, "fig1", config=SweepConfig(chaos=chaos))


class TestFailFast:
    def test_scenarios_after_the_trigger_are_skipped(self, fig1):
        network, _meta = fig1
        plan = enumerate_scenarios(network)
        victim_index = 2
        victim = plan.scenarios[victim_index].scenario_id
        chaos = ChaosPlan.from_spec(f"fig1:{victim}=raise")
        result = run_network_sweep(
            network, "fig1", config=SweepConfig(chaos=chaos, fail_fast=True)
        )
        assert result.stopped_after == victim
        counts = result.status_counts
        assert counts["failed"] == 1
        assert counts["skipped"] == len(plan.scenarios) - victim_index - 1
        assert counts.get("ok", 0) == victim_index

    def test_fail_fast_is_jobs_invariant(self, fig1):
        network, _meta = fig1
        victim = enumerate_scenarios(network).scenarios[3].scenario_id
        chaos = ChaosPlan.from_spec(f"fig1:{victim}=raise")
        serial = run_network_sweep(
            network, "fig1", config=SweepConfig(jobs=1, chaos=chaos, fail_fast=True)
        )
        parallel = run_network_sweep(
            network, "fig1", config=SweepConfig(jobs=4, chaos=chaos, fail_fast=True)
        )
        assert normalized(serial) == normalized(parallel)


class TestCheckpointResume:
    def test_kill_then_resume_matches_uninterrupted(self, fig1, tmp_path):
        network, _meta = fig1
        inventory = _inventory(network)
        uninterrupted = run_network_sweep(network, "fig1", inventory=inventory)

        store = CheckpointStore(root=str(tmp_path / "ckpt"))
        victim = enumerate_scenarios(network).scenarios[-2].scenario_id
        chaos = ChaosPlan.from_spec(f"fig1:{victim}=kill")
        with pytest.raises(SimulatedKill):
            run_network_sweep(
                network,
                "fig1",
                inventory=inventory,
                config=SweepConfig(chaos=chaos, checkpoints=store),
            )
        stored_before_kill = store.stats.stores
        assert stored_before_kill > 0  # progress survived the kill

        resumed = run_network_sweep(
            network,
            "fig1",
            inventory=inventory,
            config=SweepConfig(checkpoints=store, resume=True),
        )
        assert resumed.replayed == stored_before_kill
        assert any(row.get("from_checkpoint") for row in resumed.rows)
        assert normalized(resumed) == normalized(uninterrupted)

    def test_resume_replays_nothing_without_checkpoints(self, fig1, tmp_path):
        network, _meta = fig1
        store = CheckpointStore(root=str(tmp_path / "empty"))
        result = run_network_sweep(
            network,
            "fig1",
            inventory=_inventory(network),
            config=SweepConfig(checkpoints=store, resume=True),
        )
        assert result.replayed == 0
        assert result.worst_status == "ok"

    def test_unfinished_rows_are_not_checkpointed(self, fig1, tmp_path):
        network, _meta = fig1
        store = CheckpointStore(root=str(tmp_path / "ckpt"))
        victim = enumerate_scenarios(network).scenarios[0].scenario_id
        chaos = ChaosPlan.from_spec(f"fig1:{victim}=raise")
        run_network_sweep(
            network,
            "fig1",
            inventory=_inventory(network),
            config=SweepConfig(chaos=chaos, checkpoints=store),
        )
        assert not any(
            f"{SCENARIO_STAGE_PREFIX}{victim}.json" in path
            for path in store.entries()
        )
        # A resumed run re-executes the failed scenario, clean this time.
        resumed = run_network_sweep(
            network,
            "fig1",
            inventory=_inventory(network),
            config=SweepConfig(checkpoints=store, resume=True),
        )
        by_id = {row["scenario"]: row for row in resumed.rows}
        assert by_id[victim]["status"] == "ok"
        assert not by_id[victim].get("from_checkpoint")


class TestDivergenceRow:
    def test_diverging_scenario_degrades_instead_of_raising(self, fig1):
        network, _meta = fig1
        # max_iterations=1 guarantees the fixpoint is not reached; every
        # scenario must degrade to a diagnostic row, never raise.
        result = run_network_sweep(
            network, "fig1", config=SweepConfig(max_iterations=1)
        )
        assert result.rows
        for row in result.rows:
            assert row["status"] == "degraded"
            assert row["degradation"] == "diverged"
            assert row["delta"]["converged"] is False
        assert result.worst_status == "degraded"
