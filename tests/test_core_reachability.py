"""Reachability analysis tests (§6.2): RouteSet algebra, PrefixFilter
semantics, and the net15 case study claims."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ReachabilityAnalysis, RouteSet
from repro.core.reachability import PrefixFilter, prefix_complement
from repro.ios.config import AccessList, AclRule, RouteMap, RouteMapClause
from repro.net import IPv4Address, Prefix

prefixes = st.builds(
    Prefix,
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=28),
)


class TestPrefixComplement:
    def test_simple(self):
        parts = prefix_complement(Prefix("10.0.0.0/24"), Prefix("10.0.0.0/26"))
        assert sorted(map(str, parts)) == [
            "10.0.0.128/25",
            "10.0.0.64/26",
        ]

    def test_complement_plus_inner_covers_container(self):
        container, inner = Prefix("10.0.0.0/8"), Prefix("10.200.4.0/22")
        parts = prefix_complement(container, inner) + [inner]
        total = sum(p.num_addresses() for p in parts)
        assert total == container.num_addresses()

    def test_not_contained_raises(self):
        with pytest.raises(ValueError):
            prefix_complement(Prefix("10.0.0.0/24"), Prefix("11.0.0.0/24"))

    @given(prefixes, st.integers(min_value=0, max_value=8))
    def test_property_partition(self, container, extra_bits):
        inner_len = min(32, container.length + extra_bits)
        inner = Prefix(container.network_int, inner_len)
        parts = prefix_complement(container, inner)
        assert len(parts) == inner_len - container.length
        for part in parts:
            assert container.contains(part)
            assert not part.overlaps(inner)


class TestRouteSet:
    def test_normalizes(self):
        rs = RouteSet([Prefix("10.0.0.0/25"), Prefix("10.0.0.128/25")])
        assert rs.atoms == (Prefix("10.0.0.0/24"),)

    def test_covers_and_overlaps(self):
        rs = RouteSet([Prefix("10.0.0.0/16")])
        assert rs.covers(Prefix("10.0.5.0/24"))
        assert rs.overlaps(Prefix("10.0.0.0/8"))
        assert not rs.covers(Prefix("10.0.0.0/8"))

    def test_union_merges_siblings(self):
        a = RouteSet([Prefix("10.0.0.0/24")])
        b = RouteSet([Prefix("10.0.1.0/24")])
        assert a.union(b) == RouteSet([Prefix("10.0.0.0/23")])

    def test_union_keeps_disjoint(self):
        a = RouteSet([Prefix("10.0.0.0/24")])
        b = RouteSet([Prefix("10.9.0.0/24")])
        assert len(a.union(b)) == 2

    def test_intersection_nested(self):
        a = RouteSet([Prefix("10.0.0.0/8")])
        b = RouteSet([Prefix("10.5.0.0/16"), Prefix("11.0.0.0/16")])
        assert a.intersection(b) == RouteSet([Prefix("10.5.0.0/16")])

    def test_intersection_disjoint_is_empty(self):
        a = RouteSet([Prefix("10.0.0.0/8")])
        b = RouteSet([Prefix("11.0.0.0/8")])
        assert a.intersection(b).is_empty()

    def test_universe_and_default(self):
        assert RouteSet.universe().has_default()
        assert not RouteSet([Prefix("10.0.0.0/8")]).has_default()

    def test_equality_and_hash(self):
        a = RouteSet([Prefix("10.0.0.0/24")])
        b = RouteSet([Prefix("10.0.0.1/24")])
        assert a == b
        assert hash(a) == hash(b)

    @given(st.lists(prefixes, max_size=12), st.lists(prefixes, max_size=12))
    def test_intersection_commutes(self, xs, ys):
        a, b = RouteSet(xs), RouteSet(ys)
        assert a.intersection(b) == b.intersection(a)

    @given(st.lists(prefixes, max_size=12))
    def test_union_with_self_is_identity(self, xs):
        a = RouteSet(xs)
        assert a.union(a) == a

    @given(st.lists(prefixes, max_size=10), st.lists(prefixes, max_size=10))
    def test_intersection_contained_in_both(self, xs, ys):
        a, b = RouteSet(xs), RouteSet(ys)
        inter = a.intersection(b)
        for atom in inter:
            assert a.covers(atom)
            assert b.covers(atom)


class TestPrefixFilter:
    def test_pass_all(self):
        assert PrefixFilter.pass_all().apply(RouteSet.universe()).has_default()

    def test_deny_all(self):
        assert PrefixFilter.deny_all().apply(RouteSet.universe()).is_empty()

    def test_implicit_deny(self):
        f = PrefixFilter(rules=[("permit", Prefix("10.0.0.0/8"))])
        result = f.apply(RouteSet([Prefix("11.0.0.0/8")]))
        assert result.is_empty()

    def test_deny_shadows_later_permit(self):
        f = PrefixFilter(
            rules=[
                ("deny", Prefix("10.1.0.0/16")),
                ("permit", Prefix("10.0.0.0/8")),
            ]
        )
        result = f.apply(RouteSet([Prefix("10.0.0.0/8")]))
        assert not result.overlaps(Prefix("10.1.0.0/16"))
        assert result.covers(Prefix("10.2.0.0/16"))

    def test_atom_splitting_exact(self):
        f = PrefixFilter(rules=[("permit", Prefix("10.0.0.0/9"))])
        result = f.apply(RouteSet([Prefix("10.0.0.0/8")]))
        assert result == RouteSet([Prefix("10.0.0.0/9")])

    def test_permitted_set(self):
        f = PrefixFilter(
            rules=[("deny", Prefix("10.0.0.0/8")), ("permit", Prefix(0, 0))]
        )
        permitted = f.permitted_set()
        assert permitted.overlaps(Prefix("11.0.0.0/8"))
        assert not permitted.overlaps(Prefix("10.1.0.0/16"))

    def test_from_access_list(self):
        acl = AccessList(
            name="4",
            rules=[
                AclRule(
                    action="deny",
                    source=IPv4Address("10.0.0.0"),
                    source_wildcard=IPv4Address("0.255.255.255"),
                ),
                AclRule(action="permit", source_any=True),
            ],
        )
        f = PrefixFilter.from_access_list(acl)
        assert not f.permitted_set().overlaps(Prefix("10.0.0.0/8"))

    def test_from_route_map_clause_order(self):
        acls = {
            "1": AccessList(
                name="1",
                rules=[
                    AclRule(
                        action="permit",
                        source=IPv4Address("10.1.0.0"),
                        source_wildcard=IPv4Address("0.0.255.255"),
                    )
                ],
            )
        }
        rm = RouteMap(
            name="m",
            clauses=[
                RouteMapClause(action="deny", sequence=10, match_ip_address=["1"]),
                RouteMapClause(action="permit", sequence=20),
            ],
        )
        f = PrefixFilter.from_route_map(rm, acls)
        permitted = f.permitted_set()
        assert not permitted.overlaps(Prefix("10.1.0.0/16"))
        assert permitted.overlaps(Prefix("10.2.0.0/16"))

    @given(st.lists(prefixes, max_size=8))
    def test_filter_output_subset_of_input(self, xs):
        f = PrefixFilter(
            rules=[("deny", Prefix("10.0.0.0/8")), ("permit", Prefix("0.0.0.0/1"))]
        )
        routes = RouteSet(xs)
        for atom in f.apply(routes):
            assert routes.covers(atom)


class TestNet15Claims:
    @pytest.fixture(scope="class")
    def analysis(self, net15_full):
        net, spec = net15_full
        return ReachabilityAnalysis(net), net, spec

    def _ospf_ids(self, analysis):
        ra, _net, spec = analysis
        left_routers = set(spec.notes["left_ospf_routers"])
        ospf = [i for i in ra.instances if i.protocol == "ospf"]
        left = next(i for i in ospf if i.routers & left_routers)
        right = next(i for i in ospf if i is not left)
        return left.instance_id, right.instance_id

    def test_no_default_route_admitted(self, analysis):
        ra, _net, _spec = analysis
        left, right = self._ospf_ids(analysis)
        assert not ra.default_route_admitted(left)
        assert not ra.default_route_admitted(right)

    def test_external_routes_limited_to_policy_blocks(self, analysis):
        ra, _net, spec = analysis
        left, right = self._ospf_ids(analysis)
        a1 = RouteSet([Prefix(p) for p in spec.notes["policies"]["A1"]])
        ext_left = ra.external_routes_into(left)
        assert ext_left == a1
        a3 = RouteSet([Prefix(p) for p in spec.notes["policies"]["A3"]])
        a5 = RouteSet([Prefix(p) for p in spec.notes["policies"]["A5"]])
        ext_right = ra.external_routes_into(right)
        assert ext_right == a3.union(a5)

    def test_total_admitted_is_two_slash16_and_three_slash24(self, analysis):
        ra, _net, _spec = analysis
        left, right = self._ospf_ids(analysis)
        admitted = ra.external_routes_into(left).union(ra.external_routes_into(right))
        total = admitted.total_addresses()
        assert total == 2 * (1 << 16) + 3 * (1 << 8)

    def test_sites_cannot_communicate(self, analysis):
        ra, _net, spec = analysis
        ab2 = Prefix(spec.notes["ab2"][0])
        ab4 = Prefix(spec.notes["ab4"][0])
        assert not ra.can_send(ab2, ab4)
        assert not ra.can_send(ab4, ab2)
        assert not ra.can_communicate(ab2, ab4)

    def test_host_blocks_announced_externally(self, analysis):
        # The security observation: AB2/AB4 are announced out even though
        # replies can never leave.
        ra, _net, spec = analysis
        announced = ra.routes_announced_externally()
        assert announced.overlaps(Prefix(spec.notes["ab2"][0]))
        assert announced.overlaps(Prefix(spec.notes["ab4"][0]))

    def test_policy_disjointness(self, analysis):
        _ra, _net, spec = analysis
        pol = {
            key: RouteSet([Prefix(p) for p in value])
            for key, value in spec.notes["policies"].items()
        }
        assert pol["A2"].intersection(pol["A5"]).is_empty()
        assert pol["A2"].intersection(pol["A3"]).is_empty()
        assert pol["A4"].intersection(pol["A1"]).is_empty()

    def test_hosts_can_reach_permitted_external_blocks(self, analysis):
        ra, _net, spec = analysis
        ab2 = Prefix(spec.notes["ab2"][0])
        ab0 = Prefix(spec.notes["policies"]["A5"][0])
        assert ra.can_send(ab2, ab0)


class TestEnterpriseReachability:
    def test_default_route_propagates_into_igp(self, enterprise_net):
        # Textbook enterprises admit everything (summary route injection).
        net, _spec = enterprise_net
        ra = ReachabilityAnalysis(net)
        ospf = next(i for i in ra.instances if i.protocol == "ospf")
        assert ra.default_route_admitted(ospf.instance_id)


class TestBoundedAtoms:
    """The ``max_atoms`` knob the executor's degradation ladder uses."""

    def test_atom_cap_marks_the_analysis_approximate(self, fig1):
        net, _ = fig1
        analysis = ReachabilityAnalysis(net, max_atoms=1)
        assert len(analysis.routes) == len(net.routers)
        assert analysis.approximate

    def test_full_analysis_is_exact(self, fig1):
        net, _ = fig1
        analysis = ReachabilityAnalysis(net)
        assert len(analysis.routes) == len(net.routers)
        assert not analysis.approximate
