"""Run manifests end to end: inventory coverage, cache reconciliation,
jobs-independence (the PR's acceptance criteria)."""

import json
import os

import pytest

from repro.cli import main
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    archive_entry,
    build_manifest,
    normalize_manifest,
)
from repro.synth.templates.enterprise import build_enterprise


@pytest.fixture(scope="module")
def archive_dir(tmp_path_factory):
    """A lenient-mode workout: parseable configs plus one binary file."""
    path = tmp_path_factory.mktemp("archive")
    configs, _spec = build_enterprise("ent", 1, 12, seed=7)
    for name, text in configs.items():
        (path / name).write_text(text)
    (path / "stale.bin").write_bytes(b"\x00\x7f\x00binary junk")
    return os.fspath(path)


def _run_with_report(archive_dir, tmp_path, name, *extra):
    report = tmp_path / f"{name}.json"
    code = main(
        ["analyze", archive_dir, "--lenient", "--run-report", os.fspath(report), *extra]
    )
    with open(report) as handle:
        return code, json.load(handle)


class TestManifestCoverage:
    def test_inventory_covers_every_input_file(self, archive_dir, tmp_path, capsys):
        _code, manifest = _run_with_report(archive_dir, tmp_path, "cover", "--no-cache")
        capsys.readouterr()
        on_disk = sorted(
            entry
            for entry in os.listdir(archive_dir)
            if os.path.isfile(os.path.join(archive_dir, entry))
        )
        (entry,) = manifest["archives"]
        assert sorted(r["path"] for r in entry["inventory"]) == on_disk
        assert entry["files"] == len(on_disk)
        assert manifest["schema"] == MANIFEST_SCHEMA

    def test_inventory_records_are_complete(self, archive_dir, tmp_path, capsys):
        _code, manifest = _run_with_report(archive_dir, tmp_path, "records", "--no-cache")
        capsys.readouterr()
        (entry,) = manifest["archives"]
        for record in entry["inventory"]:
            assert record["size"] > 0
            assert len(record["sha256"]) == 64
            assert record["disposition"] in ("parsed", "cached", "quarantined")
        quarantined = [
            r for r in entry["inventory"] if r["disposition"] == "quarantined"
        ]
        assert [r["path"] for r in quarantined] == ["stale.bin"]

    def test_dispositions_sum_to_files(self, archive_dir, tmp_path, capsys):
        _code, manifest = _run_with_report(archive_dir, tmp_path, "sums", "--no-cache")
        capsys.readouterr()
        (entry,) = manifest["archives"]
        assert sum(entry["dispositions"].values()) == entry["files"]
        totals = manifest["totals"]
        assert totals["files"] == entry["files"]
        assert totals["parsed"] == entry["dispositions"]["parsed"]


class TestCacheReconciliation:
    def test_counters_match_cache_state(self, archive_dir, tmp_path, capsys):
        cache_dir = os.fspath(tmp_path / "cache")
        cold_code, cold = _run_with_report(
            archive_dir, tmp_path, "cold", "--cache-dir", cache_dir
        )
        warm_code, warm = _run_with_report(
            archive_dir, tmp_path, "warm", "--cache-dir", cache_dir
        )
        capsys.readouterr()
        parsed = cold["archives"][0]["dispositions"]["parsed"]
        assert parsed > 0
        # Cold: every parseable file missed then was stored.
        assert cold["metrics"]["counters"]["cache.misses"] == parsed
        assert cold["metrics"]["counters"]["cache.stores"] == parsed
        assert cold["environment"]["cache"]["misses"] == parsed
        # Warm: every parseable file replayed; the binary never hits the cache.
        assert warm["archives"][0]["dispositions"]["cached"] == parsed
        assert warm["archives"][0]["dispositions"]["parsed"] == 0
        assert warm["metrics"]["counters"]["cache.hits"] == parsed
        assert warm["environment"]["cache"]["hits"] == parsed

    def test_exit_code_recorded(self, archive_dir, tmp_path, capsys):
        code, manifest = _run_with_report(archive_dir, tmp_path, "exit", "--no-cache")
        capsys.readouterr()
        assert manifest["exit_code"] == code
        assert manifest["archives"][0]["exit_code"] <= code


class TestJobsIndependence:
    def test_jobs_1_and_8_normalize_identically(self, archive_dir, tmp_path, capsys):
        code1, serial = _run_with_report(
            archive_dir,
            tmp_path,
            "serial",
            "--jobs",
            "1",
            "--cache-dir",
            os.fspath(tmp_path / "cacheA"),
        )
        out1 = capsys.readouterr().out
        code8, parallel = _run_with_report(
            archive_dir,
            tmp_path,
            "parallel",
            "--jobs",
            "8",
            "--cache-dir",
            os.fspath(tmp_path / "cacheB"),
        )
        out8 = capsys.readouterr().out
        assert code1 == code8
        assert out1 == out8  # analysis output is byte-identical
        # Worker counts live in gauges, timings in histograms/spans — all
        # stripped by normalize_manifest; what remains must be identical.
        assert normalize_manifest(serial) == normalize_manifest(parallel)

    def test_normalize_strips_nondeterministic_sections(self, archive_dir, tmp_path, capsys):
        _code, manifest = _run_with_report(archive_dir, tmp_path, "norm", "--no-cache")
        capsys.readouterr()
        normalized = normalize_manifest(manifest)
        assert "environment" not in normalized
        assert "timing" not in normalized
        assert "spans" not in normalized
        assert "counters" in normalized


class TestTraceOutput:
    def test_trace_file_is_chrome_format(self, archive_dir, tmp_path, capsys):
        trace = tmp_path / "t.json"
        main(["analyze", archive_dir, "--lenient", "--no-cache", "--trace", os.fspath(trace)])
        capsys.readouterr()
        with open(trace) as handle:
            payload = json.load(handle)
        names = [event["name"] for event in payload["traceEvents"]]
        assert "run" in names
        assert "stage:parse" in names
        assert "instances" in names
        for event in payload["traceEvents"]:
            assert event["ph"] == "X"


class TestCorpusManifest:
    def test_corpus_aggregates_archives(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        for index in (1, 2):
            sub = corpus / f"net{index}"
            sub.mkdir(parents=True)
            configs, _spec = build_enterprise(f"n{index}", index, 6, seed=index)
            for name, text in configs.items():
                (sub / name).write_text(text)
        report = tmp_path / "corpus.json"
        code = main(
            [
                "corpus",
                os.fspath(corpus),
                "--no-cache",
                "--run-report",
                os.fspath(report),
            ]
        )
        capsys.readouterr()
        assert code == 0
        with open(report) as handle:
            manifest = json.load(handle)
        assert [entry["name"] for entry in manifest["archives"]] == ["net1", "net2"]
        assert manifest["totals"]["archives"] == 2
        assert manifest["totals"]["files"] == sum(
            entry["files"] for entry in manifest["archives"]
        )


class TestManifestBuilders:
    def test_archive_entry_without_inventory(self):
        from repro.model import Network

        network = Network.from_configs(
            {"r1": "hostname r1\ninterface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"}
        )
        entry = archive_entry(network, path="/x")
        assert entry["path"] == "/x"
        assert entry["files"] == 1
        assert entry["dispositions"]["parsed"] == 1

    def test_build_manifest_totals(self):
        manifest = build_manifest(
            command="analyze",
            argv=["analyze", "x"],
            archives=[
                {
                    "name": "a",
                    "path": "x",
                    "routers": 2,
                    "files": 3,
                    "dispositions": {"parsed": 2, "cached": 0, "quarantined": 1},
                    "diagnostics": {},
                    "exit_code": 0,
                    "inventory": [],
                }
            ],
            exit_code=0,
        )
        assert manifest["totals"]["files"] == 3
        assert manifest["totals"]["quarantined"] == 1
        assert manifest["metrics"] is None


class TestExecutionBlocks:
    """Executor results threaded into the manifest and its normal form."""

    def _execution(self):
        from repro.exec import ArchiveExecution, StageResult

        return ArchiveExecution(
            archive="net1",
            digest="0" * 64,
            results=[
                StageResult(stage="links", seconds=0.5, items=3),
                StageResult(
                    stage="pathways",
                    status="degraded",
                    seconds=1.5,
                    degradation="max-depth-8",
                    from_checkpoint=True,
                ),
            ],
        )

    def _network(self):
        class Sink:
            def counts(self):
                return {"error": 0, "warning": 0, "info": 0}

            def exit_code(self):
                return 0

        class Net:
            name = "net1"
            inventory = []
            quarantined = []
            diagnostics = Sink()

            def __len__(self):
                return 0

        return Net()

    def test_archive_entry_carries_execution(self):
        from repro.obs.manifest import archive_entry

        entry = archive_entry(self._network(), execution=self._execution())
        assert entry["execution"]["status"] == "degraded"
        assert len(entry["execution"]["stages"]) == 2

    def test_totals_count_stage_statuses(self):
        from repro.obs.manifest import archive_entry, build_manifest

        entry = archive_entry(self._network(), execution=self._execution())
        manifest = build_manifest(
            command="corpus", argv=[], archives=[entry], exit_code=3
        )
        assert manifest["totals"]["stages"] == {"degraded": 1, "ok": 1}

    def test_totals_omit_stages_without_executions(self):
        from repro.obs.manifest import archive_entry, build_manifest

        entry = archive_entry(self._network())
        manifest = build_manifest(
            command="analyze", argv=[], archives=[entry], exit_code=0
        )
        assert "stages" not in manifest["totals"]

    def test_normalize_strips_timing_and_provenance(self):
        from repro.obs.manifest import (
            archive_entry,
            build_manifest,
            normalize_manifest,
        )

        entry = archive_entry(self._network(), execution=self._execution())
        manifest = build_manifest(
            command="corpus", argv=[], archives=[entry], exit_code=3
        )
        normalized = normalize_manifest(manifest)
        stages = normalized["archives"][0]["execution"]["stages"]
        for stage in stages:
            assert "seconds" not in stage
            assert "from_checkpoint" not in stage
        # Statuses and degradation labels survive normalization.
        assert stages[1]["status"] == "degraded"
        assert stages[1]["degradation"] == "max-depth-8"

    def test_normalize_handles_missing_execution(self):
        from repro.obs.manifest import (
            archive_entry,
            build_manifest,
            normalize_manifest,
        )

        entry = archive_entry(self._network())
        manifest = build_manifest(
            command="analyze", argv=[], archives=[entry], exit_code=0
        )
        assert normalize_manifest(manifest)["archives"][0]["execution"] is None
