"""Generation runs, the all-stages-finished publish gate, and the
cold-vs-incremental equivalence normalizer."""

import json
import os

import pytest

from repro.exec.chaos import ChaosPlan
from repro.exec.checkpoint import CheckpointStore
from repro.exec.executor import AnalysisExecutor, ExecutorConfig
from repro.ingest.cache import ParseCache
from repro.ingest.snapshot import snapshot_corpus
from repro.serve.generation import (
    GENERATION_SCHEMA,
    build_generation_payload,
    normalize_generation,
    run_generation,
)
from repro.synth.templates.example_fig1 import build_example_networks


@pytest.fixture()
def corpus(tmp_path):
    configs, _meta = build_example_networks()
    root = tmp_path / "corpus"
    root.mkdir()
    for name, text in sorted(configs.items()):
        (root / name).write_text(text)
    return str(root)


def run_once(corpus, *, cache=None, checkpoints=None, chaos=None, resume=False):
    executor = AnalysisExecutor(
        ExecutorConfig(
            resume=resume,
            checkpoints=checkpoints,
            chaos=chaos or ChaosPlan(),
        )
    )
    digest = snapshot_corpus(corpus).digest
    return run_generation(corpus, digest, executor=executor, cache=cache)


class TestRunGeneration:
    def test_complete_generation_payload(self, corpus):
        outcome = run_once(corpus)
        assert outcome.complete
        payload = outcome.payload
        assert payload["schema"] == GENERATION_SCHEMA
        assert payload["corpus_digest"] == outcome.digest
        assert payload["status"] == "ok"
        assert payload["manifest"]["files"] == 6
        assert payload["manifest"]["dispositions"]["parsed"] == 6
        assert len(payload["pathways"]) == payload["manifest"]["routers"]
        assert payload["instances"], "fig1 has routing instances"
        for row in payload["instances"]:
            assert set(row) == {"id", "protocol", "asn", "routers"}
        json.dumps(payload)  # the payload must be JSON-serializable

    def test_crashed_stage_blocks_publish(self, corpus):
        outcome = run_once(corpus, chaos=ChaosPlan.from_spec("*:pathways=raise"))
        assert not outcome.complete
        assert outcome.payload is None
        assert "pathways" in outcome.error
        # Finished stages before the crash are still visible to the caller.
        statuses = {r.stage: r.status for r in outcome.execution.results}
        assert statuses["links"] == "ok"
        assert statuses["pathways"] == "failed"

    def test_degraded_generation_still_publishes(self, corpus):
        # degraded is a *finished* status: clearly-labeled approximations
        # serve; only crashes/hangs/skips block publication.  Attempt 0
        # hangs into the hard deadline; rung 1 (max-depth-8) succeeds.
        executor = AnalysisExecutor(
            ExecutorConfig(
                chaos=ChaosPlan.from_spec("*:pathways=hang@0"),
                stage_deadline=1.0,
            )
        )
        digest = snapshot_corpus(corpus).digest
        outcome = run_generation(corpus, digest, executor=executor)
        assert outcome.complete
        assert outcome.payload["status"] == "degraded"
        statuses = {r.stage: r.status for r in outcome.execution.results}
        assert statuses["pathways"] == "degraded"

    def test_aborted_generation_blocks_publish(self, corpus):
        executor = AnalysisExecutor(ExecutorConfig())
        executor.aborted = True
        digest = snapshot_corpus(corpus).digest
        outcome = run_generation(corpus, digest, executor=executor)
        assert not outcome.complete


class TestEquivalence:
    def canonical(self, payload):
        return json.dumps(normalize_generation(payload), sort_keys=True)

    def test_warm_cache_equals_cold(self, corpus, tmp_path):
        cache = ParseCache(root=str(tmp_path / "cache"))
        cold = run_once(corpus, cache=cache)
        warm = run_once(corpus, cache=cache)
        assert cold.complete and warm.complete
        # Before normalization the runs visibly differ (parse vs replay) ...
        assert cold.payload["manifest"]["dispositions"]["parsed"] == 6
        assert warm.payload["manifest"]["dispositions"]["cached"] == 6
        # ... after normalization they are byte-identical.
        assert self.canonical(cold.payload) == self.canonical(warm.payload)

    def test_checkpoint_resume_equals_cold(self, corpus, tmp_path):
        store = CheckpointStore(root=str(tmp_path / "ckpt"))
        first = run_once(corpus, checkpoints=store, resume=True)
        replayed = run_once(corpus, checkpoints=store, resume=True)
        assert replayed.complete
        assert all(r.from_checkpoint for r in replayed.execution.results)
        assert self.canonical(first.payload) == self.canonical(replayed.payload)

    def test_normalize_collapses_dispositions(self, corpus):
        outcome = run_once(corpus)
        normalized = normalize_generation(outcome.payload)
        dispositions = normalized["manifest"]["dispositions"]
        assert "parsed" not in dispositions
        assert "cached" not in dispositions
        assert dispositions["ingested"] == 6
        assert dispositions["quarantined"] == 0
        for record in normalized["manifest"]["inventory"]:
            assert record["disposition"] in ("ingested", "quarantined")

    def test_normalize_preserves_quarantine(self, corpus):
        with open(os.path.join(corpus, "binaryfile"), "wb") as handle:
            handle.write(b"\x00\x01\x02\xff binary junk")
        outcome = run_once(corpus)
        normalized = normalize_generation(outcome.payload)
        assert normalized["manifest"]["dispositions"]["quarantined"] == 1

    def test_normalize_strips_volatile_fields(self, corpus):
        outcome = run_once(corpus)
        normalized = normalize_generation(outcome.payload)
        assert "diff" not in normalized
        assert "corpus" not in normalized  # absolute paths stripped
        for stage in normalized["manifest"]["execution"]["stages"]:
            assert "seconds" not in stage
            assert "from_checkpoint" not in stage


def test_build_payload_sorts_instances_deterministically(corpus):
    from repro.model import Network

    network = Network.from_directory(corpus, on_error="skip-block")
    executor = AnalysisExecutor(ExecutorConfig())
    execution = executor.run_archive(network.name, network)
    payload = build_generation_payload(
        network, execution, corpus=corpus, digest="d"
    )
    sizes = [row["routers"] for row in payload["instances"]]
    assert sizes == sorted(sizes, reverse=True)
