"""Structured diagnostics: records, sinks, severity math, exit codes."""

import pytest

from repro.diag import (
    ERROR,
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_WARNINGS,
    INFO,
    PHASE_BUILD,
    PHASE_PARSE,
    PHASE_READ,
    WARNING,
    Diagnostic,
    DiagnosticSink,
)
from repro.report import format_diagnostics


class TestDiagnostic:
    def test_fields(self):
        diag = Diagnostic(
            severity=ERROR,
            phase=PHASE_PARSE,
            message="skipped block",
            file="R1",
            router="r1",
            line_number=12,
            line="ip address 999.0.0.1",
        )
        assert diag.file == "R1"
        assert diag.line_number == 12

    def test_str_includes_location(self):
        diag = Diagnostic(ERROR, PHASE_PARSE, "bad octet", file="R1", line_number=3)
        text = str(diag)
        assert "R1:3" in text
        assert "bad octet" in text

    def test_str_without_location(self):
        diag = Diagnostic(INFO, PHASE_BUILD, "note")
        assert "note" in str(diag)

    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            Diagnostic("fatal", PHASE_PARSE, "boom")

    def test_frozen(self):
        diag = Diagnostic(INFO, PHASE_PARSE, "x")
        with pytest.raises(AttributeError):
            diag.message = "y"


class TestDiagnosticSink:
    def test_empty_sink_is_clean(self):
        sink = DiagnosticSink()
        assert len(sink) == 0
        assert not sink.has_errors
        assert not sink.has_warnings
        assert sink.exit_code() == EXIT_CLEAN

    def test_sink_is_always_truthy(self):
        # `if sink:` must mean "a sink was provided", not "it has entries".
        assert bool(DiagnosticSink())

    def test_emit_helpers_set_severity(self):
        sink = DiagnosticSink()
        sink.info(PHASE_PARSE, "i")
        sink.warning(PHASE_READ, "w", file="R2")
        sink.error(PHASE_PARSE, "e", file="R1", line_number=4)
        assert [d.severity for d in sink] == [INFO, WARNING, ERROR]

    def test_counts(self):
        sink = DiagnosticSink()
        sink.error(PHASE_PARSE, "a")
        sink.error(PHASE_PARSE, "b")
        sink.warning(PHASE_READ, "c")
        assert sink.counts() == {ERROR: 2, WARNING: 1, INFO: 0}

    def test_exit_code_ladder(self):
        sink = DiagnosticSink()
        assert sink.exit_code() == EXIT_CLEAN
        sink.info(PHASE_PARSE, "note")
        assert sink.exit_code() == EXIT_CLEAN  # info alone stays clean
        sink.warning(PHASE_PARSE, "odd")
        assert sink.exit_code() == EXIT_WARNINGS
        sink.error(PHASE_PARSE, "bad")
        assert sink.exit_code() == EXIT_ERRORS

    def test_for_file(self):
        sink = DiagnosticSink()
        sink.error(PHASE_PARSE, "a", file="R1")
        sink.error(PHASE_PARSE, "b", file="R2")
        sink.warning(PHASE_READ, "c", file="R1")
        assert len(sink.for_file("R1")) == 2

    def test_extend(self):
        a = DiagnosticSink()
        a.error(PHASE_PARSE, "x")
        b = DiagnosticSink()
        b.extend(a)
        assert b.has_errors

    def test_summary_text(self):
        sink = DiagnosticSink()
        sink.error(PHASE_PARSE, "x")
        sink.warning(PHASE_PARSE, "y")
        assert sink.summary() == "1 error(s), 1 warning(s), 0 info"


class TestMerge:
    """merge(): the primitive that reassembles per-worker sinks."""

    def _worker_sinks(self):
        """Three sinks as parallel workers would produce them."""
        a = DiagnosticSink()
        a.info(PHASE_PARSE, "unmodeled command", file="config1")
        a.error(PHASE_PARSE, "skipped block", file="config1", line_number=7)
        b = DiagnosticSink()
        b.warning(PHASE_READ, "binary file", file="config2")
        c = DiagnosticSink()
        c.info(PHASE_BUILD, "no hostname", file="config3")
        return a, b, c

    def test_merge_returns_self(self):
        target, other = DiagnosticSink(), DiagnosticSink()
        assert target.merge(other) is target

    def test_merge_preserves_submission_order(self):
        a, b, c = self._worker_sinks()
        merged = DiagnosticSink()
        merged.merge(a).merge(b).merge(c)
        messages = [d.message for d in merged]
        assert messages == [
            "unmodeled command",
            "skipped block",
            "binary file",
            "no hostname",
        ]

    def test_merge_order_is_caller_controlled(self):
        # Completion order must not matter: the caller decides by merge order.
        a, b, c = self._worker_sinks()
        forward = DiagnosticSink().merge(a).merge(b).merge(c)
        backward = DiagnosticSink().merge(c).merge(b).merge(a)
        # Sink-internal order is preserved; only the sink order flips.
        assert [d.message for d in backward] == [
            "no hostname",
            "binary file",
            "unmodeled command",
            "skipped block",
        ]
        assert [d.message for d in backward] != [d.message for d in forward]

    def test_merge_folds_severity_counts(self):
        a, b, c = self._worker_sinks()
        merged = DiagnosticSink().merge(a).merge(b).merge(c)
        assert merged.counts() == {ERROR: 1, WARNING: 1, INFO: 2}
        assert merged.has_errors
        assert merged.has_warnings

    def test_merged_exit_code_equals_shared_sink(self):
        # One sink merged from N workers ≡ one sink shared by N phases.
        a, b, c = self._worker_sinks()
        merged = DiagnosticSink().merge(a).merge(b).merge(c)
        shared = DiagnosticSink()
        for sink in (a, b, c):
            for diag in sink:
                shared.emit(diag)
        assert merged.exit_code() == shared.exit_code() == EXIT_ERRORS
        assert merged.summary() == shared.summary()
        assert [str(d) for d in merged] == [str(d) for d in shared]

    def test_merged_exit_code_is_max_of_parts(self):
        a, b, c = self._worker_sinks()
        parts = [a.exit_code(), b.exit_code(), c.exit_code()]
        merged = DiagnosticSink().merge(a).merge(b).merge(c)
        assert merged.exit_code() == max(parts)

    def test_merge_accepts_plain_iterables(self):
        diags = (
            Diagnostic(WARNING, PHASE_READ, "w", file="f1"),
            Diagnostic(ERROR, PHASE_PARSE, "e", file="f2"),
        )
        sink = DiagnosticSink().merge(diags)
        assert sink.exit_code() == EXIT_ERRORS
        assert [d.message for d in sink] == ["w", "e"]

    def test_merge_rejects_non_diagnostics(self):
        with pytest.raises(TypeError):
            DiagnosticSink().merge(["not a diagnostic"])

    def test_merge_empty_is_noop(self):
        sink = DiagnosticSink()
        sink.warning(PHASE_PARSE, "w")
        sink.merge(DiagnosticSink()).merge(())
        assert len(sink) == 1
        assert sink.exit_code() == EXIT_WARNINGS

    def test_merge_does_not_mutate_source(self):
        a, _, _ = self._worker_sinks()
        before = list(a.diagnostics)
        DiagnosticSink().merge(a)
        assert a.diagnostics == before


class TestFormatDiagnostics:
    def test_clean_sink(self):
        text = format_diagnostics(DiagnosticSink())
        assert "no diagnostics" in text

    def test_errors_sort_first(self):
        sink = DiagnosticSink()
        sink.info(PHASE_PARSE, "an info line", file="A", line_number=1)
        sink.error(PHASE_PARSE, "an error line", file="Z", line_number=9)
        text = format_diagnostics(sink)
        assert text.index("an error line") < text.index("an info line")

    def test_quarantined_listed(self):
        sink = DiagnosticSink()
        sink.error(PHASE_PARSE, "dead file", file="R9")
        text = format_diagnostics(sink, quarantined=["R9"])
        assert "quarantined files: R9" in text

    def test_long_messages_truncated(self):
        sink = DiagnosticSink()
        sink.error(PHASE_PARSE, "x" * 500)
        text = format_diagnostics(sink)
        assert "x" * 500 not in text
        assert "…" in text
