"""Structured diagnostics: records, sinks, severity math, exit codes."""

import pytest

from repro.diag import (
    ERROR,
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_WARNINGS,
    INFO,
    PHASE_BUILD,
    PHASE_PARSE,
    PHASE_READ,
    WARNING,
    Diagnostic,
    DiagnosticSink,
)
from repro.report import format_diagnostics


class TestDiagnostic:
    def test_fields(self):
        diag = Diagnostic(
            severity=ERROR,
            phase=PHASE_PARSE,
            message="skipped block",
            file="R1",
            router="r1",
            line_number=12,
            line="ip address 999.0.0.1",
        )
        assert diag.file == "R1"
        assert diag.line_number == 12

    def test_str_includes_location(self):
        diag = Diagnostic(ERROR, PHASE_PARSE, "bad octet", file="R1", line_number=3)
        text = str(diag)
        assert "R1:3" in text
        assert "bad octet" in text

    def test_str_without_location(self):
        diag = Diagnostic(INFO, PHASE_BUILD, "note")
        assert "note" in str(diag)

    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            Diagnostic("fatal", PHASE_PARSE, "boom")

    def test_frozen(self):
        diag = Diagnostic(INFO, PHASE_PARSE, "x")
        with pytest.raises(AttributeError):
            diag.message = "y"


class TestDiagnosticSink:
    def test_empty_sink_is_clean(self):
        sink = DiagnosticSink()
        assert len(sink) == 0
        assert not sink.has_errors
        assert not sink.has_warnings
        assert sink.exit_code() == EXIT_CLEAN

    def test_sink_is_always_truthy(self):
        # `if sink:` must mean "a sink was provided", not "it has entries".
        assert bool(DiagnosticSink())

    def test_emit_helpers_set_severity(self):
        sink = DiagnosticSink()
        sink.info(PHASE_PARSE, "i")
        sink.warning(PHASE_READ, "w", file="R2")
        sink.error(PHASE_PARSE, "e", file="R1", line_number=4)
        assert [d.severity for d in sink] == [INFO, WARNING, ERROR]

    def test_counts(self):
        sink = DiagnosticSink()
        sink.error(PHASE_PARSE, "a")
        sink.error(PHASE_PARSE, "b")
        sink.warning(PHASE_READ, "c")
        assert sink.counts() == {ERROR: 2, WARNING: 1, INFO: 0}

    def test_exit_code_ladder(self):
        sink = DiagnosticSink()
        assert sink.exit_code() == EXIT_CLEAN
        sink.info(PHASE_PARSE, "note")
        assert sink.exit_code() == EXIT_CLEAN  # info alone stays clean
        sink.warning(PHASE_PARSE, "odd")
        assert sink.exit_code() == EXIT_WARNINGS
        sink.error(PHASE_PARSE, "bad")
        assert sink.exit_code() == EXIT_ERRORS

    def test_for_file(self):
        sink = DiagnosticSink()
        sink.error(PHASE_PARSE, "a", file="R1")
        sink.error(PHASE_PARSE, "b", file="R2")
        sink.warning(PHASE_READ, "c", file="R1")
        assert len(sink.for_file("R1")) == 2

    def test_extend(self):
        a = DiagnosticSink()
        a.error(PHASE_PARSE, "x")
        b = DiagnosticSink()
        b.extend(a)
        assert b.has_errors

    def test_summary_text(self):
        sink = DiagnosticSink()
        sink.error(PHASE_PARSE, "x")
        sink.warning(PHASE_PARSE, "y")
        assert sink.summary() == "1 error(s), 1 warning(s), 0 info"


class TestFormatDiagnostics:
    def test_clean_sink(self):
        text = format_diagnostics(DiagnosticSink())
        assert "no diagnostics" in text

    def test_errors_sort_first(self):
        sink = DiagnosticSink()
        sink.info(PHASE_PARSE, "an info line", file="A", line_number=1)
        sink.error(PHASE_PARSE, "an error line", file="Z", line_number=9)
        text = format_diagnostics(sink)
        assert text.index("an error line") < text.index("an info line")

    def test_quarantined_listed(self):
        sink = DiagnosticSink()
        sink.error(PHASE_PARSE, "dead file", file="R9")
        text = format_diagnostics(sink, quarantined=["R9"])
        assert "quarantined files: R9" in text

    def test_long_messages_truncated(self):
        sink = DiagnosticSink()
        sink.error(PHASE_PARSE, "x" * 500)
        text = format_diagnostics(sink)
        assert "x" * 500 not in text
        assert "…" in text
