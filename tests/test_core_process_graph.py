"""Routing process graph tests (§3.1, Figure 5)."""

from repro.core.process_graph import (
    EXTERNAL_NODE,
    NodeKind,
    build_process_graph,
    local_rib_node,
    router_rib_node,
)


class TestFig1ProcessGraph:
    def test_node_population(self, fig1):
        net, _ = fig1
        graph = build_process_graph(net)
        # Each router: local RIB + router RIB; plus one node per process;
        # plus the external world.
        expected = 1 + 2 * len(net.routers) + len(net.processes)
        assert graph.number_of_nodes() == expected

    def test_node_kinds(self, fig1):
        net, _ = fig1
        graph = build_process_graph(net)
        assert graph.nodes[EXTERNAL_NODE]["kind"] == NodeKind.EXTERNAL
        assert graph.nodes[local_rib_node("R1")]["kind"] == NodeKind.LOCAL
        assert graph.nodes[router_rib_node("R1")]["kind"] == NodeKind.ROUTER_RIB
        assert graph.nodes[("R2", "bgp", 64780)]["kind"] == NodeKind.PROCESS

    def test_selection_edges(self, fig1):
        net, _ = fig1
        graph = build_process_graph(net)
        rib = router_rib_node("R2")
        sources = {u for u, _v, d in graph.in_edges(rib, data=True) if d["kind"] == "selection"}
        # local RIB + R2's three processes (ospf 64, ospf 128, bgp).
        assert local_rib_node("R2") in sources
        assert ("R2", "ospf", 64) in sources
        assert ("R2", "ospf", 128) in sources
        assert ("R2", "bgp", 64780) in sources

    def test_redistribution_edges_on_r2(self, fig1):
        net, _ = fig1
        graph = build_process_graph(net)
        bgp = ("R2", "bgp", 64780)
        ospf128 = ("R2", "ospf", 128)
        kinds = {d["kind"] for _u, _v, d in graph.out_edges(bgp, data=True)}
        assert "redistribution" in kinds
        # bgp -> ospf 128 redistribution present with its route map.
        maps = [
            d.get("route_map")
            for _u, v, d in graph.out_edges(bgp, data=True)
            if v == ospf128 and d["kind"] == "redistribution"
        ]
        assert maps == ["EXT-SUMMARY"]

    def test_connected_redistribution_comes_from_local_rib(self, fig1):
        net, _ = fig1
        graph = build_process_graph(net)
        ospf128 = ("R2", "ospf", 128)
        sources = {
            u for u, _v, d in graph.in_edges(ospf128, data=True)
            if d["kind"] == "redistribution"
        }
        assert local_rib_node("R2") in sources

    def test_igp_adjacency_edges_bidirectional(self, fig1):
        net, _ = fig1
        graph = build_process_graph(net)
        r1 = ("R1", "ospf", 128)
        r2 = ("R2", "ospf", 128)
        assert any(d["kind"] == "adjacency" for d in graph.get_edge_data(r1, r2).values())
        assert any(d["kind"] == "adjacency" for d in graph.get_edge_data(r2, r1).values())

    def test_ibgp_adjacency_edges(self, fig1):
        net, _ = fig1
        graph = build_process_graph(net)
        r4 = ("R4", "bgp", 12762)
        r5 = ("R5", "bgp", 12762)
        data = graph.get_edge_data(r4, r5)
        assert data is not None
        assert any(d.get("bgp") == "ibgp" for d in data.values())

    def test_ebgp_adjacency_edge(self, fig1):
        net, _ = fig1
        graph = build_process_graph(net)
        ent = ("R2", "bgp", 64780)
        bb = ("R6", "bgp", 12762)
        data = graph.get_edge_data(ent, bb)
        assert data is not None
        assert any(d.get("bgp") == "ebgp" for d in data.values())

    def test_external_edge_for_missing_r7(self, fig1):
        net, _ = fig1
        graph = build_process_graph(net)
        r4 = ("R4", "bgp", 12762)
        data = graph.get_edge_data(EXTERNAL_NODE, r4)
        assert data is not None
        assert any(d["kind"] == "external" for d in data.values())

    def test_no_external_edges_to_enterprise(self, fig1):
        net, _ = fig1
        graph = build_process_graph(net)
        for node in graph.successors(EXTERNAL_NODE):
            if node == EXTERNAL_NODE:
                continue
            assert node[0] != "R2", "enterprise border is internal in this data set"


class TestExternalIgpEdges:
    def test_staging_processes_touch_external(self, tier2_net):
        net, _spec = tier2_net
        graph = build_process_graph(net)
        igp_external = {
            v
            for _u, v, d in graph.out_edges(EXTERNAL_NODE, data=True)
            if d["kind"] == "external" and v[1] in ("ospf", "eigrp", "rip")
        }
        assert igp_external, "tier-2 staging IGP processes must face outward"


class TestBoundedGraph:
    """The ``max_edges`` knob the executor's degradation ladder uses."""

    def test_edge_budget_truncates_and_flags(self, fig1):
        net, _ = fig1
        graph = build_process_graph(net, max_edges=5)
        assert graph.number_of_edges() == 5
        assert graph.graph["truncated"] is True

    def test_full_build_is_not_truncated(self, fig1):
        net, _ = fig1
        assert build_process_graph(net).graph["truncated"] is False

    def test_generous_budget_changes_nothing(self, fig1):
        net, _ = fig1
        full = build_process_graph(net)
        capped = build_process_graph(net, max_edges=10_000)
        assert capped.number_of_edges() == full.number_of_edges()
        assert capped.graph["truncated"] is False
