"""IGP/EGP role classification tests (§5.2, Table 1)."""

from repro.core.roles import RoleCensus, census_over_networks, classify_roles
from repro.model import Network


class TestPerNetworkRoles:
    def test_enterprise_roles(self, enterprise_net):
        net, _spec = enterprise_net
        census = classify_roles(net)
        assert census.igp_intra["ospf"] == 1
        assert census.igp_inter["ospf"] == 0
        assert census.ebgp_inter == 2  # two provider uplinks
        assert census.ebgp_intra == 0

    def test_backbone_roles(self, backbone_net):
        net, spec = backbone_net
        census = classify_roles(net)
        assert census.igp_intra["ospf"] == 1
        assert census.ebgp_inter == spec.notes["ebgp_external_sessions"]
        assert census.ebgp_intra == 0

    def test_tier2_staging_instances_are_inter_domain(self, tier2_net):
        net, spec = tier2_net
        census = classify_roles(net)
        inter_total = sum(census.igp_inter.values())
        # One core OSPF instance is intra; every staging instance is inter.
        assert census.igp_intra["ospf"] == 1
        assert inter_total == spec.notes["staging_instances"]

    def test_net5_intra_ebgp_sessions(self, net5_small):
        net, _spec = net5_small
        census = classify_roles(net)
        # net5 uses EBGP as an intra-domain protocol (instances 2 <-> 3).
        assert census.ebgp_intra > 0
        # The paper counts 16 external ASs; sessions may outnumber ASs.
        assert census.ebgp_inter >= 16

    def test_igrp_folds_into_eigrp(self):
        config = (
            "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
            "!\nrouter igrp 7\n network 10.0.0.0\n"
        )
        net = Network.from_configs({"r1": config})
        census = classify_roles(net)
        assert census.igp_intra["eigrp"] == 1


class TestAggregation:
    def test_add(self):
        a = RoleCensus(igp_intra={"ospf": 1}, igp_inter={"ospf": 2}, ebgp_intra=3, ebgp_inter=4)
        b = RoleCensus(igp_intra={"ospf": 10}, igp_inter={"ospf": 20}, ebgp_intra=30, ebgp_inter=40)
        a.add(b)
        assert a.igp_intra["ospf"] == 11
        assert a.igp_inter["ospf"] == 22
        assert (a.ebgp_intra, a.ebgp_inter) == (33, 44)

    def test_fractions(self):
        census = RoleCensus(
            igp_intra={"ospf": 90}, igp_inter={"ospf": 10}, ebgp_intra=10, ebgp_inter=90
        )
        assert census.unconventional_igp_fraction() == 0.1
        assert census.unconventional_ebgp_fraction() == 0.1

    def test_fractions_empty(self):
        census = RoleCensus()
        assert census.unconventional_igp_fraction() == 0.0
        assert census.unconventional_ebgp_fraction() == 0.0

    def test_corpus_shape(self, small_corpus):
        nets = [cn.network() for cn in small_corpus]
        census = census_over_networks(nets)
        # Table 1's shape: conventional usage dominates, but a significant
        # minority breaks the IGP/EGP paradigm.
        assert 0.03 < census.unconventional_igp_fraction() < 0.30
        assert 0.02 < census.unconventional_ebgp_fraction() < 0.30
        # EIGRP has the most intra-domain instances; OSPF the most
        # inter-domain ones (per Table 1).
        assert census.igp_intra["eigrp"] >= census.igp_intra["ospf"]
        assert census.igp_inter["ospf"] >= census.igp_inter["eigrp"]
        # Three corpus networks do not use BGP at all.
        no_bgp = [
            net for net in nets
            if not any(r.config.bgp_process for r in net.routers.values())
        ]
        assert len(no_bgp) == 3
