"""Survivability analysis tests (§8.1)."""

from repro.core import compute_instances
from repro.core.survivability import (
    analyze_survivability,
    articulation_routers,
    bridge_links,
    instance_couplings,
    physical_topology,
    static_route_conflicts,
)
from repro.model import Network
from repro.net import Prefix

CHAIN = {
    "a": "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n",
    "b": (
        "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
        "!\ninterface Serial1\n ip address 10.0.0.5 255.255.255.252\n"
    ),
    "c": "interface Serial0\n ip address 10.0.0.6 255.255.255.252\n",
}


class TestPhysical:
    def test_topology_graph(self):
        net = Network.from_configs(CHAIN)
        graph = physical_topology(net)
        assert set(graph.nodes) == {"a", "b", "c"}
        assert graph.number_of_edges() == 2

    def test_chain_articulation_point(self):
        net = Network.from_configs(CHAIN)
        assert articulation_routers(net) == ["b"]

    def test_chain_bridges(self):
        net = Network.from_configs(CHAIN)
        assert bridge_links(net) == [Prefix("10.0.0.0/30"), Prefix("10.0.0.4/30")]

    def test_ring_has_no_spof(self):
        ring = dict(CHAIN)
        ring["a"] += "interface Serial1\n ip address 10.0.0.9 255.255.255.252\n"
        ring["c"] += "interface Serial1\n ip address 10.0.0.10 255.255.255.252\n"
        net = Network.from_configs(ring)
        assert articulation_routers(net) == []
        assert bridge_links(net) == []

    def test_backbone_core_is_redundant(self, backbone_net):
        net, _spec = backbone_net
        # The PoP-ring design keeps the core 2-connected except for
        # single-homed access routers.
        graph = physical_topology(net)
        import networkx as nx

        assert nx.is_connected(graph)


class TestInstanceCouplings:
    def test_net5_glue_redundancy(self, net5_small):
        net, spec = net5_small
        instances = compute_instances(net)
        couplings = instance_couplings(net, instances)
        glue = set(spec.notes["glue_ab_routers"])
        # Find the coupling carried by the glue routers.
        matching = [c for c in couplings if c.routers == glue]
        assert matching, "the compartment glue must appear as a coupling"
        assert matching[0].redundancy == len(glue)
        assert "redistribution" in matching[0].mechanisms

    def test_net5_has_ebgp_couplings(self, net5_small):
        net, _spec = net5_small
        couplings = instance_couplings(net)
        assert any("ebgp" in c.mechanisms for c in couplings)

    def test_enterprise_border_coupling(self, enterprise_net):
        net, _spec = enterprise_net
        couplings = instance_couplings(net)
        # BGP instance couples to the OSPF instance through the borders.
        assert couplings
        assert all(c.redundancy >= 1 for c in couplings)

    def test_single_point_of_failure_flag(self):
        configs = {
            "border": (
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
                "!\ninterface Serial1\n ip address 10.0.1.1 255.255.255.252\n"
                "!\nrouter ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
                "!\nrouter eigrp 9\n network 10.0.1.0 0.0.0.3\n"
                " redistribute ospf 1 metric 100\n"
            ),
            "left": (
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
                "!\nrouter ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
            ),
            "right": (
                "interface Serial0\n ip address 10.0.1.2 255.255.255.252\n"
                "!\nrouter eigrp 9\n network 10.0.1.0 0.0.0.3\n"
            ),
        }
        net = Network.from_configs(configs)
        (coupling,) = instance_couplings(net)
        assert coupling.is_single_point_of_failure
        assert coupling.routers == {"border"}


class TestStaticConflicts:
    def test_shared_destination_flagged(self):
        configs = dict(CHAIN)
        configs["a"] += "ip route 99.0.0.0 255.0.0.0 10.0.0.2\n"
        configs["c"] += "ip route 99.0.0.0 255.0.0.0 10.0.0.5\n"
        net = Network.from_configs(configs)
        conflicts = static_route_conflicts(net)
        assert conflicts == {Prefix("99.0.0.0/8"): ["a", "c"]}

    def test_unique_destinations_not_flagged(self):
        configs = dict(CHAIN)
        configs["a"] += "ip route 99.0.0.0 255.0.0.0 10.0.0.2\n"
        net = Network.from_configs(configs)
        assert static_route_conflicts(net) == {}


class TestFullReport:
    def test_report_shape(self, net5_small):
        net, _spec = net5_small
        report = analyze_survivability(net)
        assert isinstance(report.articulation_routers, list)
        assert isinstance(report.couplings, list)
        # Hub-and-spoke compartments make hubs articulation points.
        assert report.articulation_routers
        # The fragile-couplings view is a subset of all couplings.
        assert set(
            (c.instance_a, c.instance_b) for c in report.fragile_couplings
        ) <= set((c.instance_a, c.instance_b) for c in report.couplings)


class TestBoundedCouplings:
    """The ``max_couplings`` knob the executor's degradation ladder uses."""

    def test_coupling_cap_truncates_and_flags(self, fig1):
        net, _ = fig1
        full = analyze_survivability(net)
        capped = analyze_survivability(net, max_couplings=0)
        assert len(full.couplings) > 0
        assert not full.truncated
        assert len(capped.couplings) == 0
        assert capped.truncated

    def test_generous_cap_matches_full(self, fig1):
        net, _ = fig1
        full = analyze_survivability(net)
        capped = analyze_survivability(net, max_couplings=10_000)
        assert len(capped.couplings) == len(full.couplings)
        assert not capped.truncated
