"""Packet-filter placement tests (§5.3, Figure 11)."""

import pytest

from repro.core.filters import analyze_filter_placement, internal_filter_cdf
from repro.model import Network


def net_with_filters(acl_rules: int, on_external: bool):
    """One router; a filter on either an external /30 or an internal LAN."""
    rules = "".join(
        f"access-list 101 deny tcp 10.{i}.0.0 0.0.255.255 any eq 80\n"
        for i in range(acl_rules - 1)
    ) + "access-list 101 permit ip any any\n"
    if on_external:
        iface = "interface Serial0\n ip address 192.0.2.1 255.255.255.252\n ip access-group 101 in\n"
    else:
        iface = "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n ip access-group 101 in\n"
    return Network.from_configs({"r1": iface + "!\n" + rules})


class TestPlacement:
    def test_external_filter_counts_as_edge(self):
        placement = analyze_filter_placement(net_with_filters(5, on_external=True))
        assert placement.total_rules == 5
        assert placement.internal_rules == 0
        assert placement.internal_fraction == 0.0

    def test_internal_filter_counts_as_internal(self):
        placement = analyze_filter_placement(net_with_filters(5, on_external=False))
        assert placement.internal_fraction == 1.0

    def test_each_clause_is_a_rule(self):
        placement = analyze_filter_placement(net_with_filters(47, on_external=False))
        assert placement.total_rules == 47
        assert placement.largest_filter() == ("101", 47)

    def test_filter_applied_twice_counts_twice(self):
        config = (
            "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
            " ip access-group 9 in\n ip access-group 9 out\n"
            "!\naccess-list 9 permit any\n"
        )
        net = Network.from_configs({"r1": config})
        placement = analyze_filter_placement(net)
        assert placement.total_rules == 2
        assert len(placement.applications) == 2

    def test_dangling_acl_reference_ignored(self):
        config = (
            "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
            " ip access-group 77 in\n"
        )
        net = Network.from_configs({"r1": config})
        placement = analyze_filter_placement(net)
        assert not placement.has_filters
        assert placement.largest_filter() is None

    def test_no_filters(self):
        net = Network.from_configs(
            {"r1": "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"}
        )
        assert not analyze_filter_placement(net).has_filters


class TestCorpusCdf:
    def test_filterless_networks_excluded(self, small_corpus):
        nets = [cn.network() for cn in small_corpus]
        cdf = internal_filter_cdf(nets)
        assert len(cdf) == 28  # 31 networks, 3 without filters

    def test_cdf_sorted_percentages(self, small_corpus):
        nets = [cn.network() for cn in small_corpus]
        cdf = internal_filter_cdf(nets)
        assert cdf == sorted(cdf)
        assert all(0.0 <= value <= 100.0 for value in cdf)

    def test_figure11_knee(self, small_corpus):
        # "in more than 30% of the networks, at least 40% of the packet
        # filter rules are applied at internal interfaces."
        nets = [cn.network() for cn in small_corpus]
        cdf = internal_filter_cdf(nets)
        at_least_40 = sum(1 for value in cdf if value >= 40.0) / len(cdf)
        assert at_least_40 > 0.25

    def test_placement_tracks_generator_target(self, small_corpus):
        for cn in small_corpus:
            target = cn.spec.internal_filter_fraction
            if target is None or not cn.spec.external_interfaces:
                continue
            measured = analyze_filter_placement(cn.network()).internal_fraction
            assert measured == pytest.approx(target, abs=0.10)
