"""Parser tests, anchored on the paper's Figure 2 configlet."""

import pytest

from repro.ios import parse_config
from repro.ios.parser import ConfigParseError
from repro.net import Prefix

FIG2 = """\
interface Ethernet0
 ip address 66.251.75.144 255.255.255.128
 ip access-group 143 in
!
interface Serial1/0.5 point-to-point
 ip address 66.253.32.85 255.255.255.252
 ip access-group 143 in
 frame-relay interface-dlci 28
!
interface Hssi2/0 point-to-point
 ip address 66.253.160.67 255.255.255.252
!
router ospf 64
 redistribute connected metric-type 1 subnets
 redistribute bgp 64780 metric 1 subnets
 network 66.251.75.128 0.0.0.127 area 0
!
router ospf 128
 redistribute connected metric-type 1 subnets
 network 66.253.32.84 0.0.0.3 area 11
 distribute-list 44 in Serial1/0.5
 distribute-list 45 out
!
router bgp 64780
 redistribute ospf 64 match route-map 8aTzlvBrbaW
 neighbor 66.253.160.68 remote-as 12762
 neighbor 66.253.160.68 distribute-list 4 in
 neighbor 66.253.160.68 distribute-list 3 out
!
access-list 143 deny 134.161.0.0 0.0.255.255
access-list 143 permit any
route-map 8aTzlvBrbaW deny 10
 match ip address 4
route-map 8aTzlvBrbaW permit 20
 match ip address 7
ip route 10.235.240.71 255.255.0.0 10.234.12.7
"""


@pytest.fixture(scope="module")
def fig2():
    return parse_config(FIG2)


class TestFig2Interfaces:
    def test_all_interfaces_present(self, fig2):
        assert list(fig2.interfaces) == ["Ethernet0", "Serial1/0.5", "Hssi2/0"]

    def test_ethernet_prefix(self, fig2):
        assert fig2.interfaces["Ethernet0"].prefix == Prefix("66.251.75.128/25")

    def test_serial_is_point_to_point(self, fig2):
        assert fig2.interfaces["Serial1/0.5"].point_to_point

    def test_serial_dlci(self, fig2):
        assert fig2.interfaces["Serial1/0.5"].frame_relay_dlci == 28

    def test_access_group(self, fig2):
        assert fig2.interfaces["Ethernet0"].access_group_in == "143"
        assert fig2.interfaces["Ethernet0"].access_group_out is None

    def test_interface_kinds(self, fig2):
        assert fig2.interfaces["Serial1/0.5"].kind == "Serial"
        assert fig2.interfaces["Hssi2/0"].kind == "Hssi"


class TestFig2Routing:
    def test_two_ospf_processes(self, fig2):
        assert [p.process_id for p in fig2.ospf_processes] == [64, 128]

    def test_ospf64_redistributes(self, fig2):
        redists = fig2.ospf(64).redistributes
        assert redists[0].source_protocol == "connected"
        assert redists[0].metric_type == 1
        assert redists[0].subnets
        assert redists[1].source_protocol == "bgp"
        assert redists[1].source_id == 64780
        assert redists[1].metric == 1

    def test_ospf64_network_statement(self, fig2):
        stmt = fig2.ospf(64).networks[0]
        assert stmt.area == "0"
        assert stmt.prefix() == Prefix("66.251.75.128/25")

    def test_ospf128_distribute_lists(self, fig2):
        dists = fig2.ospf(128).distribute_lists
        assert (dists[0].acl, dists[0].direction, dists[0].interface) == (
            "44", "in", "Serial1/0.5",
        )
        assert (dists[1].acl, dists[1].direction) == ("45", "out")

    def test_network_statement_covers_interface(self, fig2):
        stmt = fig2.ospf(64).networks[0]
        assert stmt.matches_interface(fig2.interfaces["Ethernet0"].address)
        assert not stmt.matches_interface(fig2.interfaces["Hssi2/0"].address)

    def test_bgp_asn_and_neighbor(self, fig2):
        bgp = fig2.bgp_process
        assert bgp.asn == 64780
        nbr = bgp.neighbor("66.253.160.68")
        assert nbr.remote_as == 12762
        assert nbr.distribute_list_in == "4"
        assert nbr.distribute_list_out == "3"

    def test_bgp_redistribute_route_map_variant_spelling(self, fig2):
        # "redistribute ospf 64 match route-map NAME" (the paper's spelling)
        redist = fig2.bgp_process.redistributes[0]
        assert redist.source_protocol == "ospf"
        assert redist.source_id == 64
        assert redist.route_map == "8aTzlvBrbaW"


class TestFig2Policies:
    def test_acl_143_clauses(self, fig2):
        acl = fig2.access_lists["143"]
        assert [r.action for r in acl.rules] == ["deny", "permit"]
        assert acl.rules[0].source_prefix() == Prefix("134.161.0.0/16")
        assert acl.rules[1].source_any

    def test_acl_first_match(self, fig2):
        from repro.net import IPv4Address

        acl = fig2.access_lists["143"]
        assert not acl.permits_address(IPv4Address("134.161.7.7"))
        assert acl.permits_address(IPv4Address("8.8.8.8"))

    def test_route_map_clauses(self, fig2):
        rm = fig2.route_maps["8aTzlvBrbaW"]
        clauses = rm.sorted_clauses()
        assert [(c.action, c.sequence) for c in clauses] == [("deny", 10), ("permit", 20)]
        assert clauses[0].match_ip_address == ["4"]

    def test_static_route_canonicalized(self, fig2):
        route = fig2.static_routes[0]
        assert route.prefix == Prefix("10.235.0.0/16")
        assert str(route.next_hop) == "10.234.12.7"

    def test_counts(self, fig2):
        assert fig2.line_count == 36
        assert fig2.command_count == 30


class TestParserRobustness:
    def test_unknown_lines_preserved(self):
        cfg = parse_config("snmp-server community foo RO\nip cef\n")
        assert cfg.unmodeled_lines == ["snmp-server community foo RO", "ip cef"]

    def test_unknown_router_protocol_preserved(self):
        cfg = parse_config("router isis\n net 49.0001.0000.0000.0001.00\n")
        assert "router isis" in cfg.unmodeled_lines

    def test_hostname(self):
        assert parse_config("hostname core-1\n").hostname == "core-1"

    def test_secondary_address(self):
        cfg = parse_config(
            "interface Ethernet0\n"
            " ip address 10.0.0.1 255.255.255.0\n"
            " ip address 10.0.1.1 255.255.255.0 secondary\n"
        )
        iface = cfg.interfaces["Ethernet0"]
        assert str(iface.address) == "10.0.0.1"
        assert len(iface.secondary_addresses) == 1

    def test_unnumbered_interface(self):
        cfg = parse_config("interface Serial0\n ip unnumbered Loopback0\n")
        iface = cfg.interfaces["Serial0"]
        assert not iface.is_numbered
        assert iface.unnumbered_source == "Loopback0"
        assert iface.prefix is None

    def test_shutdown(self):
        cfg = parse_config("interface Serial0\n shutdown\n")
        assert cfg.interfaces["Serial0"].shutdown

    def test_extended_acl(self):
        cfg = parse_config(
            "access-list 101 permit tcp any host 10.0.0.1 eq 80\n"
            "access-list 101 deny udp 10.0.0.0 0.0.0.255 any\n"
        )
        acl = cfg.access_lists["101"]
        assert acl.is_extended
        assert acl.rules[0].protocol == "tcp"
        assert acl.rules[0].source_any
        assert str(acl.rules[0].dest) == "10.0.0.1"
        assert acl.rules[0].port_op == "eq"
        assert acl.rules[0].port == "80"
        assert acl.rules[1].dest_any

    def test_extended_acl_range(self):
        cfg = parse_config("access-list 102 permit tcp any any range 1024 2048\n")
        rule = cfg.access_lists["102"].rules[0]
        assert rule.port_op == "range"
        assert rule.port == "1024-2048"

    def test_named_access_list(self):
        cfg = parse_config(
            "ip access-list standard MGMT\n permit 10.0.0.0 0.0.0.255\n deny any\n"
        )
        acl = cfg.access_lists["MGMT"]
        assert len(acl.rules) == 2
        assert not acl.is_extended

    def test_eigrp_and_igrp(self):
        cfg = parse_config(
            "router eigrp 100\n network 10.0.0.0\n no auto-summary\n"
            "!\nrouter igrp 200\n network 10.0.0.0\n"
        )
        assert cfg.eigrp(100).protocol == "eigrp"
        assert cfg.eigrp(100).no_auto_summary
        assert cfg.eigrp(200).protocol == "igrp"

    def test_rip(self):
        cfg = parse_config("router rip\n version 2\n network 10.0.0.0\n")
        assert cfg.rip_process.version == 2
        assert cfg.rip_process.networks[0].prefix() == Prefix("10.0.0.0/8")

    def test_bgp_network_with_mask(self):
        cfg = parse_config("router bgp 65000\n network 10.0.0.0 mask 255.255.0.0\n")
        assert cfg.bgp_process.networks[0].prefix() == Prefix("10.0.0.0/16")

    def test_bgp_neighbor_options(self):
        cfg = parse_config(
            "router bgp 65000\n"
            " neighbor 10.0.0.2 remote-as 65000\n"
            " neighbor 10.0.0.2 update-source Loopback0\n"
            " neighbor 10.0.0.2 next-hop-self\n"
            " neighbor 10.0.0.2 route-reflector-client\n"
            " neighbor 10.0.0.2 route-map FOO out\n"
        )
        nbr = cfg.bgp_process.neighbor("10.0.0.2")
        assert nbr.update_source == "Loopback0"
        assert nbr.next_hop_self
        assert nbr.route_reflector_client
        assert nbr.route_map_out == "FOO"

    def test_static_route_via_interface(self):
        cfg = parse_config("ip route 0.0.0.0 0.0.0.0 Null0 250\n")
        route = cfg.static_routes[0]
        assert route.interface == "Null0"
        assert route.distance == 250

    def test_static_route_with_tag(self):
        cfg = parse_config("ip route 10.1.0.0 255.255.0.0 10.0.0.1 tag 77\n")
        assert cfg.static_routes[0].tag == 77

    def test_malformed_interface_raises(self):
        with pytest.raises(ConfigParseError):
            parse_config("interface\n")

    def test_malformed_address_raises(self):
        with pytest.raises(ConfigParseError):
            parse_config("interface Ethernet0\n ip address 300.0.0.1 255.0.0.0\n")

    def test_empty_config(self):
        cfg = parse_config("")
        assert cfg.line_count == 0
        assert not cfg.interfaces

    def test_comment_only_config(self):
        cfg = parse_config("! generated by rancid\n!\n")
        assert cfg.command_count == 0
        assert cfg.line_count == 2

    def test_routing_processes_listing(self, fig2):
        procs = fig2.routing_processes()
        assert len(procs) == 3  # ospf 64, ospf 128, bgp
