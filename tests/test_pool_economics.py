"""The warm parse pool: reuse across calls, economics, wire fidelity.

``--jobs N`` must never lose to serial just because each ``parse_many``
call paid a fresh fork-and-import bill; these tests pin the pool's
lifecycle (built once, reused while the width holds, rebuilt on change)
and the cost/benefit numbers surfaced to manifests.
"""

import pytest

from repro.ingest import ParseTask, parse_many, pool_economics, shutdown_pool
from repro.ingest.parallel import _ECON_MIN_FILES
from repro.obs.metrics import use_registry

IOS_OK = """\
hostname {name}
interface Ethernet0
 ip address 10.0.{i}.1 255.255.255.0
router ospf 10
 network 10.0.{i}.0 0.0.0.255 area 0
"""

IOS_BAD = """\
hostname bad
interface Ethernet0
 ip address 999.0.0.1 255.255.255.0
"""


def make_tasks(count, on_error="strict"):
    return [
        ParseTask(f"r{i}", IOS_OK.format(name=f"r{i}", i=i), on_error)
        for i in range(count)
    ]


@pytest.fixture(autouse=True)
def cold_pool(monkeypatch):
    # Pool widths are clamped to the usable CPUs; pretend the host is
    # wide so jobs=2/3 genuinely exercise the multi-process path even on
    # single-CPU CI boxes.
    monkeypatch.setattr("repro.ingest.parallel.available_cpus", lambda: 8)
    shutdown_pool()
    yield
    shutdown_pool()


class TestWarmPool:
    def test_pool_survives_across_calls(self):
        tasks = make_tasks(_ECON_MIN_FILES)
        before = pool_economics()["pool_builds"]
        with use_registry() as registry:
            parse_many(tasks, jobs=2)
            first_warmup = registry.gauge("ingest.pool.warmup.seconds").value
        assert pool_economics()["pool_builds"] == before + 1
        assert first_warmup > 0
        with use_registry() as registry:
            parse_many(tasks, jobs=2)
            second_warmup = registry.gauge("ingest.pool.warmup.seconds").value
        # Same width: no rebuild, no warmup bill.
        assert pool_economics()["pool_builds"] == before + 1
        assert second_warmup == 0.0

    def test_width_change_rebuilds(self):
        tasks = make_tasks(_ECON_MIN_FILES)
        before = pool_economics()["pool_builds"]
        parse_many(tasks, jobs=2)
        parse_many(tasks, jobs=3)
        assert pool_economics()["pool_builds"] == before + 2

    def test_shutdown_forces_cold_start(self):
        tasks = make_tasks(_ECON_MIN_FILES)
        before = pool_economics()["pool_builds"]
        parse_many(tasks, jobs=2)
        shutdown_pool()
        parse_many(tasks, jobs=2)
        assert pool_economics()["pool_builds"] == before + 2


class TestEconomics:
    def test_serial_then_parallel_yields_net_win_verdict(self):
        tasks = make_tasks(_ECON_MIN_FILES * 2)
        with use_registry():
            parse_many(tasks, jobs=1)
        economics = pool_economics()
        assert economics["serial_files_per_second"] > 0
        with use_registry() as registry:
            parse_many(tasks, jobs=2)
            economics = pool_economics()
            assert economics["parallel_files_per_second"] > 0
            assert economics["pool_net_win"] is not None
            gauge = registry.gauge("ingest.pool.net_win").value
            assert gauge == (1.0 if economics["pool_net_win"] else 0.0)

    def test_tiny_runs_do_not_move_the_baselines(self):
        tasks = make_tasks(max(1, _ECON_MIN_FILES - 2))
        with use_registry():
            parse_many(tasks, jobs=1)
        before = pool_economics()
        with use_registry():
            parse_many(tasks, jobs=1)
        after = pool_economics()
        assert after["serial_files_per_second"] == before["serial_files_per_second"]

    def test_snapshot_is_a_copy(self):
        snapshot = pool_economics()
        snapshot["pool_builds"] = -1
        assert pool_economics()["pool_builds"] != -1


class TestWireFidelity:
    """Pooled results cross the process boundary as primitive tuples;
    they must decode to exactly what the serial path produces."""

    def test_pooled_equals_serial_with_damaged_files(self):
        tasks = make_tasks(6, on_error="skip-block") + [
            ParseTask("bad1", IOS_BAD, "skip-block"),
            ParseTask("bad2", IOS_BAD, "skip-file"),
        ]
        with use_registry():
            serial = parse_many(tasks, jobs=1)
            pooled = parse_many(tasks, jobs=2)
        assert pooled == serial
        by_source = {o.source: o for o in pooled}
        assert by_source["bad1"].diagnostics  # skip-block kept the diag
        assert by_source["bad2"].quarantined  # skip-file quarantined

    def test_pooled_strict_error_round_trips(self):
        tasks = make_tasks(4) + [ParseTask("bad", IOS_BAD, "strict")]
        with use_registry():
            serial = parse_many(tasks, jobs=1)
            pooled = parse_many(tasks, jobs=2)
        for a, b in zip(pooled, serial):
            # Exceptions compare by identity, so check them field-wise.
            assert (a.source, a.config, a.diagnostics, a.quarantined) == (
                b.source,
                b.config,
                b.diagnostics,
                b.quarantined,
            )
            assert type(a.error) is type(b.error)
            assert str(a.error) == str(b.error)
        error = {o.source: o for o in pooled}["bad"].error
        assert error is not None
