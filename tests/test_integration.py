"""End-to-end integration: generate → serialize → anonymize → parse →
extract, and verify the anonymized analysis is isomorphic to the original.

This is the paper's whole premise: anonymization preserves exactly the
structure the routing-design analysis needs (§4.1).
"""

import os
from collections import Counter

import pytest

from repro.anonymize import Anonymizer
from repro.core import classify_design, compute_instances
from repro.core.filters import analyze_filter_placement
from repro.core.roles import classify_roles
from repro.model import Network
from repro.synth.templates.enterprise import build_enterprise
from repro.synth.templates.net15 import build_net15


@pytest.fixture(scope="module")
def original_and_anonymized():
    configs, spec = build_enterprise("int", 30, 18, seed=42, n_borders=2)
    anonymizer = Anonymizer(key=b"integration")
    anon_configs = {
        f"config{i}": anonymizer.anonymize_config(text)
        for i, (_name, text) in enumerate(sorted(configs.items()))
    }
    original = Network.from_configs(configs, name="original")
    anonymized = Network.from_configs(anon_configs, name="anonymized")
    return original, anonymized, spec


class TestAnonymizedAnalysisIsomorphism:
    def test_same_router_count(self, original_and_anonymized):
        original, anonymized, _ = original_and_anonymized
        assert len(original) == len(anonymized)

    def test_same_link_count(self, original_and_anonymized):
        original, anonymized, _ = original_and_anonymized
        assert len(original.links) == len(anonymized.links)

    def test_same_external_interface_count(self, original_and_anonymized):
        original, anonymized, _ = original_and_anonymized
        assert len(original.external_interfaces) == len(anonymized.external_interfaces)

    def test_same_instance_multiset(self, original_and_anonymized):
        original, anonymized, _ = original_and_anonymized
        orig = Counter((i.protocol, i.size) for i in compute_instances(original))
        anon = Counter((i.protocol, i.size) for i in compute_instances(anonymized))
        assert orig == anon

    def test_same_design_class(self, original_and_anonymized):
        original, anonymized, _ = original_and_anonymized
        assert classify_design(original).design == classify_design(anonymized).design

    def test_same_role_census(self, original_and_anonymized):
        original, anonymized, _ = original_and_anonymized
        orig, anon = classify_roles(original), classify_roles(anonymized)
        assert orig.igp_intra == anon.igp_intra
        assert orig.igp_inter == anon.igp_inter
        assert (orig.ebgp_intra, orig.ebgp_inter) == (anon.ebgp_intra, anon.ebgp_inter)

    def test_same_filter_statistics(self, original_and_anonymized):
        original, anonymized, _ = original_and_anonymized
        orig = analyze_filter_placement(original)
        anon = analyze_filter_placement(anonymized)
        assert orig.total_rules == anon.total_rules
        assert orig.internal_rules == anon.internal_rules

    def test_addresses_actually_changed(self, original_and_anonymized):
        original, anonymized, _ = original_and_anonymized
        assert set(original.address_map) != set(anonymized.address_map)

    def test_names_actually_changed(self, original_and_anonymized):
        original, anonymized, _ = original_and_anonymized
        assert set(original.routers) != set(anonymized.routers)


class TestDirectoryLoading:
    def test_from_directory_mirrors_paper_layout(self, tmp_path):
        configs, _spec = build_enterprise("dirnet", 31, 8, seed=13)
        anonymizer = Anonymizer(key=b"dir")
        for index, (_name, text) in enumerate(sorted(configs.items()), start=1):
            (tmp_path / f"config{index}").write_text(
                anonymizer.anonymize_config(text)
            )
        net = Network.from_directory(os.fspath(tmp_path))
        assert len(net) == 8
        instances = compute_instances(net)
        assert Counter(i.protocol for i in instances) == {"ospf": 1, "bgp": 1}

    def test_router_names_fall_back_to_file_names(self, tmp_path):
        (tmp_path / "config1").write_text(
            "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
        )
        net = Network.from_directory(os.fspath(tmp_path))
        assert "config1" in net.routers


class TestNet15EndToEndAnonymized:
    def test_reachability_claims_survive_anonymization(self):
        from repro.core import ReachabilityAnalysis

        configs, spec = build_net15(scale=0.5, name="net15a")
        anonymizer = Anonymizer(key=b"n15")
        anon = {
            name: anonymizer.anonymize_config(text) for name, text in configs.items()
        }
        net = Network.from_configs(anon, name="net15-anon")
        analysis = ReachabilityAnalysis(net)
        ospf = [i for i in analysis.instances if i.protocol == "ospf"]
        assert len(ospf) == 2
        for instance in ospf:
            # No default route admitted — even though every name and
            # address in the configs has been rewritten.
            assert not analysis.default_route_admitted(instance.instance_id)
            external = analysis.external_routes_into(instance.instance_id)
            assert not external.is_empty()
