"""The resilient executor: barrier, ladders, checkpoints, chaos."""

import os

import pytest

from repro.exec import (
    ANALYSIS_STAGES,
    AnalysisExecutor,
    ChaosPlan,
    CheckpointStore,
    ExecutorConfig,
    Rung,
    SimulatedKill,
)
from repro.model import Network
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.synth.templates.example_fig1 import build_example_networks


@pytest.fixture()
def network():
    configs, _meta = build_example_networks()
    return Network.from_configs(configs, name="fig1")


def _run(network, archive="fig1", **config):
    with use_registry(MetricsRegistry()) as registry:
        executor = AnalysisExecutor(ExecutorConfig(**config))
        execution = executor.run_archive(archive, network)
    return executor, execution, registry


class TestCleanRun:
    def test_every_stage_ok(self, network):
        _executor, execution, registry = _run(network)
        assert [r.stage for r in execution.results] == list(ANALYSIS_STAGES)
        assert execution.status == "ok"
        assert all(r.status == "ok" for r in execution.results)
        assert all(r.attempts == 1 for r in execution.results)
        counters = registry.snapshot()["counters"]
        assert counters["exec.stage.ok"] == len(ANALYSIS_STAGES)

    def test_no_diagnostics_on_a_clean_run(self, network):
        before = network.diagnostics.counts()
        _run(network)
        assert network.diagnostics.counts() == before

    def test_results_carry_values_for_downstream_use(self, network):
        _executor, execution, _registry = _run(network)
        assert execution.result("links").value is not None
        assert execution.result("instances").items > 0

    def test_as_dict_shape(self, network):
        _executor, execution, _registry = _run(network)
        data = execution.as_dict()
        assert data["status"] == "ok"
        assert len(data["stages"]) == len(ANALYSIS_STAGES)
        assert all("seconds" in stage for stage in data["stages"])


class TestChaosPaths:
    def test_injected_raise_fails_only_that_stage(self, network):
        _executor, execution, _registry = _run(
            network, chaos=ChaosPlan.from_spec("*:consistency=raise")
        )
        failed = execution.result("consistency")
        assert failed.status == "failed"
        assert "ChaosError" in failed.error
        assert failed.attempts == 1  # deterministic: no ladder retry
        others = [r for r in execution.results if r.stage != "consistency"]
        assert all(r.status == "ok" for r in others)
        assert execution.status == "failed"

    def test_failure_emits_an_error_diagnostic(self, network):
        _run(network, chaos=ChaosPlan.from_spec("*:consistency=raise"))
        assert network.diagnostics.counts()["error"] == 1

    def test_hang_on_every_rung_times_out(self, network):
        _executor, execution, _registry = _run(
            network,
            stage_deadline=0.15,
            chaos=ChaosPlan.from_spec("*:pathways=hang"),
        )
        result = execution.result("pathways")
        assert result.status == "timeout"
        assert result.attempts == 3  # the whole pathways ladder was tried
        assert result.detail == "hard deadline on every rung"
        assert execution.status == "timeout"

    def test_hang_only_on_full_fidelity_degrades(self, network):
        _executor, execution, _registry = _run(
            network,
            stage_deadline=0.15,
            chaos=ChaosPlan.from_spec("*:pathways=hang@0"),
        )
        result = execution.result("pathways")
        assert result.status == "degraded"
        assert result.attempts == 2
        assert result.degradation == "max-depth-8"
        assert result.finished  # degraded results are checkpointable

    def test_simulated_kill_escapes_the_barrier(self, network):
        with pytest.raises(SimulatedKill):
            _run(network, chaos=ChaosPlan.from_spec("*:pathways=kill"))

    def test_archives_not_matching_the_rule_are_untouched(self, network):
        _executor, execution, _registry = _run(
            network, archive="clean", chaos=ChaosPlan.from_spec("other:*=raise")
        )
        assert execution.status == "ok"


class TestFailFast:
    def test_abort_skips_the_rest(self, network):
        executor, execution, _registry = _run(
            network, fail_fast=True, chaos=ChaosPlan.from_spec("*:links=raise")
        )
        assert executor.aborted
        assert execution.result("links").status == "failed"
        rest = [r for r in execution.results if r.stage != "links"]
        assert all(r.status == "skipped" for r in rest)
        assert all(r.detail == "fail-fast abort" for r in rest)
        assert all(r.attempts == 0 for r in rest)

    def test_degraded_does_not_trip_fail_fast(self, network):
        executor, execution, _registry = _run(
            network,
            fail_fast=True,
            stage_deadline=0.15,
            chaos=ChaosPlan.from_spec("*:pathways=hang@0"),
        )
        assert not executor.aborted
        assert execution.result("pathways").status == "degraded"
        assert execution.result("survivability").status == "ok"


class TestRunDeadline:
    def test_exhausted_budget_skips_everything(self, network):
        _executor, execution, _registry = _run(network, run_deadline=1e-9)
        assert all(r.status == "skipped" for r in execution.results)
        assert all(
            r.detail == "run deadline exhausted" for r in execution.results
        )

    def test_skips_emit_warnings_not_errors(self, network):
        _run(network, run_deadline=1e-9)
        counts = network.diagnostics.counts()
        assert counts["warning"] == len(ANALYSIS_STAGES)
        assert counts["error"] == 0


class TestCheckpointsAndResume:
    def test_clean_run_checkpoints_every_stage(self, network, tmp_path):
        store = CheckpointStore(root=os.fspath(tmp_path))
        _run(network, checkpoints=store)
        assert store.stats.stores == len(ANALYSIS_STAGES)

    def test_resume_replays_finished_stages(self, network, tmp_path):
        store = CheckpointStore(root=os.fspath(tmp_path))
        _run(network, checkpoints=store)
        store2 = CheckpointStore(root=os.fspath(tmp_path))
        _executor, execution, registry = _run(
            network, checkpoints=store2, resume=True
        )
        assert store2.stats.hits == len(ANALYSIS_STAGES)
        assert store2.stats.stores == 0
        assert all(r.from_checkpoint for r in execution.results)
        counters = registry.snapshot()["counters"]
        assert counters["exec.checkpoint.hits"] == len(ANALYSIS_STAGES)

    def test_unfinished_stages_are_not_checkpointed(self, network, tmp_path):
        store = CheckpointStore(root=os.fspath(tmp_path))
        _run(
            network,
            checkpoints=store,
            chaos=ChaosPlan.from_spec("*:consistency=raise"),
        )
        assert store.stats.stores == len(ANALYSIS_STAGES) - 1

    def test_kill_mid_run_preserves_earlier_checkpoints(self, network, tmp_path):
        store = CheckpointStore(root=os.fspath(tmp_path))
        with pytest.raises(SimulatedKill):
            _run(
                network,
                checkpoints=store,
                chaos=ChaosPlan.from_spec("*:pathways=kill"),
            )
        # links, process_graph, instances finished before the kill.
        assert store.stats.stores == 3
        store2 = CheckpointStore(root=os.fspath(tmp_path))
        _executor, execution, _registry = _run(
            network, checkpoints=store2, resume=True
        )
        assert execution.status == "ok"
        assert store2.stats.hits == 3
        fresh = [r.stage for r in execution.results if not r.from_checkpoint]
        assert fresh == list(ANALYSIS_STAGES)[3:]

    def test_resume_reexecutes_failed_pairs(self, network, tmp_path):
        store = CheckpointStore(root=os.fspath(tmp_path))
        _run(
            network,
            checkpoints=store,
            chaos=ChaosPlan.from_spec("*:consistency=raise"),
        )
        store2 = CheckpointStore(root=os.fspath(tmp_path))
        _executor, execution, _registry = _run(
            network, checkpoints=store2, resume=True
        )
        assert execution.status == "ok"
        fresh = [r.stage for r in execution.results if not r.from_checkpoint]
        assert fresh == ["consistency"]
        assert store2.stats.stores == 1  # the repaired pair is now saved


class TestLadderOverride:
    def test_custom_ladder_is_honored(self, network):
        ladders = {"pathways": (Rung("full"), Rung("max-depth-3", {"max_depth": 3}))}
        _executor, execution, _registry = _run(
            network,
            stage_deadline=0.15,
            ladders={**{s: (Rung("full"),) for s in ANALYSIS_STAGES}, **ladders},
            chaos=ChaosPlan.from_spec("*:pathways=hang@0"),
        )
        result = execution.result("pathways")
        assert result.status == "degraded"
        assert result.degradation == "max-depth-3"
