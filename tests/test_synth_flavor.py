"""Flavor interfaces and boilerplate: census mass that is analysis-inert."""

import random

from repro.ios import parse_config, serialize_config
from repro.model import Network
from repro.synth.addressing import NetworkAddressPlan
from repro.synth.builder import NetworkBuilder
from repro.synth.flavor import BASE_RATES, add_boilerplate, add_flavor_interfaces


def make_builder():
    builder = NetworkBuilder(NetworkAddressPlan.standard(60), rng=random.Random(7))
    builder.add_router("a")
    builder.add_router("b")
    end_a, end_b = builder.connect("a", "b")
    builder.cover_ospf(end_a, 1)
    builder.cover_ospf(end_b, 1)
    return builder


class TestFlavorInterfaces:
    def test_interfaces_are_inert_for_analysis(self):
        builder = make_builder()
        baseline = Network.from_configs(builder.serialize())
        baseline_links = len(baseline.links)
        baseline_external = set(baseline.external_interfaces)

        add_flavor_interfaces(builder, random.Random(3))
        flavored = Network.from_configs(builder.serialize())
        assert len(flavored.links) == baseline_links
        assert set(flavored.external_interfaces) == baseline_external
        # ...but the census grew substantially.
        assert sum(flavored.interface_type_census().values()) > sum(
            baseline.interface_type_census().values()
        )

    def test_flavor_interfaces_are_shutdown_and_unnumbered(self):
        builder = make_builder()
        before = {
            (router, name)
            for router, config in builder.routers.items()
            for name in config.interfaces
        }
        add_flavor_interfaces(builder, random.Random(3))
        for router, config in builder.routers.items():
            for name, iface in config.interfaces.items():
                if (router, name) in before:
                    continue
                assert iface.shutdown
                assert not iface.is_numbered

    def test_rates_scale_population(self):
        builder = make_builder()
        add_flavor_interfaces(builder, random.Random(3))
        census = Network.from_configs(builder.serialize()).interface_type_census()
        assert census.get("Serial", 0) >= int(BASE_RATES["Serial"]) * 2  # 2 routers

    def test_backbone_style_suppresses_legacy(self):
        builder = make_builder()
        add_flavor_interfaces(builder, random.Random(3), style="backbone")
        census = Network.from_configs(builder.serialize()).interface_type_census()
        assert census.get("TokenRing", 0) == 0
        assert census.get("BRI", 0) == 0


class TestBoilerplate:
    def test_boilerplate_survives_roundtrip(self):
        builder = make_builder()
        add_boilerplate(builder, random.Random(3), min_lines=50, max_lines=60)
        text = builder.serialize()["a"]
        first = parse_config(text)
        second = parse_config(serialize_config(first))
        assert first.unmodeled_lines == second.unmodeled_lines
        assert len(first.unmodeled_lines) >= 50

    def test_boilerplate_within_budget(self):
        builder = make_builder()
        add_boilerplate(builder, random.Random(3), min_lines=80, max_lines=90)
        for config in builder.routers.values():
            assert 80 <= len(config.unmodeled_lines) <= 90

    def test_boilerplate_is_analysis_inert(self):
        builder = make_builder()
        baseline = Network.from_configs(builder.serialize())
        add_boilerplate(builder, random.Random(3))
        enriched = Network.from_configs(builder.serialize())
        assert len(enriched.links) == len(baseline.links)
        from repro.core import compute_instances

        assert len(compute_instances(enriched)) == len(compute_instances(baseline))
