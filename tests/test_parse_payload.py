"""The compact payload codec: encode/decode fidelity and fragment merging.

These tuples cross process boundaries (warm-pool workers) and live in the
block-level cache, so the round trip must be exact for every modeled
class — a silent field drop here corrupts configs only on cache hits or
only under ``--jobs N``, the worst kind of bug to chase.
"""

from hypothesis import given, settings

from repro.diag import PHASE_PARSE, Diagnostic
from repro.ios.config import (
    AccessList,
    AclRule,
    CommunityList,
    InterfaceConfig,
    OspfProcess,
    PrefixList,
    PrefixListEntry,
    RouterConfig,
)
from repro.ios.parser import parse_config
from repro.ios.payload import (
    decode_config,
    decode_diagnostics,
    encode_config,
    encode_diagnostics,
    merge_fragment,
)
from repro.net import Prefix

from tests.test_property_roundtrip import router_configs

# A fixture exercising every stanza family the codec must carry,
# including the kinds the hypothesis strategy does not generate
# (RIP, prefix lists, community lists, named ACLs, unmodeled lines).
KITCHEN_SINK = """\
hostname sink
interface Serial0/0
 description uplink
 ip address 10.1.0.1 255.255.255.252
 ip access-group 101 in
 bandwidth 1544
 ip ospf cost 10
router ospf 10
 router-id 10.1.0.1
 network 10.1.0.0 0.0.0.3 area 0
 passive-interface Serial0/0
 redistribute static metric 20 subnets tag 7
 distribute-list 5 in Serial0/0
 default-information originate
router eigrp 100
 network 10.2.0.0
 no auto-summary
router rip
 version 2
 network 10.3.0.0
router bgp 65000
 neighbor 10.9.0.2 remote-as 65001
 neighbor 10.9.0.2 route-map RM-OUT out
 neighbor 10.9.0.2 next-hop-self
 network 10.1.0.0 mask 255.255.0.0
access-list 5 permit 10.1.0.0 0.0.255.255
access-list 101 permit tcp any host 10.1.0.1 eq 179
ip access-list extended NAMED
 permit ip 10.0.0.0 0.0.0.255 any
 deny ip any any
ip prefix-list PL seq 5 permit 10.0.0.0/8 le 24
ip community-list 7 permit 65000:100
route-map RM-OUT permit 10
 match ip address 101
 set local-preference 200
 set community 65000:100 additive
ip route 0.0.0.0 0.0.0.0 10.1.0.2 tag 42
banner motd ^C unmodeled ^C
"""


class TestConfigRoundTrip:
    def test_kitchen_sink_round_trip(self):
        config = parse_config(KITCHEN_SINK, block_cache=None)
        # The fixture really does reach every family.
        assert config.interfaces and config.ospf_processes
        assert config.eigrp_processes and config.rip_process
        assert config.bgp_process and config.access_lists
        assert config.prefix_lists and config.community_lists
        assert config.route_maps and config.static_routes
        assert config.unmodeled_lines
        assert decode_config(encode_config(config)) == config

    def test_decoded_config_is_independent(self):
        config = parse_config(KITCHEN_SINK, block_cache=None)
        payload = encode_config(config)
        first = decode_config(payload)
        second = decode_config(payload)
        # Decodes are fresh objects: downstream passes mutate configs, and
        # a shared instance would leak edits between cache hits.
        assert first == second
        assert first is not second
        assert first.interfaces["Serial0/0"] is not second.interfaces["Serial0/0"]
        first.interfaces["Serial0/0"].description = "mutated"
        assert decode_config(payload) == config

    def test_counts_survive(self):
        config = parse_config(KITCHEN_SINK, block_cache=None)
        decoded = decode_config(encode_config(config))
        assert decoded.line_count == config.line_count
        assert decoded.command_count == config.command_count

    @settings(max_examples=60, deadline=None)
    @given(router_configs())
    def test_generated_configs_round_trip(self, config):
        assert decode_config(encode_config(config)) == config

    def test_payload_is_primitives_only(self):
        def flatten(value):
            if isinstance(value, (tuple, list)):
                for item in value:
                    yield from flatten(item)
            else:
                yield value

        payload = encode_config(parse_config(KITCHEN_SINK, block_cache=None))
        for leaf in flatten(payload):
            assert leaf is None or isinstance(leaf, (int, str, bool)), leaf


class TestDiagnosticsRoundTrip:
    def test_round_trip(self):
        diags = (
            Diagnostic("error", PHASE_PARSE, "skipped block: boom",
                       file="r1.cfg", line_number=7, line="interface E0"),
            Diagnostic("info", PHASE_PARSE, "unmodeled command: banner",
                       router="r1"),
        )
        assert decode_diagnostics(encode_diagnostics(diags)) == diags


class TestMergeFragment:
    def test_lists_extend_and_dicts_update(self):
        config = RouterConfig()
        config.ospf_processes.append(OspfProcess(process_id=1))
        fragment = RouterConfig()
        fragment.interfaces["E0"] = InterfaceConfig(name="E0")
        fragment.ospf_processes.append(OspfProcess(process_id=2))
        merge_fragment(config, fragment)
        assert list(config.interfaces) == ["E0"]
        assert [p.process_id for p in config.ospf_processes] == [1, 2]

    def test_acl_rules_append_to_existing_list(self):
        # "access-list 5 ..." stanzas accumulate one rule per line, across
        # stanzas; the merge must extend, not replace.
        config = RouterConfig()
        config.access_lists["5"] = AccessList(
            name="5", rules=[AclRule(action="permit", source_any=True)]
        )
        fragment = RouterConfig()
        fragment.access_lists["5"] = AccessList(
            name="5", rules=[AclRule(action="deny", source_any=True)]
        )
        merge_fragment(config, fragment)
        assert [r.action for r in config.access_lists["5"].rules] == [
            "permit",
            "deny",
        ]

    def test_prefix_list_entries_extend(self):
        config = RouterConfig()
        config.prefix_lists["PL"] = PrefixList(
            name="PL",
            entries=[
                PrefixListEntry(sequence=5, action="permit",
                                prefix=Prefix(0x0A000000, 8))
            ],
        )
        fragment = RouterConfig()
        fragment.prefix_lists["PL"] = PrefixList(
            name="PL",
            entries=[
                PrefixListEntry(sequence=10, action="deny",
                                prefix=Prefix(0, 0))
            ],
        )
        merge_fragment(config, fragment)
        assert [e.sequence for e in config.prefix_lists["PL"].entries] == [5, 10]

    def test_scalars_overwrite_only_when_set(self):
        config = RouterConfig(hostname="keep")
        merge_fragment(config, RouterConfig())
        assert config.hostname == "keep"
        merge_fragment(config, RouterConfig(hostname="new"))
        assert config.hostname == "new"

    def test_community_lists_extend(self):
        config = RouterConfig()
        config.community_lists["7"] = CommunityList(
            name="7", entries=[("permit", "65000:100")]
        )
        fragment = RouterConfig()
        fragment.community_lists["7"] = CommunityList(
            name="7", entries=[("deny", "65000:200")]
        )
        merge_fragment(config, fragment)
        assert len(config.community_lists["7"].entries) == 2

    def test_unmodeled_lines_extend(self):
        config = RouterConfig(unmodeled_lines=["a"])
        merge_fragment(config, RouterConfig(unmodeled_lines=["b"]))
        assert config.unmodeled_lines == ["a", "b"]

    def test_merge_equals_direct_parse(self):
        whole = parse_config(KITCHEN_SINK, block_cache=None)
        merged = RouterConfig(
            line_count=whole.line_count, command_count=whole.command_count
        )
        merge_fragment(merged, whole)
        assert merged == whole
