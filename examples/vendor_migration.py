#!/usr/bin/env python3
"""Verify a vendor migration preserves the routing design.

A realistic operator task the paper's framework enables: the core of a
network is being migrated from Cisco IOS to JunOS.  Because both dialects
parse into the same design model, the §8.2 longitudinal diff can certify
that the *routing design* — instances, links, classification — is
untouched even though every migrated config file is rewritten top to
bottom.

Run:  python examples/vendor_migration.py
"""

from repro import Network, classify_design, compute_instances
from repro.core import diff_designs
from repro.ios.parser import parse_config
from repro.junos.serializer import serialize_junos_config
from repro.synth.templates.mixed import build_mixed


def main() -> None:
    # t0: the network as originally built (the mixed template emits a
    # JunOS core already; rebuild everything as IOS first for "before").
    configs_mixed, spec = build_mixed("migrate", 40, n_routers=12, seed=11)

    # "Before": every router in IOS.  Reconstruct by re-serializing the
    # JunOS cores from their parsed models through the IOS serializer.
    from repro.ios.serializer import serialize_config
    from repro.model.dialect import parse_any_config

    before_configs = {}
    for name, text in configs_mixed.items():
        model = parse_any_config(text)
        before_configs[name] = serialize_config(model)

    # "After": the core routers have been migrated to JunOS (the mixed
    # template's native output).
    after_configs = configs_mixed

    before = Network.from_configs(before_configs, name="t0-all-ios")
    after = Network.from_configs(after_configs, name="t1-junos-core")

    print("before: all-IOS network")
    print(f"  routers {len(before)}, links {len(before.links)}")
    print("after: JunOS core ({} routers migrated)".format(len(spec.notes["junos_routers"])))
    print(f"  routers {len(after)}, links {len(after.links)}\n")

    # --- the certification -------------------------------------------------
    diff = diff_designs(before, after)
    print("design-level diff after migration:")
    for line in diff.summary_lines():
        print(f"  {line}")

    before_instances = sorted(
        (i.protocol, i.size) for i in compute_instances(before)
    )
    after_instances = sorted((i.protocol, i.size) for i in compute_instances(after))
    print(f"\ninstance structure identical: {before_instances == after_instances}")
    print(
        "design class: "
        f"{classify_design(before).design.value} -> "
        f"{classify_design(after).design.value}"
    )

    if (
        before_instances == after_instances
        and not diff.routers_added
        and not diff.routers_removed
    ):
        print("\nmigration certified: the routing design is unchanged.")
    else:
        print("\nWARNING: the migration altered the routing design!")


if __name__ == "__main__":
    main()
