#!/usr/bin/env python3
"""Anonymize a configuration archive and prove the analysis still works.

Replays §4.1 of the paper: comments stripped, names hashed, addresses
rewritten prefix-preservingly, public ASNs mapped — then the full design
extraction runs on the anonymized files and produces an isomorphic result.
This is the workflow that made the paper's data sharing possible.

Run:  python examples/anonymize_and_share.py
"""

from collections import Counter

from repro import Anonymizer, Network, classify_design, compute_instances
from repro.synth.templates.enterprise import build_enterprise


def main() -> None:
    configs, _spec = build_enterprise(
        "acme-corp", 7, 16, seed=77, igp="ospf", n_borders=2
    )

    # --- before -------------------------------------------------------------
    sample_name = sorted(configs)[0]
    print("=== original config (first 12 lines) ===")
    print("\n".join(configs[sample_name].splitlines()[:12]))

    # --- anonymize ------------------------------------------------------------
    anonymizer = Anonymizer(key=b"example-key")
    anonymized = {
        f"config{index}": anonymizer.anonymize_config(text)
        for index, (_name, text) in enumerate(sorted(configs.items()), start=1)
    }
    print("\n=== anonymized config (first 12 lines) ===")
    print("\n".join(anonymized["config1"].splitlines()[:12]))

    # --- analyze both ------------------------------------------------------------
    original = Network.from_configs(configs, name="original")
    shared = Network.from_configs(anonymized, name="shared")

    def summary(net):
        instances = compute_instances(net)
        return {
            "routers": len(net),
            "links": len(net.links),
            "external interfaces": len(net.external_interfaces),
            "instances": dict(Counter(i.protocol for i in instances)),
            "design": classify_design(net, instances).design.value,
        }

    print("\n=== analysis comparison ===")
    before, after = summary(original), summary(shared)
    for key in before:
        marker = "==" if before[key] == after[key] else "!="
        print(f"  {key:22} {before[key]!s:>28}  {marker}  {after[key]!s}")

    assert before == after, "anonymization must preserve the routing design"
    print("\nall structural results identical: safe to share the archive.")


if __name__ == "__main__":
    main()
