#!/usr/bin/env python3
"""Quickstart: reverse engineer a routing design from configuration files.

Builds the paper's Figure 1 example (a small enterprise connected to a
transit backbone), writes its IOS configuration files to a directory the
way a config archive would look, then runs the whole §3 pipeline on the
files: link inference, routing instances, route pathways, address space
structure, and design classification.

Run:  python examples/quickstart.py
"""

import os
import tempfile

from repro import (
    Network,
    build_instance_graph,
    classify_design,
    compute_instances,
    extract_address_space,
    route_pathway,
)
from repro.synth.templates.example_fig1 import build_example_networks


def main() -> None:
    # --- 1. obtain configuration files -----------------------------------
    configs, meta = build_example_networks()
    archive = tempfile.mkdtemp(prefix="repro-configs-")
    for index, (name, text) in enumerate(sorted(configs.items()), start=1):
        with open(os.path.join(archive, f"config{index}"), "w") as handle:
            handle.write(text)
    print(f"wrote {len(configs)} configuration files to {archive}\n")

    # --- 2. parse the archive into a network model ------------------------
    network = Network.from_directory(archive)
    print(f"parsed {len(network)} routers; {len(network.links)} links inferred")
    print(f"external-facing interfaces: {sorted(network.external_interfaces)}\n")

    # --- 3. routing instances (§3.2) ---------------------------------------
    instances = compute_instances(network)
    print("routing instances (Figure 6):")
    for instance in instances:
        print(f"  {instance.label}: routers {sorted(instance.routers)}")
    print()

    # --- 4. route pathways (§3.3) ------------------------------------------
    for router in ("R1", "R5"):
        pathway = route_pathway(network, router, instances=instances)
        print(
            f"route pathway of {router}: depth {pathway.depth}, "
            f"external routes arrive after {pathway.external_depth()} hops"
        )
    print()

    # --- 5. address space structure (§3.4) ----------------------------------
    print("recovered address blocks:")
    for block in extract_address_space(network):
        print(f"  {block}")
    print()

    # --- 6. design classification (§7) ---------------------------------------
    evidence = classify_design(network, instances)
    print(f"design class: {evidence.design.value}")
    for note in evidence.notes:
        print(f"  {note}")

    # --- 7. instance graph for further analysis -------------------------------
    graph = build_instance_graph(network, instances)
    print(
        f"\ninstance graph: {graph.number_of_nodes()} nodes, "
        f"{graph.number_of_edges()} edges (including the external world)"
    )


if __name__ == "__main__":
    main()
