#!/usr/bin/env python3
"""Run the paper's whole corpus study end to end.

Generates the 31-network corpus, then reproduces the headline findings:
the Table 1 role census (IGPs used as EGPs, EBGP used internally), the
Figure 11 internal-filtering CDF, the §7 design classification, and the
Table 3 interface census.

Run:  python examples/corpus_study.py [scale]     (default scale 0.15)
"""

import sys
from collections import Counter

from repro import classify_design
from repro.core.census import interface_census
from repro.core.filters import internal_filter_cdf
from repro.core.roles import census_over_networks
from repro.report import format_table
from repro.report.tables import fraction_at_least
from repro.synth.corpus import paper_corpus


def main(scale: float = 0.15) -> None:
    corpus = paper_corpus(scale=scale)
    print(f"generating and parsing 31 networks at scale {scale}...")
    networks = [cn.network() for cn in corpus]
    print(f"total routers: {sum(len(net) for net in networks)}\n")

    # --- Table 1 ---------------------------------------------------------
    census = census_over_networks(networks)
    rows = [
        (proto, census.igp_intra[proto], census.igp_inter[proto])
        for proto in ("ospf", "eigrp", "rip")
    ]
    rows.append(("ebgp sessions", census.ebgp_intra, census.ebgp_inter))
    print(format_table(["protocol", "intra", "inter"], rows, title="Table 1 — roles"))
    print(
        f"\nIGP instances serving as EGPs: "
        f"{census.unconventional_igp_fraction():.1%} (paper: 11%)"
    )
    print(
        f"EBGP sessions used intra-network: "
        f"{census.unconventional_ebgp_fraction():.1%} (paper: 10%)\n"
    )

    # --- Figure 11 ----------------------------------------------------------
    cdf = internal_filter_cdf(networks)
    print(
        f"Figure 11 — {len(cdf)} networks define packet filters; "
        f"{fraction_at_least(cdf, 40.0):.0%} of them apply >=40% of their "
        f"rules on internal links (paper: >30%)\n"
    )

    # --- §7 classification -----------------------------------------------------
    designs = Counter(classify_design(net).design.value for net in networks)
    print(
        "design classes: "
        + ", ".join(f"{count} {name}" for name, count in sorted(designs.items()))
        + "  (paper: 4 backbone, 7 enterprise, 20 unclassifiable)\n"
    )

    # --- Table 3 ------------------------------------------------------------------
    counts = interface_census(networks)
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:8]
    print(
        format_table(
            ["interface type", "count"], top, title="Table 3 — top interface types"
        )
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.15)
