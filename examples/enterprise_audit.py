#!/usr/bin/env python3
"""Audit a large compartmentalized enterprise network (the net5 study).

Replays §5.1 and §6.1 of the paper on a generated net5-style network:
extract the routing instances, identify the glue routers that redistribute
between compartments, answer the redundancy question ("how many routers
must fail before instance 1 is partitioned from instance 4?"), and show
how external routes layer through the design.

Run:  python examples/enterprise_audit.py [scale]
"""

import sys

import networkx as nx

from repro import Network, classify_design, compute_instances, route_pathway
from repro.core.instances import build_instance_graph, instance_of
from repro.core.process_graph import EXTERNAL_NODE
from repro.synth.templates.net5 import build_net5


def main(scale: float = 0.25) -> None:
    configs, spec = build_net5(scale=scale)
    network = Network.from_configs(configs, name="net5")
    print(f"net5 at scale {scale}: {len(network)} routers\n")

    # --- instance structure (Figure 9) ------------------------------------
    instances = compute_instances(network)
    print(f"{len(instances)} routing instances:")
    for instance in sorted(instances, key=lambda i: -i.size):
        print(f"  {instance.label}: {instance.size} routers")
    asns = {i.asn for i in instances if i.protocol == "bgp"}
    print(f"\n{len(asns)} internal BGP ASs — all inside one network")

    # --- the glue routers ----------------------------------------------------
    membership = instance_of(instances)
    glue = spec.notes["glue_ab_routers"]
    print(f"\nredundant redistribution routers between compartments: {glue}")

    # Partition analysis: remove the glue routers, recompute, check whether
    # the two compartments can still exchange routes.
    degraded = Network.from_configs(
        {name: text for name, text in configs.items() if name not in set(glue)},
        name="net5-degraded",
    )
    degraded_instances = compute_instances(degraded)
    graph = build_instance_graph(degraded, degraded_instances).to_undirected()
    graph.remove_node(EXTERNAL_NODE)
    eigrp = sorted(
        (i for i in degraded_instances if i.protocol == "eigrp"), key=lambda i: -i.size
    )
    big = eigrp[0].instance_id
    b_compartment = next(
        i.instance_id
        for i in eigrp
        if any(router.startswith("net5-b") for router in i.routers)
    )
    connected = nx.has_path(graph, big, b_compartment)
    print(
        f"after failing all {len(glue)} glue routers, compartments A and B "
        f"{'can still' if connected else 'can NO LONGER'} exchange routes"
    )

    # --- pathway layering (Figure 10) -----------------------------------------
    middle = spec.notes["middle_router"]
    pathway = route_pathway(network, middle, instances=instances)
    print(
        f"\nroute pathway of {middle} (middle of the big compartment): "
        f"external routes cross {pathway.external_depth()} layers"
    )

    # --- classification ---------------------------------------------------------
    evidence = classify_design(network, instances)
    print(
        f"\ndesign class: {evidence.design.value} "
        f"(IGP-to-IGP redistribution statements: "
        f"{evidence.igp_to_igp_redistribution_count})"
    )
    print(
        "the design avoids an IBGP mesh: external routes are tagged at "
        "injection and each compartment's addresses live in their own block"
    )
    for label, block in spec.notes["compartment_blocks"].items():
        print(f"  compartment {label}: {block}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.25)
