#!/usr/bin/env python3
"""What-if analysis: failures, maintenance, and route load (§3.1, §8.1).

Uses both substrates on one network: the static survivability analysis
(articulation points, instance-coupling redundancy, static-route
maintenance conflicts) and the control-plane simulator (which destinations
survive a specific link or router failure, per-process route loads).

Run:  python examples/what_if_analysis.py
"""

from repro import Network, RoutingSimulation, compute_instances
from repro.core import analyze_survivability
from repro.synth.templates.enterprise import build_enterprise


def main() -> None:
    configs, _spec = build_enterprise(
        "whatif", 8, 14, seed=99, igp="ospf", n_borders=2
    )
    network = Network.from_configs(configs, name="whatif")
    print(f"network: {len(network)} routers, {len(network.links)} links\n")

    # --- static survivability (§8.1) ---------------------------------------
    report = analyze_survivability(network)
    print(f"articulation routers (single-failure partitions): "
          f"{report.articulation_routers}")
    print(f"bridge links: {[str(p) for p in report.bridge_links]}")
    for coupling in report.couplings:
        flag = "  <- single point of failure" if coupling.is_single_point_of_failure else ""
        print(
            f"instances {coupling.instance_a}<->{coupling.instance_b} "
            f"coupled by {sorted(coupling.routers)}{flag}"
        )
    print()

    # --- route loads (§3.1: "how many routes will a process handle?") -------
    baseline = RoutingSimulation(network).run()
    instances = compute_instances(network)
    print("per-process route loads (simulated):")
    for instance in instances:
        loads = [baseline.process_route_count(key) for key in instance.processes]
        print(f"  {instance.label}: max {max(loads)}, min {min(loads)} routes")
    print()

    # --- failure sweep ---------------------------------------------------------
    # Pick a destination LAN and see which single-router failures cut it off.
    spokes = [name for name in network.routers if "-r" in name]
    target_router = spokes[-1]
    target = (
        network.routers[target_router].config.interfaces["FastEthernet0/0"].prefix
    )
    destination = target.network + 1
    source = spokes[1]  # spokes[0] is the hub itself
    print(
        f"failure sweep: which single router failures cut {source} off from "
        f"{target} (on {target_router})?"
    )
    cut_by = []
    for victim in network.routers:
        if victim in (source, target_router):
            continue
        degraded = RoutingSimulation(network, failed_routers=[victim]).run()
        if not degraded.can_reach(source, destination):
            cut_by.append(victim)
    print(f"  disconnecting failures: {cut_by or 'none'}")
    print(
        "  (matches the articulation analysis: "
        f"{sorted(set(cut_by) & set(report.articulation_routers))} are "
        "articulation routers)"
    )

    if report.static_route_conflicts:
        print("\nstatic-route maintenance conflicts:")
        for prefix, routers in report.static_route_conflicts.items():
            print(f"  {prefix} is statically routed on {routers}")


if __name__ == "__main__":
    main()
