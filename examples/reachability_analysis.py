#!/usr/bin/env python3
"""Reachability analysis of a policy-restricted network (the net15 study).

Replays §6.2 of the paper: given only configuration files, determine which
external routes can enter the network, whether a default route is
permitted, whether the two sites can talk to each other, and which internal
blocks leak out — all without simulating per-router route selection.

Run:  python examples/reachability_analysis.py
"""

from repro import Network, ReachabilityAnalysis, RouteSet
from repro.net import Prefix
from repro.synth.templates.net15 import build_net15


def main() -> None:
    configs, spec = build_net15(scale=1.0)
    network = Network.from_configs(configs, name="net15")
    analysis = ReachabilityAnalysis(network)
    print(f"net15: {len(network)} routers, {len(analysis.instances)} instances\n")

    left_routers = set(spec.notes["left_ospf_routers"])
    ospf = [i for i in analysis.instances if i.protocol == "ospf"]
    left = next(i for i in ospf if i.routers & left_routers)
    right = next(i for i in ospf if i is not left)

    # --- what can get in? ---------------------------------------------------
    for label, instance in (("left site", left), ("right site", right)):
        admitted = analysis.external_routes_into(instance.instance_id)
        print(f"external routes admitted into the {label} ({instance.label}):")
        for atom in admitted:
            print(f"  {atom}")
        print(
            f"  default route admitted: "
            f"{'yes' if analysis.default_route_admitted(instance.instance_id) else 'no'}"
        )
        print()

    # --- can the sites talk? ---------------------------------------------------
    ab2 = Prefix(spec.notes["ab2"][0])
    ab4 = Prefix(spec.notes["ab4"][0])
    print(f"AB2 (left hosts):  {ab2}")
    print(f"AB4 (right hosts): {ab4}")
    print(f"AB2 -> AB4 routable: {analysis.can_send(ab2, ab4)}")
    print(f"AB4 -> AB2 routable: {analysis.can_send(ab4, ab2)}")
    print(f"two-way communication: {analysis.can_communicate(ab2, ab4)}\n")

    # --- the policy algebra behind it --------------------------------------------
    policies = {
        key: RouteSet([Prefix(p) for p in value])
        for key, value in spec.notes["policies"].items()
    }
    print("policy intersections (Table 2):")
    for a, b in (("A2", "A5"), ("A2", "A3"), ("A4", "A1")):
        inter = policies[a].intersection(policies[b])
        print(f"  {a} ∩ {b} = {'∅' if inter.is_empty() else inter}")
    print()

    # --- the security observation ---------------------------------------------
    announced = analysis.routes_announced_externally()
    print("internal routes announced to the public ASs:")
    for atom in announced:
        print(f"  {atom}")
    print(
        "\n=> packets from the Internet may reach these hosts, but the hosts "
        "can never respond: no route back out survives the ingress filters."
    )


if __name__ == "__main__":
    main()
