"""repro — reverse engineering of routing designs from router configurations.

A full reimplementation of the system behind Maltz et al., *Routing Design
in Operational Networks: A Look from the Inside* (SIGCOMM 2004): a Cisco
IOS configuration parser, a structure-preserving anonymizer, the four
routing-design abstractions (routing process graphs, routing instances,
route pathway graphs, address space structure), the downstream analyses
(IGP/EGP roles, packet-filter placement, design classification,
reachability), a control-plane simulator, and a synthetic corpus generator
standing in for the paper's proprietary configuration dumps.

Quickstart::

    from repro import Network, compute_instances, classify_design
    net = Network.from_directory("configs/net5")
    instances = compute_instances(net)
    print(classify_design(net, instances).design)
"""

from repro.anonymize import Anonymizer
from repro.core import (
    ReachabilityAnalysis,
    RouteSet,
    RoutingInstance,
    build_instance_graph,
    build_process_graph,
    classify_design,
    classify_roles,
    compute_instances,
    extract_address_space,
    route_pathway,
)
from repro.ios import RouterConfig, parse_config, serialize_config
from repro.model import Network, Router
from repro.net import IPv4Address, Prefix
from repro.routing import RoutingSimulation

__version__ = "1.0.0"

__all__ = [
    "Anonymizer",
    "IPv4Address",
    "Network",
    "Prefix",
    "ReachabilityAnalysis",
    "RouteSet",
    "Router",
    "RouterConfig",
    "RoutingInstance",
    "RoutingSimulation",
    "build_instance_graph",
    "build_process_graph",
    "classify_design",
    "classify_roles",
    "compute_instances",
    "extract_address_space",
    "parse_config",
    "route_pathway",
    "serialize_config",
]
