"""NetCloak-style decoy routers for shared archives.

A shared archive's router count is itself information (§3's Table 1 was
built from exactly that).  Decoy expansion plants a synthesized network
component — built by the same :mod:`repro.synth` templates the test
corpus uses, so decoys are statistically unremarkable — into the shared
archive.  Three properties make a decoy set admissible:

* **Invisible to analysis.**  The decoy component shares no subnet, no
  router name, and no routing instance with the real network, so every
  analysis stage (instances, pathways, address trees, survivability)
  computes the same result on the real routers with or without decoys.
  :func:`repro.share.pipeline` *proves* this per candidate via the salt
  probe; the certify gate re-proves it end to end.
* **Strippable.**  The trusted-party mapping records each decoy file and
  router, so the recipient of the mapping can reconstruct the exact real
  archive.
* **Role-camouflaged.**  Each decoy is stamped (in the mapping, for the
  trusted party's audit) with its role signature and the compression
  equivalence class it joins in the combined network — decoys that all
  land in a fresh singleton class would advertise themselves.

Decoy content is anonymized with a *salted* key (``key:decoy:<salt>``):
bumping the salt re-rolls names and addresses without touching the real
side, which is what the admissibility probe iterates on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from repro.anonymize import Anonymizer

#: Template name → (builder, minimum router count the builder accepts).
_TEMPLATE_MINIMUMS = {
    "enterprise": 2,
    "pod": 14,
    "mixed": 3,
}

DECOY_TEMPLATES = tuple(sorted(_TEMPLATE_MINIMUMS))


@dataclass
class DecoySet:
    """One synthesized, salted, anonymized decoy component."""

    #: The salt that produced this candidate (what the probe iterates).
    salt: int
    #: Template the component was built from.
    template: str
    #: Shared-side file name → anonymized config text.
    files: Dict[str, str] = field(default_factory=dict)
    #: Shared-side (anonymized) router names.
    routers: Tuple[str, ...] = ()
    #: Router → role/equivalence stamp, filled by the pipeline once the
    #: combined network's compression plan is known.
    role_stamps: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "salt": self.salt,
            "template": self.template,
            "count": len(self.routers),
            "files": sorted(self.files),
            "routers": sorted(self.routers),
            "role_stamps": dict(sorted(self.role_stamps.items())),
        }


def _builder(template: str) -> Callable:
    # Deferred imports: synth templates pull in serializers the plain
    # anonymize path never needs.
    if template == "enterprise":
        from repro.synth.templates.enterprise import build_enterprise  # noqa: PLC0415

        return lambda name, index, n: build_enterprise(name, index, n_routers=n)
    if template == "pod":
        from repro.synth.templates.pods import build_pods  # noqa: PLC0415

        return lambda name, index, n: build_pods(name, index, n_routers=n)
    if template == "mixed":
        from repro.synth.templates.mixed import build_mixed  # noqa: PLC0415

        return lambda name, index, n: build_mixed(name, index, n_routers=n)
    raise ValueError(
        f"unknown decoy template {template!r} (choose from {', '.join(DECOY_TEMPLATES)})"
    )


def derive_decoy_index(key: bytes, archive: str, salt: int) -> int:
    """A deterministic per-archive template index (address plan + AS seed)."""
    digest = hashlib.sha256(
        key + b":decoy-seed:" + archive.encode("utf-8", "replace") + str(salt).encode()
    ).digest()
    return int.from_bytes(digest[:4], "big")


def synthesize_decoys(
    archive: str,
    key: bytes,
    salt: int,
    count: int,
    template: str = "enterprise",
) -> DecoySet:
    """Build and anonymize one decoy component candidate.

    *count* is approximate: templates have structural minimums (a pod
    fabric needs cores, borders, and one full pod), so the actual router
    count is read back from the result.  The component is anonymized with
    the salted key, so its hostnames, file names, and addresses are
    indistinguishable from the real shared files — and re-roll with the
    salt, which is exactly the knob the admissibility probe turns.
    """
    build = _builder(template)
    minimum = _TEMPLATE_MINIMUMS[template]
    index = derive_decoy_index(key, archive, salt)
    # Synth templates key the address plan and local AS off the index;
    # a 3-digit slice keeps the plan pools in their supported range.
    configs, _spec = build("decoy", index % 1000, max(count, minimum))
    anonymizer = Anonymizer(key=key + b":decoy:" + str(salt).encode("ascii"))
    files: Dict[str, str] = {}
    routers = []
    for router_name in sorted(configs):
        pseudo = anonymizer.hash_name(router_name)
        files[pseudo + ".cfg"] = anonymizer.anonymize_config(configs[router_name])
        routers.append(pseudo)
    return DecoySet(
        salt=salt, template=template, files=files, routers=tuple(routers)
    )


__all__ = ["DECOY_TEMPLATES", "DecoySet", "derive_decoy_index", "synthesize_decoys"]
