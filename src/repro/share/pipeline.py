"""The shareable-corpus pipeline.

``share_corpus`` turns a corpus directory (one subdirectory per network,
the paper's layout, or a flat directory forming one archive) into a
shareable copy: every file content-anonymized with one per-run key
(§4.1), every file *name* replaced by the pseudo-name of its stem (a real
hostname in a file name leaks exactly what the content scrub removed),
and — optionally — each archive expanded with NetCloak-style decoy
routers.  What comes out is the archive tree plus a
:class:`~repro.share.mapping.ShareMapping` for the trusted party, never
written inside the archive tree.

Decoy admissibility is decided by a salt probe: a decoy component is
acceptable only if, in the combined network, it creates no router-name
collision, no link touching both sides, no routing instance mixing real
and decoy routers, and no recovered address block built from subnets of
both sides.  Those four conditions are exactly what makes every analysis
stage decomposable into "real part" + "decoy part" — the certify gate
(:mod:`repro.share.certify`) then proves the real part unchanged end to
end.  Candidates that fail are re-rolled with the next salt (new
addresses, new names, new AS numbers) up to ``max_salt_probes`` times.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.anonymize import Anonymizer
from repro.core.address_space import extract_address_space, mentioned_subnets
from repro.core.instances import compute_instances
from repro.model.network import Network
from repro.share.decoys import DECOY_TEMPLATES, DecoySet, synthesize_decoys
from repro.share.mapping import ShareMapping


class ShareError(RuntimeError):
    """The corpus cannot be shared as requested (fail closed, never emit
    an archive whose invariance is in doubt)."""


@dataclass
class ShareOptions:
    """Knobs of one share run."""

    key: bytes
    decoys: int = 0
    decoy_template: str = "enterprise"
    max_salt_probes: int = 16

    def __post_init__(self) -> None:
        if self.decoys and self.decoy_template not in DECOY_TEMPLATES:
            raise ShareError(
                f"unknown decoy template {self.decoy_template!r} "
                f"(choose from {', '.join(DECOY_TEMPLATES)})"
            )
        if self.max_salt_probes < 1:
            raise ShareError("max_salt_probes must be at least 1")


@dataclass
class SharedArchive:
    """One archive's share record."""

    original: str
    path: str
    shared: Optional[str]  # output subdirectory name; None for a flat share
    files: Dict[str, str] = field(default_factory=dict)
    skipped: List[str] = field(default_factory=list)
    decoys: Optional[DecoySet] = None

    def to_dict(self) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "shared": self.shared,
            "path": self.path,
            "files": dict(sorted(self.files.items())),
        }
        if self.skipped:
            entry["skipped"] = sorted(self.skipped)
        if self.decoys is not None:
            entry["decoys"] = self.decoys.to_dict()
        return entry


@dataclass
class ShareResult:
    """What one ``share_corpus`` run produced."""

    outdir: str
    mapping: ShareMapping
    archives: List[SharedArchive] = field(default_factory=list)
    ignored: List[str] = field(default_factory=list)

    def summary(self) -> Dict[str, object]:
        """The run-manifest ``share`` block (identity-free by design)."""
        return {
            "archives": len(self.archives),
            "files": sum(len(a.files) for a in self.archives),
            "decoy_routers": sum(
                len(a.decoys.routers) for a in self.archives if a.decoys
            ),
            "decoy_template": next(
                (a.decoys.template for a in self.archives if a.decoys), None
            ),
            "salts": {
                a.shared or ".": a.decoys.salt
                for a in self.archives
                if a.decoys is not None
            },
        }


def discover_archives(root: str) -> Tuple[List[str], List[str]]:
    """``(archive paths, ignored loose files)`` — the corpus layout rule.

    Subdirectories are the archives; a flat directory is one archive; in a
    mixed directory the loose files are ignored (and reported), matching
    ``repro corpus``.
    """
    entries = sorted(os.listdir(root))
    subdirs = [
        os.path.join(root, entry)
        for entry in entries
        if os.path.isdir(os.path.join(root, entry))
    ]
    if not subdirs:
        return [root], []
    loose = [entry for entry in entries if os.path.isfile(os.path.join(root, entry))]
    return subdirs, loose


def _read_text_files(path: str) -> Tuple[Dict[str, str], List[str]]:
    """``(file name → text, skipped binary files)`` for one archive."""
    texts: Dict[str, str] = {}
    skipped: List[str] = []
    for entry in sorted(os.listdir(path)):
        full = os.path.join(path, entry)
        if not os.path.isfile(full):
            continue
        with open(full, "rb") as handle:
            raw = handle.read()
        if b"\x00" in raw:
            skipped.append(entry)
            continue
        texts[entry] = raw.decode("utf-8", "replace")
    return texts, skipped


def _shared_file_name(anonymizer: Anonymizer, file_name: str) -> str:
    """Pseudo-name for an output file: hash the stem, keep the extension.

    The stem is hashed with the same ``hash_name`` that scrubbed the
    content, so a file named after its hostname gets *the same*
    pseudo-name as the hostname token inside it — the shared archive
    stays self-consistent without ever revealing that they matched.
    """
    stem, ext = os.path.splitext(file_name)
    return anonymizer.hash_name(stem) + ext


def _probe_networks(
    real_files: Dict[str, str], decoy_set: DecoySet
) -> Tuple[Network, Network, Network]:
    """Parse the real, decoy, and combined shared networks for the probe.

    Decoy entries are keyed by router name (their file stems *are* their
    anonymized hostnames); real entries are keyed by shared file name.
    Texts are parsed once — the combined network reuses the parsed
    models.
    """
    real_net = Network.from_configs(real_files, name="real", on_error="skip-block")
    decoy_net = Network.from_configs(
        {os.path.splitext(f)[0]: text for f, text in decoy_set.files.items()},
        name="decoy",
        on_error="skip-block",
    )
    combined = Network.from_configs(
        {
            **{name: router.config for name, router in real_net.routers.items()},
            **{name: router.config for name, router in decoy_net.routers.items()},
        },
        name="combined",
        on_error="skip-block",
    )
    return real_net, decoy_net, combined


def check_decoy_admissible(
    real_files: Dict[str, str], decoy_set: DecoySet
) -> Optional[str]:
    """``None`` if the decoy component is admissible, else the reason.

    The four conditions jointly guarantee that instances, pathways,
    address trees, and survivability all decompose into independent real
    and decoy parts (the decoy component is a disconnected subgraph with
    a disjoint address plan), so stripping decoy-attributed results
    recovers exactly the real-only analysis.
    """
    decoy_names = set(decoy_set.routers)
    decoy_net_expected = len(decoy_names)

    real_net, decoy_net, combined = _probe_networks(real_files, decoy_set)

    if (
        len(decoy_net) != decoy_net_expected
        or decoy_net.quarantined
        or decoy_net.diagnostics.exit_code() != 0
    ):
        # Synthesized-then-anonymized configs must parse without a single
        # warning or error (info-level "unmodeled command" chatter is
        # normal), or the candidate is rejected.
        return "decoy component did not parse cleanly"

    # 1. No name collision with real routers (hostnames and file stems —
    #    from_directory names routers by either).
    real_names = set()
    for key, router in real_net.routers.items():
        stem = os.path.splitext(key)[0]
        real_names.add(stem)
        real_names.add(router.config.hostname or stem)
    if decoy_names & real_names:
        return "router name collision between real and decoy routers"
    if set(real_net.routers) & set(decoy_net.routers):
        return "configuration key collision between real and decoy routers"

    # 2. No link touches both sides (a shared subnet would fake a link).
    for link in combined.links:
        members = set(link.routers)
        if members & decoy_names and members - decoy_names:
            return f"link on {link.subnet} joins real and decoy routers"

    # 3. No routing instance mixes real and decoy routers (a shared
    #    private ASN or IGP adjacency would merge instances).
    for instance in compute_instances(combined):
        members = instance.routers
        if members & decoy_names and members - decoy_names:
            return (
                f"instance {instance.protocol}:{instance.instance_id} "
                f"mixes real and decoy routers"
            )

    # 4. Address blocks separate: no recovered block joins subnets of
    #    both sides, and the real-side blocks are exactly the blocks of
    #    the real-only network.
    real_subnets = set(mentioned_subnets(real_net))
    decoy_subnets = set(mentioned_subnets(decoy_net))
    if real_subnets & decoy_subnets:
        return "real and decoy configurations mention a common subnet"
    real_side = []
    for block in extract_address_space(combined):
        subnets = set(block.subnets)
        if subnets & real_subnets and subnets & decoy_subnets:
            return f"address block {block.prefix} joins real and decoy subnets"
        if subnets & real_subnets:
            real_side.append((block.prefix, tuple(sorted(map(str, block.subnets)))))
    real_only = [
        (block.prefix, tuple(sorted(map(str, block.subnets))))
        for block in extract_address_space(real_net)
    ]
    if sorted(real_side, key=repr) != sorted(real_only, key=repr):
        return "decoy expansion perturbs the real address tree"
    return None


def _stamp_roles(real_files: Dict[str, str], decoy_set: DecoySet) -> None:
    """Record each decoy's equivalence class in the combined network.

    Trusted-party metadata only (it names no real router): the audit
    trail showing whether decoys blend into existing role classes or sit
    in fresh singleton classes of their own.
    """
    from repro.compress import build_compression_plan  # noqa: PLC0415

    _real, _decoy, combined = _probe_networks(real_files, decoy_set)
    plan = build_compression_plan(combined)
    decoy_names = set(decoy_set.routers)
    stamps: Dict[str, str] = {}
    for cls in plan.classes:
        members = set(cls.members)
        blended = bool(members - decoy_names)
        for router in members & decoy_names:
            stamps[router] = (
                f"{cls.role}/c{cls.class_id}" + ("" if blended else "/decoy-only")
            )
    decoy_set.role_stamps = stamps


def _expand_with_decoys(
    archive_name: str, shared_files: Dict[str, str], options: ShareOptions
) -> DecoySet:
    """Probe salts until an admissible decoy component is found."""
    reasons = []
    for salt in range(options.max_salt_probes):
        candidate = synthesize_decoys(
            archive_name,
            options.key,
            salt,
            options.decoys,
            template=options.decoy_template,
        )
        reason = check_decoy_admissible(shared_files, candidate)
        if reason is None:
            _stamp_roles(shared_files, candidate)
            return candidate
        reasons.append(f"salt {salt}: {reason}")
    raise ShareError(
        f"no admissible decoy component for archive {archive_name!r} after "
        f"{options.max_salt_probes} salt probes:\n  " + "\n  ".join(reasons)
    )


def share_corpus(root: str, outdir: str, options: ShareOptions) -> ShareResult:
    """Anonymize (and optionally decoy-expand) a corpus into *outdir*.

    One :class:`Anonymizer` spans the whole corpus, so names, addresses,
    and AS numbers shared across archives anonymize consistently — the
    cross-network comparisons of §5–§7 survive sharing.
    """
    if not os.path.isdir(root):
        raise ShareError(f"{root} is not a directory")
    archives, ignored = discover_archives(root)
    flat = archives == [root]
    anonymizer = Anonymizer(key=options.key)
    result = ShareResult(
        outdir=outdir,
        mapping=ShareMapping(key=options.key),
        ignored=list(ignored),
    )
    os.makedirs(outdir, exist_ok=True)

    for path in archives:
        archive_name = os.path.basename(os.path.normpath(path))
        texts, skipped = _read_text_files(path)
        shared_files: Dict[str, str] = {}
        record = SharedArchive(
            original=archive_name,
            path=os.path.abspath(path),
            shared=None if flat else anonymizer.hash_name(archive_name),
            skipped=skipped,
        )
        for file_name in sorted(texts):
            out_name = _shared_file_name(anonymizer, file_name)
            if out_name in shared_files:
                raise ShareError(
                    f"pseudo-name collision on {out_name!r} in archive "
                    f"{archive_name!r} (two files share a stem?)"
                )
            shared_files[out_name] = anonymizer.anonymize_config(texts[file_name])
            record.files[file_name] = out_name

        if options.decoys > 0:
            decoy_set = _expand_with_decoys(archive_name, shared_files, options)
            overlap = set(decoy_set.files) & set(shared_files)
            if overlap:
                raise ShareError(
                    f"decoy file name collision in {archive_name!r}: {sorted(overlap)}"
                )
            shared_files.update(decoy_set.files)
            record.decoys = decoy_set

        target = outdir if flat else os.path.join(outdir, record.shared)
        os.makedirs(target, exist_ok=True)
        for out_name, text in shared_files.items():
            with open(os.path.join(target, out_name), "w") as handle:
                handle.write(text)

        result.archives.append(record)
        result.mapping.archives[archive_name] = record.to_dict()

    exported = anonymizer.export_mapping()
    result.mapping.names = exported["names"]
    result.mapping.asns = exported["asns"]
    result.mapping.addresses = exported["addresses"]
    return result


__all__ = [
    "ShareError",
    "ShareOptions",
    "SharedArchive",
    "ShareResult",
    "check_decoy_admissible",
    "discover_archives",
    "share_corpus",
]
