"""The trusted-party mapping file (§4's single-blind methodology).

The paper's corpus worked because a few trusted group members kept the
identity of each network — and nothing identifying traveled with the
anonymized files.  :class:`ShareMapping` is that artifact for the
shareable-corpus pipeline: the anonymization key, every name/ASN/address
rewrite, the file renames, and which routers of the shared archive are
decoys.  It is written strictly *outside* the shared output directory
(:func:`ensure_mapping_outside` enforces it), because a mapping that
ships with the archive undoes the anonymization.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict

SHARE_MAPPING_SCHEMA = "repro-share-mapping/1"


@dataclass
class ShareMapping:
    """Everything the trusted party keeps about one share run."""

    #: The anonymization key (hex-decodable bytes); with it, the full
    #: address permutation is reproducible — it never enters the archive.
    key: bytes
    #: Original name → pseudo-name (hostnames, route maps, descriptions).
    names: Dict[str, str] = field(default_factory=dict)
    #: Original public ASN → pseudo-ASN (string keyed, JSON-friendly).
    asns: Dict[str, str] = field(default_factory=dict)
    #: Original address → anonymized address (dotted quads).
    addresses: Dict[str, str] = field(default_factory=dict)
    #: Original archive name → its share record: ``shared`` (output
    #: directory name, ``None`` for a flat single-archive share),
    #: ``path`` (original location), ``files`` (original file →
    #: shared file), and ``decoys`` (see :mod:`repro.share.decoys`).
    archives: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def decoy_routers(self, archive: str) -> frozenset:
        """The decoy router names planted into *archive*'s shared form."""
        entry = self.archives.get(archive) or {}
        decoys = entry.get("decoys") or {}
        return frozenset(decoys.get("routers") or ())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SHARE_MAPPING_SCHEMA,
            "key": self.key.hex(),
            "names": dict(sorted(self.names.items())),
            "asns": dict(sorted(self.asns.items())),
            "addresses": dict(sorted(self.addresses.items())),
            "archives": {
                name: self.archives[name] for name in sorted(self.archives)
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ShareMapping":
        schema = payload.get("schema")
        if schema != SHARE_MAPPING_SCHEMA:
            raise ValueError(
                f"not a share mapping (schema {schema!r}, "
                f"wanted {SHARE_MAPPING_SCHEMA!r})"
            )
        return cls(
            key=bytes.fromhex(payload["key"]),
            names=dict(payload.get("names") or {}),
            asns=dict(payload.get("asns") or {}),
            addresses=dict(payload.get("addresses") or {}),
            archives=dict(payload.get("archives") or {}),
        )

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")

    @classmethod
    def read(cls, path: str) -> "ShareMapping":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


def default_mapping_path(outdir: str) -> str:
    """Where the mapping lands when the caller does not say: next to the
    output directory, never inside it."""
    return os.path.normpath(outdir).rstrip(os.sep) + ".mapping.json"


def ensure_mapping_outside(outdir: str, mapping_path: str) -> None:
    """Refuse a mapping destination inside the shareable output tree."""
    out_real = os.path.realpath(outdir)
    mapping_real = os.path.realpath(os.path.dirname(mapping_path) or ".")
    if mapping_real == out_real or mapping_real.startswith(out_real + os.sep):
        raise ValueError(
            f"mapping file {mapping_path!r} would land inside the shared "
            f"output directory {outdir!r}; the trusted-party mapping must "
            f"never travel with the archive"
        )


__all__ = [
    "SHARE_MAPPING_SCHEMA",
    "ShareMapping",
    "default_mapping_path",
    "ensure_mapping_outside",
]
