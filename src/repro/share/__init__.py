"""Shareable-corpus pipeline: anonymize, decoy-expand, certify (§4.1).

The paper could study 31 production networks only because configurations
could be shared safely: anonymized single-blind, with a few trusted
group members holding the mapping back to reality.  This package is that
workflow as a certified pipeline:

* :mod:`repro.share.pipeline` — anonymize a corpus (content *and* file
  names) with one per-run key and optionally expand each archive with
  NetCloak-style decoy routers, admissibility-checked by a salt probe;
* :mod:`repro.share.mapping` — the trusted-party file (key, renames,
  decoy inventory), kept strictly outside the shared tree;
* :mod:`repro.share.decoys` — decoy synthesis from the
  :mod:`repro.synth` templates, role-stamped via :mod:`repro.compress`;
* :mod:`repro.share.certify` — the invariance gate: full-executor
  analysis of both corpora, decoy-stripped, compared isomorphic under
  the mapping (``repro share --certify``).
"""

from repro.share.certify import (
    CERTIFIED_SECTIONS,
    ArchiveCertificate,
    ShareCertification,
    analysis_summary,
    certify_archive,
    certify_share,
)
from repro.share.decoys import DECOY_TEMPLATES, DecoySet, synthesize_decoys
from repro.share.mapping import (
    SHARE_MAPPING_SCHEMA,
    ShareMapping,
    default_mapping_path,
    ensure_mapping_outside,
)
from repro.share.pipeline import (
    ShareError,
    ShareOptions,
    SharedArchive,
    ShareResult,
    check_decoy_admissible,
    discover_archives,
    share_corpus,
)

__all__ = [
    "CERTIFIED_SECTIONS",
    "DECOY_TEMPLATES",
    "SHARE_MAPPING_SCHEMA",
    "ArchiveCertificate",
    "DecoySet",
    "ShareCertification",
    "ShareError",
    "ShareMapping",
    "ShareOptions",
    "ShareResult",
    "SharedArchive",
    "analysis_summary",
    "certify_archive",
    "certify_share",
    "check_decoy_admissible",
    "default_mapping_path",
    "discover_archives",
    "ensure_mapping_outside",
    "share_corpus",
    "synthesize_decoys",
]
