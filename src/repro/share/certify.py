"""The analysis-invariance certification gate.

A shared corpus is only trustworthy if every analysis result computed
from it is the result the original would have given — that is the whole
premise of sharing anonymized configurations (§4.1) and of the decoy
expansion.  ``certify_share`` proves it the hard way: load both corpora,
run the full analysis executor on each archive pair, summarize
instances, pathways, address trees, and survivability on both sides,
strip decoy-attributed results from the shared side, and compare the
two summaries under :func:`repro.report.normalize_shared_payload` (the
original side renamed through the trusted-party mapping, both sides
canonicalized).

The gate is fail-closed by construction: decoy filtering only removes
results *entirely* attributable to decoy routers, so any artifact that
mixes real and decoy state — a fake link, a merged instance, a joined
address block — survives filtering, lands in the comparison, and
diverges.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional

from repro.core.address_space import extract_address_space, mentioned_subnets
from repro.core.instances import build_instance_graph, compute_instances
from repro.core.pathways import ROUTER_RIB, route_pathway
from repro.core.process_graph import EXTERNAL_NODE
from repro.core.survivability import analyze_survivability
from repro.model.network import Network
from repro.report import normalize_shared_payload
from repro.share.mapping import ShareMapping

#: The sections the certificate compares, in report order.
CERTIFIED_SECTIONS = (
    "stages",
    "instances",
    "pathways",
    "address_tree",
    "survivability",
)


def _node_key(node: Any) -> str:
    """Stable, label-free pathway node keys (labels embed names and ids)."""
    if node == EXTERNAL_NODE:
        return "external"
    if node == ROUTER_RIB:
        return "rib"
    if isinstance(node, int):
        return f"i:{node}"
    return f"?:{node!r}"


def _decoy_subnets(network: Network, decoy_routers: FrozenSet[str]):
    if not decoy_routers:
        return frozenset()
    members = {
        name: router.config
        for name, router in network.routers.items()
        if name in decoy_routers
    }
    if not members:
        return frozenset()
    decoy_net = Network.from_configs(members, name="decoys", on_error="skip-block")
    return frozenset(mentioned_subnets(decoy_net))


def analysis_summary(
    network: Network,
    decoy_routers: FrozenSet[str] = frozenset(),
    executor: Optional[Any] = None,
    archive: str = "archive",
) -> Dict[str, Any]:
    """The certified analysis snapshot of one network.

    Runs the full analysis executor (so stage statuses — including
    degraded-mode behavior on faulted corpora — are part of the
    certificate), then summarizes the four §3 result families with every
    decoy-only artifact stripped.  Mixed real/decoy artifacts are *kept*:
    they are evidence of a bad decoy set and must fail certification.
    """
    from repro.exec import AnalysisExecutor, ExecutorConfig  # noqa: PLC0415

    if executor is None:
        executor = AnalysisExecutor(ExecutorConfig())
    execution = executor.run_archive(archive, network)
    stages = {result.stage: result.status for result in execution.results}

    instances = compute_instances(network)
    graph = build_instance_graph(network, instances)

    instance_entries = []
    for instance in instances:
        if instance.routers and instance.routers <= decoy_routers:
            continue
        processes = sorted(
            ([key[0], key[1], key[2]] for key in instance.processes), key=repr
        )
        instance_entries.append(
            {
                "id": f"i:{instance.instance_id}",
                "protocol": instance.protocol,
                "processes": processes,
            }
        )

    # Decoy-only instances are strippable from real pathways: the
    # admissibility conditions leave the external-world sentinel as the
    # *only* junction between the two sides, so a real router's pathway
    # can reach a decoy instance solely through ``external`` — never
    # through a link, adjacency, or redistribution.  An instance mixing
    # real and decoy routers is not decoy-only and stays (fail closed).
    decoy_instance_ids = {
        instance.instance_id
        for instance in instances
        if instance.routers and instance.routers <= decoy_routers
    }

    def _is_decoy_node(node: Any) -> bool:
        return isinstance(node, int) and node in decoy_instance_ids

    pathways: Dict[str, Any] = {}
    for router in sorted(network.routers):
        if router in decoy_routers:
            continue
        pathway = route_pathway(network, router, instances=instances, instance_graph=graph)
        pathways[router] = {
            "nodes": sorted(
                (_node_key(n) for n in pathway.graph.nodes if not _is_decoy_node(n)),
                key=repr,
            ),
            "edges": sorted(
                [_node_key(a), _node_key(b), data.get("kind")]
                for a, b, data in pathway.graph.edges(data=True)
                if not (_is_decoy_node(a) or _is_decoy_node(b))
            ),
            "layers": {
                _node_key(node): depth
                for node, depth in pathway.layers.items()
                if not _is_decoy_node(node)
            },
            "policies": sorted(
                [_node_key(src), _node_key(dst), route_map]
                for src, dst, route_map in pathway.policies
                if not (_is_decoy_node(src) or _is_decoy_node(dst))
            ),
            "external_depth": pathway.external_depth(),
            "truncated": pathway.truncated,
        }

    decoy_subnets = _decoy_subnets(network, decoy_routers)
    address_tree = []
    for block in extract_address_space(network):
        subnets = set(block.subnets)
        if subnets and subnets <= decoy_subnets:
            continue
        address_tree.append(
            {
                "prefix": str(block.prefix),
                "subnets": sorted(str(subnet) for subnet in block.subnets),
            }
        )

    report = analyze_survivability(network, instances=instances)
    decoy_link_subnets = {
        link.subnet
        for link in network.links
        if link.routers and set(link.routers) <= decoy_routers
    }
    survivability = {
        "articulation_routers": sorted(
            router
            for router in report.articulation_routers
            if router not in decoy_routers
        ),
        "bridge_links": sorted(
            str(link) for link in report.bridge_links if link not in decoy_link_subnets
        ),
        "couplings": [
            {
                "a": f"i:{coupling.instance_a}",
                "b": f"i:{coupling.instance_b}",
                "routers": sorted(coupling.routers),
                "mechanisms": sorted(coupling.mechanisms),
            }
            for coupling in report.couplings
            if not (coupling.routers and coupling.routers <= decoy_routers)
        ],
        "static_route_conflicts": {
            str(prefix): sorted(routers)
            for prefix, routers in report.static_route_conflicts.items()
            if not (routers and set(routers) <= decoy_routers)
        },
        "truncated": report.truncated,
    }

    return {
        "stages": stages,
        "instances": instance_entries,
        "pathways": pathways,
        "address_tree": address_tree,
        "survivability": survivability,
    }


@dataclass
class ArchiveCertificate:
    """The per-archive verdict, with the normalized evidence on divergence."""

    archive: str
    sections: Dict[str, bool] = field(default_factory=dict)
    diff: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(self.sections.values())

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "ok": self.ok,
            "sections": dict(self.sections),
        }
        if self.diff:
            entry["diff"] = self.diff
        return entry


@dataclass
class ShareCertification:
    """The full corpus certificate."""

    archives: List[ArchiveCertificate] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(archive.ok for archive in self.archives)

    def divergent_sections(self) -> List[str]:
        return sorted(
            {
                f"{archive.archive}:{section}"
                for archive in self.archives
                for section, matched in archive.sections.items()
                if not matched
            }
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "archives": {
                archive.archive: archive.to_dict() for archive in self.archives
            },
        }


def certify_archive(
    original: Network,
    shared: Network,
    mapping: ShareMapping,
    decoy_routers: FrozenSet[str],
    archive: str = "archive",
) -> ArchiveCertificate:
    """Compare one original/shared network pair under the mapping."""
    context = {
        "names": mapping.names,
        "asns": mapping.asns,
        "key": mapping.key,
    }
    original_summary = analysis_summary(original, frozenset(), archive=archive)
    shared_summary = analysis_summary(shared, decoy_routers, archive=archive)
    normalized_original = normalize_shared_payload(original_summary, mapping=context)
    normalized_shared = normalize_shared_payload(shared_summary)
    certificate = ArchiveCertificate(archive=archive)
    for section in CERTIFIED_SECTIONS:
        left = normalized_original.get(section)
        right = normalized_shared.get(section)
        matched = left == right
        certificate.sections[section] = matched
        if not matched:
            certificate.diff[section] = {"original": left, "shared": right}
    return certificate


def certify_share(
    root: str,
    outdir: str,
    mapping: ShareMapping,
    mode: str = "lenient",
) -> ShareCertification:
    """Certify a whole share run: every archive of *root* against *outdir*.

    Archives are located through the mapping (the only place the
    original ↔ shared correspondence exists).  ``mode`` mirrors the
    ingestion modes of the rest of the CLI; both sides always load with
    the same policy, so parse-fault handling cannot differ between them.
    """
    on_error = "strict" if mode == "strict" else "skip-block"
    certification = ShareCertification()
    for archive_name in sorted(mapping.archives):
        entry = mapping.archives[archive_name]
        original_path = entry["path"]
        shared_name = entry.get("shared")
        shared_path = outdir if shared_name is None else os.path.join(outdir, shared_name)
        original = Network.from_directory(original_path, on_error=on_error)
        shared = Network.from_directory(shared_path, on_error=on_error)
        certification.archives.append(
            certify_archive(
                original,
                shared,
                mapping,
                mapping.decoy_routers(archive_name),
                archive=archive_name,
            )
        )
    return certification


__all__ = [
    "CERTIFIED_SECTIONS",
    "ArchiveCertificate",
    "ShareCertification",
    "analysis_summary",
    "certify_archive",
    "certify_share",
]
