"""The `Network`: all routers of one administrative domain, assembled.

This is the central facade of the model layer.  It is constructed from a
mapping of router name → configuration (text or parsed), and lazily derives:

* the interface/address indexes,
* logical links and external-facing interfaces (§2.1, §5.2 heuristics),
* routing processes with covered interfaces,
* IGP adjacencies and BGP sessions (§2.2 adjacency rules).
"""

from __future__ import annotations

import hashlib
import os
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple, Union

from repro.diag import PHASE_BUILD, PHASE_READ, DiagnosticSink
from repro.ingest.cache import ParseCache
from repro.ingest.parallel import (
    ON_ERROR_POLICIES,
    ParseTask,
    WorkerBudget,
    parse_many,
)
from repro.ingest.timer import StageRecord, StageTimer
from repro.obs.logging import get_logger
from repro.obs.manifest import (
    DISPOSITION_CACHED,
    DISPOSITION_PARSED,
    DISPOSITION_QUARANTINED,
    FileRecord,
)
from repro.obs.metrics import get_registry

_log = get_logger("model")
from repro.ios.config import InterfaceConfig, RouterConfig
from repro.model.links import Link, infer_links
from repro.model.processes import (
    ProcessKey,
    RoutingProcess,
    covered_interface_names,
    process_key,
)
from repro.net import IPv4Address, Prefix, summarize_prefixes


@dataclass
class Router:
    """One router: a name plus its parsed configuration.

    ``source`` is the archive file the configuration came from, when known
    — diagnostics use it to point back at the offending file.
    """

    name: str
    config: RouterConfig
    source: Optional[str] = None

    @property
    def interfaces(self) -> Dict[str, InterfaceConfig]:
        return self.config.interfaces


@dataclass
class BgpSession:
    """One configured BGP peering, resolved against the network.

    ``remote_key`` is the peer's process key when the neighbor address
    belongs to a router in the data set; ``None`` means the peer is outside
    the network (or its configuration is missing from the data set).
    """

    local: ProcessKey
    neighbor_address: IPv4Address
    remote_as: Optional[int]
    remote_key: Optional[ProcessKey] = None
    remote_router: Optional[str] = None

    @property
    def local_as(self) -> int:
        return self.local[2]

    @property
    def is_ebgp(self) -> bool:
        """EBGP = the configured remote AS differs from the local AS."""
        return self.remote_as is not None and self.remote_as != self.local_as

    @property
    def is_resolved(self) -> bool:
        return self.remote_key is not None

    @property
    def crosses_network_boundary(self) -> bool:
        """True when the peer is not part of this network's data set."""
        return self.remote_key is None


def _read_config_text(
    full_path: str, entry: str, sink: DiagnosticSink
) -> Tuple[Optional[str], bytes]:
    """Read a config file, skipping binary/undecodable content.

    Collection scripts leave tarballs, core dumps, and editor droppings in
    real archives; those must not abort the run.  NUL bytes or a high
    replacement-character ratio after a lossy decode mark a file as
    non-text: it is skipped with a warning diagnostic.

    Returns ``(text, raw_bytes)``; text is ``None`` for non-text files.
    The raw bytes feed the parse cache's content hash.
    """
    with open(full_path, "rb") as handle:
        raw = handle.read()
    if b"\0" in raw[:8192]:
        sink.warning(
            PHASE_READ, "skipped binary file (NUL bytes)", file=entry
        )
        return None, raw
    text = raw.decode("utf-8", errors="replace")
    if text:
        bad = text.count("�")
        if bad and bad / len(text) > 0.05:
            sink.warning(
                PHASE_READ,
                f"skipped undecodable file ({bad} invalid byte(s))",
                file=entry,
            )
            return None, raw
        if bad:
            sink.info(
                PHASE_READ,
                f"replaced {bad} undecodable byte(s)",
                file=entry,
            )
    return text, raw


def _file_record(
    path: str, data: bytes, disposition: str, router: Optional[str] = None
) -> FileRecord:
    return FileRecord(
        path=path,
        size=len(data),
        sha256=hashlib.sha256(data).hexdigest(),
        disposition=disposition,
        router=router,
    )


def _record_ingest_observations(
    name: str, sink: DiagnosticSink, inventory: List[FileRecord]
) -> None:
    """Fold one ingestion run's accounting into the metrics registry.

    Runs in the parent process on the submission-order merge path, so the
    counters are identical whatever ``jobs``/cache produced the outcomes.
    """
    metrics = get_registry()
    dispositions: Dict[str, int] = {}
    for record in inventory:
        dispositions[record.disposition] = dispositions.get(record.disposition, 0) + 1
    for disposition, count in sorted(dispositions.items()):
        metrics.counter(f"ingest.files.{disposition}").inc(count)
    for severity, count in sink.counts().items():
        if count:
            metrics.counter("diag.count", severity=severity).inc(count)
    _log.info(
        "archive ingested",
        archive=name,
        files=len(inventory),
        **{disposition: count for disposition, count in sorted(dispositions.items())},
    )


class Network:
    """A set of routers forming one network, with derived routing structure.

    All derived structure is computed once on first access and cached; the
    model is treated as immutable after construction (matching the paper's
    setting of analyzing a static snapshot).

    Networks built through :meth:`from_configs`/:meth:`from_directory`
    carry the ingestion run's :class:`repro.diag.DiagnosticSink` as
    ``diagnostics`` and the list of files that could not be ingested at
    all as ``quarantined``.
    """

    def __init__(
        self,
        routers: Iterable[Router],
        name: str = "network",
        *,
        diagnostics: Optional[DiagnosticSink] = None,
        quarantined: Optional[Iterable[str]] = None,
        on_duplicate: str = "error",
        inventory: Optional[Iterable[FileRecord]] = None,
    ):
        if on_duplicate not in ("error", "rename"):
            raise ValueError(f"unknown on_duplicate policy: {on_duplicate!r}")
        self.name = name
        self.diagnostics = diagnostics if diagnostics is not None else DiagnosticSink()
        self.quarantined: List[str] = list(quarantined or [])
        #: Per-input-file accounting (path, bytes, SHA-256, disposition) for
        #: networks built by ``from_configs``/``from_directory`` — the run
        #: manifest's inventory.  Empty for hand-assembled networks.
        self.inventory: List[FileRecord] = list(inventory or [])
        self.routers: Dict[str, Router] = {}
        for router in routers:
            router_name = router.name
            if router_name in self.routers:
                if on_duplicate == "error":
                    raise ValueError(f"duplicate router name: {router_name}")
                suffix = 2
                while f"{router_name}~{suffix}" in self.routers:
                    suffix += 1
                renamed = f"{router_name}~{suffix}"
                self.diagnostics.warning(
                    PHASE_BUILD,
                    f"duplicate router name {router_name!r} renamed to {renamed!r}",
                    file=router.source,
                    router=renamed,
                )
                router = Router(name=renamed, config=router.config, source=router.source)
            self.routers[router.name] = router
        self._interface_index: Optional[Dict[Tuple[str, str], InterfaceConfig]] = None
        self._address_map: Optional[Dict[int, Tuple[str, str]]] = None
        self._links: Optional[List[Link]] = None
        self._unmatched: Optional[List[Tuple[str, str]]] = None
        self._external: Optional[Set[Tuple[str, str]]] = None
        self._processes: Optional[Dict[ProcessKey, RoutingProcess]] = None
        self._processes_by_router: Optional[Dict[str, List[RoutingProcess]]] = None
        self._igp_adjacencies: Optional[List[Tuple[ProcessKey, ProcessKey, Link]]] = None
        self._bgp_sessions: Optional[List[BgpSession]] = None
        self._internal_space: Optional[List[Prefix]] = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_configs(
        cls,
        configs: Mapping[str, Union[str, RouterConfig]],
        name: str = "network",
        *,
        on_error: str = "strict",
        diagnostics: Optional[DiagnosticSink] = None,
        jobs: Optional[int] = None,
        cache: Union[ParseCache, str, None] = None,
        timer: Optional[StageTimer] = None,
        budget: Optional[WorkerBudget] = None,
    ) -> "Network":
        """Build a network from a mapping of router name → config text/model.

        Text configs may be Cisco IOS or JunOS dialect (auto-detected).
        ``on_error`` selects the fault policy: ``"strict"`` raises on the
        first malformed statement (historical behavior), ``"skip-block"``
        skips malformed blocks, and ``"skip-file"`` quarantines whole
        files on any parse error.  In the non-strict policies the returned
        network's ``diagnostics``/``quarantined`` describe what was lost.

        ``jobs`` fans parsing out over worker processes (``None``/``0``
        auto-detects, ``1`` forces serial); ``cache`` is a
        :class:`repro.ingest.ParseCache` (or directory path) that replays
        previously-parsed files; ``timer`` is a
        :class:`repro.ingest.StageTimer` that receives the parse-stage
        timing; ``budget`` is the shared
        :class:`repro.ingest.WorkerBudget` a concurrent corpus run uses
        to cap this archive's parse workers.  Whatever the
        ``jobs``/``cache``/``budget`` setting, the resulting routers,
        diagnostics, and quarantine list are identical.
        """
        if on_error not in ON_ERROR_POLICIES:
            raise ValueError(f"unknown on_error policy: {on_error!r}")
        sink = diagnostics if diagnostics is not None else DiagnosticSink()
        entries = list(configs.items())
        tasks = [
            ParseTask(source=router_name, text=config, on_error=on_error)
            for router_name, config in entries
            if isinstance(config, str)
        ]
        outcomes = iter(
            parse_many(tasks, jobs=jobs, cache=cache, timer=timer, budget=budget)
        )
        routers = []
        quarantined: List[str] = []
        inventory: List[FileRecord] = []
        for router_name, config in entries:
            if isinstance(config, str):
                data = config.encode("utf-8")
                outcome = next(outcomes)
                sink.merge(outcome.diagnostics)
                if outcome.error is not None:
                    raise outcome.error
                if outcome.config is None:
                    inventory.append(
                        _file_record(router_name, data, DISPOSITION_QUARANTINED)
                    )
                    quarantined.append(router_name)
                    continue
                inventory.append(
                    _file_record(
                        router_name,
                        data,
                        DISPOSITION_CACHED if outcome.cached else DISPOSITION_PARSED,
                        router=router_name,
                    )
                )
                config = outcome.config
            routers.append(Router(name=router_name, config=config, source=router_name))
        _record_ingest_observations(name, sink, inventory)
        return cls(
            routers,
            name=name,
            diagnostics=sink,
            quarantined=quarantined,
            on_duplicate="error" if on_error == "strict" else "rename",
            inventory=inventory,
        )

    @classmethod
    def from_directory(
        cls,
        path: str,
        name: Optional[str] = None,
        *,
        on_error: str = "strict",
        jobs: Optional[int] = None,
        cache: Union[ParseCache, str, None] = None,
        timer: Optional[StageTimer] = None,
        budget: Optional[WorkerBudget] = None,
    ) -> "Network":
        """Build a network from a directory of config files (``config1`` ...).

        This mirrors the paper's data layout: one directory per network,
        anonymous file names, no meta-data.  Dialects are auto-detected
        per file (IOS or JunOS) and each file is parsed exactly once.

        Binary or undecodable files are skipped with a diagnostic in every
        ``on_error`` policy; duplicated hostnames raise in ``"strict"``
        and are renamed with a ``~N`` suffix (plus a warning diagnostic)
        otherwise.

        ``jobs``, ``cache``, ``timer``, and ``budget`` behave as in
        :meth:`from_configs`; file reads and the binary-content sniff
        always happen in this process, and per-file parse diagnostics are
        folded back in directory order, so the diagnostic stream does not
        depend on worker scheduling or cache hits.
        """
        if on_error not in ON_ERROR_POLICIES:
            raise ValueError(f"unknown on_error policy: {on_error!r}")
        if timer is None:
            # A private timer still forwards stage spans to any active
            # tracer, so `--trace` sees read/parse stages on every command.
            timer = StageTimer()
        sink = DiagnosticSink()
        routers: List[Router] = []
        quarantined: List[str] = []
        inventory: List[FileRecord] = []
        # Read phase: pull every file into memory, sniffing out binary
        # droppings.  Read diagnostics are buffered per file so the final
        # merge loop can interleave them exactly as the serial path did.
        files: List[Tuple[str, DiagnosticSink, Optional[str], bytes]] = []
        read_ctx = (
            timer.stage("read") if timer is not None else nullcontext(StageRecord("read"))
        )
        with read_ctx as read_record:
            for entry in sorted(os.listdir(path)):
                full = os.path.join(path, entry)
                if not os.path.isfile(full):
                    continue
                file_sink = DiagnosticSink()
                text, raw = _read_config_text(full, entry, file_sink)
                files.append((entry, file_sink, text, raw))
            read_record.items = len(files)
        tasks = [
            ParseTask(source=entry, text=text, on_error=on_error, data=raw)
            for entry, _sink, text, raw in files
            if text is not None
        ]
        outcomes = iter(
            parse_many(tasks, jobs=jobs, cache=cache, timer=timer, budget=budget)
        )
        for entry, file_sink, text, raw in files:
            sink.merge(file_sink)
            if text is None:
                inventory.append(_file_record(entry, raw, DISPOSITION_QUARANTINED))
                quarantined.append(entry)
                continue
            outcome = next(outcomes)
            sink.merge(outcome.diagnostics)
            if outcome.error is not None:
                raise outcome.error
            if outcome.config is None:
                inventory.append(_file_record(entry, raw, DISPOSITION_QUARANTINED))
                quarantined.append(entry)
                continue
            config = outcome.config
            router_name = config.hostname or os.path.splitext(entry)[0]
            if not config.hostname:
                sink.info(
                    PHASE_BUILD,
                    f"no hostname; router named after file {entry!r}",
                    file=entry,
                    router=router_name,
                )
            inventory.append(
                _file_record(
                    entry,
                    raw,
                    DISPOSITION_CACHED if outcome.cached else DISPOSITION_PARSED,
                    router=router_name,
                )
            )
            routers.append(Router(name=router_name, config=config, source=entry))
        network_name = name or os.path.basename(path)
        _record_ingest_observations(network_name, sink, inventory)
        return cls(
            routers,
            name=network_name,
            diagnostics=sink,
            quarantined=quarantined,
            on_duplicate="error" if on_error == "strict" else "rename",
            inventory=inventory,
        )

    # -- indexes -----------------------------------------------------------

    @property
    def interface_index(self) -> Dict[Tuple[str, str], InterfaceConfig]:
        """``(router, interface name)`` → parsed interface."""
        if self._interface_index is None:
            index = {}
            for router in self.routers.values():
                for iface in router.interfaces.values():
                    index[(router.name, iface.name)] = iface
            self._interface_index = index
        return self._interface_index

    @property
    def address_map(self) -> Dict[int, Tuple[str, str]]:
        """Interface address (as int) → ``(router, interface name)``."""
        if self._address_map is None:
            addresses: Dict[int, Tuple[str, str]] = {}
            # Sorted + first-wins: on (misconfigured) duplicate addresses
            # the owner must not depend on router ingestion order.
            for (router, name), iface in sorted(self.interface_index.items()):
                if iface.is_numbered and not iface.shutdown:
                    addresses.setdefault(iface.address.value, (router, name))
                for secondary, _mask in iface.secondary_addresses:
                    addresses.setdefault(secondary.value, (router, name))
            self._address_map = addresses
        return self._address_map

    def owns_address(self, address: Union[str, int, IPv4Address]) -> bool:
        if isinstance(address, str):
            address = IPv4Address(address)
        if isinstance(address, IPv4Address):
            address = address.value
        return address in self.address_map

    # -- links and external classification ----------------------------------

    def _ensure_links(self) -> None:
        if self._links is None:
            self._links, self._unmatched = infer_links(self.interface_index)

    @property
    def links(self) -> List[Link]:
        self._ensure_links()
        return self._links

    @property
    def unmatched_interfaces(self) -> List[Tuple[str, str]]:
        """Interfaces whose subnet matched no other in-network interface."""
        self._ensure_links()
        return self._unmatched

    @property
    def internal_address_space(self) -> List[Prefix]:
        """Summarized union of all connected subnets — "inside" addresses."""
        if self._internal_space is None:
            prefixes = [
                iface.prefix
                for iface in self.interface_index.values()
                if iface.is_numbered
            ]
            self._internal_space = summarize_prefixes(prefixes)
        return self._internal_space

    def is_internal_destination(self, prefix: Prefix) -> bool:
        return any(block.contains(prefix) for block in self.internal_address_space)

    @property
    def external_interfaces(self) -> Set[Tuple[str, str]]:
        """Interfaces classified as external-facing.

        Implements the two heuristics of §5.2:

        1. a point-to-point subnet (/30 or longer) whose other usable
           address is absent from the data set is external-facing;
        2. a multipoint subnet (e.g. a /24 Ethernet) may simply connect
           hosts, so it is internal *unless* it is used as the next hop
           toward external destinations (static routes to prefixes outside
           the internal address space, or BGP neighbors with no in-network
           owner) — then an external router must be attached and its
           interfaces are external-facing.
        """
        if self._external is not None:
            return self._external
        external: Set[Tuple[str, str]] = set()
        multipoint_unmatched: List[Tuple[str, str]] = []
        for router, name in self.unmatched_interfaces:
            iface = self.interface_index[(router, name)]
            prefix = iface.prefix
            if prefix is not None and (prefix.length >= 30 or iface.point_to_point):
                external.add((router, name))
            else:
                multipoint_unmatched.append((router, name))

        # Gather next-hop addresses that point at external destinations.
        external_next_hops: List[int] = []
        for router in self.routers.values():
            for route in router.config.static_routes:
                if route.next_hop is None:
                    continue
                if not self.is_internal_destination(route.prefix):
                    external_next_hops.append(route.next_hop.value)
            bgp = router.config.bgp_process
            if bgp is not None:
                for nbr in bgp.neighbors:
                    if nbr.address.value not in self.address_map:
                        external_next_hops.append(nbr.address.value)

        def next_hop_rule_fires(subnet: Prefix) -> bool:
            return any(
                subnet.contains_address(hop) and hop not in self.address_map
                for hop in external_next_hops
            )

        for link in self.links:
            if link.may_have_external and next_hop_rule_fires(link.subnet):
                external.update((end.router, end.interface) for end in link.ends)
        for router, name in multipoint_unmatched:
            iface = self.interface_index[(router, name)]
            if iface.prefix is not None and next_hop_rule_fires(iface.prefix):
                external.add((router, name))
        self._external = external
        return external

    def is_external_interface(self, router: str, interface: str) -> bool:
        return (router, interface) in self.external_interfaces

    # -- routing processes ---------------------------------------------------

    @property
    def processes(self) -> Dict[ProcessKey, RoutingProcess]:
        """All routing processes, resolved against their interfaces."""
        if self._processes is None:
            processes: Dict[ProcessKey, RoutingProcess] = {}
            for router in self.routers.values():
                interfaces = list(router.interfaces.values())
                for config in router.config.routing_processes():
                    key = process_key(router.name, config)
                    covered = covered_interface_names(config, interfaces)
                    passive = list(getattr(config, "passive_interfaces", []))
                    processes[key] = RoutingProcess(
                        key=key,
                        config=config,
                        covered_interfaces=covered,
                        passive_interfaces=passive,
                    )
            self._processes = processes
        return self._processes

    def processes_on(self, router: str) -> List[RoutingProcess]:
        """Processes configured on *router*.

        Backed by a per-router index built on first use: analyses that
        consult every router's processes (route pathways, the process
        graph) would otherwise rescan the full process table per router —
        quadratic on large networks.
        """
        if self._processes_by_router is None:
            by_router: Dict[str, List[RoutingProcess]] = {}
            for proc in self.processes.values():
                by_router.setdefault(proc.router, []).append(proc)
            self._processes_by_router = by_router
        return list(self._processes_by_router.get(router, ()))

    # -- adjacencies ---------------------------------------------------------

    @property
    def igp_adjacencies(self) -> List[Tuple[ProcessKey, ProcessKey, Link]]:
        """Adjacent IGP process pairs (§2.2 rule).

        Two IGP processes are adjacent when they run the same protocol, a
        link connects their routers, and each covers (non-passively) its
        interface on that link.
        """
        if self._igp_adjacencies is not None:
            return self._igp_adjacencies
        # Index: (router, interface) -> IGP processes actively covering it.
        covering: Dict[Tuple[str, str], List[RoutingProcess]] = {}
        for proc in self.processes.values():
            if proc.is_bgp:
                continue
            for name in proc.active_interfaces():
                covering.setdefault((proc.router, name), []).append(proc)

        adjacencies: List[Tuple[ProcessKey, ProcessKey, Link]] = []
        seen: Set[Tuple[ProcessKey, ProcessKey]] = set()
        for link in self.links:
            for i, end_a in enumerate(link.ends):
                for end_b in link.ends[i + 1:]:
                    if end_a.router == end_b.router:
                        continue
                    procs_a = covering.get((end_a.router, end_a.interface), [])
                    procs_b = covering.get((end_b.router, end_b.interface), [])
                    for proc_a in procs_a:
                        for proc_b in procs_b:
                            if proc_a.protocol != proc_b.protocol:
                                continue
                            if proc_a.protocol in ("eigrp", "igrp") and (
                                proc_a.process_id != proc_b.process_id
                            ):
                                # EIGRP adjacency requires matching AS numbers
                                # (unlike OSPF, whose process ids are local).
                                continue
                            pair = tuple(sorted((proc_a.key, proc_b.key)))
                            if pair in seen:
                                continue
                            seen.add(pair)
                            adjacencies.append((proc_a.key, proc_b.key, link))
        self._igp_adjacencies = adjacencies
        return adjacencies

    @property
    def bgp_sessions(self) -> List[BgpSession]:
        """All configured BGP peerings, resolved where possible."""
        if self._bgp_sessions is not None:
            return self._bgp_sessions
        sessions: List[BgpSession] = []
        for router in self.routers.values():
            bgp = router.config.bgp_process
            if bgp is None:
                continue
            local_key = process_key(router.name, bgp)
            for nbr in bgp.neighbors:
                session = BgpSession(
                    local=local_key,
                    neighbor_address=nbr.address,
                    remote_as=nbr.remote_as,
                )
                owner = self.address_map.get(nbr.address.value)
                if owner is not None:
                    remote_router = owner[0]
                    remote_bgp = self.routers[remote_router].config.bgp_process
                    if remote_bgp is not None and (
                        nbr.remote_as is None or remote_bgp.asn == nbr.remote_as
                    ):
                        session.remote_key = process_key(remote_router, remote_bgp)
                        session.remote_router = remote_router
                sessions.append(session)
        self._bgp_sessions = sessions
        return sessions

    # -- statistics ----------------------------------------------------------

    def interface_type_census(self) -> Dict[str, int]:
        """Count interfaces by hardware type (Table 3)."""
        census: Dict[str, int] = {}
        for iface in self.interface_index.values():
            census[iface.kind] = census.get(iface.kind, 0) + 1
        return census

    def config_sizes(self) -> List[int]:
        """Per-router configuration line counts (Figure 4)."""
        return [router.config.line_count for router in self.routers.values()]

    def total_commands(self) -> int:
        return sum(router.config.command_count for router in self.routers.values())

    def __len__(self) -> int:
        return len(self.routers)

    def __repr__(self) -> str:
        return f"Network({self.name!r}, routers={len(self.routers)})"
