"""Network-level model assembled from per-router configurations.

:mod:`repro.ios` models a single configuration file; this package assembles
the files of one network into the router-level model of §2 of the paper:

* logical IP **links** inferred by matching interfaces with the same subnet
  (§2.1),
* classification of interfaces as internal- or external-facing (§2.1, §5.2),
* **routing processes** with their covered interfaces, and the
  **adjacencies** between processes on different routers (§2.2).

The routing-design abstractions of §3 are built on top of this model by
:mod:`repro.core`.
"""

from repro.model.links import Link, LinkEnd, infer_links
from repro.model.network import Network, Router
from repro.model.processes import (
    LOCAL_RIB,
    ProcessKey,
    RoutingProcess,
    process_key,
)

__all__ = [
    "LOCAL_RIB",
    "Link",
    "LinkEnd",
    "Network",
    "ProcessKey",
    "Router",
    "RoutingProcess",
    "infer_links",
    "process_key",
]
