"""Configuration dialect detection and dispatch.

The paper's corpus was Cisco IOS, but real archives mix vendors.  This
module sniffs the dialect of a configuration file and dispatches to the
right front end, so :meth:`Network.from_directory` handles mixed-vendor
archives transparently.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.diag import DiagnosticSink
from repro.ios.config import RouterConfig
from repro.ios.parser import parse_config as parse_ios_config

#: Version of the parsing pipeline as a whole (dialect detection plus both
#: dialect front ends).  The content-addressed parse cache
#: (:mod:`repro.ingest.cache`) folds this into every key, so cached
#: results are only ever replayed against the parser that produced them.
#: **Bump this string whenever any parser's observable behavior changes** —
#: new commands modeled, different diagnostics, changed lenient recovery.
#: The block-level stanza cache (:mod:`repro.ios.blockcache`) folds it
#: into its persistent digests too, so both cache tiers age out together.
#: 2004.2: single-pass lexer + block-level cache rebuild of the IOS front
#: end and a regex tokenizer for JunOS (observable output is unchanged by
#: design, but the entry formats and hot paths are new — a clean break
#: keeps stale entries from ever meeting the new code).
PARSER_VERSION = "2004.2"

_JUNOS_HINT_RE = re.compile(
    r"^\s*(system|interfaces|protocols|routing-options|policy-options|firewall)\s*\{",
    re.MULTILINE,
)


def detect_dialect(text: str) -> str:
    """``"junos"`` for brace-structured configs, else ``"ios"``."""
    if _JUNOS_HINT_RE.search(text):
        return "junos"
    return "ios"


#: Forward the caller's "use the process default" to the IOS parser.
_DEFAULT_BLOCK_CACHE = object()


def parse_any_config(
    text: str,
    *,
    mode: str = "strict",
    sink: Optional[DiagnosticSink] = None,
    source: Optional[str] = None,
    block_cache: object = _DEFAULT_BLOCK_CACHE,
) -> RouterConfig:
    """Parse a configuration file in whichever dialect it is written.

    ``mode``/``sink``/``source`` are forwarded to the dialect parser: in
    ``"lenient"`` mode, malformed statements are skipped with a
    :class:`repro.diag.Diagnostic` recorded against ``source``.  File-level
    failures (e.g. unbalanced JunOS braces) still raise in either mode.
    ``block_cache`` (a :class:`repro.ios.blockcache.BlockCache` or ``None``
    to disable) tunes the IOS stanza-level cache; the JunOS front end is
    file-level only and ignores it.
    """
    if detect_dialect(text) == "junos":
        from repro.junos.parser import parse_junos_config  # noqa: PLC0415

        return parse_junos_config(text, mode=mode, sink=sink, source=source)
    if block_cache is _DEFAULT_BLOCK_CACHE:
        return parse_ios_config(text, mode=mode, sink=sink, source=source)
    return parse_ios_config(
        text, mode=mode, sink=sink, source=source, block_cache=block_cache
    )
