"""Logical IP link inference: matching interfaces with the same subnet.

§2.1 of the paper: "From the configuration files, we infer the logical IP
links between routers by matching interfaces with the same subnet."  An
interface that fails to match any other interface is declared
external-facing.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.ios.config import InterfaceConfig
from repro.net import Prefix


@dataclass(frozen=True)
class LinkEnd:
    """One interface termination of a logical link."""

    router: str
    interface: str


@dataclass
class Link:
    """A logical IP link: the set of in-network interfaces sharing a subnet.

    A point-to-point link has exactly two ends; a multipoint link (Ethernet,
    frame-relay hub) can have many.  ``may_have_external`` is set when the
    subnet has usable addresses not accounted for by in-network interfaces,
    which means an external router *could* be attached (§5.2's discussion of
    multipoint links).
    """

    subnet: Prefix
    ends: List[LinkEnd] = field(default_factory=list)
    may_have_external: bool = False

    @property
    def is_point_to_point(self) -> bool:
        return len(self.ends) == 2 and self.subnet.length >= 30

    @property
    def routers(self) -> Tuple[str, ...]:
        return tuple(sorted({end.router for end in self.ends}))


def infer_links(
    interfaces: Dict[Tuple[str, str], InterfaceConfig],
) -> Tuple[List[Link], List[Tuple[str, str]]]:
    """Group numbered, non-shutdown interfaces into links by shared subnet.

    *interfaces* maps ``(router, interface_name)`` to the parsed interface.
    Returns ``(links, unmatched)`` where *unmatched* lists the
    ``(router, interface_name)`` pairs whose subnet is not shared with any
    other in-network interface — the candidates for external-facing
    classification.
    """
    by_subnet: Dict[Prefix, List[Tuple[str, str, InterfaceConfig]]] = defaultdict(list)
    for (router, name), iface in interfaces.items():
        if iface.shutdown or not iface.is_numbered:
            continue
        if iface.kind in ("Loopback", "Null"):
            # Virtual interfaces terminate no physical link and are never
            # external-facing candidates.
            continue
        by_subnet[iface.prefix].append((router, name, iface))

    links: List[Link] = []
    unmatched: List[Tuple[str, str]] = []
    for subnet, members in sorted(by_subnet.items()):
        # Member order must not leak the interface-index insertion order:
        # link ends (and the unmatched list) feed order-sensitive
        # consumers downstream.
        members = sorted(members, key=lambda m: (m[0], m[1]))
        distinct_routers = {router for router, _, _ in members}
        if len(distinct_routers) < 2:
            # All members on one router (usually exactly one interface):
            # no in-network peer was found for this subnet.
            unmatched.extend((router, name) for router, name, _ in members)
            continue
        link = Link(subnet=subnet)
        used_addresses = set()
        for router, name, iface in members:
            link.ends.append(LinkEnd(router=router, interface=name))
            used_addresses.add(iface.address.value)
        usable = _usable_address_count(subnet)
        link.may_have_external = len(used_addresses) < usable
        links.append(link)
    return links, unmatched


def _usable_address_count(subnet: Prefix) -> int:
    if subnet.length >= 31:
        return subnet.num_addresses()
    return subnet.num_addresses() - 2
