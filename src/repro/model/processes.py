"""Routing processes and their identities.

A routing process is identified network-wide by ``(router, protocol, id)``,
where *id* is the OSPF process id, EIGRP/IGRP or BGP AS number, and ``None``
for RIP (IOS allows one RIP process per router).  §3.2 of the paper stresses
that process ids have **no network-wide semantics** — they merely distinguish
processes on one router — so all cross-router grouping is done by adjacency,
never by id equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.ios.config import (
    BgpProcess,
    EigrpProcess,
    InterfaceConfig,
    OspfProcess,
    RipProcess,
)
from repro.net import IPv4Address

# Pseudo-protocol name for the local RIB that holds connected subnets and
# static routes (Figure 3 of the paper).
LOCAL_RIB = "local"

#: (router, protocol, id) — hashable process identity used as a graph vertex.
ProcessKey = Tuple[str, str, Optional[int]]

AnyProcessConfig = Union[OspfProcess, EigrpProcess, RipProcess, BgpProcess]


def process_key(router: str, config: AnyProcessConfig) -> ProcessKey:
    """Build the :data:`ProcessKey` for a parsed routing-process stanza."""
    if isinstance(config, OspfProcess):
        return (router, "ospf", config.process_id)
    if isinstance(config, EigrpProcess):
        return (router, config.protocol, config.asn)
    if isinstance(config, RipProcess):
        return (router, "rip", None)
    if isinstance(config, BgpProcess):
        return (router, "bgp", config.asn)
    raise TypeError(f"not a routing process config: {type(config).__name__}")


def local_rib_key(router: str) -> ProcessKey:
    """The :data:`ProcessKey` of a router's local RIB (connected + static)."""
    return (router, LOCAL_RIB, None)


@dataclass
class RoutingProcess:
    """A routing process resolved against its router's interfaces."""

    key: ProcessKey
    config: AnyProcessConfig
    covered_interfaces: List[str] = field(default_factory=list)
    passive_interfaces: List[str] = field(default_factory=list)

    @property
    def router(self) -> str:
        return self.key[0]

    @property
    def protocol(self) -> str:
        return self.key[1]

    @property
    def process_id(self) -> Optional[int]:
        return self.key[2]

    @property
    def is_bgp(self) -> bool:
        return self.protocol == "bgp"

    @property
    def asn(self) -> Optional[int]:
        """The AS number (BGP and EIGRP use their id as an ASN)."""
        return self.key[2] if self.protocol in ("bgp", "eigrp", "igrp") else None

    def active_interfaces(self) -> List[str]:
        """Covered interfaces that can form adjacencies (non-passive)."""
        passive = set(self.passive_interfaces)
        return [name for name in self.covered_interfaces if name not in passive]


def covered_interface_names(
    config: AnyProcessConfig, interfaces: List[InterfaceConfig]
) -> List[str]:
    """The interfaces a process is associated with via ``network`` statements.

    This implements the coverage rule of §2.2: a ``network`` statement covers
    an interface when the statement's (wildcard/classful) range contains the
    interface's primary address.  BGP ``network`` statements announce
    prefixes rather than binding interfaces, so BGP processes cover nothing
    here — their adjacencies come from ``neighbor`` statements.
    """
    if isinstance(config, BgpProcess):
        return []
    covered = []
    for iface in interfaces:
        if not iface.is_numbered:
            continue
        address: IPv4Address = iface.address
        if any(statement.matches_interface(address) for statement in config.networks):
            covered.append(iface.name)
    return covered
