"""Content-addressed checkpoints for per-(archive, stage) analysis results.

A killed or crashed ``repro corpus`` run must not throw away every
finished result.  The executor checkpoints each *finished* stage
(``ok``/``degraded`` — see :mod:`repro.exec.stage`) under a key derived
from the **bytes** of the archive's configuration files, so ``--resume``
replays exactly the work whose inputs have not changed:

* the archive digest is the SHA-256 over the sorted ``(path, sha256)``
  inventory of the archive — the same per-file digests the run manifest
  records;
* the entry stores that digest *again* in its payload and ``load``
  re-validates it, so an entry that was written under one inventory can
  never be replayed against another (the edit-between-runs race);
* entries also carry the parser version: a parser upgrade invalidates
  every checkpoint, because re-parsed configs may analyze differently.

Entries are JSON files under ``<root>/<aa>/<digest>-<stage>.json``
(git-style fan-out), written via temp file + ``os.replace`` so a killed
run leaves only complete entries behind.  All I/O is best-effort: a
broken checkpoint store degrades to cache misses, never to run failures.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

from repro.exec.stage import StageResult
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry

_log = get_logger("exec.checkpoint")

#: Bump when the on-disk entry layout changes.
CHECKPOINT_FORMAT = 1

CHECKPOINT_SCHEMA = f"repro-checkpoint/{CHECKPOINT_FORMAT}"


def default_checkpoint_dir() -> str:
    """``$REPRO_CHECKPOINT_DIR``, else ``<parse-cache dir>/checkpoints``."""
    override = os.environ.get("REPRO_CHECKPOINT_DIR")
    if override:
        return override
    from repro.ingest.cache import default_cache_dir  # noqa: PLC0415 — lazy

    return os.path.join(default_cache_dir(), "checkpoints")


def archive_digest(inventory: Iterable) -> str:
    """SHA-256 over the sorted ``(path, sha256)`` pairs of an inventory.

    *inventory* is an iterable of :class:`repro.obs.manifest.FileRecord`
    (duck-typed: ``path``/``sha256``).  Any changed, added, or removed
    file changes the digest — and therefore invalidates every checkpoint
    keyed under it.
    """
    digest = hashlib.sha256()
    digest.update(b"repro-archive:")
    for path, sha in sorted((record.path, record.sha256) for record in inventory):
        digest.update(f"{path}\0{sha}\0".encode("utf-8"))
    return digest.hexdigest()


@dataclass
class CheckpointStats:
    """Hit/miss/store accounting for one store instance's lifetime.

    Increments are locked: one store is shared by every archive worker
    of a parallel corpus run, and unlocked ``+=`` would lose counts
    under thread interleaving.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0
    write_failures: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def count(self, stat: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, stat, getattr(self, stat) + amount)

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "invalidated": self.invalidated,
                "write_failures": self.write_failures,
            }


@dataclass
class CheckpointStore:
    """Persistent per-(archive, stage) store of finished stage results."""

    root: str = field(default_factory=default_checkpoint_dir)
    stats: CheckpointStats = field(default_factory=CheckpointStats)
    _write_failure_logged: bool = field(default=False, repr=False, compare=False)

    def _key(self, digest: str, stage: str) -> str:
        return os.path.join(self.root, digest[:2], f"{digest}-{stage}.json")

    @staticmethod
    def _parser_version() -> int:
        from repro.model.dialect import PARSER_VERSION  # noqa: PLC0415 — cycle

        return PARSER_VERSION

    # -- access ------------------------------------------------------------

    def load(self, digest: str, stage: str) -> Optional[StageResult]:
        """The checkpointed result for ``(digest, stage)``, or ``None``.

        Entries whose stored digest, schema, or parser version disagree
        with the current run are invalidated (deleted and counted) — the
        defense against replaying a checkpoint over edited config bytes.
        """
        path = self._key(digest, stage)
        metrics = get_registry()
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.stats.count("misses")
            metrics.counter("exec.checkpoint.misses").inc()
            return None
        except Exception:  # noqa: BLE001 — damage degrades to a miss
            self._invalidate(path, metrics, reason="unreadable")
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != CHECKPOINT_SCHEMA
            or entry.get("archive_digest") != digest
            or entry.get("stage") != stage
            or entry.get("parser_version") != self._parser_version()
            or not isinstance(entry.get("result"), dict)
        ):
            self._invalidate(path, metrics, reason="stale")
            return None
        try:
            result = StageResult.from_dict(entry["result"])
        except Exception:  # noqa: BLE001
            self._invalidate(path, metrics, reason="malformed")
            return None
        result.from_checkpoint = True
        self.stats.count("hits")
        metrics.counter("exec.checkpoint.hits").inc()
        return result

    def _invalidate(self, path: str, metrics, reason: str) -> None:
        self.stats.count("misses")
        self.stats.count("invalidated")
        metrics.counter("exec.checkpoint.misses").inc()
        metrics.counter("exec.checkpoint.invalidated").inc()
        if reason in ("unreadable", "malformed"):
            # Damaged on disk (vs merely stale) — parity with the parse
            # cache's ``cache.corrupt`` accounting.
            metrics.counter("checkpoint.corrupt").inc()
            _log.warning("corrupt checkpoint evicted", path=path, reason=reason)
        else:
            _log.info("invalidated checkpoint", path=path, reason=reason)
        try:
            os.remove(path)
        except OSError:
            pass

    def store(self, digest: str, archive: str, result: StageResult) -> bool:
        """Persist a finished stage result; ``False`` when the write failed."""
        path = self._key(digest, result.stage)
        entry = {
            "schema": CHECKPOINT_SCHEMA,
            "archive": archive,
            "archive_digest": digest,
            "stage": result.stage,
            "parser_version": self._parser_version(),
            "result": result.as_dict(),
        }
        try:
            from repro.exec.chaos import maybe_io_error  # noqa: PLC0415 — cycle

            maybe_io_error("checkpoint", path)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(entry, handle, indent=2, sort_keys=True)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise
        except Exception as error:  # noqa: BLE001 — a read-only store is still a store
            self.stats.count("write_failures")
            get_registry().counter("checkpoint.write_failures").inc()
            if not self._write_failure_logged:
                self._write_failure_logged = True
                _log.warning(
                    "checkpoint.write_failed",
                    root=self.root,
                    error=f"{type(error).__name__}: {error}",
                    note="further failures counted, not logged",
                )
            return False
        self.stats.count("stores")
        get_registry().counter("exec.checkpoint.stores").inc()
        return True

    def entries(self) -> Tuple[str, ...]:
        """All entry paths currently on disk (test/debug helper)."""
        found = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".json") and not name.startswith(".tmp-"):
                    found.append(os.path.join(dirpath, name))
        return tuple(sorted(found))

    def __repr__(self) -> str:
        return f"CheckpointStore({self.root!r}, {self.stats.as_dict()})"


__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_SCHEMA",
    "CheckpointStats",
    "CheckpointStore",
    "archive_digest",
    "default_checkpoint_dir",
]
