"""Injectable hang/raise/kill hooks for exercising the executor.

The watchdog and exception-barrier paths are only trustworthy if they are
tested against *real* hangs and *real* exceptions, at the exact point a
production stage would produce them.  This module is that injection
point: the executor calls :meth:`ChaosPlan.trigger` at the top of every
stage attempt, inside the watchdog-guarded thread, and the plan decides
whether to misbehave.

A plan is parsed from a spec string (the ``REPRO_CHAOS`` environment
variable, so subprocess-level tests and the CI chaos job can inject
without code changes)::

    REPRO_CHAOS="<archive>:<stage>=<action>[;<archive>:<stage>=<action>...]"

* ``archive`` / ``stage`` — ``fnmatch`` patterns (``*`` matches all);
* ``action`` — one of
  - ``raise`` — raise :class:`ChaosError` (exception-barrier path),
  - ``hang`` — spin forever in pure Python (hard-deadline path; the
    loop is unwound by the watchdog's async cancel),
  - ``hang:S`` — spin for ``S`` seconds, then continue (soft-deadline
    path),
  - ``kill`` — raise :class:`SimulatedKill` (a ``BaseException`` that
    no barrier catches), aborting the whole run mid-flight the way
    SIGKILL would, with whatever checkpoints were already written,
  - ``io-error`` — raise :class:`OSError` from *store writes* instead
    of stage attempts: the clause's first field fnmatch-targets the
    destination **path**, its second the store kind (``cache`` for
    :meth:`repro.ingest.cache.ParseCache.put`, ``checkpoint`` for
    :meth:`repro.exec.checkpoint.CheckpointStore.store`,
    ``blockcache`` for the stanza tier's disk writes).  Those writes
    are best-effort by contract, so the injected error exercises the
    degrade-silently-never-crash paths (``*.write_failures`` metrics);
* ``action@N`` — only fire on attempt ``N`` (0 = the full-fidelity
  attempt), so degradation-ladder retries can be made to succeed.

``REPRO_CHAOS=@/path/to/spec`` reads the spec from a file **at plan
build time**: a long-running daemon (``repro serve``) builds a fresh
plan per analysis generation, so editing the file flips chaos on or off
in a live process whose environment cannot be changed from outside.  A
missing file is an empty plan.

Hangs sleep in small pure-Python slices so the watchdog's injected
:class:`~repro.exec.watchdog.StageCancelled` lands at the next bytecode
boundary — exactly the behavior of a runaway analysis loop.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import List, Optional, Tuple

#: Environment variable holding the chaos spec.
CHAOS_ENV = "REPRO_CHAOS"

_HANG_SLICE_SECONDS = 0.005


class ChaosError(RuntimeError):
    """The injected stage exception (caught by the stage barrier)."""


class SimulatedKill(BaseException):
    """An uncatchable-by-barrier abort: the in-process stand-in for
    SIGKILL.  Propagates out of the executor and the CLI; checkpoints
    written before it fires survive on disk."""


@dataclass(frozen=True)
class ChaosRule:
    """One parsed ``archive:stage=action[@attempt]`` clause."""

    archive: str
    stage: str
    action: str  # "raise" | "hang" | "kill" | "io-error"
    seconds: Optional[float] = None  # hang duration; None = forever
    attempt: Optional[int] = None  # only fire on this attempt index

    def matches(self, archive: str, stage: str, attempt: int) -> bool:
        return (
            fnmatch(archive, self.archive)
            and fnmatch(stage, self.stage)
            and (self.attempt is None or self.attempt == attempt)
        )


def parse_chaos(spec: str) -> List[ChaosRule]:
    """Parse a chaos spec string into rules (raises ``ValueError`` on junk)."""
    rules: List[ChaosRule] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        try:
            target, action = clause.split("=", 1)
            archive, stage = target.rsplit(":", 1)
        except ValueError:
            raise ValueError(
                f"bad chaos clause {clause!r} (want archive:stage=action)"
            ) from None
        attempt: Optional[int] = None
        if "@" in action:
            action, attempt_text = action.rsplit("@", 1)
            attempt = int(attempt_text)
        seconds: Optional[float] = None
        if action.startswith("hang:"):
            seconds = float(action.split(":", 1)[1])
            action = "hang"
        if action not in ("raise", "hang", "kill", "io-error"):
            raise ValueError(f"unknown chaos action {action!r} in {clause!r}")
        rules.append(
            ChaosRule(
                archive=archive.strip() or "*",
                stage=stage.strip() or "*",
                action=action,
                seconds=seconds,
                attempt=attempt,
            )
        )
    return rules


@dataclass
class ChaosPlan:
    """The active set of chaos rules for one executor."""

    rules: Tuple[ChaosRule, ...] = ()

    @classmethod
    def from_spec(cls, spec: Optional[str]) -> "ChaosPlan":
        return cls(rules=tuple(parse_chaos(spec)) if spec else ())

    @classmethod
    def from_env(cls) -> "ChaosPlan":
        """The plan demanded by ``$REPRO_CHAOS`` (empty when unset).

        A value of ``@/path`` is indirection: the spec is re-read from
        that file on every call, so a live daemon rebuilding its plan per
        generation picks up edits.  A missing or unreadable file — and a
        malformed spec inside one, since chaos must never take down the
        process it is probing — yields the empty plan.
        """
        spec = os.environ.get(CHAOS_ENV)
        if spec and spec.startswith("@"):
            try:
                with open(spec[1:], "r", encoding="utf-8") as handle:
                    spec = handle.read().strip()
            except OSError:
                return cls()
            try:
                return cls.from_spec(spec)
            except ValueError:
                return cls()
        return cls.from_spec(spec)

    def __bool__(self) -> bool:
        return bool(self.rules)

    def trigger(self, archive: str, stage: str, attempt: int = 0) -> None:
        """Misbehave if any rule matches; called at the top of a stage
        attempt, inside the watchdog-guarded thread."""
        for rule in self.rules:
            if rule.action == "io-error":
                continue  # fires from store writes, not stage attempts
            if not rule.matches(archive, stage, attempt):
                continue
            if rule.action == "raise":
                raise ChaosError(
                    f"injected failure in stage {stage!r} of {archive!r}"
                )
            if rule.action == "kill":
                raise SimulatedKill(
                    f"injected kill in stage {stage!r} of {archive!r}"
                )
            # hang: sleep in pure-Python slices so async cancellation
            # (StageCancelled) is delivered between bytecodes.
            start = time.perf_counter()
            while (
                rule.seconds is None
                or time.perf_counter() - start < rule.seconds
            ):
                time.sleep(_HANG_SLICE_SECONDS)
            return

    def io_error(self, kind: str, path: str) -> None:
        """Raise :class:`OSError` if an ``io-error`` rule targets this
        store write.  ``kind`` is the store (``cache`` / ``checkpoint`` /
        ``blockcache``) matched against the rule's stage field; ``path``
        is the destination file matched against its archive field."""
        for rule in self.rules:
            if rule.action != "io-error":
                continue
            if fnmatch(str(path), rule.archive) and fnmatch(kind, rule.stage):
                raise OSError(
                    f"injected io-error writing {kind} entry {path!r}"
                )


# Store writes are hot paths scattered across modules that must not each
# re-parse $REPRO_CHAOS; memoize plain specs (file-indirected @specs are
# deliberately re-read so a daemon can be retargeted live, but those are
# test-only configurations where the open() cost is acceptable).
_io_plan_cache: Tuple[Optional[str], Optional[ChaosPlan]] = (None, None)


def maybe_io_error(kind: str, path: str) -> None:
    """Module-level hook for store writes: raise an injected ``OSError``
    when ``$REPRO_CHAOS`` carries a matching ``io-error`` rule.

    Returns instantly when the variable is unset; tolerates malformed
    specs (chaos must never break the write path it probes).
    """
    global _io_plan_cache
    spec = os.environ.get(CHAOS_ENV)
    if not spec:
        return
    if spec.startswith("@"):
        plan = ChaosPlan.from_env()
    else:
        cached_spec, cached_plan = _io_plan_cache
        if cached_spec == spec and cached_plan is not None:
            plan = cached_plan
        else:
            try:
                plan = ChaosPlan.from_spec(spec)
            except ValueError:
                plan = ChaosPlan()
            _io_plan_cache = (spec, plan)
    plan.io_error(kind, path)


__all__ = [
    "CHAOS_ENV",
    "ChaosError",
    "ChaosPlan",
    "ChaosRule",
    "SimulatedKill",
    "maybe_io_error",
    "parse_chaos",
]
