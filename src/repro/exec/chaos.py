"""Injectable hang/raise/kill hooks for exercising the executor.

The watchdog and exception-barrier paths are only trustworthy if they are
tested against *real* hangs and *real* exceptions, at the exact point a
production stage would produce them.  This module is that injection
point: the executor calls :meth:`ChaosPlan.trigger` at the top of every
stage attempt, inside the watchdog-guarded thread, and the plan decides
whether to misbehave.

A plan is parsed from a spec string (the ``REPRO_CHAOS`` environment
variable, so subprocess-level tests and the CI chaos job can inject
without code changes)::

    REPRO_CHAOS="<archive>:<stage>=<action>[;<archive>:<stage>=<action>...]"

* ``archive`` / ``stage`` — ``fnmatch`` patterns (``*`` matches all);
* ``action`` — one of
  - ``raise`` — raise :class:`ChaosError` (exception-barrier path),
  - ``hang`` — spin forever in pure Python (hard-deadline path; the
    loop is unwound by the watchdog's async cancel),
  - ``hang:S`` — spin for ``S`` seconds, then continue (soft-deadline
    path),
  - ``kill`` — raise :class:`SimulatedKill` (a ``BaseException`` that
    no barrier catches), aborting the whole run mid-flight the way
    SIGKILL would, with whatever checkpoints were already written;
* ``action@N`` — only fire on attempt ``N`` (0 = the full-fidelity
  attempt), so degradation-ladder retries can be made to succeed.

Hangs sleep in small pure-Python slices so the watchdog's injected
:class:`~repro.exec.watchdog.StageCancelled` lands at the next bytecode
boundary — exactly the behavior of a runaway analysis loop.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import List, Optional, Tuple

#: Environment variable holding the chaos spec.
CHAOS_ENV = "REPRO_CHAOS"

_HANG_SLICE_SECONDS = 0.005


class ChaosError(RuntimeError):
    """The injected stage exception (caught by the stage barrier)."""


class SimulatedKill(BaseException):
    """An uncatchable-by-barrier abort: the in-process stand-in for
    SIGKILL.  Propagates out of the executor and the CLI; checkpoints
    written before it fires survive on disk."""


@dataclass(frozen=True)
class ChaosRule:
    """One parsed ``archive:stage=action[@attempt]`` clause."""

    archive: str
    stage: str
    action: str  # "raise" | "hang" | "kill"
    seconds: Optional[float] = None  # hang duration; None = forever
    attempt: Optional[int] = None  # only fire on this attempt index

    def matches(self, archive: str, stage: str, attempt: int) -> bool:
        return (
            fnmatch(archive, self.archive)
            and fnmatch(stage, self.stage)
            and (self.attempt is None or self.attempt == attempt)
        )


def parse_chaos(spec: str) -> List[ChaosRule]:
    """Parse a chaos spec string into rules (raises ``ValueError`` on junk)."""
    rules: List[ChaosRule] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        try:
            target, action = clause.split("=", 1)
            archive, stage = target.rsplit(":", 1)
        except ValueError:
            raise ValueError(
                f"bad chaos clause {clause!r} (want archive:stage=action)"
            ) from None
        attempt: Optional[int] = None
        if "@" in action:
            action, attempt_text = action.rsplit("@", 1)
            attempt = int(attempt_text)
        seconds: Optional[float] = None
        if action.startswith("hang:"):
            seconds = float(action.split(":", 1)[1])
            action = "hang"
        if action not in ("raise", "hang", "kill"):
            raise ValueError(f"unknown chaos action {action!r} in {clause!r}")
        rules.append(
            ChaosRule(
                archive=archive.strip() or "*",
                stage=stage.strip() or "*",
                action=action,
                seconds=seconds,
                attempt=attempt,
            )
        )
    return rules


@dataclass
class ChaosPlan:
    """The active set of chaos rules for one executor."""

    rules: Tuple[ChaosRule, ...] = ()

    @classmethod
    def from_spec(cls, spec: Optional[str]) -> "ChaosPlan":
        return cls(rules=tuple(parse_chaos(spec)) if spec else ())

    @classmethod
    def from_env(cls) -> "ChaosPlan":
        """The plan demanded by ``$REPRO_CHAOS`` (empty when unset)."""
        return cls.from_spec(os.environ.get(CHAOS_ENV))

    def __bool__(self) -> bool:
        return bool(self.rules)

    def trigger(self, archive: str, stage: str, attempt: int = 0) -> None:
        """Misbehave if any rule matches; called at the top of a stage
        attempt, inside the watchdog-guarded thread."""
        for rule in self.rules:
            if not rule.matches(archive, stage, attempt):
                continue
            if rule.action == "raise":
                raise ChaosError(
                    f"injected failure in stage {stage!r} of {archive!r}"
                )
            if rule.action == "kill":
                raise SimulatedKill(
                    f"injected kill in stage {stage!r} of {archive!r}"
                )
            # hang: sleep in pure-Python slices so async cancellation
            # (StageCancelled) is delivered between bytecodes.
            start = time.perf_counter()
            while (
                rule.seconds is None
                or time.perf_counter() - start < rule.seconds
            ):
                time.sleep(_HANG_SLICE_SECONDS)
            return


__all__ = [
    "CHAOS_ENV",
    "ChaosError",
    "ChaosPlan",
    "ChaosRule",
    "SimulatedKill",
    "parse_chaos",
]
