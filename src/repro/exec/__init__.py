"""Resilient analysis execution.

One bad archive — or one pathological analysis blowup — must not take a
31-network corpus run down with it.  This package wraps every
per-network analysis stage in an exception barrier with wall-clock
deadlines (:mod:`~repro.exec.watchdog`), bounded
retry-with-degradation ladders (:mod:`~repro.exec.executor`),
content-addressed per-(archive, stage) checkpoints for ``--resume``
(:mod:`~repro.exec.checkpoint`), injectable chaos hooks for testing the
whole thing (:mod:`~repro.exec.chaos`), deadline defaults derived
from measured stage timings (:mod:`~repro.exec.budget`), and a
corpus-level scheduler that fans whole archives out across worker
threads with deterministic merged results
(:mod:`~repro.exec.scheduler`).
"""

from repro.exec.budget import DeadlineSuggestion, suggest_stage_deadline
from repro.exec.chaos import CHAOS_ENV, ChaosError, ChaosPlan, ChaosRule, SimulatedKill
from repro.exec.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointStats,
    CheckpointStore,
    archive_digest,
    default_checkpoint_dir,
)
from repro.exec.executor import (
    DEFAULT_LADDERS,
    AnalysisExecutor,
    ArchiveExecution,
    ExecutorConfig,
    Rung,
    StageContext,
)
from repro.exec.scheduler import (
    ArchiveOutcome,
    CorpusScheduler,
    archive_name,
    resolve_archive_jobs,
)
from repro.exec.stage import (
    ANALYSIS_STAGES,
    FINISHED_STATUSES,
    STATUSES,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    StageResult,
    status_counts,
    worst_status,
)
from repro.exec.watchdog import StageCancelled, WatchdogOutcome, run_with_deadline

__all__ = [
    "ANALYSIS_STAGES",
    "AnalysisExecutor",
    "ArchiveExecution",
    "ArchiveOutcome",
    "CHAOS_ENV",
    "CHECKPOINT_SCHEMA",
    "ChaosError",
    "ChaosPlan",
    "ChaosRule",
    "CheckpointStats",
    "CheckpointStore",
    "CorpusScheduler",
    "DEFAULT_LADDERS",
    "DeadlineSuggestion",
    "ExecutorConfig",
    "FINISHED_STATUSES",
    "Rung",
    "STATUSES",
    "STATUS_DEGRADED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_SKIPPED",
    "STATUS_TIMEOUT",
    "SimulatedKill",
    "StageCancelled",
    "StageContext",
    "StageResult",
    "WatchdogOutcome",
    "archive_digest",
    "archive_name",
    "default_checkpoint_dir",
    "resolve_archive_jobs",
    "run_with_deadline",
    "status_counts",
    "suggest_stage_deadline",
    "worst_status",
]
