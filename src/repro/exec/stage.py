"""The stage vocabulary of the resilient analysis executor.

Every per-network analysis pass runs as one *stage* and ends in exactly
one :class:`StageResult`.  The stage state machine (see ARCHITECTURE.md,
"Execution & failure semantics")::

    ok ──► degraded ──► timeout ──► failed        (increasing severity)
                                        skipped   (never attempted)

* ``ok`` — the stage completed at full fidelity.
* ``degraded`` — the full-fidelity attempt blew its budget; a retry on a
  degradation rung (capped prefix set, depth limit, ...) produced a
  clearly-labeled approximate result.
* ``timeout`` — every attempt hit the hard deadline; the stage was
  cancelled and contributes no result (but the run kept going).
* ``failed`` — the stage raised; the exception is recorded and the run
  kept going.
* ``skipped`` — the stage never started (run deadline exhausted, or an
  earlier failure under ``--fail-fast``).

``ok`` and ``degraded`` are *finished* states — they are checkpointed and
replayed by ``--resume``.  ``timeout``/``failed``/``skipped`` are
*unfinished*: a resumed run re-executes exactly those pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_TIMEOUT = "timeout"
STATUS_FAILED = "failed"
STATUS_SKIPPED = "skipped"

#: All stage statuses, mildest first.
STATUSES = (STATUS_OK, STATUS_DEGRADED, STATUS_TIMEOUT, STATUS_FAILED, STATUS_SKIPPED)

#: Severity rank used by :func:`worst_status` (skipped ranks below failed:
#: a skipped stage was a policy decision, not a malfunction — but it still
#: leaves the pair unfinished).
_SEVERITY = {
    STATUS_OK: 0,
    STATUS_DEGRADED: 1,
    STATUS_SKIPPED: 2,
    STATUS_TIMEOUT: 3,
    STATUS_FAILED: 4,
}

#: Statuses that leave a usable (possibly approximate) result behind.
FINISHED_STATUSES = (STATUS_OK, STATUS_DEGRADED)

#: The per-network analysis stages the executor drives, in dependency
#: order.  ``links`` is the model's link-inference pass; the remaining
#: seven are the paper's analyses (§3, §5–§8).
ANALYSIS_STAGES = (
    "links",
    "process_graph",
    "instances",
    "pathways",
    "address_space",
    "consistency",
    "reachability",
    "survivability",
)


@dataclass
class StageResult:
    """The outcome of one (archive, stage) pair.

    ``value`` carries the in-memory analysis product for downstream stages
    of the same run; it is never serialized (checkpoints and manifests
    keep only the summary).
    """

    stage: str
    status: str = STATUS_OK
    seconds: float = 0.0
    items: int = 0
    attempts: int = 1
    detail: str = ""
    error: str = ""
    degradation: str = ""
    from_checkpoint: bool = False
    #: Optional JSON-ready payload that *does* persist through
    #: checkpoints (unlike ``value``): small structured summaries a
    #: resumed run needs to rebuild its report — e.g. one failure
    #: scenario's reachability delta.  Keep it small and deterministic.
    data: Dict[str, Any] = field(default_factory=dict)
    value: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"unknown stage status: {self.status!r}")

    @property
    def finished(self) -> bool:
        """True when the pair needs no re-execution on ``--resume``."""
        return self.status in FINISHED_STATUSES

    @property
    def degraded(self) -> bool:
        """True for any not-fully-ok outcome (feeds the error budget)."""
        return self.status != STATUS_OK

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (the checkpoint/manifest form)."""
        data: Dict[str, Any] = {
            "stage": self.stage,
            "status": self.status,
            "seconds": round(self.seconds, 6),
            "items": self.items,
            "attempts": self.attempts,
        }
        for key in ("detail", "error", "degradation"):
            if getattr(self, key):
                data[key] = getattr(self, key)
        if self.from_checkpoint:
            data["from_checkpoint"] = True
        if self.data:
            data["data"] = self.data
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StageResult":
        """Rebuild a summary-only result (e.g. from a checkpoint entry)."""
        return cls(
            stage=data["stage"],
            status=data["status"],
            seconds=float(data.get("seconds", 0.0)),
            items=int(data.get("items", 0)),
            attempts=int(data.get("attempts", 1)),
            detail=str(data.get("detail", "")),
            error=str(data.get("error", "")),
            degradation=str(data.get("degradation", "")),
            from_checkpoint=bool(data.get("from_checkpoint", False)),
            data=dict(data.get("data") or {}),
        )


def worst_status(statuses: Iterable[str]) -> Optional[str]:
    """The most severe status present, or ``None`` for an empty iterable."""
    worst: Optional[str] = None
    for status in statuses:
        if status not in _SEVERITY:
            raise ValueError(f"unknown stage status: {status!r}")
        if worst is None or _SEVERITY[status] > _SEVERITY[worst]:
            worst = status
    return worst


def status_counts(results: Iterable[StageResult]) -> Dict[str, int]:
    """``{status: count}`` over *results* — the run's error budget view."""
    counts = {status: 0 for status in STATUSES}
    for result in results:
        counts[result.status] += 1
    return counts


__all__ = [
    "ANALYSIS_STAGES",
    "FINISHED_STATUSES",
    "STATUSES",
    "STATUS_DEGRADED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_SKIPPED",
    "STATUS_TIMEOUT",
    "StageResult",
    "status_counts",
    "worst_status",
]
