"""The resilient analysis executor.

:class:`AnalysisExecutor` drives every per-network analysis stage
(link inference, process graph, instances, pathways, address space,
consistency, reachability, survivability) through one barrier:

* every stage attempt runs under :func:`repro.exec.watchdog
  .run_with_deadline` — a soft deadline produces a warning and keeps
  going, the hard deadline cancels the stage;
* a stage that times out (or dies of resource exhaustion —
  ``RecursionError``/``MemoryError``) is retried down a bounded
  **degradation ladder**: each rung re-runs the analysis with stricter
  bounds (capped prefix atoms, depth limits, edge budgets — the knobs
  the :mod:`repro.core` passes grew for exactly this), and a rung that
  succeeds yields a ``degraded`` result labeled with the rung;
* deterministic exceptions are *not* retried — the same input would
  raise the same way on every rung — and yield ``failed`` immediately;
* finished results (``ok``/``degraded``) are checkpointed per
  ``(archive-digest, stage)`` so a killed run resumes where it stopped;
* a whole-run ``--deadline`` budget skips stages once exhausted
  (checkpoints written earlier still let ``--resume`` finish the rest).

Diagnostics are emitted from the *result summary* (never from timing
data), for fresh and checkpoint-replayed results alike, so an
interrupted-then-resumed run produces the same normalized manifest as an
uninterrupted one.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.diag import PHASE_ANALYSIS
from repro.exec.chaos import ChaosPlan
from repro.exec.checkpoint import CheckpointStore, archive_digest
from repro.exec.stage import (
    ANALYSIS_STAGES,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    StageResult,
    status_counts,
    worst_status,
)
from repro.exec.watchdog import run_with_deadline
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry

_log = get_logger("exec.executor")


@dataclass(frozen=True)
class Rung:
    """One step of a degradation ladder: a label plus analysis bounds."""

    label: str
    params: Mapping[str, Any] = field(default_factory=dict)


#: Default ladders per stage.  Rung 0 is always full fidelity; later
#: rungs trade completeness for bounded work, mildest first.  Every
#: bound maps onto an explicit knob of the corresponding core pass, and
#: results produced below rung 0 are labeled ``degraded`` with the rung.
DEFAULT_LADDERS: Dict[str, Tuple[Rung, ...]] = {
    "links": (Rung("full"),),
    "process_graph": (
        Rung("full"),
        Rung("max-edges-20000", {"max_edges": 20000}),
        Rung("max-edges-2000", {"max_edges": 2000}),
    ),
    "instances": (
        Rung("full"),
        Rung("max-processes-5000", {"max_processes": 5000}),
    ),
    "pathways": (
        Rung("full"),
        Rung("max-depth-8", {"max_depth": 8}),
        Rung("max-depth-3", {"max_depth": 3}),
    ),
    "address_space": (
        Rung("full"),
        Rung("max-subnets-2048", {"max_subnets": 2048}),
        Rung("max-subnets-256", {"max_subnets": 256}),
    ),
    "consistency": (
        Rung("full"),
        Rung("max-findings-200", {"max_findings_per_check": 200}),
    ),
    "reachability": (
        Rung("full"),
        Rung("max-atoms-256", {"max_atoms": 256}),
        Rung("max-atoms-32", {"max_atoms": 32}),
    ),
    "survivability": (
        Rung("full"),
        Rung("max-couplings-200", {"max_couplings": 200}),
    ),
}


@dataclass
class StageContext:
    """Shared state the stage runners of one archive draw on.

    ``instances`` memoizes the *full-fidelity* instance computation only:
    a degraded instances stage must not silently poison downstream
    stages, and a checkpoint-replayed one has no in-memory value at all —
    dependents recompute inside their own watchdog barrier instead.
    """

    network: Any
    archive: str
    _instances: Any = field(default=None, repr=False)

    def instances(self):
        if self._instances is None:
            from repro.core.instances import compute_instances  # noqa: PLC0415

            self._instances = compute_instances(self.network)
        return self._instances


# -- stage runners -----------------------------------------------------------
# Each runner: (ctx, params) -> (value, items, detail).  ``detail`` is a
# short deterministic marker ("truncated", "approximate", ...), never
# timing data.


def _run_links(ctx: StageContext, params: Dict[str, Any]):
    links = ctx.network.links
    return links, len(links), ""


def _run_process_graph(ctx: StageContext, params: Dict[str, Any]):
    from repro.core.process_graph import build_process_graph  # noqa: PLC0415

    graph = build_process_graph(ctx.network, **params)
    detail = "truncated" if graph.graph.get("truncated") else ""
    return graph, graph.number_of_edges(), detail


def _run_instances(ctx: StageContext, params: Dict[str, Any]):
    from repro.core.instances import compute_instances  # noqa: PLC0415

    instances = compute_instances(ctx.network, **params)
    if not params:
        ctx._instances = instances
    return instances, len(instances), ""


def _run_pathways(ctx: StageContext, params: Dict[str, Any]):
    from repro.core.instances import build_instance_graph  # noqa: PLC0415
    from repro.core.pathways import route_pathway  # noqa: PLC0415

    instances = ctx.instances()
    graph = build_instance_graph(ctx.network, instances)
    truncated = False
    for router in sorted(ctx.network.routers):
        pathway = route_pathway(
            ctx.network, router, instances=instances, instance_graph=graph, **params
        )
        truncated = truncated or pathway.truncated
    return None, len(ctx.network.routers), "truncated" if truncated else ""


def _run_address_space(ctx: StageContext, params: Dict[str, Any]):
    from repro.core.address_space import extract_address_space  # noqa: PLC0415

    blocks = extract_address_space(ctx.network, **params)
    return blocks, len(blocks), ""


def _run_consistency(ctx: StageContext, params: Dict[str, Any]):
    from repro.core.consistency import audit_configuration  # noqa: PLC0415

    report = audit_configuration(ctx.network, **params)
    return report, len(report), "truncated" if report.truncated else ""


def _run_reachability(ctx: StageContext, params: Dict[str, Any]):
    from repro.core.reachability import ReachabilityAnalysis  # noqa: PLC0415

    analysis = ReachabilityAnalysis(ctx.network, instances=ctx.instances(), **params)
    routes = analysis.routes  # force the fixpoint inside the barrier
    return analysis, len(routes), "approximate" if analysis.approximate else ""


def _run_survivability(ctx: StageContext, params: Dict[str, Any]):
    from repro.core.survivability import analyze_survivability  # noqa: PLC0415

    report = analyze_survivability(ctx.network, instances=ctx.instances(), **params)
    return report, len(report.couplings), "truncated" if report.truncated else ""


STAGE_RUNNERS: Dict[str, Callable[[StageContext, Dict[str, Any]], tuple]] = {
    "links": _run_links,
    "process_graph": _run_process_graph,
    "instances": _run_instances,
    "pathways": _run_pathways,
    "address_space": _run_address_space,
    "consistency": _run_consistency,
    "reachability": _run_reachability,
    "survivability": _run_survivability,
}

#: Exceptions worth retrying on a stricter rung: resource exhaustion the
#: bounds exist to prevent.  Anything else is deterministic — the same
#: rung would raise it again — and fails the stage immediately.
_RETRYABLE = (RecursionError, MemoryError)


@dataclass
class ExecutorConfig:
    """Policy knobs for one :class:`AnalysisExecutor`."""

    stage_deadline: Optional[float] = None  # hard per-attempt wall budget
    soft_deadline: Optional[float] = None  # diagnostic-only budget
    run_deadline: Optional[float] = None  # whole-run budget
    resume: bool = False  # replay finished checkpoints
    fail_fast: bool = False  # stop the run at the first timeout/failure
    checkpoints: Optional[CheckpointStore] = None  # None = checkpointing off
    chaos: ChaosPlan = field(default_factory=ChaosPlan)
    ladders: Mapping[str, Tuple[Rung, ...]] = field(
        default_factory=lambda: dict(DEFAULT_LADDERS)
    )
    #: Stage name -> runner; swap entries to substitute a stage
    #: implementation (e.g. the compressed pathway runner).
    runners: Mapping[str, Callable[["StageContext", Dict[str, Any]], tuple]] = field(
        default_factory=lambda: dict(STAGE_RUNNERS)
    )


@dataclass
class ArchiveExecution:
    """All stage results of one archive, plus its digest."""

    archive: str
    digest: str
    results: List[StageResult] = field(default_factory=list)

    @property
    def status(self) -> str:
        return worst_status(result.status for result in self.results) or STATUS_OK

    @property
    def counts(self) -> Dict[str, int]:
        return status_counts(self.results)

    def result(self, stage: str) -> Optional[StageResult]:
        for result in self.results:
            if result.stage == stage:
                return result
        return None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "stages": [result.as_dict() for result in self.results],
        }


class AnalysisExecutor:
    """Runs the analysis stages of each archive under the full barrier."""

    def __init__(self, config: Optional[ExecutorConfig] = None):
        self.config = config or ExecutorConfig()
        # --fail-fast tripped; remaining work skips.  An Event, not a
        # bool: one executor drives every archive worker of a parallel
        # corpus run, and the abort must be visible across threads the
        # instant any of them trips it.
        self._abort = threading.Event()
        self._run_start = time.perf_counter()

    @property
    def aborted(self) -> bool:
        return self._abort.is_set()

    @aborted.setter
    def aborted(self, value: bool) -> None:
        if value:
            self._abort.set()
        else:
            self._abort.clear()

    @property
    def abort_event(self) -> threading.Event:
        """The shared abort signal (the corpus scheduler watches it)."""
        return self._abort

    # -- budgets -------------------------------------------------------------

    def _remaining_run_budget(self) -> Optional[float]:
        if self.config.run_deadline is None:
            return None
        return self.config.run_deadline - (time.perf_counter() - self._run_start)

    def _effective_hard_deadline(self) -> Optional[float]:
        hard = self.config.stage_deadline
        remaining = self._remaining_run_budget()
        if remaining is None:
            return hard
        remaining = max(remaining, 0.0)
        return remaining if hard is None else min(hard, remaining)

    # -- driving -------------------------------------------------------------

    def run_archive(self, archive: str, network: Any) -> ArchiveExecution:
        """Run every analysis stage of one loaded network."""
        digest = archive_digest(getattr(network, "inventory", None) or [])
        execution = ArchiveExecution(archive=archive, digest=digest)
        ctx = StageContext(network=network, archive=archive)
        metrics = get_registry()
        for stage in ANALYSIS_STAGES:
            result = self._run_stage(ctx, digest, stage)
            execution.results.append(result)
            metrics.counter(f"exec.stage.{result.status}").inc()
            metrics.histogram("exec.stage.seconds", stage=stage).observe(
                result.seconds
            )
            self._emit_diagnostics(network, result)
            if self.config.fail_fast and result.status in (
                STATUS_TIMEOUT,
                STATUS_FAILED,
            ):
                self.aborted = True
                _log.error(
                    "fail-fast abort", archive=archive, stage=stage, status=result.status
                )
        return execution

    def _run_stage(self, ctx: StageContext, digest: str, stage: str) -> StageResult:
        store = self.config.checkpoints
        if store is not None and self.config.resume:
            cached = store.load(digest, stage)
            if cached is not None:
                _log.info(
                    "stage replayed from checkpoint", archive=ctx.archive, stage=stage
                )
                return cached
        if self.aborted:
            return StageResult(
                stage=stage, status=STATUS_SKIPPED, attempts=0, detail="fail-fast abort"
            )
        remaining = self._remaining_run_budget()
        if remaining is not None and remaining <= 0:
            return StageResult(
                stage=stage,
                status=STATUS_SKIPPED,
                attempts=0,
                detail="run deadline exhausted",
            )
        result = self._execute_ladder(ctx, stage)
        if store is not None and result.finished:
            store.store(digest, ctx.archive, result)
        return result

    def _execute_ladder(self, ctx: StageContext, stage: str) -> StageResult:
        ladder = tuple(self.config.ladders.get(stage) or (Rung("full"),))
        runner = self.config.runners.get(stage) or STAGE_RUNNERS[stage]
        metrics = get_registry()
        total_seconds = 0.0
        last_error = ""
        timed_out = False
        for attempt, rung in enumerate(ladder):
            params = dict(rung.params)

            def call(attempt=attempt, params=params):
                self.config.chaos.trigger(ctx.archive, stage, attempt)
                return runner(ctx, params)

            def on_soft(elapsed: float, attempt=attempt) -> None:
                metrics.counter("exec.stage.soft_deadline").inc()
                _log.warning(
                    "stage over soft deadline",
                    archive=ctx.archive,
                    stage=stage,
                    attempt=attempt,
                )

            outcome = run_with_deadline(
                call,
                name=f"{ctx.archive}:{stage}",
                hard_deadline=self._effective_hard_deadline(),
                soft_deadline=self.config.soft_deadline,
                on_soft=on_soft,
            )
            total_seconds += outcome.seconds
            if outcome.error is not None:
                if not isinstance(outcome.error, Exception):
                    # KeyboardInterrupt / SimulatedKill: nothing to
                    # salvage — re-raise on the caller's thread.
                    raise outcome.error
                if isinstance(outcome.error, _RETRYABLE):
                    timed_out = False
                    last_error = (
                        f"{type(outcome.error).__name__}: {outcome.error}"
                    )
                    _log.warning(
                        "stage exhausted resources, degrading",
                        archive=ctx.archive,
                        stage=stage,
                        attempt=attempt,
                        error=last_error,
                    )
                    continue
                return StageResult(
                    stage=stage,
                    status=STATUS_FAILED,
                    seconds=total_seconds,
                    attempts=attempt + 1,
                    error=f"{type(outcome.error).__name__}: {outcome.error}",
                    degradation=rung.label if attempt else "",
                )
            if outcome.timed_out:
                timed_out = True
                last_error = ""
                _log.warning(
                    "stage attempt timed out",
                    archive=ctx.archive,
                    stage=stage,
                    attempt=attempt,
                    rung=rung.label,
                )
                continue
            value, items, detail = outcome.value
            return StageResult(
                stage=stage,
                status=STATUS_OK if attempt == 0 else STATUS_DEGRADED,
                seconds=total_seconds,
                items=items,
                attempts=attempt + 1,
                detail=detail,
                degradation=rung.label if attempt else "",
                value=value,
            )
        # Ladder exhausted without a finished attempt.
        if timed_out:
            return StageResult(
                stage=stage,
                status=STATUS_TIMEOUT,
                seconds=total_seconds,
                attempts=len(ladder),
                detail="hard deadline on every rung",
            )
        return StageResult(
            stage=stage,
            status=STATUS_FAILED,
            seconds=total_seconds,
            attempts=len(ladder),
            error=last_error,
        )

    # -- reporting -----------------------------------------------------------

    @staticmethod
    def _emit_diagnostics(network: Any, result: StageResult) -> None:
        """Fold a stage outcome into the network's diagnostic sink.

        Deterministic by construction — messages derive only from the
        result summary (status, rung, error text), never from wall time
        or checkpoint provenance, so a resumed run re-emits exactly what
        the uninterrupted run would have.
        """
        sink = network.diagnostics
        if result.status == STATUS_DEGRADED:
            sink.warning(
                PHASE_ANALYSIS,
                f"stage {result.stage} degraded ({result.degradation})",
            )
        elif result.status == STATUS_TIMEOUT:
            sink.error(
                PHASE_ANALYSIS,
                f"stage {result.stage} timed out ({result.detail})",
            )
        elif result.status == STATUS_FAILED:
            sink.error(
                PHASE_ANALYSIS,
                f"stage {result.stage} failed: {result.error}",
            )
        elif result.status == STATUS_SKIPPED:
            sink.warning(
                PHASE_ANALYSIS,
                f"stage {result.stage} skipped ({result.detail})",
            )


__all__ = [
    "ANALYSIS_STAGES",
    "AnalysisExecutor",
    "ArchiveExecution",
    "DEFAULT_LADDERS",
    "ExecutorConfig",
    "Rung",
    "STAGE_RUNNERS",
    "StageContext",
]
