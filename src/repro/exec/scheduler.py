"""Corpus-level scheduling: analyze archives concurrently, merge in order.

The paper's workload is 31 *independent* networks analyzed in one batch;
``repro corpus`` long parsed each archive in parallel but still walked
the archives themselves strictly serially, so corpus wall time was the
sum over archives instead of the max.  :class:`CorpusScheduler` closes
that gap: it fans the whole per-archive pipeline (ingest → all analysis
stages) out across ``--archive-jobs`` worker threads.

Why threads, not processes: the expensive part of an archive — parsing —
already runs in a :class:`~concurrent.futures.ProcessPoolExecutor` fed
by :func:`repro.ingest.parallel.parse_many`, and the GIL is released
while an archive thread waits on its pool.  Concurrent archive threads
therefore overlap real multi-core parse work; the pure-Python analysis
stages interleave on the GIL, which is cheap for them and keeps every
result object in one address space (no pickling of networks).  The
per-archive pools stay inside one shared
:class:`~repro.ingest.parallel.WorkerBudget`, so ``--archive-jobs`` and
``--jobs`` split one machine instead of multiplying against each other.

Determinism contract (the same one PR 2 established for parse jobs):
workers return their results to the caller, and the caller receives them
**in archive order**, whatever order the threads finished in.  Spans are
collected per archive on private tracers and grafted back in archive
order; metrics go to the shared (locked) registry, whose counter slice
is order-independent sums.  ``--archive-jobs 8`` therefore produces the
same normalized manifest, exit code, and ``--json`` payload as
``--archive-jobs 1``.

Failure semantics compose with the PR 4 executor:

* the executor's ``--fail-fast`` abort event is shared; archives that
  have not *started* when it trips are reported as skipped outcomes
  (never silently dropped), while in-flight archives finish with their
  remaining stages individually skipped by the executor;
* a ``BaseException`` escaping a worker (``SimulatedKill``, strict-mode
  parse errors raised as ``SystemExit``, ``KeyboardInterrupt``) stops
  new archives from starting, and the *first such error in archive
  order* is re-raised on the calling thread once in-flight archives have
  drained — exactly where the serial loop would have raised it.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.ingest.parallel import MAX_AUTO_JOBS, available_cpus
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry, use_registry
from repro.obs.trace import Tracer, activate_tracer, current_tracer

_log = get_logger("exec.scheduler")


def archive_name(path: str) -> str:
    """The display name of an archive path (its trailing component)."""
    return os.path.basename(path.rstrip(os.sep)) or path


def resolve_archive_jobs(archive_jobs: Optional[int], n_archives: int) -> int:
    """Turn an ``--archive-jobs`` request into a concrete thread count.

    ``None`` (flag absent) stays serial — the scheduler is opt-in.
    ``0`` auto-detects: one thread per CPU, capped at
    :data:`~repro.ingest.parallel.MAX_AUTO_JOBS` and at the archive
    count.  Explicit requests are honored but never exceed the archive
    count.
    """
    if archive_jobs is not None and archive_jobs < 0:
        raise ValueError(f"archive-jobs must be >= 0, got {archive_jobs}")
    if n_archives <= 0:
        return 1
    if archive_jobs is None:
        return 1
    if archive_jobs == 0:
        return max(1, min(available_cpus(), MAX_AUTO_JOBS, n_archives))
    return min(archive_jobs, n_archives)


@dataclass
class ArchiveOutcome:
    """What happened to one scheduled archive.

    Exactly one of these holds:

    * ``skipped`` — the archive never started (the shared abort tripped,
      or an earlier archive's worker raised);
    * ``error`` set — the worker raised (re-raised by :meth:`run` for
      the first erroring archive in archive order);
    * otherwise ``value`` is the worker's return value.
    """

    index: int
    path: str
    name: str
    skipped: bool = False
    value: Any = None
    error: Optional[BaseException] = None


class CorpusScheduler:
    """Runs one worker callable per archive, concurrently, merging in order.

    *abort* is an optional :class:`threading.Event` (in practice the
    executor's ``--fail-fast`` signal): once set, archives that have not
    started are skipped instead of run.
    """

    def __init__(
        self, *, archive_jobs: int = 1, abort: Optional[threading.Event] = None
    ):
        if archive_jobs < 1:
            raise ValueError(f"archive_jobs must be >= 1, got {archive_jobs}")
        self.archive_jobs = archive_jobs
        self._abort = abort
        self._stop = threading.Event()  # a worker raised; stop launching

    def _should_skip(self) -> bool:
        return self._stop.is_set() or (
            self._abort is not None and self._abort.is_set()
        )

    def run(
        self, paths: Sequence[str], worker: Callable[[str], Any]
    ) -> List[ArchiveOutcome]:
        """Run ``worker(path)`` for every archive; outcomes in archive order."""
        outcomes = [
            ArchiveOutcome(index=index, path=path, name=archive_name(path))
            for index, path in enumerate(paths)
        ]
        if self.archive_jobs <= 1 or len(outcomes) <= 1:
            self._run_serial(outcomes, worker)
        else:
            self._run_threaded(outcomes, worker)
        for outcome in outcomes:  # first error in archive order wins
            if outcome.error is not None:
                raise outcome.error
        return outcomes

    # -- serial --------------------------------------------------------------

    def _run_serial(
        self, outcomes: List[ArchiveOutcome], worker: Callable[[str], Any]
    ) -> None:
        tracer = current_tracer()
        for outcome in outcomes:
            if self._should_skip():
                outcome.skipped = True
                continue
            if tracer is not None:
                with tracer.span(f"archive:{outcome.name}"):
                    outcome.value = worker(outcome.path)
            else:
                outcome.value = worker(outcome.path)

    # -- threaded ------------------------------------------------------------

    def _run_threaded(
        self, outcomes: List[ArchiveOutcome], worker: Callable[[str], Any]
    ) -> None:
        # Observability scoping is thread-local: each worker thread
        # re-activates the caller's registry (shared, locked) but traces
        # into a *private* tracer — a span stack cannot take interleaved
        # pushes from two archives.  The private trees are grafted back
        # below, in archive order, so trace structure is deterministic.
        registry = get_registry()
        parent_tracer = current_tracer()
        tracers: List[Optional[Tracer]] = [None] * len(outcomes)

        def run_one(outcome: ArchiveOutcome) -> None:
            if self._should_skip():
                outcome.skipped = True
                return
            tracer = Tracer() if parent_tracer is not None else None
            tracers[outcome.index] = tracer
            try:
                with use_registry(registry), activate_tracer(tracer):
                    if tracer is not None:
                        with tracer.span(f"archive:{outcome.name}"):
                            outcome.value = worker(outcome.path)
                    else:
                        outcome.value = worker(outcome.path)
            except BaseException as exc:  # noqa: BLE001 — re-raised in order
                outcome.error = exc
                self._stop.set()
                _log.error(
                    "archive worker raised",
                    archive=outcome.name,
                    error=f"{type(exc).__name__}: {exc}",
                )

        workers = min(self.archive_jobs, len(outcomes))
        _log.info(
            "scheduling archives", archives=len(outcomes), archive_jobs=workers
        )
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-archive"
        ) as pool:
            futures = [pool.submit(run_one, outcome) for outcome in outcomes]
            for future in futures:
                future.result()  # run_one never raises; this is a join

        if parent_tracer is not None:
            for outcome in outcomes:
                tracer = tracers[outcome.index]
                if tracer is not None:
                    parent_tracer.graft(tracer)


__all__ = [
    "ArchiveOutcome",
    "CorpusScheduler",
    "archive_name",
    "resolve_archive_jobs",
]
