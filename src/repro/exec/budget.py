"""Deadline defaults derived from measured stage timings.

PR 3 gave every analysis pass a timing histogram and the throughput
benchmark writes per-stage wall times to
``benchmarks/results/pipeline_throughput_analysis.json``.  A hand-picked
``--stage-deadline`` goes stale the moment the corpus or the hardware
changes; this module promotes the measured numbers into the default
budget instead: the suggested deadline is the slowest measured stage
times a generous safety factor, floored so tiny benchmark corpora do not
produce hair-trigger deadlines.

``repro corpus --stage-deadline auto`` resolves through
:func:`suggest_stage_deadline`, and the chosen budget (value + source) is
recorded in the run manifest's ``environment.execution`` block either
way, so every manifest says what bound the run operated under.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Optional

#: Environment override for the benchmark results file.
BENCH_RESULTS_ENV = "REPRO_BENCH_RESULTS"

#: Default location relative to the working directory (the repo layout).
DEFAULT_RESULTS_PATH = os.path.join(
    "benchmarks", "results", "pipeline_throughput_analysis.json"
)

#: Fallback when no benchmark data is available.
FALLBACK_STAGE_DEADLINE = 60.0

#: Headroom multiplier over the slowest measured stage.  Deadlines exist
#: to catch runaways (10x-and-up blowups), not to police normal variance.
SAFETY_FACTOR = 25.0

#: Never suggest a deadline below this, whatever the benchmark measured.
MIN_STAGE_DEADLINE = 5.0


@dataclass(frozen=True)
class DeadlineSuggestion:
    """A derived stage deadline plus its provenance (for the manifest)."""

    seconds: float
    source: str  # "benchmarks" | "fallback"
    detail: str = ""

    def as_dict(self) -> dict:
        data = {"seconds": round(self.seconds, 3), "source": self.source}
        if self.detail:
            data["detail"] = self.detail
        return data


def _results_path(path: Optional[str]) -> str:
    if path:
        return path
    return os.environ.get(BENCH_RESULTS_ENV) or DEFAULT_RESULTS_PATH


def suggest_stage_deadline(path: Optional[str] = None) -> DeadlineSuggestion:
    """Derive a ``--stage-deadline`` from the benchmark timing JSON.

    Reads the per-stage seconds from *path* (default:
    ``$REPRO_BENCH_RESULTS`` or the repo's benchmark results file), takes
    the slowest stage, and scales it by :data:`SAFETY_FACTOR`, clamped to
    at least :data:`MIN_STAGE_DEADLINE`.  Missing or malformed data falls
    back to :data:`FALLBACK_STAGE_DEADLINE` — a bad benchmark file must
    never break a corpus run.
    """
    resolved = _results_path(path)
    try:
        with open(resolved) as handle:
            payload = json.load(handle)
        stage_seconds = [
            float(stage["seconds"])
            for stage in payload.get("stages", [])
            if isinstance(stage, dict) and "seconds" in stage
        ]
        if "seconds_full_analysis" in payload:
            stage_seconds.append(float(payload["seconds_full_analysis"]))
        slowest = max(stage_seconds)
    except Exception:  # noqa: BLE001 — any damage falls back to the default
        return DeadlineSuggestion(
            seconds=FALLBACK_STAGE_DEADLINE,
            source="fallback",
            detail=f"no usable benchmark data at {resolved}",
        )
    seconds = max(MIN_STAGE_DEADLINE, slowest * SAFETY_FACTOR)
    return DeadlineSuggestion(
        seconds=seconds,
        source="benchmarks",
        detail=f"{slowest:.3f}s slowest measured stage x{SAFETY_FACTOR:g} ({resolved})",
    )


__all__ = [
    "BENCH_RESULTS_ENV",
    "DEFAULT_RESULTS_PATH",
    "FALLBACK_STAGE_DEADLINE",
    "MIN_STAGE_DEADLINE",
    "SAFETY_FACTOR",
    "DeadlineSuggestion",
    "suggest_stage_deadline",
]
