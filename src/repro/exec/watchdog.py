"""Wall-clock deadlines for analysis stages.

A stage that hangs — an exponential blowup in predicate propagation, a
BFS that never drains — must not take the whole corpus run down with it.
:func:`run_with_deadline` runs the stage in a worker thread while the
calling thread keeps the clock:

* at the **soft deadline** the ``on_soft`` callback fires (diagnostic +
  metric; the stage keeps running);
* at the **hard deadline** a :class:`StageCancelled` exception is
  injected into the worker thread (CPython async-exception injection),
  which unwinds pure-Python loops at the next bytecode boundary.  A
  worker stuck inside a C call cannot be unwound; after a short grace
  period it is abandoned as a daemon thread and the stage is reported
  timed out regardless.

With no deadlines configured the stage runs inline on the calling thread
— the normal path pays nothing for the protection it does not use.
"""

from __future__ import annotations

import ctypes
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry, use_registry
from repro.obs.trace import activate_tracer, current_tracer

_log = get_logger("exec.watchdog")

#: How long to wait for a cancelled worker to unwind before abandoning it.
CANCEL_GRACE_SECONDS = 0.5

#: Poll interval while waiting on the worker (keeps soft-deadline
#: resolution reasonable without busy-waiting).
_POLL_SECONDS = 0.02


class StageCancelled(BaseException):
    """Injected into a stage thread at its hard deadline.

    Derives from ``BaseException`` so stage code that catches broad
    ``Exception`` (barriers, lenient loops) cannot swallow the cancel.
    """


@dataclass
class WatchdogOutcome:
    """What happened to one guarded call."""

    value: Any = None
    error: Optional[BaseException] = None
    timed_out: bool = False
    soft_deadline_hit: bool = False
    seconds: float = 0.0
    abandoned: bool = False  # worker never unwound (stuck in C code)


def _inject_exception(thread_id: int, exc_type: type) -> bool:
    """Raise *exc_type* asynchronously in the thread with *thread_id*."""
    try:
        affected = ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(thread_id), ctypes.py_object(exc_type)
        )
    except Exception:  # pragma: no cover - non-CPython fallback
        return False
    if affected > 1:  # pragma: no cover - undo an over-broad injection
        ctypes.pythonapi.PyThreadState_SetAsyncExc(ctypes.c_ulong(thread_id), None)
        return False
    return affected == 1


def run_with_deadline(
    fn: Callable[[], Any],
    *,
    name: str = "stage",
    hard_deadline: Optional[float] = None,
    soft_deadline: Optional[float] = None,
    on_soft: Optional[Callable[[float], None]] = None,
) -> WatchdogOutcome:
    """Run ``fn()`` under soft/hard wall-clock deadlines.

    Returns a :class:`WatchdogOutcome`; exactly one of ``value`` /
    ``error`` / ``timed_out`` describes the ending.  Deadlines are in
    seconds; ``None`` disables the respective deadline.  With neither
    deadline set the call is made inline (no thread).
    """
    start = time.perf_counter()
    if hard_deadline is None and soft_deadline is None:
        outcome = WatchdogOutcome()
        try:
            outcome.value = fn()
        except Exception as exc:  # noqa: BLE001 — barrier: report, don't die
            outcome.error = exc
        outcome.seconds = time.perf_counter() - start
        return outcome

    outcome = WatchdogOutcome()
    done = threading.Event()
    # Observability scoping is thread-local; the worker thread inherits
    # the caller's registry and tracer explicitly so stage metrics and
    # spans land in the same run they would have landed in inline.
    registry = get_registry()
    tracer = current_tracer()

    def worker() -> None:
        try:
            with use_registry(registry), activate_tracer(tracer):
                result = fn()
        except StageCancelled:
            return  # the watchdog already recorded the timeout
        except BaseException as exc:  # noqa: BLE001 — barrier; the caller
            # decides whether non-Exception escapees (KeyboardInterrupt,
            # SimulatedKill) are re-raised on its own thread.
            outcome.error = exc
        else:
            outcome.value = result
        finally:
            done.set()

    thread = threading.Thread(
        target=worker, name=f"repro-stage-{name}", daemon=True
    )
    thread.start()

    soft_fired = False
    while True:
        elapsed = time.perf_counter() - start
        if done.wait(timeout=_POLL_SECONDS):
            break
        if (
            not soft_fired
            and soft_deadline is not None
            and elapsed >= soft_deadline
        ):
            soft_fired = True
            outcome.soft_deadline_hit = True
            _log.warning(
                "stage over soft deadline", stage=name, soft_deadline=soft_deadline
            )
            if on_soft is not None:
                on_soft(elapsed)
        if hard_deadline is not None and elapsed >= hard_deadline:
            if done.is_set():  # finished while we were checking — not a timeout
                break
            outcome.timed_out = True
            _log.warning(
                "stage hit hard deadline, cancelling",
                stage=name,
                hard_deadline=hard_deadline,
            )
            if thread.ident is not None:
                _inject_exception(thread.ident, StageCancelled)
            thread.join(CANCEL_GRACE_SECONDS)
            if thread.is_alive():
                # Stuck in a C call; nothing more we can do from here.
                # The daemon thread is abandoned and the run moves on.
                outcome.abandoned = True
                _log.error("cancelled stage did not unwind", stage=name)
            outcome.value = None
            outcome.error = None
            break

    outcome.seconds = time.perf_counter() - start
    return outcome


__all__ = [
    "CANCEL_GRACE_SECONDS",
    "StageCancelled",
    "WatchdogOutcome",
    "run_with_deadline",
]
