"""Census-shaping interface flavor and configuration boilerplate.

Table 3's interface census (96,487 interfaces over 8,035 devices ≈ 12 per
router) and Figure 4's file sizes (avg 270 lines) reflect a lot of
configuration that has nothing to do with routing design: provisioning
spares, legacy LAN ports, dial backup, and global service boilerplate.
This module adds that mass — in a way that is *inert* for the analysis
(extra interfaces are shutdown and unnumbered, so they form no links and
are never external-facing candidates; boilerplate lines are outside the
parser's modeled subset and are preserved verbatim).
"""

from __future__ import annotations

import random
from typing import Dict

from repro.ios.config import InterfaceConfig
from repro.synth.builder import NetworkBuilder

#: Expected extra interfaces per router, shaped after Table 3's column.
BASE_RATES: Dict[str, float] = {
    "Serial": 5.2,
    "FastEthernet": 2.0,
    "ATM": 0.40,
    "Ethernet": 0.28,
    "Hssi": 0.15,
    "GigabitEthernet": 0.15,
    "TokenRing": 0.10,
    "Dialer": 0.13,
    "BRI": 0.10,
    "Tunnel": 0.025,
    "Port": 0.018,
    "Async": 0.011,
    "Virtual": 0.010,
    "Channel": 0.006,
    "CBR": 0.0017,
    "Fddi": 0.0007,
    "Multilink": 0.0005,
    "Null": 0.00025,
}

#: Style adjustments applied multiplicatively / additively on the base.
STYLE_OVERRIDES: Dict[str, Dict[str, float]] = {
    "enterprise": {},
    "legacy": {"TokenRing": 0.9, "Ethernet": 1.4, "BRI": 0.4, "Dialer": 0.5},
    "atm-heavy": {"ATM": 1.6, "Serial": 3.0},
    "backbone": {
        "POS": 0.35,
        "GigabitEthernet": 0.45,
        "ATM": 0.5,
        "TokenRing": 0.0,
        "BRI": 0.0,
        "Dialer": 0.0,
        "Serial": 2.0,
    },
}


def add_flavor_interfaces(
    builder: NetworkBuilder, rng: random.Random, style: str = "enterprise"
) -> None:
    """Add shutdown, unnumbered interfaces to every router.

    These model provisioning spares and non-IP ports: they appear in the
    interface census and inflate file sizes, but carry no addresses so the
    link/external analysis never sees them.
    """
    rates = dict(BASE_RATES)
    rates.update(STYLE_OVERRIDES.get(style, {}))
    for router in builder.routers:
        for kind, rate in rates.items():
            count = int(rate) + (1 if rng.random() < (rate - int(rate)) else 0)
            for _ in range(count):
                name = builder._next_interface_name(router, kind)
                iface = InterfaceConfig(name=name, shutdown=True)
                if kind == "Serial" and rng.random() < 0.3:
                    iface.encapsulation = "frame-relay"
                if rng.random() < 0.15:
                    iface.description = f"spare-{rng.randint(100, 999)}"
                builder.routers[router].interfaces[name] = iface


_BOILERPLATE_FIXED = (
    "version 12.2",
    "service timestamps debug datetime msec",
    "service timestamps log datetime msec",
    "service password-encryption",
    "no service pad",
    "no ip domain-lookup",
    "ip subnet-zero",
    "ip classless",
    "ip cef",
    "no ip http server",
    "no ip source-route",
    "cdp run",
    "clock timezone GMT 0",
    "logging buffered 16384 debugging",
    "no logging console",
    "memory-size iomem 10",
    "aaa new-model",
    "scheduler allocate 20000 1000",
    "alias exec sb show ip bgp summary",
)


def add_boilerplate(
    builder: NetworkBuilder,
    rng: random.Random,
    min_lines: int = 70,
    max_lines: int = 240,
) -> None:
    """Append global configuration boilerplate to every router.

    All lines fall outside the parser's modeled subset, so they are carried
    verbatim through parse/serialize cycles and simply make the file sizes
    realistic (Figure 4's ~270-line average)."""
    for router, config in builder.routers.items():
        budget = rng.randint(min_lines, max_lines)
        lines = list(_BOILERPLATE_FIXED[: min(budget, len(_BOILERPLATE_FIXED))])
        serial = 0
        while len(lines) < budget:
            serial += 1
            choice = serial % 7
            host = f"10.{rng.randint(0, 254)}.{rng.randint(0, 254)}.{rng.randint(1, 254)}"
            if choice == 0:
                lines.append(f"ntp server {host}")
            elif choice == 1:
                lines.append(f"logging host {host}")
            elif choice == 2:
                lines.append(f"snmp-server host {host} public")
            elif choice == 3:
                lines.append(f"ip name-server {host}")
            elif choice == 4:
                lines.append(f"tacacs-server host {host}")
            elif choice == 5:
                lines.append(f"snmp-server community comm{rng.randint(10, 99)} RO")
            else:
                lines.append(f"ip domain-name site{serial}.example.net")
        config.unmodeled_lines.extend(lines)
