"""Synthetic configuration corpus generator.

The paper's raw data — 8,035 production Cisco IOS configuration files — is
proprietary and unobtainable, so this package synthesizes the corpus (see
DESIGN.md §2 for the substitution argument).  It emits genuine IOS text via
:mod:`repro.ios.serializer`, built from parameterized design templates:

* :mod:`repro.synth.templates.enterprise` — textbook enterprise designs,
* :mod:`repro.synth.templates.backbone` — textbook transit backbones,
* :mod:`repro.synth.templates.tier2` — tier-2 ISPs with staging IGP
  instances,
* :mod:`repro.synth.templates.net5` — the compartmentalized EIGRP/BGP
  design of §5.1/§6.1,
* :mod:`repro.synth.templates.net15` — the reachability-restricted design
  of §6.2,
* :mod:`repro.synth.templates.hybrid` — randomized unclassifiable designs.

Every generator returns ``(configs, NetworkSpec)`` where the spec carries
the ground truth (design class, instance structure, external interfaces),
so tests can verify the analyzer recovers the truth blindly from the
serialized text.  :mod:`repro.synth.corpus` assembles the paper's
31-network study set with the reported marginals.
"""

from repro.synth.addressing import AddressPool
from repro.synth.builder import NetworkBuilder
from repro.synth.corpus import CorpusNetwork, paper_corpus, repository_sizes
from repro.synth.faults import (
    InjectedFault,
    analysis_fault_kinds,
    fault_kinds,
    inject_analysis_fault,
    inject_fault,
)
from repro.synth.spec import NetworkSpec

__all__ = [
    "AddressPool",
    "CorpusNetwork",
    "InjectedFault",
    "NetworkBuilder",
    "NetworkSpec",
    "analysis_fault_kinds",
    "fault_kinds",
    "inject_analysis_fault",
    "inject_fault",
    "paper_corpus",
    "repository_sizes",
]
