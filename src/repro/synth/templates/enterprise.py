"""Textbook enterprise routing design (§3.1's left half, §7.1).

Pattern: a small number of border routers speak EBGP to the provider(s),
craft a few summary routes, and redistribute them into the IGP; every other
router learns all its routes from the IGP.  This minimizes BGP
configuration and avoids an IBGP mesh entirely.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.core.classify import DesignClass
from repro.net import Prefix
from repro.synth.addressing import NetworkAddressPlan
from repro.synth.builder import BuiltInterface, NetworkBuilder
from repro.synth.spec import ExpectedInstance, NetworkSpec

#: Public-looking provider AS numbers used by generated networks.
PROVIDER_ASNS = (7018, 701, 1239, 3356, 2914, 6453, 3549, 1299)


def build_enterprise(
    name: str,
    index: int,
    n_routers: int,
    seed: int = 0,
    igp: str = "ospf",
    n_borders: int = 1,
    n_igp_instances: int = 1,
    internal_filter_share: float = 0.2,
    with_filters: bool = True,
) -> Tuple[Dict[str, str], NetworkSpec]:
    """Generate a textbook enterprise network.

    Returns ``(configs, spec)`` where *configs* maps router name → IOS text.
    """
    if n_routers < n_borders + 1:
        raise ValueError("need at least one interior router per enterprise")
    rng = random.Random(seed)
    plan = NetworkAddressPlan.standard(index)
    builder = NetworkBuilder(plan, rng=rng)
    local_as = 64512 + (index % 1000)

    border_names = [f"{name}-border{i}" for i in range(n_borders)]
    interior_count = n_routers - n_borders
    interior_names = [f"{name}-r{i}" for i in range(interior_count)]
    for router in border_names + interior_names:
        builder.add_router(router)

    # Split interior routers across the requested IGP instances; each
    # instance is a hub-and-spoke tree rooted at its first router.
    igp_groups = _split_groups(interior_names, n_igp_instances)
    hubs = []
    internal_ifaces = []
    for group_index, group in enumerate(igp_groups):
        process_id = 100 + group_index
        hub = group[0]
        hubs.append((hub, process_id))
        for spoke in group[1:]:
            end_a, end_b = builder.connect(hub, spoke, kind="Serial")
            _cover(builder, end_a, igp, process_id)
            _cover(builder, end_b, igp, process_id)
            internal_ifaces.extend([end_a, end_b])
            lan = builder.add_lan(spoke, kind="FastEthernet")
            _cover(builder, lan, igp, process_id)
            internal_ifaces.append(lan)
        hub_lan = builder.add_lan(hub, kind="FastEthernet")
        _cover(builder, hub_lan, igp, process_id)
        internal_ifaces.append(hub_lan)

    # Each border router connects to every hub and to one provider.
    provider_asns = []
    for border_index, border in enumerate(border_names):
        for hub, process_id in hubs:
            end_a, end_b = builder.connect(border, hub, kind="Serial")
            _cover(builder, end_a, igp, process_id)
            _cover(builder, end_b, igp, process_id)
            internal_ifaces.extend([end_a, end_b])
        uplink = builder.add_external_link(border, kind="Serial")
        provider_asn = PROVIDER_ASNS[(index + border_index) % len(PROVIDER_ASNS)]
        provider_asns.append(provider_asn)
        builder.external_ebgp_session(uplink, local_as, provider_asn)
        bgp = builder.routers[border].bgp_process

        # Announce the internal space; accept a default plus provider blocks.
        internal_block = plan.internal
        bgp.networks.append(_network_statement(internal_block))

        # The textbook enterprise move: summarize what BGP learned and
        # inject it into the IGP at the border.
        summary = Prefix(0, 0)
        map_name = f"EXT-IN-{border_index}"
        builder.add_route_map_permitting(border, map_name, [summary])
        for hub, process_id in hubs:
            target = _process_for(builder, border, igp, process_id)
            builder.redistribute(
                border, target, "bgp", source_id=local_as, route_map=map_name, metric=100
            )
            builder.redistribute(border, target, "connected")

    # IBGP between borders so they agree on external routes.
    if n_borders > 1:
        loopbacks = [builder.add_loopback(border) for border in border_names]
        for i, lb_a in enumerate(loopbacks):
            for lb_b in loopbacks[i + 1:]:
                builder.ibgp_session(lb_a, lb_b, local_as)

    if with_filters:
        from repro.synth.filters import place_filters  # noqa: PLC0415

        place_filters(
            builder, rng,
            [(iface.router, iface.name) for iface in internal_ifaces],
            total_rules=rng.randint(40, 160),
            internal_share=internal_filter_share,
        )

    from repro.synth.flavor import add_boilerplate, add_flavor_interfaces  # noqa: PLC0415

    add_flavor_interfaces(
        builder, rng, style=rng.choice(("enterprise", "legacy", "atm-heavy"))
    )
    add_boilerplate(builder, rng)

    spec = NetworkSpec(
        name=name,
        design=DesignClass.ENTERPRISE,
        router_count=n_routers,
        internal_as_count=1,
        external_as_count=len(set(provider_asns)),
        has_filters=with_filters,
        internal_filter_fraction=internal_filter_share if with_filters else None,
        external_interfaces=list(builder.external_interfaces),
    )
    for group_index, group in enumerate(igp_groups):
        spec.expected_instances.append(
            ExpectedInstance(
                protocol=igp, size=len(group) + n_borders, external=False
            )
        )
    spec.expected_instances.append(
        ExpectedInstance(protocol="bgp", size=n_borders, asn=local_as, external=True)
    )
    return builder.serialize(), spec


def _split_groups(items, n_groups):
    n_groups = max(1, min(n_groups, len(items)))
    groups = [[] for _ in range(n_groups)]
    for position, item in enumerate(items):
        groups[position % n_groups].append(item)
    return [group for group in groups if group]


def _cover(builder: NetworkBuilder, iface: BuiltInterface, igp: str, process_id: int):
    if igp == "ospf":
        builder.cover_ospf(iface, process_id)
    elif igp == "eigrp":
        builder.cover_eigrp(iface, process_id)
    elif igp == "rip":
        builder.cover_rip(iface)
    else:
        raise ValueError(f"unsupported IGP {igp!r}")


def _process_for(builder: NetworkBuilder, router: str, igp: str, process_id: int):
    if igp == "ospf":
        return builder.ensure_ospf(router, process_id)
    if igp == "eigrp":
        return builder.ensure_eigrp(router, process_id)
    return builder.ensure_rip(router)


def _network_statement(prefix: Prefix):
    from repro.ios.config import NetworkStatement  # noqa: PLC0415

    return NetworkStatement(address=prefix.network, mask=prefix.netmask)


