"""Mixed-vendor network: JunOS core, IOS edge.

Real operator networks mix vendors; the paper's framework is vendor-neutral
(§2: "the granularity and type of information they contain are very
similar").  This template emits a network whose core routers are serialized
in the JunOS dialect and whose access routers are Cisco IOS — the analyzer
sees one coherent design.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.core.classify import DesignClass
from repro.ios.serializer import serialize_config
from repro.junos.serializer import serialize_junos_config
from repro.synth.addressing import NetworkAddressPlan
from repro.synth.builder import NetworkBuilder
from repro.synth.spec import ExpectedInstance, NetworkSpec


def build_mixed(
    name: str,
    index: int,
    n_routers: int = 12,
    seed: int = 0,
    core_size: int = 4,
) -> Tuple[Dict[str, str], NetworkSpec]:
    """Generate a mixed-vendor network (JunOS core ring + IOS access)."""
    rng = random.Random(seed)
    plan = NetworkAddressPlan.standard(index)
    builder = NetworkBuilder(plan, rng=rng)
    local_as = 64700 + (index % 100)

    core_size = max(2, min(core_size, n_routers - 1))
    core = [f"{name}-core{i}" for i in range(core_size)]
    access = [f"{name}-acc{i}" for i in range(n_routers - core_size)]
    for router in core + access:
        builder.add_router(router)

    # Core ring on POS links, one OSPF instance, IBGP mesh via loopbacks.
    for i in range(core_size):
        end_a, end_b = builder.connect(core[i], core[(i + 1) % core_size], kind="POS")
        builder.cover_ospf(end_a, 1)
        builder.cover_ospf(end_b, 1)
    loopbacks = {}
    for router in core:
        loopback = builder.add_loopback(router)
        loopbacks[router] = loopback
        builder.cover_ospf(loopback, 1)
    for i, router_a in enumerate(core):
        for router_b in core[i + 1:]:
            builder.ibgp_session(loopbacks[router_a], loopbacks[router_b], local_as)

    # Access routers (IOS) hang off the core, joining the same OSPF.
    for access_index, router in enumerate(access):
        hub = core[access_index % core_size]
        end_a, end_b = builder.connect(hub, router, kind="Serial")
        builder.cover_ospf(end_a, 1)
        builder.cover_ospf(end_b, 1)
        lan = builder.add_lan(router, kind="FastEthernet")
        builder.cover_ospf(lan, 1)

    # One external peering on the first core router.
    uplink = builder.add_external_link(core[0], kind="Serial")
    builder.external_ebgp_session(uplink, local_as, 7018)

    configs = {}
    for router, config in builder.routers.items():
        if router in core:
            configs[router] = serialize_junos_config(config)
        else:
            configs[router] = serialize_config(config)

    # JunOS interface names come back unit-qualified; translate the ground
    # truth for external interfaces on JunOS routers accordingly.
    external_truth = [
        (router, iface if ("." in iface or router not in core) else f"{iface}.0")
        for router, iface in builder.external_interfaces
    ]

    spec = NetworkSpec(
        name=name,
        design=DesignClass.UNCLASSIFIABLE,
        router_count=n_routers,
        internal_as_count=1,
        external_as_count=1,
        has_filters=False,
        external_interfaces=external_truth,
        expected_instances=[
            ExpectedInstance(protocol="ospf", size=n_routers),
            ExpectedInstance(protocol="bgp", size=core_size, asn=local_as, external=True),
        ],
    )
    spec.notes["junos_routers"] = core
    spec.notes["ios_routers"] = access
    return configs, spec
