"""The running example of the paper: Figures 1, 2, 5, 6, and 7.

Routers R1–R3 form a small enterprise; R4–R6 are part of a transit
backbone; R7 is another customer of the backbone whose configuration is
not in the data set (external).  The routing design matches the paper:

* enterprise: OSPF instance "128" spans R1–R3; a second, single-router
  OSPF instance "64" covers R2's LAN; R2 runs BGP AS 64780, peers EBGP
  with R6, and redistributes BGP into OSPF (the enterprise hallmark);
* backbone: one OSPF instance spans R4–R6 for infrastructure routes, an
  IBGP mesh in AS 12762 distributes external routes, R4 peers EBGP with
  the absent R7, and external routes are never redistributed into OSPF.

Analyzed as one configuration set, this produces exactly the five routing
instances of Figure 6.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.ios.config import NetworkStatement
from repro.net import Prefix
from repro.synth.addressing import NetworkAddressPlan
from repro.synth.builder import NetworkBuilder

ENTERPRISE_AS = 64780
BACKBONE_AS = 12762
CUSTOMER_AS = 64920  # R7's AS


def build_example_networks() -> Tuple[Dict[str, str], Dict[str, object]]:
    """Build the Figure 1 example.  Returns ``(configs, meta)``.

    ``meta`` records the designer's intent for the benches:
    ``enterprise_routers``, ``backbone_routers``, and the expected instance
    structure (protocol, sorted router tuple) of Figure 6.
    """
    plan = NetworkAddressPlan.standard(0)
    builder = NetworkBuilder(plan)
    for router in ("R1", "R2", "R3", "R4", "R5", "R6"):
        builder.add_router(router)

    # --- enterprise side -------------------------------------------------
    # OSPF instance "128": serial links R1-R2 and R2-R3 plus stub LANs.
    link12_a, link12_b = builder.connect("R1", "R2", kind="Serial")
    builder.cover_ospf(link12_a, 128, area="11")
    builder.cover_ospf(link12_b, 128, area="11")
    link23_a, link23_b = builder.connect("R2", "R3", kind="Serial")
    builder.cover_ospf(link23_a, 128, area="11")
    builder.cover_ospf(link23_b, 128, area="11")
    lan1 = builder.add_lan("R1", kind="Ethernet")
    builder.cover_ospf(lan1, 128, area="11")
    lan3 = builder.add_lan("R3", kind="Ethernet")
    builder.cover_ospf(lan3, 128, area="11")

    # OSPF instance "64": R2's own LAN, a separate single-router instance.
    lan2 = builder.add_lan("R2", kind="Ethernet")
    builder.cover_ospf(lan2, 64, area="0")

    # --- backbone side ----------------------------------------------------
    # OSPF infrastructure instance across R4-R6 (ring) plus loopbacks.
    backbone_pairs = (("R4", "R5"), ("R5", "R6"), ("R4", "R6"))
    for a, b in backbone_pairs:
        end_a, end_b = builder.connect(a, b, kind="Hssi")
        builder.cover_ospf(end_a, 1, area="0")
        builder.cover_ospf(end_b, 1, area="0")
    loopbacks = {}
    for router in ("R4", "R5", "R6"):
        loopback = builder.add_loopback(router)
        loopbacks[router] = loopback
        builder.cover_ospf(loopback, 1, area="0")

    # IBGP mesh in AS 12762.
    builder.ibgp_session(loopbacks["R4"], loopbacks["R5"], BACKBONE_AS)
    builder.ibgp_session(loopbacks["R5"], loopbacks["R6"], BACKBONE_AS)
    builder.ibgp_session(loopbacks["R4"], loopbacks["R6"], BACKBONE_AS)

    # --- enterprise <-> backbone peering (R2 <-> R6) ----------------------
    peer_a, peer_b = builder.connect("R2", "R6", kind="Hssi")
    builder.ebgp_session(peer_a, peer_b, ENTERPRISE_AS, BACKBONE_AS)

    # The enterprise hallmark: BGP summaries injected into both OSPF
    # instances at the border router; the enterprise LAN announced out.
    builder.add_route_map_permitting("R2", "EXT-SUMMARY", [Prefix(0, 0)])
    builder.redistribute(
        "R2", builder.ensure_ospf("R2", 128), "bgp", source_id=ENTERPRISE_AS,
        route_map="EXT-SUMMARY", metric=1,
    )
    builder.redistribute(
        "R2", builder.ensure_ospf("R2", 64), "bgp", source_id=ENTERPRISE_AS,
        route_map="EXT-SUMMARY", metric=1,
    )
    builder.redistribute("R2", builder.routers["R2"].bgp_process, "ospf", source_id=64)
    builder.redistribute("R2", builder.ensure_ospf("R2", 128), "connected")

    # --- backbone <-> R7 (customer whose config is absent) ----------------
    r7_link = builder.add_external_link("R4", kind="Serial")
    builder.external_ebgp_session(r7_link, BACKBONE_AS, CUSTOMER_AS)
    r4_bgp = builder.routers["R4"].bgp_process
    r4_bgp.networks.append(
        NetworkStatement(
            address=plan.loopbacks.prefix.network,
            mask=plan.loopbacks.prefix.netmask,
        )
    )

    meta = {
        "enterprise_routers": ("R1", "R2", "R3"),
        "backbone_routers": ("R4", "R5", "R6"),
        "external_router": "R7",
        "expected_instances": [
            ("ospf", ("R1", "R2", "R3")),  # instance "128"
            ("ospf", ("R2",)),  # instance "64"
            ("ospf", ("R4", "R5", "R6")),  # backbone IGP
            ("bgp", ("R2",)),  # AS 64780
            ("bgp", ("R4", "R5", "R6")),  # AS 12762
        ],
        "enterprise_as": ENTERPRISE_AS,
        "backbone_as": BACKBONE_AS,
    }
    return builder.serialize(), meta
