"""net15: controlled external reachability (§6.2, Figure 12, Table 2).

A 79-router, 6-instance network in which routing policy deliberately
restricts reachability:

* hosts have **no** reachability to the Internet at large — only the
  routes named by policies A1, A3, A5 (two /16s and three /24s in total)
  are allowed in, and **no default route** is permitted;
* the two sites cannot reach each other at all: the intersection of the
  route policies controlling what leaves one site and what enters the
  other is the empty set (A2∩A5 = A2∩A3 = A4∩A1 = ∅);
* internal host blocks (AB2 on the left, AB4 on the right) are announced
  out, so the public ASs *may* deliver packets inward that the hosts can
  never answer — the paper's security observation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.core.classify import DesignClass
from repro.net import Prefix
from repro.synth.addressing import AddressPool, NetworkAddressPlan
from repro.synth.builder import NetworkBuilder
from repro.synth.spec import ExpectedInstance, NetworkSpec

PUBLIC_AS_LEFT = 25286
PUBLIC_AS_RIGHT = 12762

#: The external address blocks of Table 2 ("two /16 networks and 3 /24s").
AB0 = [Prefix("198.18.0.0/16")]
AB1 = [Prefix("198.19.0.0/16")]
AB3 = [Prefix("203.0.0.0/24"), Prefix("203.0.1.0/24"), Prefix("203.0.2.0/24")]


def build_net15(
    name: str = "net15",
    index: int = 15,
    scale: float = 1.0,
    seed: int = 155,
    with_filters: bool = True,
) -> Tuple[Dict[str, str], NetworkSpec]:
    """Generate net15.  At ``scale=1.0`` the network has 79 routers."""
    rng = random.Random(seed)

    def scaled(size: int, minimum: int = 2) -> int:
        return max(minimum, round(size * scale))

    master = AddressPool(Prefix("10.64.0.0/12"))
    external = AddressPool(Prefix("192.64.0.0/14"))
    left_plan = _site_plan(master, external)
    right_plan = _site_plan(master, external)
    builder = NetworkBuilder(left_plan, rng=rng)

    # AB2 and AB4 are the two sites' host LAN blocks.
    ab2 = [left_plan.lans.prefix]
    ab4 = [right_plan.lans.prefix]

    # Table 2: the contents of each policy.
    policy_contents = {
        "A1": AB0 + AB1,
        "A2": ab2,
        "A3": AB0 + AB3,
        "A4": ab4,
        "A5": AB0,
    }

    # --- left site: OSPF instance 1 + BGP instance 2 ----------------------
    left_size = scaled(35, 4)
    left_names = [f"{name}-l{i}" for i in range(left_size)]
    left_border = left_names[0]
    _build_site(builder, left_plan, left_names, ospf_pid=1, rng=rng)

    builder.plan = left_plan
    _build_border(
        builder,
        border=left_border,
        local_asn=64701,
        public_asn=PUBLIC_AS_LEFT,
        ospf_pid=1,
        policy_in=("A1", policy_contents["A1"]),
        policy_out=("A2", policy_contents["A2"]),
    )

    # --- right site: OSPF instance 6 + BGP instances 3, 4, 5 --------------
    right_size = scaled(44, 5)
    right_names = [f"{name}-r{i}" for i in range(right_size)]
    right_borders = right_names[:3]
    builder.plan = right_plan
    _build_site(builder, right_plan, right_names, ospf_pid=2, rng=rng)

    border_specs = [
        (right_borders[0], 64710, ("A3", policy_contents["A3"])),
        (right_borders[1], 64720, ("A5", policy_contents["A5"])),
        (right_borders[2], 64730, ("A5", policy_contents["A5"])),
    ]
    for border, asn, policy_in in border_specs:
        _build_border(
            builder,
            border=border,
            local_asn=asn,
            public_asn=PUBLIC_AS_RIGHT,
            ospf_pid=2,
            policy_in=policy_in,
            policy_out=("A4", policy_contents["A4"]),
        )

    if with_filters:
        from repro.synth.filters import place_filters  # noqa: PLC0415

        internal_candidates = [
            (router_name, iface.name)
            for router_name, config in builder.routers.items()
            for iface in config.interfaces.values()
            if iface.kind == "FastEthernet"
        ]
        place_filters(
            builder, rng, internal_candidates,
            total_rules=rng.randint(80, 160),
            internal_share=0.1,
        )

    from repro.synth.flavor import add_boilerplate, add_flavor_interfaces  # noqa: PLC0415

    add_flavor_interfaces(builder, rng, style="enterprise")
    add_boilerplate(builder, rng)

    spec = NetworkSpec(
        name=name,
        design=DesignClass.UNCLASSIFIABLE,
        router_count=len(builder.routers),
        internal_as_count=4,
        external_as_count=2,
        has_filters=with_filters,
        internal_filter_fraction=0.1 if with_filters else None,
        external_interfaces=list(builder.external_interfaces),
    )
    spec.expected_instances.extend(
        [
            ExpectedInstance(protocol="ospf", size=left_size),
            ExpectedInstance(protocol="ospf", size=right_size),
            ExpectedInstance(protocol="bgp", size=1, asn=64701, external=True),
            ExpectedInstance(protocol="bgp", size=1, asn=64710, external=True),
            ExpectedInstance(protocol="bgp", size=1, asn=64720, external=True),
            ExpectedInstance(protocol="bgp", size=1, asn=64730, external=True),
        ]
    )
    spec.notes["policies"] = {
        key: [str(prefix) for prefix in value] for key, value in policy_contents.items()
    }
    spec.notes["ab2"] = [str(prefix) for prefix in ab2]
    spec.notes["ab4"] = [str(prefix) for prefix in ab4]
    spec.notes["left_ospf_routers"] = left_names
    spec.notes["right_ospf_routers"] = right_names
    return builder.serialize(), spec


def _site_plan(master: AddressPool, external: AddressPool) -> NetworkAddressPlan:
    block = master.subpool(16)
    plan = NetworkAddressPlan.__new__(NetworkAddressPlan)
    plan.internal = block.prefix
    plan.lans = block.subpool(17)
    plan.p2p = block.subpool(18)
    plan.loopbacks = block.subpool(19)
    plan.spare = block.subpool(19)
    plan.external = external
    return plan


def _build_site(
    builder: NetworkBuilder,
    plan: NetworkAddressPlan,
    names: List[str],
    ospf_pid: int,
    rng: random.Random,
) -> None:
    """A hub-and-spoke OSPF site with host LANs on the spokes."""
    builder.plan = plan
    for router in names:
        builder.add_router(router)
    hubs = names[: max(2, len(names) // 12)]
    for i in range(len(hubs) - 1):
        end_a, end_b = builder.connect(hubs[i], hubs[i + 1], kind="Serial")
        builder.cover_ospf(end_a, ospf_pid)
        builder.cover_ospf(end_b, ospf_pid)
    for spoke in names[len(hubs):]:
        end_a, end_b = builder.connect(rng.choice(hubs), spoke, kind="Serial")
        builder.cover_ospf(end_a, ospf_pid)
        builder.cover_ospf(end_b, ospf_pid)
        lan = builder.add_lan(spoke, kind="FastEthernet", length=26)
        builder.cover_ospf(lan, ospf_pid)


def _build_border(
    builder: NetworkBuilder,
    border: str,
    local_asn: int,
    public_asn: int,
    ospf_pid: int,
    policy_in: Tuple[str, List[Prefix]],
    policy_out: Tuple[str, List[Prefix]],
) -> None:
    """A border router: EBGP to a public AS with named in/out policies,
    BGP↔OSPF redistribution also constrained by the same policies."""
    in_name, in_prefixes = policy_in
    out_name, out_prefixes = policy_out
    uplink = builder.add_external_link(border, kind="Serial")
    neighbor = builder.external_ebgp_session(uplink, local_asn, public_asn)
    builder.add_route_map_permitting(border, in_name, in_prefixes)
    builder.add_route_map_permitting(border, out_name, out_prefixes)
    neighbor.route_map_in = in_name
    neighbor.route_map_out = out_name

    bgp = builder.routers[border].bgp_process
    ospf = builder.ensure_ospf(border, ospf_pid)
    # External routes (already reduced to A-in by the session policy) into
    # OSPF; only the site's host block back out toward BGP.
    builder.redistribute(
        border, ospf, "bgp", source_id=local_asn, route_map=in_name, metric=200
    )
    builder.redistribute(
        border, bgp, "ospf", source_id=ospf_pid, route_map=out_name
    )


