"""Design templates: one module per routing-design pattern from the paper."""

from repro.synth.templates.backbone import build_backbone
from repro.synth.templates.enterprise import build_enterprise
from repro.synth.templates.example_fig1 import build_example_networks
from repro.synth.templates.hybrid import build_hybrid
from repro.synth.templates.net5 import build_net5
from repro.synth.templates.net15 import build_net15
from repro.synth.templates.pods import build_pods
from repro.synth.templates.tier2 import build_tier2

__all__ = [
    "build_backbone",
    "build_enterprise",
    "build_example_networks",
    "build_hybrid",
    "build_net5",
    "build_net15",
    "build_pods",
    "build_tier2",
]
