"""net5: the compartmentalized EIGRP/BGP design of §5.1, §6.1, Figure 9/10.

The paper's headline case study: 881 routers, 24 routing instances, 14
internal BGP ASs, 16 external ASs.  The majority of routers sit in three
EIGRP compartments (445, 32, and 64 routers); four BGP instances glue the
compartments together; external routes cross at least three layers of
protocols and redistributions before reaching the middle of the network.
The design avoids an IBGP mesh by (a) laying out each compartment's
addresses inside its own block, so redistribution policy is expressible as
address-based route maps, and (b) tagging external routes at injection so
route selection can key off tags instead of BGP attributes.

The generator reproduces that structure (scaled 1:1 by default).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.core.classify import DesignClass
from repro.net import Prefix
from repro.synth.addressing import AddressPool, NetworkAddressPlan
from repro.synth.builder import NetworkBuilder
from repro.synth.spec import ExpectedInstance, NetworkSpec

#: The AS numbers named in Figure 9.
AS_GLUE_AB = 65001  # instance 4: 6 routers between compartments B and A
AS_GLUE_AC = 65010  # instance 2: 39 routers between compartments A and C
AS_EDGE_B = 10436  # instance 5: 3 routers, external peering (AS 1629)
AS_EDGE_C = 65040  # instance 3: 7 routers, EBGP-internal to 65010

EXTERNAL_AS_B = 1629
EXTERNAL_AS_C = 6470


def _compartment_plan(master: AddressPool, external: AddressPool, length: int):
    """Give one compartment its own address block (the §6.1 technique)."""
    block = master.subpool(length)
    plan = NetworkAddressPlan.__new__(NetworkAddressPlan)
    plan.internal = block.prefix
    plan.lans = block.subpool(block.prefix.length + 1)
    plan.p2p = block.subpool(block.prefix.length + 2)
    plan.loopbacks = block.subpool(block.prefix.length + 3)
    plan.spare = block.subpool(block.prefix.length + 3)
    plan.external = external
    return plan, block.prefix


def _build_compartment(
    builder: NetworkBuilder,
    plan: NetworkAddressPlan,
    names: List[str],
    eigrp_asn: int,
    rng: random.Random,
    n_hubs: int = 4,
    lan_length: int = 28,
) -> List[str]:
    """A hub-and-spoke EIGRP compartment.  Returns the hub routers."""
    builder.plan = plan
    hubs = names[: min(n_hubs, len(names))]
    for router in names:
        if router not in builder.routers:
            builder.add_router(router)
    for i, hub in enumerate(hubs[:-1]):
        end_a, end_b = builder.connect(hub, hubs[i + 1], kind="Serial")
        builder.cover_eigrp(end_a, eigrp_asn)
        builder.cover_eigrp(end_b, eigrp_asn)
    for spoke in names[len(hubs):]:
        hub = rng.choice(hubs)
        end_a, end_b = builder.connect(hub, spoke, kind="Serial")
        builder.cover_eigrp(end_a, eigrp_asn)
        builder.cover_eigrp(end_b, eigrp_asn)
        lan = builder.add_lan(spoke, kind="FastEthernet", length=lan_length)
        builder.cover_eigrp(lan, eigrp_asn)
    for hub in hubs:
        lan = builder.add_lan(hub, kind="FastEthernet", length=lan_length)
        builder.cover_eigrp(lan, eigrp_asn)
    return hubs


def build_net5(
    name: str = "net5",
    index: int = 5,
    scale: float = 1.0,
    seed: int = 55,
    internal_filter_share: float = 0.45,
    with_filters: bool = True,
) -> Tuple[Dict[str, str], NetworkSpec]:
    """Generate net5.  ``scale`` shrinks every compartment proportionally
    (minimum sizes keep the structure intact), for fast tests."""
    rng = random.Random(seed)

    def scaled(size: int, minimum: int = 2) -> int:
        return max(minimum, round(size * scale))

    master = AddressPool(Prefix("10.0.0.0/11"))
    external = AddressPool(Prefix("192.16.0.0/14"))
    shared_plan = NetworkAddressPlan.__new__(NetworkAddressPlan)
    glue_block = master.subpool(16)
    shared_plan.internal = glue_block.prefix
    shared_plan.lans = glue_block.subpool(17)
    shared_plan.p2p = glue_block.subpool(18)
    shared_plan.loopbacks = glue_block.subpool(19)
    shared_plan.spare = glue_block.subpool(19)
    shared_plan.external = external
    builder = NetworkBuilder(shared_plan, rng=rng)

    # --- the three named compartments ------------------------------------
    size_a, size_b, size_c = scaled(445, 8), scaled(32, 4), scaled(64, 4)
    asn_a, asn_b, asn_c = 60001, 60006, 60007
    plan_a, block_a = _compartment_plan(master, external, 13)
    plan_b, block_b = _compartment_plan(master, external, 17)
    plan_c, block_c = _compartment_plan(master, external, 16)
    names_a = [f"{name}-a{i}" for i in range(size_a)]
    names_b = [f"{name}-b{i}" for i in range(size_b)]
    names_c = [f"{name}-c{i}" for i in range(size_c)]
    hubs_a = _build_compartment(builder, plan_a, names_a, asn_a, rng, n_hubs=8)
    hubs_b = _build_compartment(builder, plan_b, names_b, asn_b, rng, n_hubs=2)
    hubs_c = _build_compartment(builder, plan_c, names_c, asn_c, rng, n_hubs=3)

    builder.plan = shared_plan

    # --- instance 4: BGP AS 65001, glue between compartments B and A ------
    # Six redundant redistribution routers (the paper's "6 routers that
    # serve this same purpose").
    glue_ab = [f"{name}-gab{i}" for i in range(scaled(6, 2))]
    _build_glue(
        builder, rng, glue_ab, AS_GLUE_AB,
        side_hubs=(hubs_b, asn_b), other_hubs=(hubs_a, asn_a),
        import_block=block_b, export_block=block_a, tag=AS_GLUE_AB,
    )

    # --- instance 2: BGP AS 65010, glue between compartments A and C ------
    glue_ac = [f"{name}-gac{i}" for i in range(scaled(39, 3))]
    _build_glue(
        builder, rng, glue_ac, AS_GLUE_AC,
        side_hubs=(hubs_a, asn_a), other_hubs=(hubs_c, asn_c),
        import_block=block_a, export_block=block_c, tag=AS_GLUE_AC,
    )

    # --- instance 5: BGP AS 10436, external edge of compartment B --------
    edge_b = [f"{name}-eb{i}" for i in range(scaled(3, 2))]
    _build_edge(
        builder, rng, edge_b, AS_EDGE_B, hubs_b, asn_b,
        external_asn=EXTERNAL_AS_B, tag=AS_EDGE_B,
    )

    # --- instance 3: BGP AS 65040, EBGP-internal to 65010 -----------------
    # Attached to compartment C; also has its own external peering (AS 6470).
    edge_c = [f"{name}-ec{i}" for i in range(scaled(7, 2))]
    _build_edge(
        builder, rng, edge_c, AS_EDGE_C, hubs_c, asn_c,
        external_asn=EXTERNAL_AS_C, tag=AS_EDGE_C,
    )
    # EBGP used as an *intra*-domain protocol: sessions between the 65040
    # and 65010 routers, both inside net5.
    for edge_router, glue_router in zip(edge_c, glue_ac):
        end_a, end_b = builder.connect(edge_router, glue_router, kind="Serial")
        builder.ebgp_session(end_a, end_b, AS_EDGE_C, AS_GLUE_AC)

    # --- the remaining compartments and glue ASs ---------------------------
    # Seven more EIGRP compartments and ten more small BGP ASs, bringing the
    # totals to 10 EIGRP instances, 14 BGP ASs, 24 instances, 16 external ASs.
    # Sized so the full-scale network lands on the paper's 881 routers:
    # 541 compartment + 45 glue + 10 edge + 10 small-AS + 275 here.
    other_sizes = [100, 75, 40, 25, 15, 12, 8]
    other_igp: List[Tuple[List[str], int, List[str], Prefix]] = []
    for comp_index, size in enumerate(other_sizes):
        comp_size = scaled(size, 2)
        comp_asn = 60100 + comp_index
        plan_x, block_x = _compartment_plan(master, external, 17)
        names_x = [f"{name}-x{comp_index}r{i}" for i in range(comp_size)]
        hubs_x = _build_compartment(builder, plan_x, names_x, comp_asn, rng, n_hubs=2)
        other_igp.append((names_x, comp_asn, hubs_x, block_x))
    builder.plan = shared_plan

    external_asns = {EXTERNAL_AS_B, EXTERNAL_AS_C}
    small_bgp: List[Tuple[int, int]] = []  # (asn, size)
    for small_index in range(10):
        asn = 64600 + small_index
        comp, comp_asn, hubs_x, block_x = other_igp[small_index % len(other_igp)]
        edge_router = f"{name}-s{small_index}"
        builder.add_router(edge_router)
        end_a, end_b = builder.connect(edge_router, hubs_x[0], kind="Serial")
        builder.cover_eigrp(end_a, comp_asn)
        builder.cover_eigrp(end_b, comp_asn)
        builder.ensure_bgp(edge_router, asn)
        eigrp = builder.ensure_eigrp(edge_router, comp_asn)
        builder.redistribute(
            edge_router, builder.routers[edge_router].bgp_process, "eigrp",
            source_id=comp_asn,
        )
        builder.redistribute(
            edge_router, eigrp, "bgp", source_id=asn, tag=asn, metric=2000,
        )
        # 14 more external ASs spread over these edge routers.
        n_external = 2 if small_index < 4 else 1
        for peer_slot in range(n_external):
            peer_asn = 20000 + small_index * 29 + peer_slot
            uplink = builder.add_external_link(edge_router, kind="Serial")
            builder.external_ebgp_session(uplink, asn, peer_asn)
            external_asns.add(peer_asn)
        small_bgp.append((asn, 1))

    if with_filters:
        from repro.synth.filters import place_filters  # noqa: PLC0415

        internal_candidates = [
            (router_name, iface.name)
            for router_name, config in builder.routers.items()
            for iface in config.interfaces.values()
            if iface.kind in ("FastEthernet", "Serial")
            and (router_name, iface.name) not in set(builder.external_interfaces)
        ]
        place_filters(
            builder, rng, internal_candidates,
            total_rules=rng.randint(300, 600),
            internal_share=internal_filter_share,
        )

    from repro.synth.flavor import add_boilerplate, add_flavor_interfaces  # noqa: PLC0415

    add_flavor_interfaces(builder, rng, style=rng.choice(("enterprise", "atm-heavy")))
    add_boilerplate(builder, rng, min_lines=140, max_lines=330)

    # --- ground truth -------------------------------------------------------
    spec = NetworkSpec(
        name=name,
        design=DesignClass.UNCLASSIFIABLE,
        router_count=len(builder.routers),
        internal_as_count=4 + len(small_bgp),
        external_as_count=len(external_asns),
        has_filters=with_filters,
        internal_filter_fraction=internal_filter_share if with_filters else None,
        external_interfaces=list(builder.external_interfaces),
    )
    glue_ab_size = len(glue_ab)
    glue_ac_size = len(glue_ac)
    spec.expected_instances.extend(
        [
            ExpectedInstance(
                protocol="eigrp",
                size=size_a + glue_ab_size + glue_ac_size,
                asn=asn_a,
            ),
            ExpectedInstance(protocol="eigrp", size=size_b + glue_ab_size + len(edge_b), asn=asn_b),
            ExpectedInstance(
                protocol="eigrp", size=size_c + glue_ac_size + len(edge_c), asn=asn_c
            ),
            ExpectedInstance(protocol="bgp", size=glue_ab_size, asn=AS_GLUE_AB),
            ExpectedInstance(protocol="bgp", size=glue_ac_size, asn=AS_GLUE_AC),
            ExpectedInstance(protocol="bgp", size=len(edge_b), asn=AS_EDGE_B, external=True),
            ExpectedInstance(protocol="bgp", size=len(edge_c), asn=AS_EDGE_C, external=True),
        ]
    )
    attach_counts = [0] * len(other_igp)
    for small_index in range(10):
        attach_counts[small_index % len(other_igp)] += 1
    for (names_x, comp_asn, _hubs, _block), extra in zip(other_igp, attach_counts):
        spec.expected_instances.append(
            ExpectedInstance(protocol="eigrp", size=len(names_x) + extra, asn=comp_asn)
        )
    for asn, size in small_bgp:
        spec.expected_instances.append(
            ExpectedInstance(protocol="bgp", size=size, asn=asn, external=True)
        )
    spec.notes["compartment_blocks"] = {
        "a": str(block_a),
        "b": str(block_b),
        "c": str(block_c),
    }
    spec.notes["glue_ab_routers"] = glue_ab
    spec.notes["middle_router"] = names_a[len(names_a) // 2]
    return builder.serialize(), spec


def _build_glue(
    builder: NetworkBuilder,
    rng: random.Random,
    glue_names: List[str],
    glue_asn: int,
    side_hubs: Tuple[List[str], int],
    other_hubs: Tuple[List[str], int],
    import_block: Prefix,
    export_block: Prefix,
    tag: int,
) -> None:
    """Routers that redistribute routes between two EIGRP compartments via
    a shared BGP AS (Figure 9's instances 2 and 4).

    Each glue router joins both compartments' EIGRP instances and runs BGP;
    route maps are *address-based* (the §6.1 observation) and tag routes as
    they enter each EIGRP instance.
    """
    hubs_src, asn_src = side_hubs
    hubs_dst, asn_dst = other_hubs
    loopbacks = []
    for router in glue_names:
        builder.add_router(router)
        end_a, end_b = builder.connect(router, rng.choice(hubs_src), kind="Serial")
        builder.cover_eigrp(end_a, asn_src)
        builder.cover_eigrp(end_b, asn_src)
        end_a, end_b = builder.connect(router, rng.choice(hubs_dst), kind="Serial")
        builder.cover_eigrp(end_a, asn_dst)
        builder.cover_eigrp(end_b, asn_dst)
        loopbacks.append(builder.add_loopback(router))

        bgp = builder.ensure_bgp(router, glue_asn)
        # Address-based policy: only the source compartment's block may be
        # redistributed into BGP, and only BGP routes for it may continue
        # into the destination compartment's EIGRP instance.
        map_in = f"FROM-EIGRP-{asn_src}"
        builder.add_route_map_permitting(router, map_in, [import_block, Prefix(0, 0)])
        builder.redistribute(
            router, bgp, "eigrp", source_id=asn_src, route_map=map_in
        )
        map_out = f"INTO-EIGRP-{asn_dst}"
        builder.add_route_map_permitting(
            router, map_out, [import_block, Prefix(0, 0)], set_tag=tag
        )
        builder.redistribute(
            router,
            builder.ensure_eigrp(router, asn_dst),
            "bgp",
            source_id=glue_asn,
            route_map=map_out,
            metric=1000,
        )
    # IBGP among the glue routers so they form one BGP instance.
    for i, lb_a in enumerate(loopbacks):
        for lb_b in loopbacks[i + 1:]:
            builder.ibgp_session(lb_a, lb_b, glue_asn)


def _build_edge(
    builder: NetworkBuilder,
    rng: random.Random,
    edge_names: List[str],
    edge_asn: int,
    compartment_hubs: List[str],
    compartment_asn: int,
    external_asn: int,
    tag: int,
) -> None:
    """Edge routers with an external EBGP peering, injecting external
    routes into their compartment's EIGRP instance (tagged)."""
    loopbacks = []
    for router in edge_names:
        builder.add_router(router)
        end_a, end_b = builder.connect(router, rng.choice(compartment_hubs), kind="Serial")
        builder.cover_eigrp(end_a, compartment_asn)
        builder.cover_eigrp(end_b, compartment_asn)
        loopbacks.append(builder.add_loopback(router))
        builder.ensure_bgp(router, edge_asn)
        uplink = builder.add_external_link(router, kind="Serial")
        builder.external_ebgp_session(uplink, edge_asn, external_asn)
        builder.redistribute(
            router,
            builder.ensure_eigrp(router, compartment_asn),
            "bgp",
            source_id=edge_asn,
            tag=tag,
            metric=5000,
        )
        builder.redistribute(
            router,
            builder.routers[router].bgp_process,
            "eigrp",
            source_id=compartment_asn,
        )
    for i, lb_a in enumerate(loopbacks):
        for lb_b in loopbacks[i + 1:]:
            builder.ibgp_session(lb_a, lb_b, edge_asn)


