"""Replicated pod fabric: the compression stress template.

Data-center-style design scaled for the topology-compression work: a
two-router core, two EBGP border routers that redistribute into the IGP
(the §7.1 enterprise pattern), and P identical pods of two aggregation
routers plus *k* access routers.  Every access router dual-homes to its
pod's aggregation pair; every aggregation router dual-homes to both
cores.  One network-wide OSPF process covers everything, so all routers
share a single routing instance.

Replication is exact by construction: every pod carries byte-identical
policy (same packet-filter clauses, same ACL numbers per position), the
wiring inside each pod is isomorphic, and only addresses differ.  The
compression planner should therefore collapse a 100k-router fabric to a
handful of equivalence classes — which is the point: this template
emits the 10k–100k-router corpora the quotient pipeline is benchmarked
and certified against.

Unlike the other templates this one takes no random flavor pass — the
flavor generators draw per-router variation from the RNG, which would
(correctly!) split the equivalence classes and defeat the template's
purpose.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.classify import DesignClass
from repro.net import Prefix
from repro.synth.addressing import NetworkAddressPlan
from repro.synth.builder import NetworkBuilder
from repro.synth.spec import ExpectedInstance, NetworkSpec
from repro.synth.templates.enterprise import (
    PROVIDER_ASNS,
    _cover,
    _network_statement,
    _process_for,
)

#: The single network-wide OSPF process every router participates in.
OSPF_PROCESS = 100

#: Packet-filter size on access LAN interfaces (identical across pods).
ACCESS_FILTER_RULES = 8


def pod_count(n_routers: int, access_per_pod: int = 8) -> int:
    """Pods needed to reach roughly *n_routers* total routers."""
    per_pod = 2 + access_per_pod
    return max(1, (n_routers - 4 + per_pod - 1) // per_pod)


def build_pods(
    name: str,
    index: int,
    n_routers: int,
    seed: int = 0,  # noqa: ARG001 — accepted for builder-API uniformity
    access_per_pod: int = 8,
    with_filters: bool = True,
) -> Tuple[Dict[str, str], NetworkSpec]:
    """Generate a replicated pod fabric of roughly *n_routers* routers.

    Returns ``(configs, spec)`` where *configs* maps router name → IOS
    text.  The actual router count is ``4 + pods * (2 + access_per_pod)``
    rounded up from *n_routers*; read it back from ``spec.router_count``.
    """
    if n_routers < 4 + 2 + access_per_pod:
        raise ValueError("pod fabric needs cores, borders, and one full pod")
    # The standard /14-per-network plan exhausts its point-to-point pool
    # around a few thousand routers; the fabric gets a private /8 pair.
    plan = NetworkAddressPlan(
        internal=Prefix("10.0.0.0/8"), external=Prefix("192.0.0.0/8")
    )
    builder = NetworkBuilder(plan)
    local_as = 64512 + (index % 1000)
    igp = "ospf"

    cores = [f"{name}-core{i}" for i in range(2)]
    borders = [f"{name}-border{i}" for i in range(2)]
    loopbacks = {}
    for router in cores + borders:
        builder.add_router(router)
        lb = loopbacks[router] = builder.add_loopback(router)
        _cover(builder, lb, igp, OSPF_PROCESS)

    # Core pair, and borders dual-homed to both cores.
    for end in builder.connect(cores[0], cores[1], kind="GigabitEthernet"):
        _cover(builder, end, igp, OSPF_PROCESS)
    for border in borders:
        for core in cores:
            for end in builder.connect(border, core, kind="GigabitEthernet"):
                _cover(builder, end, igp, OSPF_PROCESS)

    pods = pod_count(n_routers, access_per_pod)
    for pod in range(pods):
        aggs = [f"{name}-p{pod}-agg{i}" for i in range(2)]
        accesses = [f"{name}-p{pod}-acc{i}" for i in range(access_per_pod)]
        for router in aggs + accesses:
            builder.add_router(router)
            lb = builder.add_loopback(router)
            _cover(builder, lb, igp, OSPF_PROCESS)
        for agg in aggs:
            for core in cores:
                for end in builder.connect(agg, core, kind="GigabitEthernet"):
                    _cover(builder, end, igp, OSPF_PROCESS)
        for access in accesses:
            for agg in aggs:
                for end in builder.connect(access, agg, kind="GigabitEthernet"):
                    _cover(builder, end, igp, OSPF_PROCESS)
            lan = builder.add_lan(access, kind="FastEthernet", length=28)
            _cover(builder, lan, igp, OSPF_PROCESS)
            if with_filters:
                builder.add_packet_filter(
                    lan, ACCESS_FILTER_RULES, direction="in", extended=True
                )

    # Borders: EBGP to one provider each, summarize into the IGP.
    provider_asns = []
    for border_index, border in enumerate(borders):
        uplink = builder.add_external_link(border, kind="Serial")
        provider_asn = PROVIDER_ASNS[(index + border_index) % len(PROVIDER_ASNS)]
        provider_asns.append(provider_asn)
        builder.external_ebgp_session(uplink, local_as, provider_asn)
        bgp = builder.routers[border].bgp_process
        bgp.networks.append(_network_statement(plan.internal))
        map_name = "EXT-IN"
        builder.add_route_map_permitting(border, map_name, [Prefix(0, 0)])
        target = _process_for(builder, border, igp, OSPF_PROCESS)
        builder.redistribute(
            border, target, "bgp", source_id=local_as, route_map=map_name, metric=100
        )
        builder.redistribute(border, target, "connected")

    # IBGP between the borders over their loopbacks.
    builder.ibgp_session(loopbacks[borders[0]], loopbacks[borders[1]], local_as)

    total = 4 + pods * (2 + access_per_pod)
    spec = NetworkSpec(
        name=name,
        design=DesignClass.ENTERPRISE,
        router_count=total,
        internal_as_count=1,
        external_as_count=len(set(provider_asns)),
        has_filters=with_filters,
        internal_filter_fraction=1.0 if with_filters else None,
        external_interfaces=list(builder.external_interfaces),
    )
    spec.expected_instances.append(
        ExpectedInstance(protocol=igp, size=total, external=True)
    )
    spec.expected_instances.append(
        ExpectedInstance(protocol="bgp", size=2, asn=local_as, external=True)
    )
    return builder.serialize(), spec


__all__ = ["ACCESS_FILTER_RULES", "OSPF_PROCESS", "build_pods", "pod_count"]
