"""Tier-2 ISP design: backbone BGP structure plus staging IGP instances.

§7.1: "The large tier-2 ISP has the BGP structure of a backbone network,
but contains a very large number of staging IGP instances ... routing
instances of a traditional IGP protocol that have only a single router
inside the network, but a large number of external peers.  Presumably
these are used to connect customers that do not run BGP ... the IGP
provides ongoing validation that the link to the customer is still up."
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.core.classify import DesignClass
from repro.ios.config import NetworkStatement
from repro.synth.addressing import NetworkAddressPlan
from repro.synth.builder import NetworkBuilder
from repro.synth.spec import ExpectedInstance, NetworkSpec


def build_tier2(
    name: str,
    index: int,
    n_routers: int,
    seed: int = 0,
    staging_share: float = 0.5,
    staging_per_router: Tuple[int, int] = (1, 2),
    # OSPF-heavy, matching Table 1's inter-domain IGP column
    # (OSPF 1,161 vs EIGRP 156 vs RIP 161).
    staging_igp_mix: Tuple[str, ...] = ("ospf",) * 8 + ("eigrp", "rip"),
    internal_filter_share: float = 0.15,
    with_filters: bool = True,
) -> Tuple[Dict[str, str], NetworkSpec]:
    """Generate a tier-2 ISP.

    A core ring of routers runs one OSPF infrastructure instance and an
    IBGP mesh (route reflectors at scale); *staging_share* of the routers
    additionally terminate customers via small per-customer IGP processes
    with external-facing links — each one a staging instance.
    """
    rng = random.Random(seed)
    plan = NetworkAddressPlan.standard(index)
    builder = NetworkBuilder(plan, rng=rng)
    local_as = 10000 + index * 13 % 3000

    routers = [f"{name}-r{i}" for i in range(n_routers)]
    for router in routers:
        builder.add_router(router)

    core_pid = 1
    internal_ifaces = []
    # Ring core plus chords.
    for i, router in enumerate(routers):
        peer = routers[(i + 1) % n_routers]
        end_a, end_b = builder.connect(router, peer, kind="POS")
        builder.cover_ospf(end_a, core_pid)
        builder.cover_ospf(end_b, core_pid)
        internal_ifaces.extend([end_a, end_b])
    for _ in range(max(1, n_routers // 6)):
        a, b = rng.sample(routers, 2)
        end_a, end_b = builder.connect(a, b, kind="POS")
        builder.cover_ospf(end_a, core_pid)
        builder.cover_ospf(end_b, core_pid)
        internal_ifaces.extend([end_a, end_b])

    loopbacks = {}
    for router in routers:
        loopback = builder.add_loopback(router)
        loopbacks[router] = loopback
        builder.cover_ospf(loopback, core_pid)
    reflectors = routers[: max(2, n_routers // 10)]
    for i, rr_a in enumerate(reflectors):
        for rr_b in reflectors[i + 1:]:
            builder.ibgp_session(loopbacks[rr_a], loopbacks[rr_b], local_as)
    for router in routers:
        if router in reflectors:
            continue
        for reflector in reflectors:
            builder.ibgp_session(loopbacks[router], loopbacks[reflector], local_as)
            builder.routers[reflector].bgp_process.neighbors[-1].route_reflector_client = True

    # Upstream/peer EBGP sessions on the reflectors.
    external_asns = set()
    ebgp_sessions = 0
    for rr_index, reflector in enumerate(reflectors):
        for peer_slot in range(3):
            uplink = builder.add_external_link(reflector, kind="Serial")
            peer_asn = 7018 + (rr_index * 3 + peer_slot) * 97 % 20000
            external_asns.add(peer_asn)
            builder.external_ebgp_session(uplink, local_as, peer_asn)
            ebgp_sessions += 1
        bgp = builder.routers[reflector].bgp_process
        if not bgp.networks:
            bgp.networks.append(
                NetworkStatement(
                    address=plan.loopbacks.prefix.network,
                    mask=plan.loopbacks.prefix.netmask,
                )
            )

    # Staging instances: per-customer IGP processes on access routers.
    staging_instances = []
    access_routers = routers[len(reflectors):]
    n_staging_routers = int(len(access_routers) * staging_share)
    next_pid = 100
    for router in access_routers[:n_staging_routers]:
        for _ in range(rng.randint(*staging_per_router)):
            igp = rng.choice(staging_igp_mix)
            customer_link = builder.add_external_link(router, kind="Serial")
            if igp == "ospf":
                builder.cover_ospf(customer_link, next_pid)
                builder.ensure_ospf(router, next_pid)
            elif igp == "eigrp":
                builder.cover_eigrp(customer_link, next_pid)
                builder.ensure_eigrp(router, next_pid)
            else:
                builder.cover_rip(customer_link)
                builder.ensure_rip(router)
            # The staging instance feeds customer routes into BGP.
            bgp = builder.routers[router].bgp_process or builder.ensure_bgp(
                router, local_as
            )
            builder.redistribute(
                router, bgp, igp, source_id=None if igp == "rip" else next_pid
            )
            staging_instances.append((igp, router))
            next_pid += 1

    if with_filters:
        from repro.synth.filters import place_filters  # noqa: PLC0415

        place_filters(
            builder, rng,
            [(iface.router, iface.name) for iface in internal_ifaces],
            total_rules=rng.randint(80, 250),
            internal_share=internal_filter_share,
        )

    from repro.synth.flavor import add_boilerplate, add_flavor_interfaces  # noqa: PLC0415

    add_flavor_interfaces(builder, rng, style="enterprise")
    add_boilerplate(builder, rng)

    spec = NetworkSpec(
        name=name,
        design=DesignClass.UNCLASSIFIABLE,
        router_count=n_routers,
        internal_as_count=1,
        external_as_count=len(external_asns),
        has_filters=with_filters,
        internal_filter_fraction=internal_filter_share if with_filters else None,
        external_interfaces=list(builder.external_interfaces),
    )
    spec.expected_instances.append(
        ExpectedInstance(protocol="ospf", size=n_routers, external=False)
    )
    spec.expected_instances.append(
        ExpectedInstance(protocol="bgp", size=n_routers, asn=local_as, external=True)
    )
    rip_routers = set()
    for igp, router in staging_instances:
        if igp == "rip":
            # IOS allows one RIP process per router: several RIP customers
            # on one router share a single staging instance.
            if router in rip_routers:
                continue
            rip_routers.add(router)
        spec.expected_instances.append(
            ExpectedInstance(protocol=igp, size=1, external=True)
        )
    spec.notes["staging_instances"] = len(spec.expected_instances) - 2
    spec.notes["ebgp_external_sessions"] = ebgp_sessions
    return builder.serialize(), spec


