"""Randomized "unclassifiable" routing designs (§7.1's remaining 20).

These model the managed-enterprise reality behind the paper's numbers: a
core compartment plus many small leaf compartments, each its own routing
instance, glued to the core by whichever mechanism the (synthetic) designer
happened to pick — a redistribution router sitting in both instances, an
EBGP session used *inside* the network, or plain static routes.  A tunable
fraction of leaf instances face external customers directly (IGP-as-EGP),
and a tunable number of borders speak EBGP to the outside.  Three corpus
networks use no BGP at all, as in the paper.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.classify import DesignClass
from repro.net import Prefix
from repro.synth.addressing import NetworkAddressPlan
from repro.synth.builder import BuiltInterface, NetworkBuilder
from repro.synth.spec import ExpectedInstance, NetworkSpec

#: Leaf IGP protocol mix, shaped after Table 1 (EIGRP > OSPF > RIP).
PROTOCOL_WEIGHTS = (("eigrp", 0.55), ("ospf", 0.33), ("rip", 0.12))


def _pick_protocol(rng: random.Random) -> str:
    roll = rng.random()
    cumulative = 0.0
    for protocol, weight in PROTOCOL_WEIGHTS:
        cumulative += weight
        if roll < cumulative:
            return protocol
    return "eigrp"


def build_hybrid(
    name: str,
    index: int,
    n_routers: int,
    seed: int = 0,
    use_bgp: bool = True,
    leaf_size_range: Tuple[int, int] = (1, 4),
    p_leaf_external: float = 0.05,
    internal_filter_share: float = 0.35,
    with_filters: bool = True,
    n_borders: Optional[int] = None,
    external_sessions_per_border: Tuple[int, int] = (1, 3),
) -> Tuple[Dict[str, str], NetworkSpec]:
    """Generate an unclassifiable hybrid network of *n_routers* routers."""
    rng = random.Random(seed)
    plan = NetworkAddressPlan.standard(index)
    builder = NetworkBuilder(plan, rng=rng)
    core_asn = 65100 + (index % 400)

    core_size = max(2, min(n_routers // 4, 40))
    core_protocol = _pick_protocol(rng)
    core_id = 1
    core_names = [f"{name}-core{i}" for i in range(core_size)]
    internal_ifaces: List[BuiltInterface] = []

    for router in core_names:
        builder.add_router(router)
    for i in range(len(core_names) - 1):
        end_a, end_b = builder.connect(core_names[i], core_names[i + 1], kind="Serial")
        _cover(builder, end_a, core_protocol, core_id)
        _cover(builder, end_b, core_protocol, core_id)
        internal_ifaces.extend([end_a, end_b])

    expected: List[ExpectedInstance] = [
        ExpectedInstance(protocol=core_protocol, size=core_size, external=False)
    ]

    # Leaves: small compartments, each its own instance.
    remaining = n_routers - core_size
    leaf_index = 0
    next_id = 100
    ebgp_intra_sessions = 0
    while remaining > 0:
        leaf_size = min(remaining, rng.randint(*leaf_size_range))
        protocol = _pick_protocol(rng)
        leaf_names = [f"{name}-s{leaf_index}r{i}" for i in range(leaf_size)]
        for router in leaf_names:
            builder.add_router(router)
        for i in range(leaf_size - 1):
            end_a, end_b = builder.connect(leaf_names[i], leaf_names[i + 1], kind="Serial")
            _cover(builder, end_a, protocol, next_id)
            _cover(builder, end_b, protocol, next_id)
            internal_ifaces.extend([end_a, end_b])
        lan = builder.add_lan(leaf_names[0], kind="FastEthernet", length=26)
        _cover(builder, lan, protocol, next_id)
        internal_ifaces.append(lan)

        style = rng.choice(
            # EBGP-as-intra-domain glue is the rare, noteworthy choice
            # (~10% of all EBGP sessions in the paper).
            ("redistribution",) * 8 + ("ebgp",) + ("static",) * 7
        )
        if protocol == "rip" or (style == "ebgp" and not use_bgp):
            # RIP allows one process per router, so redistribution glue on a
            # shared core router would merge separate RIP leaves; use static.
            style = "static" if protocol == "rip" else "static"
        core_router = rng.choice(core_names)
        _glue_leaf(
            builder, leaf_names[0], core_router,
            protocol, next_id, core_protocol, core_id,
            style, core_asn, next_id, internal_ifaces,
        )
        if style == "ebgp":
            ebgp_intra_sessions += 1

        external = rng.random() < p_leaf_external
        if external:
            customer = builder.add_external_link(leaf_names[0], kind="Serial")
            _cover(builder, customer, protocol, next_id)

        instance_size = leaf_size + (1 if style == "redistribution" else 0)
        expected.append(
            ExpectedInstance(protocol=protocol, size=instance_size, external=external)
        )
        if style == "ebgp":
            expected.append(
                ExpectedInstance(
                    protocol="bgp", size=1, asn=_leaf_asn(next_id), external=False
                )
            )
        remaining -= leaf_size
        leaf_index += 1
        next_id += 1

    # Borders with external EBGP sessions (all in the shared core AS).
    external_asns = set()
    ebgp_inter_sessions = 0
    border_routers: List[str] = []
    if not use_bgp:
        # BGP-free networks still connect somewhere: static default routes
        # over one or two provider uplinks.
        for uplink_index in range(min(2, core_size)):
            border = core_names[uplink_index]
            uplink = builder.add_external_link(border, kind="Serial")
            far_end = builder.external_neighbor_address(uplink)
            builder.add_static_route(border, Prefix(0, 0), far_end)
            core_process = _process(builder, border, core_protocol, core_id)
            if not any(
                redist.source_protocol == "static"
                for redist in core_process.redistributes
            ):
                builder.redistribute(border, core_process, "static", metric=800)
    if use_bgp:
        if n_borders is None:
            n_borders = max(1, min(6, n_routers // 40))
        for border_index in range(n_borders):
            border = core_names[border_index % len(core_names)]
            if border not in border_routers:
                border_routers.append(border)
            for _session in range(rng.randint(*external_sessions_per_border)):
                uplink = builder.add_external_link(border, kind="Serial")
                peer_asn = 4000 + (index * 17 + border_index * 5 + _session) % 30000
                external_asns.add(peer_asn)
                builder.external_ebgp_session(uplink, core_asn, peer_asn)
                ebgp_inter_sessions += 1
            bgp = builder.routers[border].bgp_process
            core_process = _process(builder, border, core_protocol, core_id)
            builder.redistribute(
                border, core_process, "bgp", source_id=core_asn, metric=500
            )
            builder.redistribute(
                border, bgp, core_protocol,
                source_id=None if core_protocol == "rip" else core_id,
            )

    # Join every BGP-speaking core router into one instance with IBGP.
    bgp_cores = [
        router for router in core_names
        if builder.routers[router].bgp_process is not None
    ]
    if len(bgp_cores) > 1:
        loopbacks = {router: builder.add_loopback(router) for router in bgp_cores}
        anchor = bgp_cores[0]
        for router in bgp_cores[1:]:
            builder.ibgp_session(loopbacks[anchor], loopbacks[router], core_asn)
    if bgp_cores:
        expected.append(
            ExpectedInstance(
                protocol="bgp",
                size=len(bgp_cores),
                asn=core_asn,
                external=bool(border_routers),
            )
        )

    if with_filters:
        from repro.synth.filters import place_filters  # noqa: PLC0415

        place_filters(
            builder, rng,
            [(iface.router, iface.name) for iface in internal_ifaces],
            total_rules=rng.randint(60, 300),
            internal_share=internal_filter_share,
        )

    from repro.synth.flavor import add_boilerplate, add_flavor_interfaces  # noqa: PLC0415

    add_flavor_interfaces(
        builder, rng,
        style=rng.choice(("enterprise", "enterprise", "legacy", "atm-heavy")),
    )
    add_boilerplate(builder, rng)

    spec = NetworkSpec(
        name=name,
        design=DesignClass.UNCLASSIFIABLE,
        router_count=len(builder.routers),
        internal_as_count=len({e.asn for e in expected if e.protocol == "bgp"}),
        external_as_count=len(external_asns),
        has_filters=with_filters,
        internal_filter_fraction=internal_filter_share if with_filters else None,
        external_interfaces=list(builder.external_interfaces),
        expected_instances=expected,
    )
    spec.notes["ebgp_intra_sessions"] = ebgp_intra_sessions
    spec.notes["ebgp_inter_sessions"] = ebgp_inter_sessions
    return builder.serialize(), spec


def _leaf_asn(leaf_id: int) -> int:
    return 64512 + (leaf_id * 3) % 900


def _cover(builder: NetworkBuilder, iface: BuiltInterface, protocol: str, pid: int):
    if protocol == "ospf":
        builder.cover_ospf(iface, pid)
    elif protocol == "eigrp":
        builder.cover_eigrp(iface, pid)
    else:
        builder.cover_rip(iface)


def _process(builder: NetworkBuilder, router: str, protocol: str, pid: int):
    if protocol == "ospf":
        return builder.ensure_ospf(router, pid)
    if protocol == "eigrp":
        return builder.ensure_eigrp(router, pid)
    return builder.ensure_rip(router)


def _glue_leaf(
    builder: NetworkBuilder,
    leaf_router: str,
    core_router: str,
    leaf_protocol: str,
    leaf_id: int,
    core_protocol: str,
    core_id: int,
    style: str,
    core_asn: int,
    leaf_seq: int,
    internal_ifaces: List[BuiltInterface],
) -> None:
    """Attach a leaf compartment to the core via the chosen mechanism."""
    end_leaf, end_core = builder.connect(leaf_router, core_router, kind="Serial")
    internal_ifaces.extend([end_leaf, end_core])

    if style == "redistribution":
        # The core router joins the leaf instance on this link and
        # redistributes both ways (it is the +1 in the instance size).
        # Only the *leaf* process covers the glue link on both ends; the
        # core instance's own process never touches it, so the instances
        # stay distinct even when both run the same protocol.
        _cover(builder, end_leaf, leaf_protocol, leaf_id)
        _cover(builder, end_core, leaf_protocol, leaf_id)
        leaf_side = _process(builder, core_router, leaf_protocol, leaf_id)
        core_side = _process(builder, core_router, core_protocol, core_id)
        builder.redistribute(
            core_router, core_side, leaf_protocol,
            source_id=None if leaf_protocol == "rip" else leaf_id,
            metric=1000,
        )
        builder.redistribute(
            core_router, leaf_side, core_protocol,
            source_id=None if core_protocol == "rip" else core_id,
            metric=1000,
        )
    elif style == "ebgp":
        # EBGP used intra-network: leaf border gets a private AS, session
        # over the glue link to the core AS.  No IGP covers the glue link
        # (the BGP session runs over the link addresses directly), so a
        # same-protocol leaf can never fuse with the core instance.
        leaf_asn = _leaf_asn(leaf_seq)
        builder.ebgp_session(end_leaf, end_core, leaf_asn, core_asn)
        leaf_bgp = builder.routers[leaf_router].bgp_process
        leaf_igp = _process(builder, leaf_router, leaf_protocol, leaf_id)
        builder.redistribute(
            leaf_router, leaf_bgp, leaf_protocol,
            source_id=None if leaf_protocol == "rip" else leaf_id,
        )
        builder.redistribute(leaf_router, leaf_igp, "bgp", source_id=leaf_asn)
        core_bgp = builder.routers[core_router].bgp_process
        core_igp = _process(builder, core_router, core_protocol, core_id)
        builder.redistribute(
            core_router, core_bgp, core_protocol,
            source_id=None if core_protocol == "rip" else core_id,
        )
        builder.redistribute(core_router, core_igp, "bgp", source_id=core_asn)
    else:  # static
        # Static glue: the leaf's process may cover its own end (the glue
        # subnet becomes a leaf route), but the core side stays uncovered so
        # no same-protocol adjacency can form; the core learns the leaf via
        # a static route redistributed into its IGP.
        _cover(builder, end_leaf, leaf_protocol, leaf_id)
        builder.add_static_route(
            core_router, builder.plan.lans.prefix, end_leaf.address
        )
        builder.add_static_route(leaf_router, Prefix(0, 0), end_core.address)
        core_side = _process(builder, core_router, core_protocol, core_id)
        if not any(
            redist.source_protocol == "static" for redist in core_side.redistributes
        ):
            builder.redistribute(core_router, core_side, "static", metric=1000)


