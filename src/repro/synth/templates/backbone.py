"""Textbook backbone (transit ISP) routing design (§3.1's right half, §7.1).

Pattern: external routes are learned over many EBGP sessions at the edge
and distributed to every router via IBGP; a single IGP instance carries
only infrastructure routes; external routes are **never** redistributed
into the IGP — the hallmark of the design.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.core.classify import DesignClass
from repro.ios.config import NetworkStatement
from repro.synth.addressing import NetworkAddressPlan
from repro.synth.builder import NetworkBuilder
from repro.synth.spec import ExpectedInstance, NetworkSpec

#: Pools of public-looking peer AS numbers for backbone EBGP sessions.
PEER_ASNS = tuple(range(9000, 9400))


def build_backbone(
    name: str,
    index: int,
    n_routers: int,
    seed: int = 0,
    pop_size: int = 8,
    igp: str = "ospf",
    ebgp_sessions_per_border: int = 6,
    interface_flavor: str = "pos",
    internal_filter_share: float = 0.05,
    with_filters: bool = True,
) -> Tuple[Dict[str, str], NetworkSpec]:
    """Generate a textbook backbone network.

    The topology is a ring of PoPs: each PoP has two core routers (linked
    into the network-wide core ring) plus access/border routers.  Border
    routers carry several EBGP sessions to distinct external ASs.
    ``interface_flavor`` selects the long-haul link technology: ``pos``
    (three of the paper's four backbones) or ``hssi-atm`` (the fourth).
    """
    rng = random.Random(seed)
    plan = NetworkAddressPlan.standard(index)
    builder = NetworkBuilder(plan, rng=rng)
    local_as = [2828, 3561, 4323, 6461][index % 4]
    core_kind = "POS" if interface_flavor == "pos" else "Hssi"
    access_kind = "POS" if interface_flavor == "pos" else "ATM"

    n_pops = max(2, n_routers // pop_size)
    routers = []
    pops = []
    count = 0
    for pop in range(n_pops):
        members = []
        for slot in range(pop_size):
            if count >= n_routers:
                break
            router = f"{name}-p{pop}r{slot}"
            builder.add_router(router)
            members.append(router)
            routers.append(router)
            count += 1
        if members:
            pops.append(members)

    process_id = 1
    internal_ifaces = []

    def cover(iface):
        if igp == "ospf":
            builder.cover_ospf(iface, process_id)
        else:
            builder.cover_eigrp(iface, process_id)
        internal_ifaces.append(iface)

    # Core ring between the first router of each PoP, plus intra-PoP star.
    for pop_index, members in enumerate(pops):
        next_members = pops[(pop_index + 1) % len(pops)]
        end_a, end_b = builder.connect(members[0], next_members[0], kind=core_kind)
        cover(end_a)
        cover(end_b)
        if len(members) > 1:
            end_a, end_b = builder.connect(
                members[0], members[1], kind=core_kind
            )
            cover(end_a)
            cover(end_b)
        for member in members[2:]:
            hub = members[rng.randint(0, 1)] if len(members) > 1 else members[0]
            end_a, end_b = builder.connect(hub, member, kind=access_kind)
            cover(end_a)
            cover(end_b)

    # Loopbacks (covered by the IGP — infrastructure routes) and IBGP mesh.
    loopbacks = {}
    for router in routers:
        loopback = builder.add_loopback(router)
        loopbacks[router] = loopback
        if igp == "ospf":
            builder.cover_ospf(loopback, process_id)
        else:
            builder.cover_eigrp(loopback, process_id)
    # A full IBGP mesh would need n^2 sessions; like real backbones, use a
    # small set of route reflectors: RRs mesh among themselves, everyone
    # else peers with every RR.
    reflectors = [members[0] for members in pops[: max(2, len(pops) // 8)]]
    for i, rr_a in enumerate(reflectors):
        for rr_b in reflectors[i + 1:]:
            builder.ibgp_session(loopbacks[rr_a], loopbacks[rr_b], local_as)
    for router in routers:
        if router in reflectors:
            continue
        for reflector in reflectors:
            builder.ibgp_session(loopbacks[router], loopbacks[reflector], local_as)
            rr_bgp = builder.routers[reflector].bgp_process
            rr_bgp.neighbors[-1].route_reflector_client = True

    # Border routers: the last router of each PoP peers with several
    # external ASs.  No redistribution of BGP into the IGP, ever.
    external_asns = set()
    session_count = 0
    from repro.net import Prefix as _Prefix  # noqa: PLC0415

    bogon_entries = [
        ("deny", _Prefix("10.0.0.0/8"), None, 32),
        ("deny", _Prefix("172.16.0.0/12"), None, 32),
        ("deny", _Prefix("192.168.0.0/16"), None, 32),
        ("permit", _Prefix("0.0.0.0/0"), None, 24),
    ]
    for members in pops:
        border = members[-1]
        builder.add_prefix_list(border, "BOGON-IN", bogon_entries)
        for peer_index in range(ebgp_sessions_per_border):
            uplink = builder.add_external_link(border, kind="Serial")
            peer_asn = PEER_ASNS[(session_count * 7 + peer_index) % len(PEER_ASNS)]
            external_asns.add(peer_asn)
            neighbor = builder.external_ebgp_session(uplink, local_as, peer_asn)
            # Real backbones filter bogons and over-long prefixes inbound.
            neighbor.prefix_list_in = "BOGON-IN"
            session_count += 1
        bgp = builder.routers[border].bgp_process
        if not bgp.networks:
            bgp.networks.append(
                NetworkStatement(
                    address=plan.loopbacks.prefix.network,
                    mask=plan.loopbacks.prefix.netmask,
                )
            )

    if with_filters:
        from repro.synth.filters import place_filters  # noqa: PLC0415

        place_filters(
            builder, rng,
            [(iface.router, iface.name) for iface in internal_ifaces],
            total_rules=rng.randint(120, 400),
            internal_share=internal_filter_share,
        )

    from repro.synth.flavor import add_boilerplate, add_flavor_interfaces  # noqa: PLC0415

    add_flavor_interfaces(builder, rng, style="backbone")
    add_boilerplate(builder, rng, min_lines=60, max_lines=200)

    spec = NetworkSpec(
        name=name,
        design=DesignClass.BACKBONE,
        router_count=len(routers),
        internal_as_count=1,
        external_as_count=len(external_asns),
        has_filters=with_filters,
        internal_filter_fraction=internal_filter_share if with_filters else None,
        external_interfaces=list(builder.external_interfaces),
    )
    spec.expected_instances.append(
        ExpectedInstance(protocol=igp, size=len(routers), external=False)
    )
    spec.expected_instances.append(
        ExpectedInstance(protocol="bgp", size=len(routers), asn=local_as, external=True)
    )
    spec.notes["ebgp_external_sessions"] = session_count
    return builder.serialize(), spec


