"""Ground truth carried alongside each generated network."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.classify import DesignClass


@dataclass
class ExpectedInstance:
    """One routing instance the generator intended to create."""

    protocol: str
    size: int  # number of participating routers
    asn: Optional[int] = None
    external: bool = False  # should be classified as inter-domain


@dataclass
class NetworkSpec:
    """What the generator built — the label the analyzer must recover."""

    name: str
    design: DesignClass
    router_count: int
    expected_instances: List[ExpectedInstance] = field(default_factory=list)
    external_interfaces: List[Tuple[str, str]] = field(default_factory=list)
    internal_filter_fraction: Optional[float] = None
    has_filters: bool = True
    internal_as_count: int = 0
    external_as_count: int = 0
    notes: Dict[str, object] = field(default_factory=dict)

    def instance_count(self) -> int:
        return len(self.expected_instances)

    def igp_instances(self) -> List[ExpectedInstance]:
        return [inst for inst in self.expected_instances if inst.protocol != "bgp"]

    def bgp_instances(self) -> List[ExpectedInstance]:
        return [inst for inst in self.expected_instances if inst.protocol == "bgp"]
