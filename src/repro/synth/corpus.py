"""The 31-network study corpus (§4.2) and the 2,400-network repository.

Composition mirrors the paper:

* 4 backbone networks, 400–600 routers (mean ≈540), three built on POS and
  one on HSSI/ATM (§7.2, §7.3);
* 7 textbook enterprises, 19–101 routers, the largest splitting its 101
  routers across two IGP instances (§7.1);
* 20 unclassifiable networks, 4–1,750 routers (median 36), including net5
  (881 routers), net15 (79 routers), two tier-2 ISPs with staging
  instances, four giants (760, 881, 1430, 1750), and three networks with
  no BGP at all;
* three networks carry no packet filters (§5.3's 31 → 28);
* per-network internal-filter shares spread so that more than 30 % of the
  filtered networks apply at least 40 % of their rules internally
  (Figure 11's knee).

``scale`` shrinks every network proportionally so tests can run the whole
pipeline quickly; benchmarks use ``scale=1.0``.
"""

from __future__ import annotations

import functools
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.model.network import Network
from repro.synth.spec import NetworkSpec
from repro.synth.templates.backbone import build_backbone
from repro.synth.templates.enterprise import build_enterprise
from repro.synth.templates.hybrid import build_hybrid
from repro.synth.templates.net5 import build_net5
from repro.synth.templates.net15 import build_net15
from repro.synth.templates.tier2 import build_tier2


@dataclass
class CorpusNetwork:
    """One generated network: lazy config generation and parsing."""

    name: str
    build: Callable[[], Tuple[Dict[str, str], NetworkSpec]]
    _configs: Optional[Dict[str, str]] = field(default=None, repr=False)
    _spec: Optional[NetworkSpec] = field(default=None, repr=False)
    _network: Optional[Network] = field(default=None, repr=False)

    def _ensure_built(self) -> None:
        if self._configs is None:
            self._configs, self._spec = self.build()

    @property
    def configs(self) -> Dict[str, str]:
        self._ensure_built()
        return self._configs

    @property
    def spec(self) -> NetworkSpec:
        self._ensure_built()
        return self._spec

    def network(self) -> Network:
        if self._network is None:
            self._network = Network.from_configs(self.configs, name=self.name)
        return self._network


def _scaled(size: int, scale: float, minimum: int = 3) -> int:
    return max(minimum, round(size * scale))


#: (name, size, per-network internal filter share) for the filtered subset;
#: shares chosen so >30% of the 28 filtered networks are at or above 40%.
_HYBRID_ROWS: Tuple[Tuple[str, int, float, bool], ...] = (
    # (name, routers, internal_filter_share, use_bgp)
    ("net20", 4, 0.00, True),
    ("net21", 6, 0.10, True),
    ("net22", 8, 0.55, True),
    ("net23", 12, 0.20, False),  # no BGP
    ("net24", 16, 0.30, True),  # no filters (see _NO_FILTER_NETWORKS)
    ("net25", 20, 0.65, True),
    ("net26", 28, 0.05, False),  # no BGP
    ("net27", 33, 0.42, True),  # no filters
    ("net28", 35, 0.15, True),
    ("net29", 36, 0.50, True),
    ("net30", 36, 0.25, True),
    ("net31", 48, 0.08, False),  # no BGP
    ("net32", 60, 0.72, True),
    ("net33", 760, 0.35, True),
    ("net34", 1430, 0.12, True),
    ("net35", 1750, 0.45, True),
)

_NO_FILTER_NETWORKS = frozenset({"net24", "net27", "net3"})

_ENTERPRISE_ROWS: Tuple[Tuple[str, int, str, float], ...] = (
    # (name, routers, igp, internal_filter_share)
    ("net1", 19, "ospf", 0.10),
    ("net2", 24, "eigrp", 0.45),
    ("net3", 30, "ospf", 0.20),  # no filters
    ("net4", 42, "eigrp", 0.02),
    ("net6", 55, "ospf", 0.30),
    ("net7", 70, "eigrp", 0.18),
    ("net8", 101, "ospf", 0.60),
)

_BACKBONE_ROWS: Tuple[Tuple[str, int, str, float], ...] = (
    ("net9", 400, "pos", 0.04),
    ("net10", 540, "pos", 0.10),
    ("net11", 580, "pos", 0.02),
    ("net12", 600, "hssi-atm", 0.08),
)

_TIER2_ROWS: Tuple[Tuple[str, int, float], ...] = (
    ("net13", 180, 0.22),
    ("net14", 250, 0.46),
)


def build_corpus(scale: float = 1.0, seed: int = 2004) -> List[CorpusNetwork]:
    """Construct the 31-network corpus (lazily; nothing is generated yet)."""
    rng = random.Random(seed)
    corpus: List[CorpusNetwork] = []
    index = 0

    def next_index() -> int:
        nonlocal index
        index += 1
        return index

    for name, size, igp, share in _ENTERPRISE_ROWS:
        corpus.append(
            CorpusNetwork(
                name=name,
                build=_enterprise_builder(
                    name, next_index(), _scaled(size, scale), igp, share,
                    with_filters=name not in _NO_FILTER_NETWORKS,
                    seed=rng.randint(0, 2**31),
                    two_instances=(name == "net8"),
                ),
            )
        )
    for name, size, flavor, share in _BACKBONE_ROWS:
        corpus.append(
            CorpusNetwork(
                name=name,
                build=_backbone_builder(
                    name, next_index(), _scaled(size, scale, minimum=8), flavor,
                    share, seed=rng.randint(0, 2**31),
                ),
            )
        )
    for name, size, share in _TIER2_ROWS:
        corpus.append(
            CorpusNetwork(
                name=name,
                build=_tier2_builder(
                    name, next_index(), _scaled(size, scale, minimum=8), share,
                    seed=rng.randint(0, 2**31),
                ),
            )
        )
    corpus.append(
        CorpusNetwork(
            name="net5",
            build=functools.partial(build_net5, name="net5", scale=scale),
        )
    )
    corpus.append(
        CorpusNetwork(
            name="net15",
            build=functools.partial(build_net15, name="net15", scale=scale),
        )
    )
    for name, size, share, use_bgp in _HYBRID_ROWS:
        # Big managed networks shatter into many tiny per-site instances.
        leaf_range = (1, 2) if size >= 100 else (1, 3)
        corpus.append(
            CorpusNetwork(
                name=name,
                build=_hybrid_builder(
                    name, next_index(), _scaled(size, scale),
                    share, use_bgp,
                    with_filters=name not in _NO_FILTER_NETWORKS,
                    seed=rng.randint(0, 2**31),
                    leaf_range=leaf_range,
                ),
            )
        )
    assert len(corpus) == 31, f"corpus has {len(corpus)} networks, expected 31"
    return corpus


def _enterprise_builder(name, index, size, igp, share, with_filters, seed, two_instances):
    return functools.partial(
        build_enterprise,
        name,
        index,
        size,
        seed=seed,
        igp=igp,
        n_borders=2 if size >= 40 else 1,
        n_igp_instances=2 if two_instances else 1,
        internal_filter_share=share,
        with_filters=with_filters,
    )


def _backbone_builder(name, index, size, flavor, share, seed):
    return functools.partial(
        build_backbone,
        name,
        index,
        size,
        seed=seed,
        interface_flavor=flavor,
        internal_filter_share=share,
    )


def _tier2_builder(name, index, size, share, seed):
    return functools.partial(
        build_tier2, name, index, size, seed=seed, internal_filter_share=share
    )


def _hybrid_builder(name, index, size, share, use_bgp, with_filters, seed, leaf_range):
    return functools.partial(
        build_hybrid,
        name,
        index,
        size,
        seed=seed,
        use_bgp=use_bgp,
        internal_filter_share=share,
        with_filters=with_filters,
        leaf_size_range=leaf_range,
    )


@functools.lru_cache(maxsize=4)
def paper_corpus(scale: float = 1.0, seed: int = 2004) -> Tuple[CorpusNetwork, ...]:
    """The memoized study corpus.  Generation is lazy per network; parsing
    is cached per network, so repeated benchmark rounds are cheap."""
    return tuple(build_corpus(scale=scale, seed=seed))


def repository_sizes(count: int = 2400, seed: int = 42) -> List[int]:
    """Sizes of the networks "known in this repository" (Figure 8's second
    series): a small-skewed log-normal, most networks under 10 routers."""
    rng = random.Random(seed)
    sizes = []
    for _ in range(count):
        size = int(math.exp(rng.gauss(math.log(8.0), 1.5)))
        sizes.append(max(1, min(size, 3000)))
    return sizes
