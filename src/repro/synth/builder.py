"""Incremental construction of synthetic router configurations.

:class:`NetworkBuilder` is the shared toolkit of the design templates: it
creates routers, wires point-to-point links and LANs, attaches external
peerings, configures routing processes and policies, and finally serializes
every router to IOS text.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ios.config import (
    AccessList,
    AclRule,
    BgpNeighbor,
    BgpProcess,
    EigrpProcess,
    InterfaceConfig,
    NetworkStatement,
    OspfProcess,
    RedistributeConfig,
    RipProcess,
    RouteMap,
    RouteMapClause,
    RouterConfig,
    StaticRoute,
)
from repro.ios.serializer import serialize_config
from repro.net import IPv4Address, Prefix
from repro.synth.addressing import NetworkAddressPlan


@dataclass
class BuiltInterface:
    """Handle returned by interface-creating methods."""

    router: str
    name: str
    prefix: Prefix
    address: IPv4Address


class NetworkBuilder:
    """Builds a set of router configurations for one synthetic network."""

    def __init__(self, plan: NetworkAddressPlan, rng: Optional[random.Random] = None):
        self.plan = plan
        self.rng = rng or random.Random(0)
        self.routers: Dict[str, RouterConfig] = {}
        self._iface_counters: Dict[Tuple[str, str], int] = {}
        self._acl_counters: Dict[str, int] = {}
        #: Ground truth: interfaces that face outside the network.
        self.external_interfaces: List[Tuple[str, str]] = []

    # -- routers and interfaces --------------------------------------------

    def add_router(self, name: str) -> RouterConfig:
        if name in self.routers:
            raise ValueError(f"duplicate router {name}")
        config = RouterConfig(hostname=name)
        self.routers[name] = config
        return config

    def _next_interface_name(self, router: str, kind: str) -> str:
        counter = self._iface_counters.get((router, kind), 0)
        self._iface_counters[(router, kind)] = counter + 1
        if kind in ("Loopback", "Tunnel", "Dialer", "Multilink", "Null", "Port"):
            return f"{kind}{counter}"
        slot, port = divmod(counter, 8)
        return f"{kind}{slot}/{port}"

    def add_interface(
        self,
        router: str,
        kind: str,
        prefix: Prefix,
        host_index: int = 0,
        point_to_point: bool = False,
        description: Optional[str] = None,
    ) -> BuiltInterface:
        """Add an interface on *router* with the *host_index*-th usable
        address of *prefix*."""
        config = self.routers[router]
        name = self._next_interface_name(router, kind)
        if prefix.length == 32:
            address = prefix.network
        else:
            hosts = list(prefix.host_addresses())
            address = hosts[host_index]
        iface = InterfaceConfig(
            name=name,
            address=address,
            netmask=prefix.netmask,
            point_to_point=point_to_point,
            description=description,
        )
        config.interfaces[name] = iface
        return BuiltInterface(router=router, name=name, prefix=prefix, address=address)

    def add_loopback(self, router: str) -> BuiltInterface:
        return self.add_interface(router, "Loopback", self.plan.loopback())

    def connect(
        self, a: str, b: str, kind: str = "Serial", subnet: Optional[Prefix] = None
    ) -> Tuple[BuiltInterface, BuiltInterface]:
        """Connect two routers with a point-to-point /30 link."""
        if subnet is None:
            subnet = self.plan.p2p_subnet()
        end_a = self.add_interface(a, kind, subnet, host_index=0, point_to_point=True)
        end_b = self.add_interface(b, kind, subnet, host_index=1, point_to_point=True)
        return end_a, end_b

    def add_lan(
        self, router: str, kind: str = "FastEthernet", length: int = 24
    ) -> BuiltInterface:
        """Attach a host LAN to *router* (the router takes the first host)."""
        return self.add_interface(router, kind, self.plan.lan_subnet(length))

    def add_external_link(
        self, router: str, kind: str = "Serial"
    ) -> BuiltInterface:
        """Attach a /30 toward an external router whose config we don't have.

        The far end of the subnet is, by construction, absent from the
        network, so the analyzer should classify this interface as
        external-facing.  Recorded in :attr:`external_interfaces`.
        """
        subnet = self.plan.external_subnet()
        iface = self.add_interface(router, kind, subnet, host_index=0, point_to_point=True)
        self.external_interfaces.append((router, iface.name))
        return iface

    def external_neighbor_address(self, iface: BuiltInterface) -> IPv4Address:
        """The (absent) far-end address of an external /30."""
        hosts = list(iface.prefix.host_addresses())
        for host in hosts:
            if host != iface.address:
                return host
        raise ValueError(f"no far-end address in {iface.prefix}")

    # -- routing processes ---------------------------------------------------

    def ensure_ospf(self, router: str, process_id: int) -> OspfProcess:
        config = self.routers[router]
        process = config.ospf(process_id)
        if process is None:
            process = OspfProcess(process_id=process_id)
            config.ospf_processes.append(process)
        return process

    def ensure_eigrp(self, router: str, asn: int, protocol: str = "eigrp") -> EigrpProcess:
        config = self.routers[router]
        process = config.eigrp(asn)
        if process is None:
            process = EigrpProcess(asn=asn, protocol=protocol)
            config.eigrp_processes.append(process)
        return process

    def ensure_rip(self, router: str) -> RipProcess:
        config = self.routers[router]
        if config.rip_process is None:
            config.rip_process = RipProcess(version=2)
        return config.rip_process

    def ensure_bgp(self, router: str, asn: int) -> BgpProcess:
        config = self.routers[router]
        if config.bgp_process is None:
            config.bgp_process = BgpProcess(asn=asn)
        elif config.bgp_process.asn != asn:
            raise ValueError(f"{router} already runs BGP AS {config.bgp_process.asn}")
        return config.bgp_process

    def cover_ospf(self, iface: BuiltInterface, process_id: int, area: str = "0") -> None:
        process = self.ensure_ospf(iface.router, process_id)
        process.networks.append(
            NetworkStatement(
                address=iface.prefix.network,
                wildcard=iface.prefix.wildcard,
                area=area,
            )
        )

    def cover_eigrp(self, iface: BuiltInterface, asn: int, protocol: str = "eigrp") -> None:
        process = self.ensure_eigrp(iface.router, asn, protocol=protocol)
        process.networks.append(
            NetworkStatement(
                address=iface.prefix.network, wildcard=iface.prefix.wildcard
            )
        )

    def cover_rip(self, iface: BuiltInterface) -> None:
        process = self.ensure_rip(iface.router)
        process.networks.append(NetworkStatement(address=iface.prefix.network))

    # -- BGP sessions ----------------------------------------------------------

    def ibgp_session(
        self, a: BuiltInterface, b: BuiltInterface, asn: int
    ) -> None:
        """A bidirectional IBGP session between two interface addresses."""
        bgp_a = self.ensure_bgp(a.router, asn)
        bgp_b = self.ensure_bgp(b.router, asn)
        bgp_a.neighbors.append(BgpNeighbor(address=b.address, remote_as=asn))
        bgp_b.neighbors.append(BgpNeighbor(address=a.address, remote_as=asn))

    def ebgp_session(
        self,
        a: BuiltInterface,
        b: BuiltInterface,
        asn_a: int,
        asn_b: int,
    ) -> None:
        """A bidirectional EBGP session between two in-network routers."""
        bgp_a = self.ensure_bgp(a.router, asn_a)
        bgp_b = self.ensure_bgp(b.router, asn_b)
        bgp_a.neighbors.append(BgpNeighbor(address=b.address, remote_as=asn_b))
        bgp_b.neighbors.append(BgpNeighbor(address=a.address, remote_as=asn_a))

    def external_ebgp_session(
        self, iface: BuiltInterface, local_asn: int, remote_asn: int
    ) -> BgpNeighbor:
        """An EBGP session to the absent far end of an external link."""
        bgp = self.ensure_bgp(iface.router, local_asn)
        neighbor = BgpNeighbor(
            address=self.external_neighbor_address(iface), remote_as=remote_asn
        )
        bgp.neighbors.append(neighbor)
        return neighbor

    # -- policies ---------------------------------------------------------------

    def _next_acl_number(self, router: str, extended: bool = False) -> str:
        base = 100 if extended else 1
        limit = 199 if extended else 99
        key = f"{router}:{'x' if extended else 's'}"
        counter = self._acl_counters.get(key, base)
        if extended and counter == 200:
            counter = 2000  # roll over into the expanded extended range
        elif not extended and counter == 100:
            counter = 1300  # roll over into the expanded standard range
        limit = 2699 if extended else 1999
        if counter > limit:
            raise RuntimeError(f"out of ACL numbers on {router}")
        self._acl_counters[key] = counter + 1
        return str(counter)

    def add_prefix_acl(
        self, router: str, permits: List[Prefix], denies: Optional[List[Prefix]] = None
    ) -> str:
        """A standard ACL usable as a route filter: denies first, then permits."""
        config = self.routers[router]
        number = self._next_acl_number(router)
        acl = AccessList(name=number)
        for prefix in denies or []:
            acl.rules.append(
                AclRule(
                    action="deny",
                    source=prefix.network,
                    source_wildcard=prefix.wildcard,
                )
            )
        for prefix in permits:
            acl.rules.append(
                AclRule(
                    action="permit",
                    source=prefix.network,
                    source_wildcard=prefix.wildcard,
                )
            )
        config.access_lists[number] = acl
        return number

    def add_prefix_list(
        self,
        router: str,
        name: str,
        entries: List[Tuple[str, Prefix, Optional[int], Optional[int]]],
    ) -> str:
        """A named prefix list from (action, prefix, ge, le) tuples."""
        from repro.ios.config import PrefixList, PrefixListEntry  # noqa: PLC0415

        config = self.routers[router]
        plist = PrefixList(name=name)
        for sequence, (action, prefix, ge, le) in enumerate(entries, start=1):
            plist.entries.append(
                PrefixListEntry(
                    sequence=sequence * 5, action=action, prefix=prefix, ge=ge, le=le
                )
            )
        config.prefix_lists[name] = plist
        return name

    def add_route_map_permitting(
        self, router: str, name: str, permits: List[Prefix], set_tag: Optional[int] = None
    ) -> RouteMap:
        """A route map whose single permit clause matches a prefix ACL."""
        config = self.routers[router]
        acl = self.add_prefix_acl(router, permits)
        clause = RouteMapClause(action="permit", sequence=10, match_ip_address=[acl])
        if set_tag is not None:
            clause.set_tag = set_tag
        route_map = RouteMap(name=name, clauses=[clause])
        config.route_maps[name] = route_map
        return route_map

    def add_packet_filter(
        self,
        iface: BuiltInterface,
        rule_count: int,
        direction: str = "in",
        extended: bool = True,
    ) -> str:
        """Attach a packet filter with *rule_count* clauses to an interface."""
        config = self.routers[iface.router]
        number = self._next_acl_number(iface.router, extended=extended)
        acl = AccessList(name=number)
        for index in range(max(0, rule_count - 1)):
            # Vary the clauses so they are not copy-paste identical.
            protocol = ("tcp", "udp", "ip", "icmp", "pim")[index % 5]
            port = str(1024 + (index * 7) % 40000)
            block = Prefix((10 << 24) | (index << 8), 24)
            rule = AclRule(
                action="deny" if index % 3 else "permit",
                protocol=protocol,
                source=block.network,
                source_wildcard=block.wildcard,
                dest_any=True,
            )
            if protocol in ("tcp", "udp"):
                rule.port_op, rule.port = "eq", port
            acl.rules.append(rule)
        acl.rules.append(AclRule(action="permit", protocol="ip", source_any=True, dest_any=True))
        config.access_lists[number] = acl
        stored = config.interfaces[iface.name]
        if direction == "in":
            stored.access_group_in = number
        else:
            stored.access_group_out = number
        return number

    def redistribute(
        self,
        router: str,
        target,
        source_protocol: str,
        source_id: Optional[int] = None,
        route_map: Optional[str] = None,
        metric: Optional[int] = None,
        subnets: bool = True,
        tag: Optional[int] = None,
    ) -> None:
        """Add a redistribution statement to a process config object."""
        target.redistributes.append(
            RedistributeConfig(
                source_protocol=source_protocol,
                source_id=source_id,
                route_map=route_map,
                metric=metric,
                subnets=subnets,
                tag=tag,
            )
        )

    def add_static_route(
        self, router: str, prefix: Prefix, next_hop: IPv4Address
    ) -> None:
        self.routers[router].static_routes.append(
            StaticRoute(prefix=prefix, next_hop=next_hop)
        )

    # -- output -------------------------------------------------------------------

    def serialize(self) -> Dict[str, str]:
        """Serialize every router to IOS text, keyed by router name."""
        return {name: serialize_config(config) for name, config in self.routers.items()}

    def router_names(self) -> List[str]:
        return list(self.routers)
