"""Deterministic fault injection over serialized configuration archives.

The lenient ingestion path (:meth:`Network.from_directory` with
``on_error="skip-block"``) claims that a single damaged file never sinks a
run and that every loss is reported.  This module makes that claim
testable: it mutates a clean, serialized corpus the way real archives rot
— truncated files, dropped lines, unknown commands, corrupt address
tokens, duplicated hostnames, spliced files — and records exactly what it
broke, so a test can assert the pipeline's diagnostics point back at the
fault.

Every mutator is a pure function ``(configs, rng) -> (mutated, fault)``
over a ``{file name: config text}`` mapping, driven only by the supplied
:class:`random.Random`, so a seed fully determines the outcome.  The
returned :class:`InjectedFault` carries the touched files, the best-known
line number, and whether strict-mode ingestion is guaranteed to raise on
the result (a truncated JunOS file always raises; an injected unknown
command is tolerated by design and only earns an info diagnostic).
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.model.dialect import detect_dialect


@dataclass(frozen=True)
class InjectedFault:
    """Ground truth about one injected fault."""

    kind: str
    files: Tuple[str, ...]
    description: str
    line_number: int = 0
    strict_raises: bool = True

    @property
    def file(self) -> str:
        """The primary faulted file (first of ``files``)."""
        return self.files[0]


Mutator = Callable[
    [Dict[str, str], random.Random], Tuple[Dict[str, str], InjectedFault]
]


def _line_number_at(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def _is_junos(text: str) -> bool:
    return detect_dialect(text) == "junos"


def _pick(rng: random.Random, items: List[str]) -> str:
    return items[rng.randrange(len(items))]


_IOS_ADDRESS_LINE_RE = re.compile(
    r"^[ \t]*ip address (\d+\.\d+\.\d+\.\d+) (\d+\.\d+\.\d+\.\d+)", re.MULTILINE
)


def _ios_files(configs: Dict[str, str]) -> List[str]:
    return sorted(name for name, text in configs.items() if not _is_junos(text))


def _junos_files(configs: Dict[str, str]) -> List[str]:
    return sorted(name for name, text in configs.items() if _is_junos(text))


# ---------------------------------------------------------------------------
# mutators


def truncate_file(
    configs: Dict[str, str], rng: random.Random
) -> Tuple[Dict[str, str], InjectedFault]:
    """Cut a file short mid-statement, as a dying transfer would.

    For IOS the cut lands inside the netmask of an ``ip address`` line, so
    the stanza is provably malformed; for JunOS any mid-line cut leaves
    the brace structure unbalanced.  Both raise in strict mode.
    """
    junos = _junos_files(configs)
    candidates = [
        name for name in _ios_files(configs) if _IOS_ADDRESS_LINE_RE.search(configs[name])
    ]
    mutated = dict(configs)
    if candidates and (not junos or rng.random() < 0.7):
        name = _pick(rng, candidates)
        text = configs[name]
        matches = list(_IOS_ADDRESS_LINE_RE.finditer(text))
        match = matches[rng.randrange(len(matches))]
        # Cut inside the netmask token, one character past its first dot.
        mask_start = match.start(2)
        cut = mask_start + text[mask_start:].index(".") + 1
        mutated[name] = text[:cut]
        line = _line_number_at(text, cut)
        return mutated, InjectedFault(
            kind="truncate-file",
            files=(name,),
            description=f"truncated {name} inside a netmask at line {line}",
            line_number=line,
            strict_raises=True,
        )
    name = _pick(rng, junos)
    text = configs[name]
    # Cut at the midpoint of a random non-blank statement line.
    offsets = []
    position = 0
    for raw in text.splitlines(keepends=True):
        stripped = raw.strip()
        # Brace-only lines are no good: keeping their first character can
        # leave a balanced, complete prefix.  Cut mid-token instead.
        if stripped and not stripped.startswith("#") and stripped.strip("{};"):
            offsets.append(position + len(raw) - len(raw.lstrip()) + max(1, len(stripped) // 2))
        position += len(raw)
    cut = offsets[rng.randrange(max(1, len(offsets) - 1))]
    mutated[name] = text[:cut]
    line = _line_number_at(text, cut)
    return mutated, InjectedFault(
        kind="truncate-file",
        files=(name,),
        description=f"truncated {name} mid-statement at line {line}",
        line_number=line,
        # A cut that removes every brace-hint line demotes the residue to
        # the IOS parser, which tolerates it as unmodeled lines.
        strict_raises=_is_junos(mutated[name]),
    )


def drop_lines(
    configs: Dict[str, str], rng: random.Random
) -> Tuple[Dict[str, str], InjectedFault]:
    """Delete a structurally load-bearing line, as partial saves do.

    JunOS: a brace-opening line vanishes and the file no longer balances
    (strict raises, lenient quarantines).  IOS: a stanza header vanishes
    and its orphaned sub-commands surface as unmodeled top-level lines
    (tolerated, but reported); if no safe header exists the hostname line
    is dropped instead, which the loader reports when it falls back to the
    file name.
    """
    junos = _junos_files(configs)
    ios = _ios_files(configs)
    mutated = dict(configs)
    if junos and (not ios or rng.random() < 0.5):
        name = _pick(rng, junos)
        lines = configs[name].splitlines()
        brace_lines = [i for i, ln in enumerate(lines) if "{" in ln]
        index = brace_lines[rng.randrange(len(brace_lines))]
        dropped = lines.pop(index)
        mutated[name] = "\n".join(lines) + "\n"
        return mutated, InjectedFault(
            kind="drop-lines",
            files=(name,),
            description=f"dropped {dropped.strip()!r} from {name}",
            line_number=index + 1,
            strict_raises=True,
        )
    # Stanza headers directly after a separator (or at file start) whose
    # children will be orphaned to the top level when the header vanishes;
    # files without one lose their hostname line instead, which the loader
    # reports when it falls back to naming the router after the file.
    candidates: List[Tuple[str, int]] = []
    for name in ios:
        lines = configs[name].splitlines()
        headers = []
        for i, ln in enumerate(lines):
            if not ln or ln.startswith((" ", "\t", "!")):
                continue
            has_child = i + 1 < len(lines) and lines[i + 1].startswith((" ", "\t"))
            after_break = (
                i == 0
                or lines[i - 1].strip().startswith("!")
                or not lines[i - 1].strip()
            )
            if has_child and after_break:
                headers.append(i)
        if not headers:
            headers = [
                i for i, ln in enumerate(lines) if ln.split()[:1] == ["hostname"]
            ]
        candidates.extend((name, i) for i in headers)
    if not candidates:
        raise ValueError("no droppable line in any IOS config")
    name, index = candidates[rng.randrange(len(candidates))]
    lines = configs[name].splitlines()
    dropped = lines.pop(index)
    mutated[name] = "\n".join(lines) + "\n"
    return mutated, InjectedFault(
        kind="drop-lines",
        files=(name,),
        description=f"dropped {dropped.strip()!r} from {name}",
        line_number=index + 1,
        strict_raises=False,
    )


_UNKNOWN_IOS_LINES = (
    "xyzzy frobnicate 42",
    "mpls traffic-eng tunnels",
    "snmp-server community zork RO",
    "ntp server 203.0.113.7",
)


def inject_unknown_commands(
    configs: Dict[str, str], rng: random.Random
) -> Tuple[Dict[str, str], InjectedFault]:
    """Insert commands outside the modeled subset, as vendor drift does.

    Tolerated in both modes by design — the commands land in
    ``unmodeled_lines`` — but lenient ingestion reports each one as an
    info diagnostic, which is what the harness asserts on.
    """
    ios = _ios_files(configs)
    junos = _junos_files(configs)
    mutated = dict(configs)
    if ios and (not junos or rng.random() < 0.7):
        name = _pick(rng, ios)
        lines = configs[name].splitlines()
        # Top-level insertion points: after a separator or at the start.
        points = [0] + [
            i + 1 for i, ln in enumerate(lines) if ln.strip().startswith("!")
        ]
        index = points[rng.randrange(len(points))]
        command = _UNKNOWN_IOS_LINES[rng.randrange(len(_UNKNOWN_IOS_LINES))]
        lines.insert(index, command)
        mutated[name] = "\n".join(lines) + "\n"
        return mutated, InjectedFault(
            kind="inject-unknown",
            files=(name,),
            description=f"injected {command!r} into {name}",
            line_number=index + 1,
            strict_raises=False,
        )
    name = _pick(rng, junos)
    section = "xyzzy {\n    frobnicate 42;\n}\n"
    mutated[name] = section + configs[name]
    return mutated, InjectedFault(
        kind="inject-unknown",
        files=(name,),
        description=f"injected unknown section 'xyzzy' into {name}",
        line_number=1,
        strict_raises=False,
    )


_IP_BEARING_RES = (
    # IOS statements whose addresses the parser validates.
    re.compile(
        r"^[ \t]*(?:ip address|ip route|neighbor|network|summary-address)"
        r"[^\n]*?(\d+\.\d+\.\d+\.\d+)",
        re.MULTILINE,
    ),
    # JunOS: interface addresses, static routes, next hops, BGP neighbors.
    re.compile(
        r"^[ \t]*(?:address|route|next-hop|neighbor)[^\n;{]*?(\d+\.\d+\.\d+\.\d+)",
        re.MULTILINE,
    ),
)


def corrupt_ip_tokens(
    configs: Dict[str, str], rng: random.Random
) -> Tuple[Dict[str, str], InjectedFault]:
    """Replace an octet of a validated address with 999, as bit rot does.

    The damaged statement fails address validation: strict mode raises,
    lenient mode skips exactly that block with an error diagnostic.
    """
    candidates: List[Tuple[str, re.Match]] = []
    for name in sorted(configs):
        pattern = _IP_BEARING_RES[1] if _is_junos(configs[name]) else _IP_BEARING_RES[0]
        candidates.extend((name, m) for m in pattern.finditer(configs[name]))
    name, match = candidates[rng.randrange(len(candidates))]
    text = configs[name]
    start, end = match.span(1)
    octets = match.group(1).split(".")
    octets[rng.randrange(4)] = "999"
    corrupted = ".".join(octets)
    mutated = dict(configs)
    mutated[name] = text[:start] + corrupted + text[end:]
    line = _line_number_at(text, start)
    return mutated, InjectedFault(
        kind="corrupt-ip",
        files=(name,),
        description=f"corrupted address {match.group(1)} -> {corrupted} in {name}",
        line_number=line,
        strict_raises=True,
    )


_HOSTNAME_RES = (
    re.compile(r"^hostname[ \t]+(\S+)", re.MULTILINE),
    re.compile(r"^([ \t]*)host-name[ \t]+([^;\s]+);", re.MULTILINE),
)


def duplicate_hostnames(
    configs: Dict[str, str], rng: random.Random
) -> Tuple[Dict[str, str], InjectedFault]:
    """Give one router another router's hostname, as stale clones do.

    Strict ingestion raises on the duplicate name; lenient ingestion
    renames the second router with a ``~N`` suffix and emits a warning
    diagnostic naming its file.
    """
    named = []
    for name in sorted(configs):
        text = configs[name]
        pattern = _HOSTNAME_RES[1] if _is_junos(text) else _HOSTNAME_RES[0]
        if pattern.search(text):
            named.append(name)
    victim, donor = rng.sample(named, 2)
    donor_text = configs[donor]
    donor_pattern = _HOSTNAME_RES[1] if _is_junos(donor_text) else _HOSTNAME_RES[0]
    donor_name = donor_pattern.search(donor_text).group(donor_pattern.groups)
    victim_text = configs[victim]
    mutated = dict(configs)
    if _is_junos(victim_text):
        match = _HOSTNAME_RES[1].search(victim_text)
        replacement = f"{match.group(1)}host-name {donor_name};"
        line = _line_number_at(victim_text, match.start())
        mutated[victim] = (
            victim_text[: match.start()] + replacement + victim_text[match.end() :]
        )
    else:
        match = _HOSTNAME_RES[0].search(victim_text)
        line = _line_number_at(victim_text, match.start())
        mutated[victim] = (
            victim_text[: match.start()]
            + f"hostname {donor_name}"
            + victim_text[match.end() :]
        )
    return mutated, InjectedFault(
        kind="duplicate-hostname",
        files=(victim, donor),
        description=f"renamed router in {victim} to {donor_name!r} (also in {donor})",
        line_number=line,
        strict_raises=True,
    )


_SPLICE_WORD_RE = re.compile(r"^[ \t]*([A-Za-z][A-Za-z-]{3,})[ \t]+\S+", re.MULTILINE)


def splice_files(
    configs: Dict[str, str], rng: random.Random
) -> Tuple[Dict[str, str], InjectedFault]:
    """Glue the head of one file onto the tail of another, as botched
    concatenation in collection scripts does.

    The seam merges two half-lines into one garbled statement.  For IOS
    the seam is forced into an ``ip address`` stanza so the merged line is
    malformed inside the modeled subset (strict raises); for JunOS the
    result is brace-unbalanced.
    """
    names = sorted(configs)
    mutated = dict(configs)
    ios_heads = [
        name for name in _ios_files(configs) if _IOS_ADDRESS_LINE_RE.search(configs[name])
    ]
    if ios_heads:
        head_name = _pick(rng, ios_heads)
        tail_name = _pick(rng, [n for n in names if n != head_name])
        head_text = configs[head_name]
        tail_text = configs[tail_name]
        matches = list(_IOS_ADDRESS_LINE_RE.finditer(head_text))
        match = matches[rng.randrange(len(matches))]
        cut_head = match.start(1)  # keep "... ip address ", drop its operands
        # Tail resumes mid-word on a keyword line, so the merged statement
        # reads "ip address <word-tail> <arg>" — malformed by construction.
        tail_matches = [
            m for m in _SPLICE_WORD_RE.finditer(tail_text) if len(m.group(1)) >= 4
        ]
        tail_match = tail_matches[rng.randrange(len(tail_matches))]
        cut_tail = tail_match.start(1) + len(tail_match.group(1)) // 2
        mutated[head_name] = head_text[:cut_head] + tail_text[cut_tail:]
        line = _line_number_at(head_text, cut_head)
        return mutated, InjectedFault(
            kind="splice-files",
            files=(head_name, tail_name),
            description=(
                f"spliced {head_name} (through line {line}) onto the tail of {tail_name}"
            ),
            line_number=line,
            strict_raises=True,
        )
    head_name, tail_name = rng.sample(names, 2)
    head_text = configs[head_name]
    tail_text = configs[tail_name]
    spliced = head_text[: len(head_text) // 2] + tail_text[len(tail_text) // 2 :]
    if spliced.count("{") == spliced.count("}"):
        spliced += "}\n"  # force the imbalance a real tear leaves behind
    mutated[head_name] = spliced
    line = _line_number_at(head_text, len(head_text) // 2)
    return mutated, InjectedFault(
        kind="splice-files",
        files=(head_name, tail_name),
        description=f"spliced {head_name} onto the tail of {tail_name}",
        line_number=line,
        strict_raises=_is_junos(spliced),
    )


# ---------------------------------------------------------------------------
# analysis-level chaos mutators
#
# Unlike the parse-fault mutators above, these keep every file *valid* —
# strict ingestion never raises — and instead inflate the workload a
# specific analysis stage has to chew through: an adjacency storm for the
# process graph, a redistribution chain for instance/consistency
# analysis, a subnet spray for the address-space and reachability
# passes.  They exist so the resilient executor's deadlines and
# degradation ladders can be exercised on structurally honest input, not
# just on hooks that sleep.  They live in their own registry
# (``ANALYSIS_MUTATORS``) because the lint harness asserts every kind in
# ``MUTATORS`` is *diagnosable* as damage — these are not damage.


def adjacency_storm(
    configs: Dict[str, str], rng: random.Random
) -> Tuple[Dict[str, str], InjectedFault]:
    """Attach every router to shared storm LANs with extra OSPF processes.

    Each of 6 storm subnets gains one interface per router, and each
    router grows 3 new OSPF processes covering all of them, so every LAN
    becomes a full mesh over ``3 × routers`` processes — a quadratic
    blowup in process-graph edges from perfectly legal configuration.
    """
    ios = _ios_files(configs)
    if not ios:
        raise ValueError("adjacency-storm needs at least one IOS config")
    lans, processes = 6, 3
    mutated = dict(configs)
    for position, name in enumerate(ios):
        extra = []
        for lan in range(lans):
            extra.append(f"interface Ethernet9/{lan}")
            extra.append(
                f" ip address 10.224.{lan}.{position + 1} 255.255.255.0"
            )
            extra.append("!")
        for process in range(processes):
            extra.append(f"router ospf {900 + process}")
            extra.append(" network 10.224.0.0 0.0.255.255 area 0")
            extra.append("!")
        mutated[name] = configs[name].rstrip("\n") + "\n" + "\n".join(extra) + "\n"
    anchor = _pick(rng, ios)
    return mutated, InjectedFault(
        kind="adjacency-storm",
        files=tuple(ios),
        description=(
            f"attached {len(ios)} routers to {lans} shared LANs with "
            f"{processes} extra OSPF processes each (anchor {anchor})"
        ),
        line_number=0,
        strict_raises=False,
    )


def redistribution_chain(
    configs: Dict[str, str], rng: random.Random
) -> Tuple[Dict[str, str], InjectedFault]:
    """Grow a deep chain of mutually redistributing processes on one router.

    Alternating OSPF/EIGRP processes each redistribute their predecessor
    (the first one picks up ``connected``), so instance and consistency
    analysis must walk a 12-deep redistribution chain that no real design
    taxonomy anticipates — valid text, pathological structure.
    """
    ios = _ios_files(configs)
    if not ios:
        raise ValueError("redistribution-chain needs at least one IOS config")
    name = _pick(rng, ios)
    depth = 12
    extra: List[str] = []
    previous = "connected"
    for step in range(depth):
        identifier = 910 + step
        protocol = "ospf" if step % 2 == 0 else "eigrp"
        extra.append(f"router {protocol} {identifier}")
        extra.append(f" redistribute {previous} metric 10")
        if protocol == "ospf":
            extra.append(f" network 10.225.{step}.0 0.0.0.255 area 0")
        else:
            extra.append(f" network 10.225.{step}.0")
        extra.append("!")
        previous = f"{protocol} {identifier}"
    mutated = dict(configs)
    mutated[name] = configs[name].rstrip("\n") + "\n" + "\n".join(extra) + "\n"
    return mutated, InjectedFault(
        kind="redist-chain",
        files=(name,),
        description=f"chained {depth} mutually redistributing processes onto {name}",
        line_number=0,
        strict_raises=False,
    )


def subnet_spray(
    configs: Dict[str, str], rng: random.Random
) -> Tuple[Dict[str, str], InjectedFault]:
    """Spray one router with 96 loopback subnets, all advertised.

    Every sprayed /30 lands in a fresh OSPF process's ``network`` range,
    multiplying the distinct prefixes the address-space inventory and
    the reachability atom computation must track.
    """
    ios = _ios_files(configs)
    if not ios:
        raise ValueError("subnet-spray needs at least one IOS config")
    name = _pick(rng, ios)
    count = 96
    extra: List[str] = []
    for spray in range(count):
        third, fourth = divmod(spray * 4, 256)
        extra.append(f"interface Loopback{1000 + spray}")
        extra.append(f" ip address 10.226.{third}.{fourth + 1} 255.255.255.252")
        extra.append("!")
    extra.append("router ospf 950")
    extra.append(" network 10.226.0.0 0.0.255.255 area 0")
    extra.append("!")
    mutated = dict(configs)
    mutated[name] = configs[name].rstrip("\n") + "\n" + "\n".join(extra) + "\n"
    return mutated, InjectedFault(
        kind="subnet-spray",
        files=(name,),
        description=f"sprayed {count} advertised loopback subnets onto {name}",
        line_number=0,
        strict_raises=False,
    )


# ---------------------------------------------------------------------------
# registry


MUTATORS: Dict[str, Mutator] = {
    "truncate-file": truncate_file,
    "drop-lines": drop_lines,
    "inject-unknown": inject_unknown_commands,
    "corrupt-ip": corrupt_ip_tokens,
    "duplicate-hostname": duplicate_hostnames,
    "splice-files": splice_files,
}


#: Valid-config workload amplifiers for the resilient executor — kept
#: apart from ``MUTATORS`` because these never damage a file and must
#: never be asserted diagnosable by the lint harness.
ANALYSIS_MUTATORS: Dict[str, Mutator] = {
    "adjacency-storm": adjacency_storm,
    "redist-chain": redistribution_chain,
    "subnet-spray": subnet_spray,
}


def fault_kinds() -> Tuple[str, ...]:
    """All mutator kinds, in registry order."""
    return tuple(MUTATORS)


def analysis_fault_kinds() -> Tuple[str, ...]:
    """All analysis-level chaos mutator kinds, in registry order."""
    return tuple(ANALYSIS_MUTATORS)


def inject_fault(
    configs: Dict[str, str], kind: str, seed: int
) -> Tuple[Dict[str, str], InjectedFault]:
    """Apply one seeded mutator; the inputs fully determine the output."""
    if kind not in MUTATORS:
        raise ValueError(f"unknown fault kind: {kind!r} (choose from {fault_kinds()})")
    return MUTATORS[kind](configs, random.Random(seed))


def inject_analysis_fault(
    configs: Dict[str, str], kind: str, seed: int
) -> Tuple[Dict[str, str], InjectedFault]:
    """Apply one seeded analysis-level chaos mutator (valid-config)."""
    if kind not in ANALYSIS_MUTATORS:
        raise ValueError(
            f"unknown analysis fault kind: {kind!r} "
            f"(choose from {analysis_fault_kinds()})"
        )
    return ANALYSIS_MUTATORS[kind](configs, random.Random(seed))


__all__ = [
    "ANALYSIS_MUTATORS",
    "InjectedFault",
    "MUTATORS",
    "adjacency_storm",
    "analysis_fault_kinds",
    "fault_kinds",
    "inject_analysis_fault",
    "inject_fault",
    "redistribution_chain",
    "subnet_spray",
    "truncate_file",
    "drop_lines",
    "inject_unknown_commands",
    "corrupt_ip_tokens",
    "duplicate_hostnames",
    "splice_files",
]
