"""Sequential, aligned address allocation for synthetic networks.

Network designers "often have a structured plan for assigning addresses
inside the network" (§3.4); the generator mimics that by carving each
network's address space out of dedicated pools — which is exactly the
structure the address-space-recovery algorithm is later asked to rediscover.
"""

from __future__ import annotations

from repro.net import Prefix


class PoolExhausted(RuntimeError):
    """Raised when an :class:`AddressPool` runs out of space."""


class AddressPool:
    """Allocate aligned subnets sequentially from a parent prefix."""

    def __init__(self, prefix: Prefix):
        if isinstance(prefix, str):
            prefix = Prefix(prefix)
        self.prefix = prefix
        self._cursor = prefix.network_int

    def allocate(self, length: int) -> Prefix:
        """Allocate the next aligned subnet of the given prefix length."""
        if length < self.prefix.length:
            raise ValueError(f"cannot allocate /{length} from {self.prefix}")
        size = 1 << (32 - length)
        # Align the cursor up to the allocation size.
        aligned = (self._cursor + size - 1) & ~(size - 1)
        if aligned + size - 1 > self.prefix.broadcast_int:
            raise PoolExhausted(f"{self.prefix} exhausted allocating /{length}")
        self._cursor = aligned + size
        return Prefix(aligned, length)

    def subpool(self, length: int) -> "AddressPool":
        """Carve a sub-block and return a pool over it (compartment plans)."""
        return AddressPool(self.allocate(length))

    def remaining(self) -> int:
        return self.prefix.broadcast_int - self._cursor + 1


class NetworkAddressPlan:
    """The standard address plan used by the design templates.

    * loopbacks from a dedicated /24-per-64-routers region,
    * point-to-point /30s from one region,
    * LAN /24s from another,
    * external peering /30s from a block **disjoint** from the internal
      space (the property §3.4's missing-router heuristic relies on).
    """

    def __init__(self, internal: Prefix, external: Prefix):
        if isinstance(internal, str):
            internal = Prefix(internal)
        if isinstance(external, str):
            external = Prefix(external)
        self.internal = internal
        root = AddressPool(internal)
        # Half of the space for LANs, a quarter for point-to-point links,
        # an eighth each for loopbacks and spares.
        self.lans = root.subpool(internal.length + 1)
        self.p2p = root.subpool(internal.length + 2)
        self.loopbacks = root.subpool(internal.length + 3)
        self.spare = root.subpool(internal.length + 3)
        self.external = AddressPool(external)
        self._remote_host_cursor = 0

    @classmethod
    def standard(cls, index: int) -> "NetworkAddressPlan":
        """The plan for the *index*-th network of a corpus.

        Each network gets its own 10.x/14 internal block and its own /14
        external block under 192/8, so independently generated networks
        never collide and internal vs. external space stays disjoint.
        """
        internal = Prefix((10 << 24) | ((index % 64) << 18), 14)
        external = Prefix((192 << 24) | ((index % 64) << 18), 14)
        return cls(internal=internal, external=external)

    def loopback(self) -> Prefix:
        return self.loopbacks.allocate(32)

    def p2p_subnet(self) -> Prefix:
        return self.p2p.allocate(30)

    def lan_subnet(self, length: int = 24) -> Prefix:
        return self.lans.allocate(length)

    def external_subnet(self) -> Prefix:
        return self.external.allocate(30)

    def external_lan(self, length: int = 24) -> Prefix:
        return self.external.allocate(length)
