"""Packet-filter placement for generated networks.

Distributes a rule budget between edge (external-facing) and internal
interfaces so that the network's internal-rule share lands on the
requested value exactly — the knob behind Figure 11's CDF.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Tuple

from repro.synth.builder import BuiltInterface, NetworkBuilder


def place_filters(
    builder: NetworkBuilder,
    rng: random.Random,
    internal_candidates: Iterable[Tuple[str, str]],
    total_rules: int,
    internal_share: float,
) -> None:
    """Attach packet filters totaling *total_rules* clauses.

    ``internal_share`` of the clauses go to interfaces from
    *internal_candidates* (``(router, interface)`` pairs); the rest go to
    the builder's recorded external-facing interfaces.  If one side has no
    candidate interfaces its budget shifts to the other side, keeping the
    total (so a filterless side reads as 0% or 100% internal, as it would
    in a real network).
    """
    internal = _dedup(internal_candidates)
    edge = _dedup(builder.external_interfaces)
    internal_budget = round(total_rules * internal_share)
    edge_budget = total_rules - internal_budget
    if not edge:
        internal_budget += edge_budget
        edge_budget = 0
    if not internal:
        edge_budget += internal_budget
        internal_budget = 0
    _spread(builder, rng, edge, edge_budget)
    _spread(builder, rng, internal, internal_budget)


def _dedup(pairs: Iterable[Tuple[str, str]]) -> List[Tuple[str, str]]:
    seen = set()
    result = []
    for pair in pairs:
        if pair not in seen:
            seen.add(pair)
            result.append(pair)
    return result


def _spread(
    builder: NetworkBuilder,
    rng: random.Random,
    candidates: List[Tuple[str, str]],
    budget: int,
) -> None:
    """Spread *budget* clauses across interfaces, one inbound and (if
    needed) one outbound filter per interface, sized 3–47 clauses each
    (the paper found a single 47-clause filter noteworthy)."""
    if budget <= 0 or not candidates:
        return
    slots = [(pair, "in") for pair in candidates] + [(pair, "out") for pair in candidates]
    rng.shuffle(slots)
    index = 0
    while budget > 0 and index < len(slots):
        (router, iface_name), direction = slots[index]
        index += 1
        count = min(budget, rng.randint(3, 20))
        if index >= len(slots):
            count = budget  # last slot absorbs the remainder
        budget -= count
        handle = BuiltInterface(router=router, name=iface_name, prefix=None, address=None)
        builder.add_packet_filter(handle, count, direction=direction)
