"""Structure-preserving anonymization of router configurations (§4.1).

The paper's access to 8,035 production configuration files hinged on an
anonymizer that removes everything identifying while preserving the
structure the analysis needs:

* comments are stripped,
* non-numeric tokens not found in the published IOS command reference are
  hashed (route-map names, hostnames, descriptions, ...),
* IP addresses are anonymized prefix-preservingly (tcpdpriv-style), so
  subnet relationships — and therefore link inference — survive,
* public AS numbers are mapped to pseudo-ASNs; private ASNs pass through.

Anonymization is deterministic given a key, so all files of one network are
consistent with each other — the property that makes the anonymized corpus
analyzable at all.
"""

from repro.anonymize.anonymizer import Anonymizer
from repro.anonymize.ipanon import PrefixPreservingAnonymizer

__all__ = ["Anonymizer", "PrefixPreservingAnonymizer"]
