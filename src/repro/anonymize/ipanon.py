"""Prefix-preserving IP address anonymization.

Implements the property of tcpdpriv's ``-a50`` mode (and Crypto-PAn): two
addresses sharing a k-bit prefix map to two addresses sharing a k-bit
prefix, and no more.  This is exactly what configuration anonymization
needs — interfaces on the same subnet stay on the same subnet, so link
inference still works on the anonymized files.

The implementation is the standard keyed bit-by-bit construction: the
anonymized bit at position *i* is the original bit XOR a pseudorandom
function of the preceding original bits.  HMAC-SHA1 with a caller-supplied
key provides the PRF, making the mapping deterministic per key.

One deliberate deviation: the leading run of one-bits (capped at the
first two bits) passes through unchanged, so the anonymized address keeps
its classful *class*.  Bare ``network`` statements fall back to the
classful prefix length (:func:`repro.net.prefix.classful_prefix`), which
depends on exactly those two bits — without this carve-out a class-B
address could anonymize into class A and silently change which interfaces
a routing process covers.  The construction stays prefix-preserving and
bijective (each output bit still depends only on earlier original bits);
what leaks is at most two bits of address class, the same order of
structural disclosure as keeping netmasks in the clear (§4.1).
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, Union

from repro.net import IPv4Address, format_ipv4, parse_ipv4


class PrefixPreservingAnonymizer:
    """Deterministic, keyed, prefix-preserving IPv4 anonymizer."""

    def __init__(self, key: bytes = b"repro-anonymizer"):
        self._key = key
        self._cache: Dict[int, int] = {}

    def _prf_bit(self, prefix_bits: str) -> int:
        digest = hmac.new(self._key, prefix_bits.encode("ascii"), hashlib.sha1).digest()
        return digest[0] & 1

    def anonymize_int(self, address: int) -> int:
        """Anonymize a 32-bit address value."""
        cached = self._cache.get(address)
        if cached is not None:
            return cached
        original_bits = format(address, "032b")
        result_bits = []
        for i in range(32):
            if i < 2 and "0" not in original_bits[:i]:
                # Class-determining leading one-run: kept verbatim (see
                # the module docstring).  The condition depends only on
                # earlier original bits, so prefix preservation holds.
                result_bits.append(original_bits[i])
                continue
            flip = self._prf_bit(original_bits[:i])
            result_bits.append(str(int(original_bits[i]) ^ flip))
        value = int("".join(result_bits), 2)
        self._cache[address] = value
        return value

    def anonymize(self, address: Union[str, IPv4Address]) -> str:
        """Anonymize a dotted-quad address, returning a dotted quad."""
        if isinstance(address, IPv4Address):
            value = address.value
        else:
            value = parse_ipv4(address)
        return format_ipv4(self.anonymize_int(value))

    def mapping(self) -> Dict[str, str]:
        """Original → anonymized dotted quads accumulated so far.

        The public view of the cache, for trusted-party mapping exports —
        callers must not reach into ``_cache`` directly.
        """
        return {
            format_ipv4(original): format_ipv4(anonymized)
            for original, anonymized in sorted(self._cache.items())
        }
