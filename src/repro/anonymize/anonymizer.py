"""The configuration anonymizer (§4.1).

Per-token processing of configuration text:

1. comment lines are removed (bare ``!`` separators are kept so the block
   structure of the file survives),
2. dotted quads that are contiguous netmasks or wildcard masks pass through
   unchanged (anonymizing a mask would destroy subnet structure),
3. other dotted quads are anonymized prefix-preservingly,
4. AS numbers in ``router bgp``/``remote-as``/``redistribute bgp`` position
   are mapped to pseudo-ASNs (private ASNs pass through, as in the paper),
5. plain integers pass through (metrics, ACL numbers, areas...),
6. alphabetic tokens found in the IOS keyword list pass through; interface
   tokens whose alphabetic stem is a known hardware type pass through;
   everything else (names, descriptions, hostnames) is replaced by a
   deterministic SHA-1-derived random-looking string, like the paper's
   ``8aTzlvBrbaW``.

Everything is deterministic given the key, so the anonymized files of one
network remain mutually consistent and fully analyzable.
"""

from __future__ import annotations

import hashlib
import re
import string
from typing import Dict, Optional

from repro.anonymize.ipanon import PrefixPreservingAnonymizer
from repro.anonymize.keywords import INTERFACE_TYPE_WORDS, IOS_KEYWORDS
from repro.net.ipv4 import (
    AddressError,
    format_ipv4,
    mask_to_prefix_len,
    parse_ipv4,
    wildcard_to_prefix_len,
)

_DOTTED_QUAD_RE = re.compile(r"^\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}$")
_ALPHA_STEM_RE = re.compile(r"^([A-Za-z-]+)([0-9/.:]*)$")

_BASE62 = string.digits + string.ascii_uppercase + string.ascii_lowercase

#: Private AS numbers (RFC 1930) are not anonymized: they carry no identity.
PRIVATE_AS_RANGE = range(64512, 65536)

#: Token positions after which an AS number appears.
_AS_CONTEXT_WORDS = frozenset({"bgp", "remote-as"})


def _base62(value: int, length: int) -> str:
    digits = []
    for _ in range(length):
        value, remainder = divmod(value, 62)
        digits.append(_BASE62[remainder])
    return "".join(digits)


class Anonymizer:
    """Structure-preserving configuration anonymizer.

    One instance should be used for all files of a network (or a whole
    corpus) so that shared names and addresses anonymize consistently.
    """

    def __init__(self, key: bytes = b"repro-anonymizer"):
        self._key = key
        self._ip = PrefixPreservingAnonymizer(key=key)
        self._name_cache: Dict[str, str] = {}
        self._as_cache: Dict[int, int] = {}

    # -- individual token handlers -----------------------------------------

    def hash_name(self, token: str) -> str:
        """Replace a name with an 11-character deterministic pseudo-name."""
        cached = self._name_cache.get(token)
        if cached is not None:
            return cached
        digest = hashlib.sha1(self._key + token.encode("utf-8", "replace")).digest()
        value = int.from_bytes(digest[:8], "big")
        pseudo = _base62(value, 11)
        self._name_cache[token] = pseudo
        return pseudo

    def map_asn(self, asn: int) -> int:
        """Map a public ASN to a stable pseudo-ASN; keep private ASNs."""
        if asn in PRIVATE_AS_RANGE:
            return asn
        cached = self._as_cache.get(asn)
        if cached is not None:
            return cached
        digest = hashlib.sha1(self._key + f"as:{asn}".encode("ascii")).digest()
        pseudo = int.from_bytes(digest[:4], "big") % 64511 + 1
        self._as_cache[asn] = pseudo
        return pseudo

    def anonymize_address_token(self, token: str) -> str:
        """Anonymize a dotted quad unless it is a net/wildcard mask."""
        try:
            value = parse_ipv4(token)
        except AddressError:
            return self.hash_name(token)
        for converter in (mask_to_prefix_len, wildcard_to_prefix_len):
            try:
                converter(value)
                return token  # a contiguous mask: structural, keep it
            except AddressError:
                pass
        return self._ip.anonymize(token)

    # -- line/file processing -------------------------------------------------

    def anonymize_token(self, token: str, previous: Optional[str]) -> str:
        if token in ("{", "}", ";"):
            # Structural punctuation (JunOS-style dialects).  The paper's
            # anonymizer was "specific to Cisco IOS, but the strategy is
            # generally applicable" — passing braces through keeps
            # brace-structured configs parseable too.
            return token
        if _DOTTED_QUAD_RE.match(token):
            return self.anonymize_address_token(token)
        if token.isdigit():
            if previous in _AS_CONTEXT_WORDS:
                return str(self.map_asn(int(token)))
            return token
        if token in IOS_KEYWORDS:
            return token
        match = _ALPHA_STEM_RE.match(token)
        if match and match.group(1) in INTERFACE_TYPE_WORDS:
            return token  # interface name: type word + unit numbers
        if match and match.group(1) in IOS_KEYWORDS:
            return token
        return self.hash_name(token)

    def anonymize_line(self, line: str) -> Optional[str]:
        stripped = line.strip()
        if not stripped:
            return line
        if stripped.startswith("!"):
            # Keep a bare separator, drop comment text entirely.
            return line[: len(line) - len(stripped)] + "!"
        indent = line[: len(line) - len(line.lstrip(" "))]
        tokens = stripped.split()
        result = []
        previous: Optional[str] = None
        for token in tokens:
            result.append(self.anonymize_token(token, previous))
            previous = token
        return indent + " ".join(result)

    def anonymize_config(self, text: str) -> str:
        """Anonymize a whole configuration file."""
        out_lines = []
        for line in text.splitlines():
            anonymized = self.anonymize_line(line)
            if anonymized is not None:
                out_lines.append(anonymized)
        return "\n".join(out_lines) + "\n"

    def export_mapping(self) -> Dict[str, Dict[str, str]]:
        """The original → anonymized mappings accumulated so far.

        §4's single-blind methodology: a few trusted group members held the
        identity of the networks and the contact to their designers, so that
        results derived from anonymized data could be verified against the
        real thing.  This export is what the trusted party keeps — and what
        must never travel with the anonymized archive.
        """
        return {
            "names": dict(self._name_cache),
            "asns": {str(asn): str(pseudo) for asn, pseudo in self._as_cache.items()},
            "addresses": {
                format_ipv4(orig): format_ipv4(anon)
                for orig, anon in self._ip._cache.items()
            },
        }
