"""The configuration anonymizer (§4.1).

Per-token processing of configuration text:

1. comment lines are removed (bare ``!`` separators are kept so the block
   structure of the file survives),
2. dotted quads that are contiguous netmasks or wildcard masks pass through
   unchanged (anonymizing a mask would destroy subnet structure),
3. other dotted quads are anonymized prefix-preservingly; ``addr/len``
   tokens (JunOS-style) anonymize the address part and keep the length,
4. AS numbers in ``router bgp``/``remote-as``/``redistribute bgp`` —
   and the JunOS equivalents ``peer-as``/``autonomous-system``/``local-as``
   — position are mapped to collision-free pseudo-ASNs (private ASNs pass
   through, as in the paper),
5. plain integers pass through (metrics, ACL numbers, areas...),
6. alphabetic tokens found in the vendor keyword lists pass through;
   interface tokens whose alphabetic stem is a known hardware type pass
   through; everything else (names, descriptions, hostnames) is replaced
   by a deterministic SHA-1-derived random-looking string, like the
   paper's ``8aTzlvBrbaW``.

Structural suffixes (trailing ``;``/``,`` in brace-structured dialects)
are stripped before classification and re-attached after, so
``10.0.0.1/24;`` anonymizes its address instead of being name-hashed
whole.

Everything is deterministic given the key, so the anonymized files of one
network remain mutually consistent and fully analyzable.
"""

from __future__ import annotations

import hashlib
import re
import string
from typing import Dict, Optional, Set, Tuple

from repro.anonymize.ipanon import PrefixPreservingAnonymizer
from repro.anonymize.keywords import ALL_KEYWORDS, INTERFACE_TYPE_WORDS
from repro.net.ipv4 import (
    AddressError,
    mask_to_prefix_len,
    parse_ipv4,
    wildcard_to_prefix_len,
)

_DOTTED_QUAD_RE = re.compile(r"^\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}$")
_PREFIX_TOKEN_RE = re.compile(r"^(\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3})/(\d{1,2})$")
_ALPHA_STEM_RE = re.compile(r"^([A-Za-z-]+)([0-9/.:]*)$")

_BASE62 = string.digits + string.ascii_uppercase + string.ascii_lowercase

#: Trailing punctuation that is structure, not name: stripped before token
#: classification and re-attached after.
_STRUCTURAL_SUFFIX_CHARS = ";,"

#: Private AS numbers (RFC 1930) are not anonymized: they carry no identity.
PRIVATE_AS_RANGE = range(64512, 65536)

#: The pseudo-ASN pool: public 16-bit ASNs below the private range.
_PSEUDO_AS_POOL = 64511

#: Token positions after which an AS number appears (IOS and JunOS forms).
_AS_CONTEXT_WORDS = frozenset(
    {"bgp", "remote-as", "peer-as", "autonomous-system", "local-as"}
)


def _base62(value: int, length: int) -> str:
    digits = []
    for _ in range(length):
        value, remainder = divmod(value, 62)
        digits.append(_BASE62[remainder])
    return "".join(digits)


def split_structural_suffix(token: str) -> Tuple[str, str]:
    """``(core, suffix)`` with trailing structural punctuation split off."""
    core = token.rstrip(_STRUCTURAL_SUFFIX_CHARS)
    return core, token[len(core):]


class Anonymizer:
    """Structure-preserving configuration anonymizer.

    One instance should be used for all files of a network (or a whole
    corpus) so that shared names and addresses anonymize consistently.
    """

    def __init__(self, key: bytes = b"repro-anonymizer"):
        self._key = key
        self._ip = PrefixPreservingAnonymizer(key=key)
        self._name_cache: Dict[str, str] = {}
        self._as_cache: Dict[int, int] = {}
        self._as_used: Set[int] = set()

    @property
    def key(self) -> bytes:
        """The anonymization key (what the trusted party must retain)."""
        return self._key

    @property
    def ip(self) -> PrefixPreservingAnonymizer:
        """The underlying prefix-preserving address anonymizer."""
        return self._ip

    # -- individual token handlers -----------------------------------------

    def hash_name(self, token: str) -> str:
        """Replace a name with an 11-character deterministic pseudo-name."""
        cached = self._name_cache.get(token)
        if cached is not None:
            return cached
        digest = hashlib.sha1(self._key + token.encode("utf-8", "replace")).digest()
        value = int.from_bytes(digest[:8], "big")
        pseudo = _base62(value, 11)
        self._name_cache[token] = pseudo
        return pseudo

    def map_asn(self, asn: int) -> int:
        """Map a public ASN to a stable pseudo-ASN; keep private ASNs.

        Distinct public ASNs must never merge: the digest-derived
        candidate probes linearly to the next free pseudo-ASN on
        collision (deterministic given the order ASNs are first seen,
        which file-sorted processing makes reproducible).  The pool is
        1..64511, so a pseudo-ASN can also never collide with a private
        ASN kept in the clear.
        """
        if asn in PRIVATE_AS_RANGE:
            return asn
        cached = self._as_cache.get(asn)
        if cached is not None:
            return cached
        digest = hashlib.sha1(self._key + f"as:{asn}".encode("ascii")).digest()
        pseudo = int.from_bytes(digest[:4], "big") % _PSEUDO_AS_POOL + 1
        while pseudo in self._as_used:
            pseudo = pseudo % _PSEUDO_AS_POOL + 1  # wraps 64511 -> 1
        self._as_used.add(pseudo)
        self._as_cache[asn] = pseudo
        return pseudo

    def anonymize_address_token(self, token: str) -> str:
        """Anonymize a dotted quad unless it is a net/wildcard mask."""
        try:
            value = parse_ipv4(token)
        except AddressError:
            return self.hash_name(token)
        for converter in (mask_to_prefix_len, wildcard_to_prefix_len):
            try:
                converter(value)
                return token  # a contiguous mask: structural, keep it
            except AddressError:
                pass
        return self._ip.anonymize(token)

    # -- line/file processing -------------------------------------------------

    def anonymize_token(self, token: str, previous: Optional[str]) -> str:
        if token in ("{", "}", ";"):
            # Structural punctuation (JunOS-style dialects).  The paper's
            # anonymizer was "specific to Cisco IOS, but the strategy is
            # generally applicable" — passing braces through keeps
            # brace-structured configs parseable too.
            return token
        core, suffix = split_structural_suffix(token)
        if not core:
            return token
        return self._anonymize_core(core, previous) + suffix

    def _anonymize_core(self, token: str, previous: Optional[str]) -> str:
        """Classify and rewrite one token with structure already stripped."""
        if _DOTTED_QUAD_RE.match(token):
            return self.anonymize_address_token(token)
        prefix_match = _PREFIX_TOKEN_RE.match(token)
        if prefix_match and int(prefix_match.group(2)) <= 32:
            # addr/len: the address part is prefix-preservingly
            # anonymized, the length is structure and stays.  Any host
            # bits are masked off identically on both sides when the
            # parser builds the prefix, so subnet identities survive.
            try:
                parse_ipv4(prefix_match.group(1))
            except AddressError:
                return self.hash_name(token)
            return (
                f"{self._ip.anonymize(prefix_match.group(1))}"
                f"/{prefix_match.group(2)}"
            )
        if token.isdigit():
            if previous in _AS_CONTEXT_WORDS:
                return str(self.map_asn(int(token)))
            return token
        if token in ALL_KEYWORDS:
            return token
        match = _ALPHA_STEM_RE.match(token)
        if match and match.group(1) in INTERFACE_TYPE_WORDS:
            return token  # interface name: type word + unit numbers
        if match and match.group(1) in ALL_KEYWORDS:
            return token
        return self.hash_name(token)

    def anonymize_line(self, line: str) -> str:
        """Anonymize one line.  Always returns a line — comment lines are
        replaced by a bare ``!`` separator, never dropped."""
        stripped = line.strip()
        if not stripped:
            return line
        if stripped.startswith("!"):
            # Keep a bare separator, drop comment text entirely.
            return line[: len(line) - len(stripped)] + "!"
        indent = line[: len(line) - len(line.lstrip(" "))]
        tokens = stripped.split()
        result = []
        previous: Optional[str] = None
        for token in tokens:
            result.append(self.anonymize_token(token, previous))
            previous, _ = split_structural_suffix(token)
        return indent + " ".join(result)

    def anonymize_config(self, text: str) -> str:
        """Anonymize a whole configuration file."""
        return (
            "\n".join(self.anonymize_line(line) for line in text.splitlines())
            + "\n"
        )

    def export_mapping(self) -> Dict[str, Dict[str, str]]:
        """The original → anonymized mappings accumulated so far.

        §4's single-blind methodology: a few trusted group members held the
        identity of the networks and the contact to their designers, so that
        results derived from anonymized data could be verified against the
        real thing.  This export is what the trusted party keeps — and what
        must never travel with the anonymized archive.
        """
        return {
            "names": dict(self._name_cache),
            "asns": {str(asn): str(pseudo) for asn, pseudo in self._as_cache.items()},
            "addresses": self._ip.mapping(),
        }
