"""Missing-router detection via address space structure (§3.4).

When a router's configuration is missing from the data set, its peers'
interfaces fail to match any link and are erroneously marked external-
facing.  But many networks assign external-facing interfaces from a
*different* address block than internal-facing ones; an "external-facing"
interface whose address sits in the middle of a block dominated by
internal-facing interfaces is therefore very likely attached to a missing
router, not to another network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.address_space import AddressBlock, join_blocks
from repro.model.network import Network
from repro.net import Prefix


@dataclass
class SuspectInterface:
    """An "external-facing" interface that is probably internal."""

    router: str
    interface: str
    address: str
    block: Prefix
    internal_neighbors_in_block: int


def find_suspect_external_interfaces(
    network: Network,
    min_internal_neighbors: int = 3,
) -> List[SuspectInterface]:
    """Flag external-facing interfaces likely caused by missing config files.

    An unmatched interface is suspect when its address falls inside an
    address block built from at least *min_internal_neighbors* internal
    (link-matched) interface subnets.
    """
    matched_ends = {
        (end.router, end.interface) for link in network.links for end in link.ends
    }
    internal_subnets = [
        iface.prefix
        for (router, name), iface in network.interface_index.items()
        if (router, name) in matched_ends and iface.prefix is not None
    ]
    if not internal_subnets:
        return []
    blocks = join_blocks(internal_subnets)

    suspects: List[SuspectInterface] = []
    for router, name in network.unmatched_interfaces:
        iface = network.interface_index[(router, name)]
        if not iface.is_numbered:
            continue
        block = _containing_block(blocks, iface.address.value)
        if block is None:
            continue
        if len(block.subnets) >= min_internal_neighbors:
            suspects.append(
                SuspectInterface(
                    router=router,
                    interface=name,
                    address=str(iface.address),
                    block=block.prefix,
                    internal_neighbors_in_block=len(block.subnets),
                )
            )
    return suspects


def _containing_block(blocks: List[AddressBlock], address: int) -> AddressBlock:
    for block in blocks:
        if block.prefix.contains_address(address):
            return block
    return None
