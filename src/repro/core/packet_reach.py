"""Data-plane reachability: packet filters along forwarding paths (§2.4, §5.3).

Routing policy decides which *routes* exist; packet filtering acts
"directly on the data plane" (§2.4) — interface-attached access lists
classify packets and forward or drop them.  §5.3 found this machinery used
deep inside networks: disabling protocols (e.g. PIM) in parts of the
network, blocking UDP/TCP ports, and restricting which hosts may use an
application.

This module answers the flow-level question those filters create: given a
source host, a destination host, and a flow description (protocol, port),
do the filters along the forwarding path permit the packets?  Paths come
from the physical topology (shortest path, a reasonable stand-in for the
IGP's choice on hop-count metrics); at every hop the outbound filter of
the egress interface and the inbound filter of the ingress interface are
evaluated with full extended-ACL semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import networkx as nx

from repro.ios.config import InterfaceConfig
from repro.model.network import Network
from repro.net import IPv4Address


@dataclass(frozen=True)
class Flow:
    """A unidirectional packet flow."""

    source: IPv4Address
    dest: IPv4Address
    protocol: str = "ip"  # ip | tcp | udp | icmp | pim | ...
    port: Optional[int] = None  # destination port, where applicable

    @classmethod
    def between(
        cls,
        source: Union[str, IPv4Address],
        dest: Union[str, IPv4Address],
        protocol: str = "ip",
        port: Optional[int] = None,
    ) -> "Flow":
        return cls(
            source=IPv4Address(source),
            dest=IPv4Address(dest),
            protocol=protocol,
            port=port,
        )


@dataclass
class FilterHit:
    """Where and why a flow was dropped."""

    router: str
    interface: str
    direction: str  # "in" | "out"
    acl: str


@dataclass
class FlowVerdict:
    """The outcome of tracing a flow along a path."""

    allowed: bool
    path: List[str]
    blocked_at: Optional[FilterHit] = None

    def __bool__(self) -> bool:
        return self.allowed


class PacketReachability:
    """Flow-level reachability over one network's filters and topology."""

    def __init__(self, network: Network):
        self.network = network
        self._graph: Optional[nx.Graph] = None
        # (router_a, router_b) -> (iface on a, iface on b)
        self._link_interfaces: Dict[Tuple[str, str], Tuple[str, str]] = {}

    # -- topology ----------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        if self._graph is None:
            graph = nx.Graph()
            graph.add_nodes_from(self.network.routers)
            for link in self.network.links:
                by_router = {end.router: end.interface for end in link.ends}
                routers = sorted(by_router)
                for i, a in enumerate(routers):
                    for b in routers[i + 1:]:
                        graph.add_edge(a, b)
                        self._link_interfaces[(a, b)] = (by_router[a], by_router[b])
                        self._link_interfaces[(b, a)] = (by_router[b], by_router[a])
            self._graph = graph
        return self._graph

    def path(self, src_router: str, dst_router: str) -> Optional[List[str]]:
        """Shortest router path, or ``None`` when disconnected."""
        try:
            return nx.shortest_path(self.graph, src_router, dst_router)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def locate_host(self, address: Union[str, IPv4Address]) -> Optional[Tuple[str, str]]:
        """The (router, interface) whose connected subnet holds *address*."""
        if isinstance(address, str):
            address = IPv4Address(address)
        best: Optional[Tuple[int, str, str]] = None
        for (router, name), iface in self.network.interface_index.items():
            prefix = iface.prefix
            if prefix is None or not prefix.contains_address(address):
                continue
            if best is None or prefix.length > best[0]:
                best = (prefix.length, router, name)
        if best is None:
            return None
        return best[1], best[2]

    # -- filter evaluation ----------------------------------------------------

    def _filter_verdict(
        self, router: str, iface: InterfaceConfig, direction: str, flow: Flow
    ) -> Optional[FilterHit]:
        acl_name = (
            iface.access_group_in if direction == "in" else iface.access_group_out
        )
        if acl_name is None:
            return None
        acl = self.network.routers[router].config.access_list(acl_name)
        if acl is None:
            return None  # dangling reference filters nothing
        if acl.permits_flow(flow.source, flow.dest, flow.protocol, flow.port):
            return None
        return FilterHit(
            router=router, interface=iface.name, direction=direction, acl=acl_name
        )

    def trace_flow(
        self, src_router: str, dst_router: str, flow: Flow
    ) -> FlowVerdict:
        """Walk the path between two routers, evaluating every filter.

        Checks, in order: the outbound filter where the packet leaves each
        router and the inbound filter where it enters the next.
        """
        path = self.path(src_router, dst_router)
        if path is None:
            return FlowVerdict(allowed=False, path=[])
        for hop_index in range(len(path) - 1):
            a, b = path[hop_index], path[hop_index + 1]
            iface_a, iface_b = self._link_interfaces[(a, b)]
            out_iface = self.network.interface_index[(a, iface_a)]
            hit = self._filter_verdict(a, out_iface, "out", flow)
            if hit is not None:
                return FlowVerdict(allowed=False, path=path, blocked_at=hit)
            in_iface = self.network.interface_index[(b, iface_b)]
            hit = self._filter_verdict(b, in_iface, "in", flow)
            if hit is not None:
                return FlowVerdict(allowed=False, path=path, blocked_at=hit)
        return FlowVerdict(allowed=True, path=path)

    def host_flow(self, flow: Flow) -> FlowVerdict:
        """Trace a flow between two host addresses.

        Locates each host's attachment (router + LAN interface), checks the
        LAN interfaces' filters (inbound at the source LAN, outbound at the
        destination LAN), and the path in between.
        """
        src = self.locate_host(flow.source)
        dst = self.locate_host(flow.dest)
        if src is None or dst is None:
            return FlowVerdict(allowed=False, path=[])
        src_router, src_ifname = src
        dst_router, dst_ifname = dst

        src_iface = self.network.interface_index[(src_router, src_ifname)]
        hit = self._filter_verdict(src_router, src_iface, "in", flow)
        if hit is not None:
            return FlowVerdict(allowed=False, path=[src_router], blocked_at=hit)

        verdict = self.trace_flow(src_router, dst_router, flow)
        if not verdict.allowed:
            return verdict

        dst_iface = self.network.interface_index[(dst_router, dst_ifname)]
        hit = self._filter_verdict(dst_router, dst_iface, "out", flow)
        if hit is not None:
            return FlowVerdict(allowed=False, path=verdict.path, blocked_at=hit)
        return verdict

    # -- §5.3-style queries -------------------------------------------------------

    def protocol_disabled_between(
        self, src_router: str, dst_router: str, protocol: str
    ) -> bool:
        """Is an entire protocol (e.g. PIM) blocked on this path?"""
        sample = Flow(
            source=IPv4Address(0), dest=IPv4Address(0xFFFFFFFE), protocol=protocol
        )
        # Use the actual routers' addresses so source matching is realistic.
        src_iface = next(
            (i for i in self.network.routers[src_router].config.interfaces.values() if i.prefix),
            None,
        )
        dst_iface = next(
            (i for i in self.network.routers[dst_router].config.interfaces.values() if i.prefix),
            None,
        )
        if src_iface is not None and dst_iface is not None:
            sample = Flow(
                source=src_iface.address,
                dest=dst_iface.address,
                protocol=protocol,
            )
        return not self.trace_flow(src_router, dst_router, sample).allowed
