"""Routing instances and the routing instance graph (§3.2).

A **routing instance** is the set of routing processes, running the same
protocol, that share routing information directly.  Instances are computed
by transitive closure (flood fill) over process adjacencies; the closure
stops at edges between processes of different protocol types and at EBGP
adjacencies between BGP speakers with different AS numbers.

The **routing instance graph** abstracts the process graph: one node per
instance (plus the external world), with edges where route exchange occurs
between instances — redistribution on a shared router, or an EBGP session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.core.process_graph import EXTERNAL_NODE
from repro.model.network import Network
from repro.model.processes import ProcessKey
from repro.obs.trace import traced


@dataclass
class RoutingInstance:
    """A maximal set of same-protocol, mutually-adjacent routing processes."""

    instance_id: int
    protocol: str
    processes: Set[ProcessKey] = field(default_factory=set)

    @property
    def routers(self) -> Set[str]:
        return {key[0] for key in self.processes}

    @property
    def size(self) -> int:
        """Number of routers participating in the instance."""
        return len(self.routers)

    @property
    def asn(self) -> Optional[int]:
        """For single-AS BGP instances, the AS number; else ``None``.

        Every process in a BGP instance shares one AS by construction
        (EBGP boundaries stop the closure), so this is well-defined.
        """
        if self.protocol != "bgp":
            return None
        asns = {key[2] for key in self.processes}
        return next(iter(asns)) if len(asns) == 1 else None

    @property
    def label(self) -> str:
        if self.protocol == "bgp" and self.asn is not None:
            return f"instance {self.instance_id} BGP AS {self.asn}"
        return f"instance {self.instance_id} {self.protocol}"

    def __contains__(self, key: ProcessKey) -> bool:
        return key in self.processes


def _adjacency_lists(
    network: Network, merge_ebgp: bool = False
) -> Dict[ProcessKey, List[ProcessKey]]:
    """Undirected adjacency lists between processes, honoring the closure
    boundaries.

    *merge_ebgp* disables the EBGP/AS boundary — the ablation discussed in
    DESIGN.md (net5's four BGP ASs would collapse into one instance).
    """
    neighbors: Dict[ProcessKey, List[ProcessKey]] = {key: [] for key in network.processes}
    for key_a, key_b, _link in network.igp_adjacencies:
        # igp_adjacencies already guarantees equal protocols.
        neighbors[key_a].append(key_b)
        neighbors[key_b].append(key_a)
    for session in network.bgp_sessions:
        if session.remote_key is None:
            continue
        if session.is_ebgp and not merge_ebgp:
            continue  # EBGP between different ASs: instance boundary.
        neighbors[session.local].append(session.remote_key)
        neighbors[session.remote_key].append(session.local)
    return neighbors


@traced("instances")
def compute_instances(
    network: Network,
    merge_ebgp: bool = False,
    max_processes: Optional[int] = None,
) -> List[RoutingInstance]:
    """Flood-fill the process adjacency structure into routing instances.

    Instances are numbered deterministically (processes visited in sorted
    order), largest-independent of input dict ordering, starting at 1 to
    match the paper's figures.

    ``max_processes`` is the degraded-mode bound: only the first N
    processes (in sorted order) participate, with adjacencies restricted
    to that subset — a deterministic truncation for pathological inputs.
    """
    neighbors = _adjacency_lists(network, merge_ebgp=merge_ebgp)
    if max_processes is not None and len(neighbors) > max_processes:
        kept = set(sorted(neighbors, key=_sort_key)[:max_processes])
        neighbors = {
            key: [peer for peer in peers if peer in kept]
            for key, peers in neighbors.items()
            if key in kept
        }
    assigned: Dict[ProcessKey, int] = {}
    instances: List[RoutingInstance] = []
    for start in sorted(neighbors, key=_sort_key):
        if start in assigned:
            continue
        instance = RoutingInstance(instance_id=len(instances) + 1, protocol=start[1])
        stack = [start]
        while stack:
            key = stack.pop()
            if key in assigned:
                continue
            assigned[key] = instance.instance_id
            instance.processes.add(key)
            for neighbor in neighbors[key]:
                if neighbor not in assigned:
                    stack.append(neighbor)
        instances.append(instance)
    return instances


def _sort_key(key: ProcessKey) -> Tuple[str, str, int]:
    return (key[0], key[1], key[2] if key[2] is not None else -1)


def instance_of(
    instances: List[RoutingInstance],
) -> Dict[ProcessKey, RoutingInstance]:
    """Invert an instance list into a process → instance mapping."""
    mapping: Dict[ProcessKey, RoutingInstance] = {}
    for instance in instances:
        for key in instance.processes:
            mapping[key] = instance
    return mapping


def build_instance_graph(
    network: Network, instances: Optional[List[RoutingInstance]] = None
) -> nx.MultiDiGraph:
    """Build the routing instance graph (Figure 6 / Figure 9).

    Nodes are instance ids (ints) plus :data:`EXTERNAL_NODE`.  Node
    attributes: ``instance`` (the :class:`RoutingInstance`), ``label``,
    ``size``.  Edge attributes: ``kind`` (``redistribution`` | ``ebgp`` |
    ``external``), ``router`` (where redistribution happens), ``route_map``.

    Redistribution edges are directed (route flow); EBGP and external edges
    are added in both directions.
    """
    if instances is None:
        instances = compute_instances(network)
    membership = instance_of(instances)

    graph = nx.MultiDiGraph()
    graph.add_node(EXTERNAL_NODE, label="External World", size=0, instance=None)
    for instance in instances:
        graph.add_node(
            instance.instance_id,
            label=instance.label,
            size=instance.size,
            instance=instance,
        )

    # Redistribution between instances, on each shared router.
    from repro.core.process_graph import _resolve_redistribute_source  # noqa: PLC0415

    for key, proc in network.processes.items():
        for redist in proc.config.redistributes:
            source = _resolve_redistribute_source(
                network, key[0], redist.source_protocol, redist.source_id
            )
            if source is None or source not in membership:
                continue  # local RIB sources are intra-router, not shown here
            source_instance = membership[source]
            target_instance = membership[key]
            if source_instance.instance_id == target_instance.instance_id:
                continue
            graph.add_edge(
                source_instance.instance_id,
                target_instance.instance_id,
                kind="redistribution",
                router=key[0],
                route_map=redist.route_map,
                tag=redist.tag,
            )

    # EBGP sessions between in-network instances.
    seen_pairs = set()
    for session in network.bgp_sessions:
        if session.remote_key is not None and session.is_ebgp:
            a = membership[session.local].instance_id
            b = membership[session.remote_key].instance_id
            pair = (min(a, b), max(a, b))
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            graph.add_edge(a, b, kind="ebgp")
            graph.add_edge(b, a, kind="ebgp")

    # Edges to the external world.
    external_instances = find_external_adjacent_instances(network, instances)
    for instance_id in sorted(external_instances):
        graph.add_edge(EXTERNAL_NODE, instance_id, kind="external")
        graph.add_edge(instance_id, EXTERNAL_NODE, kind="external")
    return graph


def find_external_adjacent_instances(
    network: Network, instances: List[RoutingInstance]
) -> Set[int]:
    """Instance ids that have an adjacency with another network (§5.2).

    A BGP instance is externally adjacent when one of its processes has an
    unresolved neighbor; an IGP instance when one of its processes actively
    covers an external-facing interface.
    """
    membership = instance_of(instances)
    external: Set[int] = set()
    for session in network.bgp_sessions:
        if session.remote_key is None:
            external.add(membership[session.local].instance_id)
    for key, proc in network.processes.items():
        if proc.is_bgp:
            continue
        if any(
            network.is_external_interface(proc.router, name)
            for name in proc.active_interfaces()
        ):
            external.add(membership[key].instance_id)
    return external
