"""Routing process graphs (§3.1).

The routing process graph models how routing information flows through the
network.  Its vertices are RIBs:

* one **process RIB** per routing process,
* one **local RIB** per router, holding connected subnets and static routes
  (the modeling device introduced in §2.4 / Figure 3),
* one **router RIB** per router, where route selection deposits the routes
  actually used for forwarding,
* a single **external world** vertex, standing for everything outside the
  data set.

Edges carry a ``kind`` attribute:

* ``adjacency`` — two processes on different routers exchange routes
  directly (added in both directions, one edge per direction);
* ``redistribution`` — a directed transfer between RIBs on one router;
* ``selection`` — process/local RIB → router RIB;
* ``external`` — route exchange with the external world.

Policies (route maps, distribute lists) are recorded as edge annotations, as
§3.1 prescribes.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, Tuple

import networkx as nx

from repro.model.network import Network
from repro.model.processes import ProcessKey

#: The pseudo-node standing for the world outside the configuration set.
EXTERNAL_NODE: Tuple[str, str, Optional[int]] = ("<external>", "external", None)


class NodeKind(str, Enum):
    """What a process-graph vertex represents."""

    PROCESS = "process"
    LOCAL = "local"
    ROUTER_RIB = "router-rib"
    EXTERNAL = "external"


def process_node(key: ProcessKey) -> ProcessKey:
    """The graph node for a routing process (identity function, for clarity)."""
    return key


def local_rib_node(router: str) -> ProcessKey:
    """The graph node for a router's local RIB."""
    return (router, "local", None)


def router_rib_node(router: str) -> ProcessKey:
    """The graph node for a router's router RIB (forwarding RIB)."""
    return (router, "rib", None)


class _BoundedMultiDiGraph(nx.MultiDiGraph):
    """A MultiDiGraph that stops accepting edges past ``edge_limit``.

    Used by the degraded analysis mode: a pathological archive (e.g. an
    injected adjacency storm) can emit orders of magnitude more edges
    than routers; bounding insertion keeps the stage inside its budget
    and marks the result via ``graph.graph["truncated"]``.
    """

    def __init__(self, *args, edge_limit: Optional[int] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.edge_limit = edge_limit
        self._edges_added = 0

    def add_edge(self, u_for_edge, v_for_edge, key=None, **attr):
        if self.edge_limit is not None:
            if self._edges_added >= self.edge_limit:
                self.graph["truncated"] = True
                return None
            self._edges_added += 1
        return super().add_edge(u_for_edge, v_for_edge, key, **attr)


def build_process_graph(
    network: Network, max_edges: Optional[int] = None
) -> nx.MultiDiGraph:
    """Build the routing process graph for *network*.

    Returns a :class:`networkx.MultiDiGraph` whose nodes carry ``kind``
    (a :class:`NodeKind` value), ``router`` and ``protocol`` attributes, and
    whose edges carry ``kind`` plus policy annotations (``route_map``,
    ``acl_in``, ``acl_out`` where applicable).

    ``max_edges`` is the degraded-mode bound: edge insertion stops once
    the graph holds that many edges (deterministically — construction
    order is fixed) and ``graph.graph["truncated"]`` is set.
    """
    graph = _BoundedMultiDiGraph(edge_limit=max_edges)
    graph.graph["truncated"] = False
    graph.add_node(EXTERNAL_NODE, kind=NodeKind.EXTERNAL, router=None, protocol="external")

    # Vertices: process RIBs, local RIBs, router RIBs.  All iteration here
    # and below is sorted so the construction order — which decides what
    # survives a ``max_edges`` truncation — is a function of the network,
    # not of config ingestion order.
    for key in sorted(network.processes, key=_process_sort_key):
        graph.add_node(key, kind=NodeKind.PROCESS, router=key[0], protocol=key[1])
    for router in sorted(network.routers):
        graph.add_node(local_rib_node(router), kind=NodeKind.LOCAL, router=router, protocol="local")
        graph.add_node(
            router_rib_node(router), kind=NodeKind.ROUTER_RIB, router=router, protocol="rib"
        )

    _add_selection_edges(graph, network)
    _add_redistribution_edges(graph, network)
    _add_igp_adjacency_edges(graph, network)
    _add_bgp_session_edges(graph, network)
    _add_external_igp_edges(graph, network)
    return graph


def _process_sort_key(key: ProcessKey) -> Tuple[str, str, int]:
    """Total order over process keys (process ids may be None)."""
    return (key[0], key[1], -1 if key[2] is None else key[2])


def _add_selection_edges(graph: nx.MultiDiGraph, network: Network) -> None:
    # One pass over the process table instead of a per-router
    # ``processes_on`` scan (which is quadratic on large networks).
    per_router: dict = {}
    for key in network.processes:
        per_router.setdefault(key[0], []).append(key)
    for router in sorted(network.routers):
        rib = router_rib_node(router)
        graph.add_edge(local_rib_node(router), rib, kind="selection")
        for key in sorted(per_router.get(router, ()), key=_process_sort_key):
            graph.add_edge(key, rib, kind="selection")


def _resolve_redistribute_source(
    network: Network, router: str, source_protocol: str, source_id: Optional[int]
) -> Optional[ProcessKey]:
    """Find the RIB a ``redistribute`` statement pulls routes from."""
    if source_protocol in ("connected", "static"):
        return local_rib_node(router)
    if source_protocol == "rip":
        candidate = (router, "rip", None)
        return candidate if candidate in network.processes else None
    candidate = (router, source_protocol, source_id)
    if candidate in network.processes:
        return candidate
    # An id-less "redistribute ospf" style statement: match by protocol.
    # Candidates come from the per-router process list (not a full-table
    # scan) and are sorted so the winner is ingestion-order independent.
    if source_id is None:
        candidates = sorted(
            (
                proc.key
                for proc in network.processes_on(router)
                if proc.key[1] == source_protocol
            ),
            key=_process_sort_key,
        )
        if candidates:
            return candidates[0]
    return None


def _add_redistribution_edges(graph: nx.MultiDiGraph, network: Network) -> None:
    for key, proc in sorted(
        network.processes.items(), key=lambda item: _process_sort_key(item[0])
    ):
        router = key[0]
        for redist in proc.config.redistributes:
            source = _resolve_redistribute_source(
                network, router, redist.source_protocol, redist.source_id
            )
            if source is None:
                continue
            graph.add_edge(
                source,
                key,
                kind="redistribution",
                route_map=redist.route_map,
                tag=redist.tag,
                metric=redist.metric,
            )


def _add_igp_adjacency_edges(graph: nx.MultiDiGraph, network: Network) -> None:
    for key_a, key_b, link in network.igp_adjacencies:
        graph.add_edge(key_a, key_b, kind="adjacency", subnet=str(link.subnet))
        graph.add_edge(key_b, key_a, kind="adjacency", subnet=str(link.subnet))


def _bgp_session_sort_key(session) -> Tuple:
    return (
        _process_sort_key(session.local),
        session.neighbor_address.value,
    )


def _add_bgp_session_edges(graph: nx.MultiDiGraph, network: Network) -> None:
    seen = set()
    for session in sorted(network.bgp_sessions, key=_bgp_session_sort_key):
        if session.remote_key is not None:
            pair = tuple(sorted((session.local, session.remote_key)))
            if pair in seen:
                continue
            seen.add(pair)
            kind = "ebgp" if session.is_ebgp else "ibgp"
            graph.add_edge(session.local, session.remote_key, kind="adjacency", bgp=kind)
            graph.add_edge(session.remote_key, session.local, kind="adjacency", bgp=kind)
        else:
            graph.add_edge(
                EXTERNAL_NODE,
                session.local,
                kind="external",
                bgp="ebgp" if session.is_ebgp else "ibgp",
                neighbor=str(session.neighbor_address),
            )
            graph.add_edge(
                session.local,
                EXTERNAL_NODE,
                kind="external",
                bgp="ebgp" if session.is_ebgp else "ibgp",
                neighbor=str(session.neighbor_address),
            )


def _add_external_igp_edges(graph: nx.MultiDiGraph, network: Network) -> None:
    """IGP processes that actively cover external-facing interfaces talk to
    the external world — the unconventional usage §5.2 quantifies."""
    for key, proc in sorted(
        network.processes.items(), key=lambda item: _process_sort_key(item[0])
    ):
        if proc.is_bgp:
            continue
        for name in proc.active_interfaces():
            if network.is_external_interface(proc.router, name):
                graph.add_edge(EXTERNAL_NODE, key, kind="external", interface=name)
                graph.add_edge(key, EXTERNAL_NODE, kind="external", interface=name)
                break
