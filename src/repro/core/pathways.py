"""Route pathway graphs (§3.3).

For any router, the route pathway graph shows where the routes used by that
router come from: starting at the router RIB, a breadth-first search walks
*backwards* along route flow through the routing instance model, recording
the instances the search passes through.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import networkx as nx

from repro.core.instances import RoutingInstance, compute_instances, instance_of
from repro.core.process_graph import EXTERNAL_NODE
from repro.model.network import Network
from repro.obs.trace import traced

#: Pathway nodes are instance ids, the external-world sentinel, or the
#: router RIB sentinel string.
PathwayNode = Union[int, Tuple[str, str, Optional[int]], str]

ROUTER_RIB = "router-rib"


@dataclass
class RoutePathway:
    """The result of a pathway search for one router.

    ``graph`` is a directed graph with edges pointing along route flow
    (source instance → consumer), rooted at the ``ROUTER_RIB`` node.
    ``layers`` maps each node to its BFS depth from the router RIB — the
    "number of layers of routing protocols and redistributions" §5.1 counts
    for net5's router 3.
    """

    router: str
    graph: nx.DiGraph
    layers: Dict[PathwayNode, int] = field(default_factory=dict)
    #: Policies applied on the traversed edges: (source, target, route map).
    #: §3.3: pathways "locate all the routing policies that affect the
    #: routes seen by any particular router, and pinpoint where the
    #: policies are applied".
    policies: List[Tuple[PathwayNode, PathwayNode, str]] = field(default_factory=list)
    #: True when a ``max_depth`` bound stopped the search before the
    #: frontier drained — deeper feeders exist but were not explored.
    truncated: bool = False

    @property
    def instances(self) -> List[int]:
        return sorted(node for node in self.graph.nodes if isinstance(node, int))

    @property
    def reaches_external(self) -> bool:
        return EXTERNAL_NODE in self.graph.nodes

    @property
    def depth(self) -> int:
        """Maximum BFS depth — the layering of the design seen by this router."""
        return max(self.layers.values(), default=0)

    def external_depth(self) -> Optional[int]:
        """How many hops external routes travel to reach this router."""
        return self.layers.get(EXTERNAL_NODE)


@traced("pathways")
def route_pathway(
    network: Network,
    router: str,
    instances: Optional[List[RoutingInstance]] = None,
    instance_graph: Optional[nx.MultiDiGraph] = None,
    max_depth: Optional[int] = None,
) -> RoutePathway:
    """Compute the route pathway graph for *router* (§3.3).

    The search starts from the router RIB, first reaching the instances of
    the processes running on the router, then following instance-graph edges
    *against* route flow (an edge A→B in the instance graph means routes
    flow from A to B, so B's routes "come from" A).

    ``max_depth`` is the degraded-mode bound: nodes at that BFS depth are
    recorded but not expanded, and ``truncated`` is set on the result when
    the bound actually cut anything off.
    """
    if router not in network.routers:
        raise KeyError(f"unknown router: {router}")
    if instances is None:
        instances = compute_instances(network)
    if instance_graph is None:
        from repro.core.instances import build_instance_graph  # noqa: PLC0415

        instance_graph = build_instance_graph(network, instances)
    membership = instance_of(instances)

    pathway = nx.DiGraph()
    pathway.add_node(ROUTER_RIB, label=f"Router RIB ({router})")
    layers: Dict[PathwayNode, int] = {ROUTER_RIB: 0}
    queue: deque = deque()

    # Depth 1: the instances whose processes run on this router feed the
    # router RIB directly through route selection.
    for proc in network.processes_on(router):
        instance = membership[proc.key]
        node = instance.instance_id
        if node not in layers:
            layers[node] = 1
            pathway.add_node(node, label=instance.label)
            queue.append(node)
        pathway.add_edge(node, ROUTER_RIB, kind="selection")

    # BFS backwards along route flow.
    policies: List[Tuple[PathwayNode, PathwayNode, str]] = []
    truncated = False
    while queue:
        node = queue.popleft()
        if max_depth is not None and layers[node] >= max_depth:
            # Depth bound: record the node but do not expand its feeders.
            if instance_graph.in_degree(node) > 0:
                truncated = True
            continue
        for source, _target, data in instance_graph.in_edges(node, data=True):
            if source not in layers:
                layers[source] = layers[node] + 1
                label = instance_graph.nodes[source].get("label", str(source))
                pathway.add_node(source, label=label)
                queue.append(source)
            if data.get("route_map"):
                entry = (source, node, data["route_map"])
                if entry not in policies:
                    policies.append(entry)
            if not pathway.has_edge(source, node):
                pathway.add_edge(source, node, kind=data.get("kind", "unknown"))

    return RoutePathway(
        router=router,
        graph=pathway,
        layers=layers,
        policies=policies,
        truncated=truncated,
    )
