"""Address space structure recovery (§3.4).

Networks rarely list their address plan anywhere; configurations mention
only small, fragmented subnets.  §3.4 recovers the plan by repeatedly
joining any two subnets whose network numbers differ in no more than the
least two bits — i.e. expanding blocks so long as at least half the
addresses in the enlarged block are "used" — until no more joins are
possible.  The result is a hierarchical tree of address blocks.

Both thresholds (2 bits per join, ½ utilization) are parameters here so the
ablation benchmark can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.model.network import Network
from repro.net import Prefix, summarize_prefixes
from repro.obs.trace import traced


@dataclass
class AddressBlock:
    """A recovered address block: a prefix plus the original subnets under it."""

    prefix: Prefix
    subnets: List[Prefix] = field(default_factory=list)

    @property
    def used_addresses(self) -> int:
        """Distinct used addresses: duplicates and nested subnets collapse
        before counting, so utilization can never exceed 1.0."""
        return sum(
            subnet.num_addresses() for subnet in summarize_prefixes(self.subnets)
        )

    @property
    def utilization(self) -> float:
        """Fraction of the block's address space covered by original subnets."""
        return self.used_addresses / self.prefix.num_addresses()

    def __str__(self) -> str:
        return f"{self.prefix} ({len(self.subnets)} subnets, {self.utilization:.0%} used)"


def mentioned_subnets(network: Network) -> List[Prefix]:
    """All subnets mentioned in a network's configuration files.

    Sources: interface addresses (primary and secondary), routing-process
    ``network`` statements, and static route destinations.  Duplicates are
    removed and nested subnets collapsed so the utilization arithmetic of
    the join never double-counts an address.
    """
    subnets: Set[Prefix] = set()
    for router in network.routers.values():
        for iface in router.config.interfaces.values():
            if iface.prefix is not None:
                subnets.add(iface.prefix)
            for address, netmask in iface.secondary_addresses:
                subnets.add(Prefix.from_netmask(address.value, netmask.value))
        for process in router.config.routing_processes():
            for statement in getattr(process, "networks", []):
                subnets.add(statement.prefix())
        for route in router.config.static_routes:
            if route.prefix.length > 0:  # skip default routes
                subnets.add(route.prefix)
    return summarize_prefixes(subnets)


def join_blocks(
    subnets: Iterable[Prefix],
    max_join_bits: int = 2,
    min_utilization: float = 0.5,
) -> List[AddressBlock]:
    """The iterative join of §3.4.

    Starting from disjoint subnets, repeatedly join any two blocks whose
    common supernet is at most *max_join_bits* shorter than the longer of
    the two, provided at least *min_utilization* of the supernet's addresses
    are used.  Runs to fixpoint and returns the surviving top-level blocks
    sorted by prefix.
    """
    blocks: Dict[Prefix, AddressBlock] = {}
    for subnet in summarize_prefixes(subnets):
        blocks[subnet] = AddressBlock(prefix=subnet, subnets=[subnet])

    # The paper joins "any two" subnets, not just sort-order neighbors, so
    # every pair must be considered.  Blocks stay pairwise disjoint
    # throughout (a successful join absorbs every block its supernet
    # contains), which gives the sweep its structure: for a fixed block
    # ``a``, the common supernet of ``a`` and later blocks only grows as
    # the candidates get further away, so once it exceeds the bit bound
    # relative to ``a`` no later candidate can satisfy it either.
    changed = True
    while changed:
        changed = False
        ordered = sorted(blocks)
        for i in range(len(ordered)):
            a = ordered[i]
            if a not in blocks:
                continue  # absorbed earlier in this sweep
            for j in range(i + 1, len(ordered)):
                b = ordered[j]
                if b not in blocks:
                    continue
                supernet = _common_supernet(a, b)
                if supernet is None or supernet.length < a.length - max_join_bits:
                    break  # supernets only get shorter for later candidates
                if supernet.length < max(a.length, b.length) - max_join_bits:
                    continue  # b is longer than a; a later, shorter b may fit
                # Utilization is judged over everything the supernet would
                # swallow — disjoint blocks sorted between a and b are all
                # contained in their common supernet.
                members = [p for p in blocks if supernet.contains(p)]
                merged_subnets = summarize_prefixes(
                    subnet for p in members for subnet in blocks[p].subnets
                )
                used = sum(s.num_addresses() for s in merged_subnets)
                if used < supernet.num_addresses() * min_utilization:
                    continue
                for p in members:
                    del blocks[p]
                blocks[supernet] = AddressBlock(
                    prefix=supernet, subnets=merged_subnets
                )
                changed = True
                # Keep sweeping from the merged block: it may now join
                # with candidates the original ``a`` could not reach.
                a = supernet
    return [blocks[prefix] for prefix in sorted(blocks)]


def _common_supernet(a: Prefix, b: Prefix) -> Optional[Prefix]:
    """The longest prefix containing both *a* and *b* (None only at /0)."""
    length = min(a.length, b.length)
    while length > 0:
        candidate = Prefix(a.network_int, length)
        if candidate.contains(b):
            return candidate
        length -= 1
    candidate = Prefix(0, 0)
    return candidate if candidate.contains(a) and candidate.contains(b) else None


@traced("address_space")
def extract_address_space(
    network: Network,
    max_join_bits: int = 2,
    min_utilization: float = 0.5,
    max_subnets: Optional[int] = None,
) -> List[AddressBlock]:
    """Recover the address space structure of *network* (§3.4).

    ``max_subnets`` is the degraded-mode bound: only the first N mentioned
    subnets (in prefix-sorted order — deterministic) enter the join, so a
    pathological subnet spray cannot make the quadratic sweep explode.
    """
    subnets = mentioned_subnets(network)
    if max_subnets is not None and len(subnets) > max_subnets:
        subnets = subnets[:max_subnets]
    return join_blocks(
        subnets,
        max_join_bits=max_join_bits,
        min_utilization=min_utilization,
    )
