"""Routing design extraction — the paper's primary contribution (§3).

Given a :class:`repro.model.Network`, this package derives the four
abstractions of §3 plus the analyses of §5–§7:

* :mod:`repro.core.process_graph` — routing process graphs (§3.1),
* :mod:`repro.core.instances` — routing instances and the instance graph
  (§3.2),
* :mod:`repro.core.pathways` — route pathway graphs (§3.3),
* :mod:`repro.core.address_space` — address space structure (§3.4),
* :mod:`repro.core.roles` — IGP/EGP role classification (§5.2, Table 1),
* :mod:`repro.core.filters` — packet-filter placement analysis (§5.3,
  Figure 11),
* :mod:`repro.core.classify` — design classification (§7),
* :mod:`repro.core.census` — interface and config-size censuses (Figure 4,
  Table 3),
* :mod:`repro.core.reachability` — reachability analysis (§6.2, Figure 12),
* :mod:`repro.core.missing` — missing-router detection (§3.4).
"""

from repro.core.address_space import AddressBlock, extract_address_space
from repro.core.census import config_size_distribution, interface_census
from repro.core.classify import DesignClass, classify_design
from repro.core.diff import DesignDiff, diff_designs
from repro.core.survivability import (
    SurvivabilityReport,
    analyze_survivability,
    instance_couplings,
)
from repro.core.filters import FilterPlacement, analyze_filter_placement
from repro.core.instances import RoutingInstance, build_instance_graph, compute_instances
from repro.core.missing import find_suspect_external_interfaces
from repro.core.packet_reach import Flow, FlowVerdict, PacketReachability
from repro.core.pathways import route_pathway
from repro.core.process_graph import (
    EXTERNAL_NODE,
    NodeKind,
    build_process_graph,
    local_rib_node,
    process_node,
    router_rib_node,
)
from repro.core.reachability import ReachabilityAnalysis, RouteSet
from repro.core.roles import (
    RoleCensus,
    RouterRole,
    classify_roles,
    classify_router_roles,
)

__all__ = [
    "AddressBlock",
    "DesignClass",
    "DesignDiff",
    "Flow",
    "FlowVerdict",
    "PacketReachability",
    "SurvivabilityReport",
    "analyze_survivability",
    "diff_designs",
    "instance_couplings",
    "EXTERNAL_NODE",
    "FilterPlacement",
    "NodeKind",
    "ReachabilityAnalysis",
    "RoleCensus",
    "RouteSet",
    "RoutingInstance",
    "analyze_filter_placement",
    "build_instance_graph",
    "build_process_graph",
    "classify_design",
    "RouterRole",
    "classify_roles",
    "classify_router_roles",
    "compute_instances",
    "config_size_distribution",
    "extract_address_space",
    "find_suspect_external_interfaces",
    "interface_census",
    "local_rib_node",
    "process_node",
    "route_pathway",
    "router_rib_node",
]
