"""Reachability analysis over the routing instance model (§6.2).

A completely accurate answer to "which hosts can communicate" would require
modeling per-router route selection; the paper's middle ground propagates
*sets of routes* through the routing instance graph, applying the route
policies annotated on each edge.  This module implements that analysis:

* :class:`RouteSet` — a set of disjoint prefixes with exact set algebra,
* :class:`PrefixFilter` — first-match permit/deny prefix rules compiled
  from access lists and route maps, applied with atom splitting so partial
  overlaps are handled exactly,
* :class:`ReachabilityAnalysis` — origination + fixpoint propagation, and
  the queries used in the net15 case study (Figure 12 / Table 2): which
  external routes enter the network, whether a default route is admitted,
  and whether hosts in one address block can reach another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.core.instances import (
    RoutingInstance,
    compute_instances,
    instance_of,
)
from repro.core.process_graph import EXTERNAL_NODE, _resolve_redistribute_source
from repro.model.network import Network
from repro.model.processes import ProcessKey
from repro.net import Prefix
from repro.obs.trace import traced

#: Propagation-graph nodes: instance ids or the external-world sentinel.
ReachNode = Union[int, Tuple[str, str, Optional[int]]]

UNIVERSE = Prefix(0, 0)


def prefix_complement(container: Prefix, inner: Prefix) -> List[Prefix]:
    """The prefixes covering ``container`` minus ``inner``.

    Standard trie walk: at each level from *inner* up to *container*, emit
    the sibling subtree.  Returns at most ``inner.length - container.length``
    prefixes.
    """
    if not container.contains(inner):
        raise ValueError(f"{container} does not contain {inner}")
    result: List[Prefix] = []
    current = inner
    while current.length > container.length:
        sibling = Prefix(
            current.network_int ^ (1 << (32 - current.length)), current.length
        )
        result.append(sibling)
        current = current.supernet()
    return result


class RouteSet:
    """An immutable set of IPv4 addresses represented as disjoint prefixes."""

    __slots__ = ("_atoms",)

    def __init__(self, prefixes: Iterable[Prefix] = ()):
        # Any two prefixes are nested or disjoint, so dropping contained
        # prefixes (and merging adjacent siblings) yields a disjoint cover.
        from repro.net import summarize_prefixes  # noqa: PLC0415

        self._atoms: Tuple[Prefix, ...] = tuple(summarize_prefixes(prefixes))

    @classmethod
    def universe(cls) -> "RouteSet":
        return cls([UNIVERSE])

    @classmethod
    def empty(cls) -> "RouteSet":
        return cls()

    @property
    def atoms(self) -> Tuple[Prefix, ...]:
        return self._atoms

    def is_empty(self) -> bool:
        return not self._atoms

    def has_default(self) -> bool:
        """True when the set is the full universe (a default route survives)."""
        return UNIVERSE in self._atoms

    def covers(self, prefix: Prefix) -> bool:
        """True when every address of *prefix* is in the set."""
        return any(atom.contains(prefix) for atom in self._atoms)

    def overlaps(self, prefix: Prefix) -> bool:
        """True when any address of *prefix* is in the set."""
        return any(atom.overlaps(prefix) for atom in self._atoms)

    def union(self, other: "RouteSet") -> "RouteSet":
        return RouteSet(self._atoms + other._atoms)

    def coarsened(self, max_atoms: int) -> "RouteSet":
        """An over-approximation of the set with at most *max_atoms* atoms.

        Repeatedly widens the longest prefixes to their supernets (then
        re-summarizes) until the atom count fits.  The result is a
        superset of the original — safe for reachability in the "may
        reach" direction, and deterministic.
        """
        if len(self._atoms) <= max_atoms:
            return self
        from repro.net import summarize_prefixes  # noqa: PLC0415

        atoms = list(self._atoms)
        while len(atoms) > max_atoms:
            longest = max(atom.length for atom in atoms)
            if longest == 0:
                break  # already the universe; cannot widen further
            atoms = summarize_prefixes(
                atom.supernet() if atom.length == longest else atom
                for atom in atoms
            )
        return RouteSet(atoms)

    def intersection(self, other: "RouteSet") -> "RouteSet":
        atoms: List[Prefix] = []
        for a in self._atoms:
            for b in other._atoms:
                if a.contains(b):
                    atoms.append(b)
                elif b.contains(a):
                    atoms.append(a)
        return RouteSet(atoms)

    def total_addresses(self) -> int:
        return sum(atom.num_addresses() for atom in self._atoms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RouteSet):
            return NotImplemented
        return self._atoms == other._atoms

    def __hash__(self) -> int:
        return hash(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self):
        return iter(self._atoms)

    def __repr__(self) -> str:
        inside = ", ".join(str(atom) for atom in self._atoms)
        return f"RouteSet({{{inside}}})"


@dataclass
class PrefixFilter:
    """An ordered first-match permit/deny prefix filter (implicit deny).

    This is the compiled form of a route policy: access lists and route
    maps are both lowered to a flat rule list whose first-match semantics
    equal the original construct's (deny shadowing included).
    """

    rules: List[Tuple[str, Prefix]] = field(default_factory=list)

    def apply(self, routes: RouteSet) -> RouteSet:
        permitted: List[Prefix] = []
        for atom in routes.atoms:
            permitted.extend(self._filter_atom(atom))
        return RouteSet(permitted)

    def _filter_atom(self, atom: Prefix) -> List[Prefix]:
        permitted: List[Prefix] = []
        remaining = [atom]
        for action, rule_prefix in self.rules:
            if not remaining:
                break
            next_remaining: List[Prefix] = []
            for piece in remaining:
                if rule_prefix.contains(piece):
                    if action == "permit":
                        permitted.append(piece)
                elif piece.contains(rule_prefix):
                    if action == "permit":
                        permitted.append(rule_prefix)
                    next_remaining.extend(prefix_complement(piece, rule_prefix))
                else:
                    next_remaining.append(piece)
            remaining = next_remaining
        return permitted  # implicit deny for whatever remains

    def permitted_set(self) -> RouteSet:
        """The addresses this filter would admit from the full universe."""
        return self.apply(RouteSet.universe())

    @classmethod
    def pass_all(cls) -> "PrefixFilter":
        return cls(rules=[("permit", UNIVERSE)])

    @classmethod
    def deny_all(cls) -> "PrefixFilter":
        return cls(rules=[])

    @classmethod
    def from_access_list(cls, acl) -> "PrefixFilter":
        """Compile an :class:`repro.ios.config.AccessList` used as a route filter."""
        rules: List[Tuple[str, Prefix]] = []
        for rule in acl.rules:
            prefix = rule.source_prefix()
            if prefix is not None:
                rules.append((rule.action, prefix))
        return cls(rules=rules)

    @classmethod
    def from_prefix_list(cls, plist) -> "PrefixFilter":
        """Compile an ``ip prefix-list`` for the address-set algebra.

        ``ge``/``le`` length bounds select which *routes* match, but at
        address granularity every matching route lies inside the entry's
        prefix, so the entry's prefix is the correct address set here (the
        simulator applies the exact per-route semantics).
        """
        rules: List[Tuple[str, Prefix]] = []
        for entry in plist.sorted_entries():
            rules.append((entry.action, entry.prefix))
        return cls(rules=rules)

    @classmethod
    def from_route_map(cls, route_map, access_lists, prefix_lists=None) -> "PrefixFilter":
        """Compile a route map given its router's ACL/prefix-list tables.

        Each clause's match set is the union of its referenced ACLs' (or
        prefix-lists') permitted sets (an empty match list matches
        everything); clauses are flattened in sequence order, preserving
        first-match semantics.
        """
        prefix_lists = prefix_lists or {}
        rules: List[Tuple[str, Prefix]] = []
        for clause in route_map.sorted_clauses():
            if not clause.match_ip_address and not clause.match_prefix_lists:
                rules.append((clause.action, UNIVERSE))
                continue
            for acl_name in clause.match_ip_address:
                acl = access_lists.get(str(acl_name))
                if acl is None:
                    continue
                for prefix in cls.from_access_list(acl).permitted_set():
                    rules.append((clause.action, prefix))
            for plist_name in clause.match_prefix_lists:
                plist = prefix_lists.get(plist_name)
                if plist is None:
                    continue
                for prefix in cls.from_prefix_list(plist).permitted_set():
                    rules.append((clause.action, prefix))
        return cls(rules=rules)


@dataclass
class ReachEdge:
    """One policy-annotated route-flow edge in the propagation graph."""

    source: ReachNode
    target: ReachNode
    kind: str  # "redistribution" | "ebgp" | "external"
    filters: List[PrefixFilter] = field(default_factory=list)
    router: Optional[str] = None
    label: Optional[str] = None

    def transfer(self, routes: RouteSet) -> RouteSet:
        for policy in self.filters:
            routes = policy.apply(routes)
        return routes


class ReachabilityAnalysis:
    """Reachability over the routing instance model of one network."""

    def __init__(
        self,
        network: Network,
        instances: Optional[List[RoutingInstance]] = None,
        max_atoms: Optional[int] = None,
    ):
        self.network = network
        self.instances = instances if instances is not None else compute_instances(network)
        self.membership = instance_of(self.instances)
        self.edges: List[ReachEdge] = []
        self.origins: Dict[ReachNode, RouteSet] = {}
        #: Degraded-mode bound on atoms per route set during propagation;
        #: sets beyond it are widened (see :meth:`RouteSet.coarsened`).
        self.max_atoms = max_atoms
        #: True once any route set was actually coarsened — answers are
        #: then over-approximate in the "may reach" direction.
        self.approximate = False
        self._routes: Optional[Dict[ReachNode, RouteSet]] = None
        self._external_routes: Optional[Dict[ReachNode, RouteSet]] = None
        self._build()

    # -- construction --------------------------------------------------------

    @traced("reachability", metric="analysis.reachability")
    def _build(self) -> None:
        self._build_origins()
        self._build_redistribution_edges()
        self._build_bgp_edges()
        self._build_external_igp_edges()

    def _acl_table(self, router: str):
        return self.network.routers[router].config.access_lists

    def _compile_route_map(self, router: str, name: Optional[str]) -> Optional[PrefixFilter]:
        if name is None:
            return None
        config = self.network.routers[router].config
        route_map = config.route_maps.get(name)
        if route_map is None:
            return None
        return PrefixFilter.from_route_map(
            route_map, config.access_lists, config.prefix_lists
        )

    def _compile_acl(self, router: str, name: Optional[str]) -> Optional[PrefixFilter]:
        if name is None:
            return None
        acl = self._acl_table(router).get(str(name))
        if acl is None:
            return None
        return PrefixFilter.from_access_list(acl)

    def _compile_prefix_list(
        self, router: str, name: Optional[str]
    ) -> Optional[PrefixFilter]:
        if name is None:
            return None
        plist = self.network.routers[router].config.prefix_lists.get(name)
        if plist is None:
            return None
        return PrefixFilter.from_prefix_list(plist)

    def _build_origins(self) -> None:
        self.origins[EXTERNAL_NODE] = RouteSet.universe()
        for instance in self.instances:
            prefixes: List[Prefix] = []
            for key in instance.processes:
                proc = self.network.processes[key]
                router_config = self.network.routers[key[0]].config
                if instance.protocol == "bgp":
                    prefixes.extend(
                        statement.prefix() for statement in proc.config.networks
                    )
                else:
                    for name in proc.covered_interfaces:
                        iface = router_config.interfaces.get(name)
                        if iface is not None and iface.prefix is not None:
                            prefixes.append(iface.prefix)
                for redist in proc.config.redistributes:
                    if redist.source_protocol == "connected":
                        prefixes.extend(
                            iface.prefix
                            for iface in router_config.interfaces.values()
                            if iface.prefix is not None
                        )
                    elif redist.source_protocol == "static":
                        prefixes.extend(
                            route.prefix for route in router_config.static_routes
                        )
            self.origins[instance.instance_id] = RouteSet(prefixes)

    def _build_redistribution_edges(self) -> None:
        for key, proc in self.network.processes.items():
            for redist in proc.config.redistributes:
                source = _resolve_redistribute_source(
                    self.network, key[0], redist.source_protocol, redist.source_id
                )
                if source is None or source not in self.membership:
                    continue
                source_instance = self.membership[source]
                target_instance = self.membership[key]
                if source_instance.instance_id == target_instance.instance_id:
                    continue
                filters = []
                route_map = self._compile_route_map(key[0], redist.route_map)
                if route_map is not None:
                    filters.append(route_map)
                self.edges.append(
                    ReachEdge(
                        source=source_instance.instance_id,
                        target=target_instance.instance_id,
                        kind="redistribution",
                        filters=filters,
                        router=key[0],
                        label=redist.route_map,
                    )
                )

    def _session_filters(self, session, direction: str) -> List[PrefixFilter]:
        """Compile the in- or outbound policies of one BGP session end."""
        router = session.local[0]
        bgp = self.network.routers[router].config.bgp_process
        nbr = bgp.neighbor(str(session.neighbor_address)) if bgp else None
        if nbr is None:
            return []
        filters = []
        if direction == "in":
            for policy in (
                self._compile_acl(router, nbr.distribute_list_in),
                self._compile_prefix_list(router, nbr.prefix_list_in),
                self._compile_route_map(router, nbr.route_map_in),
            ):
                if policy is not None:
                    filters.append(policy)
        else:
            for policy in (
                self._compile_acl(router, nbr.distribute_list_out),
                self._compile_prefix_list(router, nbr.prefix_list_out),
                self._compile_route_map(router, nbr.route_map_out),
            ):
                if policy is not None:
                    filters.append(policy)
        return filters

    def _build_bgp_edges(self) -> None:
        seen: Set[Tuple[ProcessKey, ProcessKey]] = set()
        for session in self.network.bgp_sessions:
            local_instance = self.membership[session.local].instance_id
            if session.remote_key is not None:
                if not session.is_ebgp:
                    continue  # IBGP is intra-instance
                pair = (session.local, session.remote_key)
                if pair in seen or (pair[1], pair[0]) in seen:
                    continue
                seen.add(pair)
                remote_instance = self.membership[session.remote_key].instance_id
                remote_session = self._find_reverse_session(session)
                # remote -> local direction
                filters_in = self._session_filters(session, "in")
                filters_out = (
                    self._session_filters(remote_session, "out")
                    if remote_session
                    else []
                )
                self.edges.append(
                    ReachEdge(
                        source=remote_instance,
                        target=local_instance,
                        kind="ebgp",
                        filters=filters_out + filters_in,
                    )
                )
                # local -> remote direction
                filters_out = self._session_filters(session, "out")
                filters_in = (
                    self._session_filters(remote_session, "in")
                    if remote_session
                    else []
                )
                self.edges.append(
                    ReachEdge(
                        source=local_instance,
                        target=remote_instance,
                        kind="ebgp",
                        filters=filters_out + filters_in,
                    )
                )
            else:
                self.edges.append(
                    ReachEdge(
                        source=EXTERNAL_NODE,
                        target=local_instance,
                        kind="external",
                        filters=self._session_filters(session, "in"),
                        router=session.local[0],
                    )
                )
                self.edges.append(
                    ReachEdge(
                        source=local_instance,
                        target=EXTERNAL_NODE,
                        kind="external",
                        filters=self._session_filters(session, "out"),
                        router=session.local[0],
                    )
                )

    def _find_reverse_session(self, session):
        for other in self.network.bgp_sessions:
            if (
                other.local == session.remote_key
                and other.remote_key == session.local
            ):
                return other
        return None

    def _build_external_igp_edges(self) -> None:
        for key, proc in self.network.processes.items():
            if proc.is_bgp:
                continue
            if not any(
                self.network.is_external_interface(proc.router, name)
                for name in proc.active_interfaces()
            ):
                continue
            instance_id = self.membership[key].instance_id
            in_filters = []
            out_filters = []
            for dist in proc.config.distribute_lists:
                policy = self._compile_acl(key[0], dist.acl)
                if policy is None:
                    continue
                if dist.direction == "in":
                    in_filters.append(policy)
                else:
                    out_filters.append(policy)
            self.edges.append(
                ReachEdge(
                    source=EXTERNAL_NODE,
                    target=instance_id,
                    kind="external",
                    filters=in_filters,
                    router=key[0],
                )
            )
            self.edges.append(
                ReachEdge(
                    source=instance_id,
                    target=EXTERNAL_NODE,
                    kind="external",
                    filters=out_filters,
                    router=key[0],
                )
            )

    # -- propagation ---------------------------------------------------------

    def _propagate(self, origins: Dict[ReachNode, RouteSet]) -> Dict[ReachNode, RouteSet]:
        routes: Dict[ReachNode, RouteSet] = dict(origins)
        for instance in self.instances:
            routes.setdefault(instance.instance_id, RouteSet.empty())
        routes.setdefault(EXTERNAL_NODE, RouteSet.empty())
        changed = True
        iterations = 0
        limit = 4 * (len(self.instances) + 1) + 8
        while changed and iterations < limit:
            changed = False
            iterations += 1
            for edge in self.edges:
                incoming = edge.transfer(routes[edge.source])
                merged = routes[edge.target].union(incoming)
                if self.max_atoms is not None and len(merged) > self.max_atoms:
                    merged = merged.coarsened(self.max_atoms)
                    self.approximate = True
                if merged != routes[edge.target]:
                    routes[edge.target] = merged
                    changed = True
        return routes

    @property
    def routes(self) -> Dict[ReachNode, RouteSet]:
        """Fixpoint route sets per node, from all origins."""
        if self._routes is None:
            self._routes = self._propagate(self.origins)
        return self._routes

    @property
    def external_routes(self) -> Dict[ReachNode, RouteSet]:
        """Fixpoint restricted to routes originating in the external world."""
        if self._external_routes is None:
            self._external_routes = self._propagate(
                {EXTERNAL_NODE: RouteSet.universe()}
            )
        return self._external_routes

    # -- queries -------------------------------------------------------------

    def routes_of(self, instance_id: int) -> RouteSet:
        return self.routes.get(instance_id, RouteSet.empty())

    def external_routes_into(self, instance_id: int) -> RouteSet:
        """External routes admitted into an instance — bounds the load its
        processes must carry (the net15 scalability prediction of §6.2)."""
        return self._strip_universe(self.external_routes.get(instance_id, RouteSet.empty()))

    def default_route_admitted(self, instance_id: int) -> bool:
        return self.external_routes.get(instance_id, RouteSet.empty()).has_default()

    def routes_announced_externally(self) -> RouteSet:
        """Internal routes that escape to the external world."""
        internal = self._propagate(
            {
                node: routes
                for node, routes in self.origins.items()
                if node != EXTERNAL_NODE
            }
        )
        return internal.get(EXTERNAL_NODE, RouteSet.empty())

    @staticmethod
    def _strip_universe(routes: RouteSet) -> RouteSet:
        return RouteSet(atom for atom in routes.atoms if atom != UNIVERSE)

    def predicted_route_load(self, instance_id: int) -> int:
        """Upper-bound the routes an instance's processes must carry (§6.2).

        "The reachability analysis establishes that the ingress filters
        ... control the maximum number of external routes that can be
        injected into the OSPF instances.  Combined with the number of
        routers in the OSPF instance, the maximum load on the OSPF
        processes can be predicted."

        The bound is the instance's own route count at fixpoint: internal
        originations plus everything admitted through policy.  A universe
        atom (an admitted default route) counts as one route.
        """
        return len(self.routes_of(instance_id))

    def instances_serving(self, prefix: Prefix) -> List[int]:
        """Instance ids whose origins cover (any of) *prefix* — the
        instances hosts in *prefix* are attached to."""
        return [
            instance.instance_id
            for instance in self.instances
            if self.origins[instance.instance_id].overlaps(prefix)
        ]

    def can_send(self, source: Prefix, destination: Prefix) -> bool:
        """Hosts in *source* hold routes toward *destination*.

        True when some instance serving *source* has learned a route
        covering *destination* (or originates it).
        """
        for instance_id in self.instances_serving(source):
            if self.routes_of(instance_id).overlaps(destination):
                return True
        return False

    def can_communicate(self, a: Prefix, b: Prefix) -> bool:
        """Two-way reachability: a→b packets and b→a replies both routable."""
        return self.can_send(a, b) and self.can_send(b, a)
