"""OSPF area structure analysis.

OSPF instances are internally hierarchical: interfaces are assigned to
areas, area border routers (ABRs) join areas to the backbone (area 0), and
the design is sound only when every non-backbone area attaches to the
backbone through at least one ABR.  §8.2 observes that hierarchical
routing designs may reflect administrative partitioning or control-plane
load limits; either way, the area structure is part of the design and is
recoverable from the same configuration state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.instances import RoutingInstance, compute_instances
from repro.model.network import Network


def _normalize_area(area: Optional[str]) -> str:
    """Areas may be written ``0`` or ``0.0.0.0``; normalize to the int form."""
    if area is None:
        return "0"
    if "." in area:
        parts = area.split(".")
        if len(parts) == 4 and all(part.isdigit() for part in parts):
            value = 0
            for part in parts:
                value = (value << 8) | int(part)
            return str(value)
    return area


@dataclass
class OspfAreaStructure:
    """The area decomposition of one OSPF instance."""

    instance_id: int
    #: area id -> routers with interfaces in it
    areas: Dict[str, Set[str]] = field(default_factory=dict)
    #: routers participating in more than one area
    border_routers: Set[str] = field(default_factory=set)

    @property
    def area_ids(self) -> List[str]:
        return sorted(self.areas, key=lambda a: (len(a), a))

    @property
    def has_backbone(self) -> bool:
        return "0" in self.areas

    @property
    def is_single_area(self) -> bool:
        return len(self.areas) <= 1

    def detached_areas(self) -> List[str]:
        """Non-backbone areas with no ABR into area 0 — a design error
        (inter-area routes cannot flow)."""
        if self.is_single_area:
            return []
        backbone = self.areas.get("0", set())
        detached = []
        for area_id, routers in self.areas.items():
            if area_id == "0":
                continue
            if not (routers & backbone & self.border_routers):
                detached.append(area_id)
        return sorted(detached)

    def abr_count(self) -> int:
        return len(self.border_routers)


def analyze_ospf_areas(
    network: Network, instances: Optional[List[RoutingInstance]] = None
) -> List[OspfAreaStructure]:
    """Recover the area structure of every OSPF instance in a network."""
    if instances is None:
        instances = compute_instances(network)
    structures = []
    for instance in instances:
        if instance.protocol != "ospf":
            continue
        structure = OspfAreaStructure(instance_id=instance.instance_id)
        router_areas: Dict[str, Set[str]] = {}
        for key in instance.processes:
            proc = network.processes[key]
            config = proc.config
            iface_table = network.routers[key[0]].config.interfaces
            for statement in config.networks:
                area = _normalize_area(statement.area)
                covered_any = False
                for name in proc.covered_interfaces:
                    iface = iface_table.get(name)
                    if iface is None or not iface.is_numbered:
                        continue
                    if statement.matches_interface(iface.address):
                        covered_any = True
                        break
                if not covered_any:
                    continue
                structure.areas.setdefault(area, set()).add(key[0])
                router_areas.setdefault(key[0], set()).add(area)
        structure.border_routers = {
            router for router, areas in router_areas.items() if len(areas) > 1
        }
        structures.append(structure)
    return structures
