"""Packet-filter placement analysis (§5.3, Figure 11).

The basic building block of a packet filter is an access-list clause; the
paper measures total filtering policy on a link by counting each clause as a
separate rule, counted once per interface application.  Figure 11 plots the
CDF, over networks, of the percentage of packet-filter rules applied to
*internal* links — the surprising result being how much filtering happens
away from the network edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.model.network import Network


@dataclass
class FilterApplication:
    """One access-group binding of an ACL to an interface direction."""

    router: str
    interface: str
    acl: str
    direction: str  # "in" | "out"
    rule_count: int
    on_internal_link: bool


@dataclass
class FilterPlacement:
    """Where a network's packet-filter rules sit."""

    network: str
    applications: List[FilterApplication] = field(default_factory=list)

    @property
    def has_filters(self) -> bool:
        return bool(self.applications)

    @property
    def internal_rules(self) -> int:
        return sum(app.rule_count for app in self.applications if app.on_internal_link)

    @property
    def total_rules(self) -> int:
        return sum(app.rule_count for app in self.applications)

    @property
    def internal_fraction(self) -> float:
        """Fraction of filter rules applied to internal links (Figure 11 x-axis)."""
        total = self.total_rules
        return self.internal_rules / total if total else 0.0

    def largest_filter(self) -> Optional[Tuple[str, int]]:
        """The ACL with the most clauses (the paper found a 47-clause one)."""
        if not self.applications:
            return None
        best = max(self.applications, key=lambda app: app.rule_count)
        return (best.acl, best.rule_count)


def analyze_filter_placement(network: Network) -> FilterPlacement:
    """Collect packet-filter usage statistics for one network (§5.3)."""
    placement = FilterPlacement(network=network.name)
    for router in network.routers.values():
        for iface in router.config.interfaces.values():
            for direction, acl_name in (
                ("in", iface.access_group_in),
                ("out", iface.access_group_out),
            ):
                if acl_name is None:
                    continue
                acl = router.config.access_list(acl_name)
                rule_count = len(acl.rules) if acl is not None else 0
                if rule_count == 0:
                    continue
                internal = not network.is_external_interface(router.name, iface.name)
                placement.applications.append(
                    FilterApplication(
                        router=router.name,
                        interface=iface.name,
                        acl=acl_name,
                        direction=direction,
                        rule_count=rule_count,
                        on_internal_link=internal,
                    )
                )
    return placement


def internal_filter_cdf(networks: List[Network]) -> List[float]:
    """Per-network internal-rule percentages, for the Figure 11 CDF.

    Networks with no packet-filter definitions are excluded, as in the paper
    (31 → 28 networks).
    """
    fractions = []
    for network in networks:
        placement = analyze_filter_placement(network)
        if placement.has_filters:
            fractions.append(placement.internal_fraction * 100.0)
    return sorted(fractions)
