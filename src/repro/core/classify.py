"""Design classification (§7).

The classic textbooks define only two routing architectures; §7 tests how
many production networks actually follow them:

* **backbone** — many EBGP sessions to external peers, IBGP distributes
  external routes from border to interior routers, a small number of IGP
  instances carries infrastructure routes, and external routes are *never*
  redistributed into the IGP;
* **enterprise** — a small number of BGP speakers talk to the outside world
  and inject (redistribute) routes into a small number of IGP instances
  from which most routers learn their routes;
* everything else is **unclassifiable** (20 of the paper's 31 networks).

The classifier also detects **staging instances** — single-router IGP
instances with external peers, used by tier-2 ISPs to connect customers who
do not run BGP (§7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Set

from repro.core.instances import (
    RoutingInstance,
    compute_instances,
    find_external_adjacent_instances,
)
from repro.core.process_graph import _resolve_redistribute_source
from repro.model.network import Network


class DesignClass(str, Enum):
    """The §7 routing-design taxonomy."""

    BACKBONE = "backbone"
    ENTERPRISE = "enterprise"
    UNCLASSIFIABLE = "unclassifiable"


@dataclass
class DesignEvidence:
    """The measurements the classification is based on."""

    network: str
    router_count: int
    bgp_speaker_count: int
    largest_bgp_instance_size: int
    ebgp_external_sessions: int
    internal_as_count: int
    external_as_count: int
    igp_instance_count: int
    staging_instance_count: int
    core_igp_instance_count: int
    bgp_redistributed_into_igp: bool
    igp_coverage: float  # fraction of routers in the largest few IGP instances
    igp_to_igp_redistribution_count: int = 0
    bgp_fed_core_instances: int = 0  # core IGP instances receiving BGP routes
    design: DesignClass = DesignClass.UNCLASSIFIABLE
    notes: List[str] = field(default_factory=list)


def is_staging_instance(
    instance: RoutingInstance, external_ids: Set[int]
) -> bool:
    """A staging instance: one in-network router, externally adjacent."""
    return (
        instance.protocol in ("ospf", "eigrp", "igrp", "rip")
        and instance.size == 1
        and instance.instance_id in external_ids
    )


def classify_design(
    network: Network, instances: Optional[List[RoutingInstance]] = None
) -> DesignEvidence:
    """Classify one network's routing design against the textbook patterns."""
    if instances is None:
        instances = compute_instances(network)
    external_ids = find_external_adjacent_instances(network, instances)

    igp_instances = [
        inst for inst in instances if inst.protocol in ("ospf", "eigrp", "igrp", "rip")
    ]
    bgp_instances = [inst for inst in instances if inst.protocol == "bgp"]
    staging = [inst for inst in igp_instances if is_staging_instance(inst, external_ids)]
    core_igp = [inst for inst in igp_instances if inst not in staging]

    router_count = len(network.routers)
    bgp_speakers = {
        router.name
        for router in network.routers.values()
        if router.config.bgp_process is not None
    }
    largest_bgp = max((inst.size for inst in bgp_instances), default=0)
    ebgp_external = sum(
        1
        for session in network.bgp_sessions
        if session.is_ebgp and session.crosses_network_boundary
    )
    internal_asns = {inst.asn for inst in bgp_instances if inst.asn is not None}
    external_asns = {
        session.remote_as
        for session in network.bgp_sessions
        if session.crosses_network_boundary and session.remote_as is not None
    }

    igp_to_igp, bgp_fed = _redistribution_structure(network, instances)
    core_igp_ids = {inst.instance_id for inst in core_igp}
    redistributes_bgp_into_igp = bool(bgp_fed)

    top_igp_coverage = 0.0
    if router_count:
        covered: Set[str] = set()
        for inst in sorted(core_igp, key=lambda i: -i.size)[:3]:
            covered.update(inst.routers)
        top_igp_coverage = len(covered) / router_count

    evidence = DesignEvidence(
        network=network.name,
        router_count=router_count,
        bgp_speaker_count=len(bgp_speakers),
        largest_bgp_instance_size=largest_bgp,
        ebgp_external_sessions=ebgp_external,
        internal_as_count=len(internal_asns),
        external_as_count=len(external_asns),
        igp_instance_count=len(igp_instances),
        staging_instance_count=len(staging),
        core_igp_instance_count=len(core_igp),
        bgp_redistributed_into_igp=redistributes_bgp_into_igp,
        igp_coverage=top_igp_coverage,
        igp_to_igp_redistribution_count=igp_to_igp,
        bgp_fed_core_instances=len(bgp_fed & core_igp_ids),
    )
    evidence.design = _decide(evidence)
    return evidence


def _redistribution_structure(network: Network, instances):
    """Measure how routes cross instance boundaries on shared routers.

    Returns ``(igp_to_igp, bgp_fed)``: the number of redistribution
    statements moving routes directly between two *different* IGP
    instances (a thing textbook designs never do), and the set of IGP
    instance ids that receive routes redistributed from BGP.
    """
    from repro.core.instances import instance_of  # noqa: PLC0415

    membership = instance_of(instances)
    igp_to_igp = 0
    bgp_fed = set()
    for key, proc in network.processes.items():
        if proc.is_bgp:
            continue
        for redist in proc.config.redistributes:
            source = _resolve_redistribute_source(
                network, key[0], redist.source_protocol, redist.source_id
            )
            if source is None:
                continue
            if source[1] == "bgp":
                bgp_fed.add(membership[key].instance_id)
            elif source in membership:
                if membership[source].instance_id != membership[key].instance_id:
                    igp_to_igp += 1
    return igp_to_igp, bgp_fed


def _decide(ev: DesignEvidence) -> DesignClass:
    if ev.router_count == 0:
        return DesignClass.UNCLASSIFIABLE

    # Backbone: a network-spanning (I)BGP instance distributes external
    # routes learned over many EBGP sessions; external routes never enter
    # the IGP; the IGP layer is a handful of infrastructure instances.
    bgp_fraction = ev.largest_bgp_instance_size / ev.router_count
    if (
        bgp_fraction >= 0.5
        and ev.ebgp_external_sessions >= 2
        and not ev.bgp_redistributed_into_igp
        and ev.internal_as_count <= 2
        and ev.core_igp_instance_count <= 3
        and ev.igp_to_igp_redistribution_count == 0
        and ev.staging_instance_count <= 2
        # A large population of staging instances is the tier-2 pattern,
        # which the paper does not count as a textbook backbone.
    ):
        ev.notes.append(
            f"IBGP spans {bgp_fraction:.0%} of routers; "
            f"{ev.ebgp_external_sessions} external EBGP sessions; "
            "no BGP-to-IGP redistribution"
        )
        return DesignClass.BACKBONE

    # Enterprise: few border BGP speakers injecting external routes into a
    # small number of IGP instances that cover (nearly) all routers; every
    # IGP instance is fed from BGP, and routes never hop directly between
    # IGP instances (that is compartment glue, not a textbook design).
    few_speakers = ev.bgp_speaker_count <= max(4, round(0.1 * ev.router_count))
    if (
        ev.bgp_speaker_count > 0
        and few_speakers
        and ev.bgp_redistributed_into_igp
        and ev.core_igp_instance_count <= 3
        and ev.bgp_fed_core_instances == ev.core_igp_instance_count
        and ev.igp_to_igp_redistribution_count == 0
        and ev.internal_as_count <= 1
        and ev.staging_instance_count == 0
        # Textbook enterprises never use an IGP to talk to another network.
        and ev.igp_coverage >= 0.8
    ):
        ev.notes.append(
            f"{ev.bgp_speaker_count} border BGP speaker(s) inject into "
            f"{ev.core_igp_instance_count} IGP instance(s) covering "
            f"{ev.igp_coverage:.0%} of routers"
        )
        return DesignClass.ENTERPRISE

    return DesignClass.UNCLASSIFIABLE
