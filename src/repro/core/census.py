"""Corpus-level censuses: interface composition and config sizes.

Backs Table 3 (interface types over all devices) and Figure 4 (the
configuration-file size distribution of one network).
"""

from __future__ import annotations

from typing import Dict, List

from repro.model.network import Network


def interface_census(networks: List[Network]) -> Dict[str, int]:
    """Count interfaces by hardware type across a corpus (Table 3)."""
    census: Dict[str, int] = {}
    for network in networks:
        for kind, count in network.interface_type_census().items():
            census[kind] = census.get(kind, 0) + count
    return census


def config_size_distribution(network: Network) -> List[int]:
    """Config line counts sorted ascending — the Figure 4 series.

    Figure 4 plots file size against "Router ID, sorted by configuration
    file size"; this returns exactly that sorted series.
    """
    return sorted(network.config_sizes())


def corpus_size_histogram(
    sizes: List[int], boundaries: List[int]
) -> List[float]:
    """Fraction of networks in each size bucket (Figure 8).

    *boundaries* are the inner bucket edges, e.g. ``[10, 20, 40, ...]``;
    bucket ``i`` holds sizes in ``[boundaries[i-1], boundaries[i])``, with an
    open-ended first (``< boundaries[0]``) and last (``>= boundaries[-1]``)
    bucket.  Returns fractions summing to 1 (empty input → all zeros).
    """
    counts = [0] * (len(boundaries) + 1)
    for size in sizes:
        for index, edge in enumerate(boundaries):
            if size < edge:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
    total = len(sizes)
    if total == 0:
        return [0.0] * len(counts)
    return [count / total for count in counts]
