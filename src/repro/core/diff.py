"""Longitudinal design diffing (§8.2 "Evolution of the routing design").

"Routing design is not a discrete activity ... Acquiring a deeper
understanding of the evolution of the routing design requires a
longitudinal analysis with multiple snapshots of the router configuration
data over time.  We plan to pursue this analysis as part of our ongoing
work."

This module implements that planned analysis: given two snapshots of a
network (two sets of configuration files), report what changed at the
*design* level — routers, links, external adjacencies, routing instances
(matched by router overlap, not by id), and policy volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.core.instances import RoutingInstance, compute_instances
from repro.model.network import Network
from repro.net import Prefix


@dataclass
class InstanceChange:
    """One matched instance across snapshots, with its size delta."""

    protocol: str
    before_size: int
    after_size: int
    routers_added: Set[str] = field(default_factory=set)
    routers_removed: Set[str] = field(default_factory=set)

    @property
    def grew(self) -> bool:
        return self.after_size > self.before_size


@dataclass
class DesignDiff:
    """The design-level difference between two snapshots."""

    routers_added: List[str]
    routers_removed: List[str]
    links_added: List[Prefix]
    links_removed: List[Prefix]
    instances_added: List[Tuple[str, int]]  # (protocol, size)
    instances_removed: List[Tuple[str, int]]
    instances_changed: List[InstanceChange]
    filter_rules_before: int
    filter_rules_after: int

    @property
    def is_empty(self) -> bool:
        return not (
            self.routers_added
            or self.routers_removed
            or self.links_added
            or self.links_removed
            or self.instances_added
            or self.instances_removed
            or any(
                change.routers_added or change.routers_removed
                for change in self.instances_changed
            )
            or self.filter_rules_before != self.filter_rules_after
        )

    def summary_lines(self) -> List[str]:
        lines = []
        if self.routers_added:
            lines.append(f"+{len(self.routers_added)} routers")
        if self.routers_removed:
            lines.append(f"-{len(self.routers_removed)} routers")
        if self.links_added:
            lines.append(f"+{len(self.links_added)} links")
        if self.links_removed:
            lines.append(f"-{len(self.links_removed)} links")
        for protocol, size in self.instances_added:
            lines.append(f"new {protocol} instance ({size} routers)")
        for protocol, size in self.instances_removed:
            lines.append(f"removed {protocol} instance ({size} routers)")
        for change in self.instances_changed:
            if change.routers_added or change.routers_removed:
                lines.append(
                    f"{change.protocol} instance resized "
                    f"{change.before_size} -> {change.after_size}"
                )
        delta = self.filter_rules_after - self.filter_rules_before
        if delta:
            lines.append(f"filter rules {'+' if delta > 0 else ''}{delta}")
        return lines or ["no design-level changes"]


def _total_filter_rules(network: Network) -> int:
    from repro.core.filters import analyze_filter_placement  # noqa: PLC0415

    return analyze_filter_placement(network).total_rules


def _match_instances(
    before: List[RoutingInstance], after: List[RoutingInstance]
) -> Tuple[List[Tuple[RoutingInstance, RoutingInstance]], List[RoutingInstance], List[RoutingInstance]]:
    """Greedy best-overlap matching of same-protocol instances."""
    unmatched_after = list(after)
    pairs = []
    lost = []
    for old in sorted(before, key=lambda i: -i.size):
        best = None
        best_overlap = 0
        for new in unmatched_after:
            if new.protocol != old.protocol:
                continue
            overlap = len(old.routers & new.routers)
            if overlap > best_overlap:
                best, best_overlap = new, overlap
        if best is None:
            lost.append(old)
        else:
            unmatched_after.remove(best)
            pairs.append((old, best))
    return pairs, lost, unmatched_after


def diff_designs(before: Network, after: Network) -> DesignDiff:
    """Compare two snapshots of (nominally) the same network."""
    routers_before = set(before.routers)
    routers_after = set(after.routers)
    links_before = {link.subnet for link in before.links}
    links_after = {link.subnet for link in after.links}

    instances_before = compute_instances(before)
    instances_after = compute_instances(after)
    pairs, lost, gained = _match_instances(instances_before, instances_after)

    changes = []
    for old, new in pairs:
        changes.append(
            InstanceChange(
                protocol=old.protocol,
                before_size=old.size,
                after_size=new.size,
                routers_added=new.routers - old.routers,
                routers_removed=old.routers - new.routers,
            )
        )

    return DesignDiff(
        routers_added=sorted(routers_after - routers_before),
        routers_removed=sorted(routers_before - routers_after),
        links_added=sorted(links_after - links_before),
        links_removed=sorted(links_before - links_after),
        instances_added=[(i.protocol, i.size) for i in gained],
        instances_removed=[(i.protocol, i.size) for i in lost],
        instances_changed=changes,
        filter_rules_before=_total_filter_rules(before),
        filter_rules_after=_total_filter_rules(after),
    )
