"""IGP/EGP role classification (§5.2, Table 1).

Routing protocol instances that have adjacencies with the instances of
another network serve as EGPs (inter-domain); otherwise they serve as IGPs
(intra-domain).  For BGP the paper counts *EBGP sessions* rather than
instances: a session is inter-domain when its peer is outside the network,
intra-domain when both ends are inside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.instances import (
    RoutingInstance,
    compute_instances,
    find_external_adjacent_instances,
)
from repro.model.network import Network

#: Protocols reported in Table 1's IGP columns.
IGP_PROTOCOLS = ("ospf", "eigrp", "rip")

#: Router-level role names (the §5 hand-classification, mechanized).
ROLE_BORDER = "border"
ROLE_GLUE = "glue"
ROLE_INTERIOR = "interior"
ROLE_HOST = "host"


@dataclass(frozen=True)
class RouterRole:
    """The routing role of a single router.

    The paper's operators classify routers by hand into a handful of
    roles — border routers facing other networks, glue routers joining
    routing instances, plain interior routers.  This signature is the
    mechanized version: it is derived once per network in a single pass
    and is hashable, so the topology-compression pass can bucket routers
    by it.
    """

    #: Folded (IGRP→EIGRP), sorted, deduplicated protocols running here.
    protocols: Tuple[str, ...] = ()
    #: The router terminates an external-facing interface or a BGP
    #: session whose peer is outside the data set.
    external: bool = False
    #: The router redistributes between RIBs.
    redistributor: bool = False
    #: The router terminates an in-network EBGP session.
    ebgp: bool = False

    @property
    def role(self) -> str:
        if self.external:
            return ROLE_BORDER
        if self.redistributor or self.ebgp:
            return ROLE_GLUE
        if self.protocols:
            return ROLE_INTERIOR
        return ROLE_HOST


def classify_router_roles(network: Network) -> Dict[str, RouterRole]:
    """Assign a :class:`RouterRole` to every router, in one linear pass.

    Unlike :func:`classify_roles` (the Table 1 census over *instances*),
    this classifies individual *routers* — the bucketing key the
    ``repro.compress`` quotient construction starts from.  Complexity is
    O(processes + sessions + interfaces); nothing here iterates processes
    per router.
    """
    protocols: Dict[str, set] = {name: set() for name in network.routers}
    external = set()
    redistributor = set()
    ebgp = set()
    for key, proc in network.processes.items():
        protocols[key[0]].add(_fold_protocol(key[1]))
        if proc.config.redistributes:
            redistributor.add(key[0])
    for router, _interface in network.external_interfaces:
        external.add(router)
    for session in network.bgp_sessions:
        if session.remote_key is None:
            external.add(session.local[0])
        elif session.is_ebgp:
            ebgp.add(session.local[0])
    return {
        name: RouterRole(
            protocols=tuple(sorted(protocols[name])),
            external=name in external,
            redistributor=name in redistributor,
            ebgp=name in ebgp,
        )
        for name in network.routers
    }


@dataclass
class RoleCensus:
    """Counts of protocol instances/sessions by routing role.

    ``igp_intra[p]``/``igp_inter[p]`` count routing *instances* of IGP
    protocol ``p`` serving intra-/inter-domain roles.  ``ebgp_intra`` /
    ``ebgp_inter`` count *EBGP sessions* whose peer is inside/outside the
    network.  (IGRP is folded into EIGRP, as in the paper.)
    """

    igp_intra: Dict[str, int] = field(default_factory=dict)
    igp_inter: Dict[str, int] = field(default_factory=dict)
    ebgp_intra: int = 0
    ebgp_inter: int = 0

    def add(self, other: "RoleCensus") -> None:
        for protocol, count in other.igp_intra.items():
            self.igp_intra[protocol] = self.igp_intra.get(protocol, 0) + count
        for protocol, count in other.igp_inter.items():
            self.igp_inter[protocol] = self.igp_inter.get(protocol, 0) + count
        self.ebgp_intra += other.ebgp_intra
        self.ebgp_inter += other.ebgp_inter

    @property
    def total_intra(self) -> int:
        return sum(self.igp_intra.values()) + self.ebgp_intra

    @property
    def total_inter(self) -> int:
        return sum(self.igp_inter.values()) + self.ebgp_inter

    def unconventional_igp_fraction(self) -> float:
        """Fraction of IGP instances serving as EGPs (paper: 11%)."""
        inter = sum(self.igp_inter.values())
        total = inter + sum(self.igp_intra.values())
        return inter / total if total else 0.0

    def unconventional_ebgp_fraction(self) -> float:
        """Fraction of EBGP sessions used intra-network (paper: 10%)."""
        total = self.ebgp_intra + self.ebgp_inter
        return self.ebgp_intra / total if total else 0.0


def _fold_protocol(protocol: str) -> str:
    """IGRP is reported together with EIGRP in Table 1."""
    return "eigrp" if protocol == "igrp" else protocol


def classify_roles(
    network: Network, instances: Optional[List[RoutingInstance]] = None
) -> RoleCensus:
    """Compute the Table 1 role census for one network."""
    if instances is None:
        instances = compute_instances(network)
    census = RoleCensus(
        igp_intra={protocol: 0 for protocol in IGP_PROTOCOLS},
        igp_inter={protocol: 0 for protocol in IGP_PROTOCOLS},
    )
    external_ids = find_external_adjacent_instances(network, instances)
    for instance in instances:
        protocol = _fold_protocol(instance.protocol)
        if protocol not in IGP_PROTOCOLS:
            continue
        if instance.instance_id in external_ids:
            census.igp_inter[protocol] += 1
        else:
            census.igp_intra[protocol] += 1
    seen_pairs = set()
    for session in network.bgp_sessions:
        if not session.is_ebgp:
            continue
        if session.crosses_network_boundary:
            census.ebgp_inter += 1
        else:
            # Both ends of an internal session appear as configured
            # neighbors; count the session (the pair) once.
            pair = tuple(sorted((session.local, session.remote_key)))
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            census.ebgp_intra += 1
    return census


def census_over_networks(networks: List[Network]) -> RoleCensus:
    """Aggregate the role census over a corpus (the actual Table 1)."""
    total = RoleCensus(
        igp_intra={protocol: 0 for protocol in IGP_PROTOCOLS},
        igp_inter={protocol: 0 for protocol in IGP_PROTOCOLS},
    )
    for network in networks:
        total.add(classify_roles(network))
    return total
