"""Survivability / what-if analysis (§8.1 "Network engineering").

"The operators can also evaluate the robustness of the routing design to
equipment failures and planned maintenance activities.  For example,
analysis of the routing design data can uncover scenarios where a single
link or session failure would disconnect part of the network.  The
operators can also schedule maintenance activities to avoid disabling
multiple routers with static routes to the same destination prefix."

This module answers those questions from the static model:

* physical single points of failure — articulation routers and bridge
  links of the router-level topology,
* routing-design single points of failure — routers that alone carry the
  route exchange between two instances (net5's glue-router redundancy
  question, §5.1, generalized),
* static-route maintenance conflicts — destination prefixes that several
  routers reach via static routes, which maintenance must not disable
  together.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.core.instances import RoutingInstance, compute_instances, instance_of
from repro.obs.trace import traced
from repro.core.process_graph import _process_sort_key, _resolve_redistribute_source
from repro.model.network import Network
from repro.net import Prefix


@dataclass
class InstanceCoupling:
    """How two routing instances exchange routes, and through whom."""

    instance_a: int
    instance_b: int
    routers: Set[str] = field(default_factory=set)
    mechanisms: Set[str] = field(default_factory=set)  # redistribution | ebgp

    @property
    def redundancy(self) -> int:
        """How many routers must fail to sever this coupling."""
        return len(self.routers)

    @property
    def is_single_point_of_failure(self) -> bool:
        return self.redundancy == 1


@dataclass
class SurvivabilityReport:
    """The full §8.1 what-if summary for one network."""

    articulation_routers: List[str]
    bridge_links: List[Prefix]
    couplings: List[InstanceCoupling]
    static_route_conflicts: Dict[Prefix, List[str]]
    #: True when a ``max_couplings`` bound dropped instance pairs — the
    #: coupling list is a sample, not the full pairing.
    truncated: bool = False

    @property
    def fragile_couplings(self) -> List[InstanceCoupling]:
        return [c for c in self.couplings if c.is_single_point_of_failure]


def physical_topology(network: Network) -> nx.Graph:
    """The router-level topology graph (one edge per inferred link)."""
    graph = nx.Graph()
    graph.add_nodes_from(network.routers)
    for link in network.links:
        routers = link.routers
        for i, a in enumerate(routers):
            for b in routers[i + 1:]:
                graph.add_edge(a, b, subnet=link.subnet)
    return graph


def articulation_routers(network: Network) -> List[str]:
    """Routers whose single failure disconnects the physical topology."""
    graph = physical_topology(network)
    return sorted(nx.articulation_points(graph))


def bridge_links(network: Network) -> List[Prefix]:
    """Links whose single failure disconnects the physical topology."""
    graph = physical_topology(network)
    bridges = set(nx.bridges(graph))
    result = []
    for link in network.links:
        routers = link.routers
        if len(routers) == 2 and (
            (routers[0], routers[1]) in bridges or (routers[1], routers[0]) in bridges
        ):
            result.append(link.subnet)
    return sorted(result)


def instance_couplings(
    network: Network,
    instances: Optional[List[RoutingInstance]] = None,
    max_couplings: Optional[int] = None,
) -> List[InstanceCoupling]:
    """Which routers carry the route exchange between each instance pair.

    A coupling exists wherever a router redistributes between two
    instances, or terminates an in-network EBGP session between two BGP
    instances.  Its redundancy is the number of distinct routers providing
    it — net5's instances 1 and 4 have redundancy 6 (§5.1).

    ``max_couplings`` is the degraded-mode bound on distinct instance
    pairs tracked; pairs first seen after the limit are skipped (known
    pairs keep accumulating routers).  Pass the result to
    :func:`analyze_survivability` via its own ``max_couplings`` to have
    the report's ``truncated`` flag reflect the drop.
    """
    if instances is None:
        instances = compute_instances(network)
    membership = instance_of(instances)
    couplings: Dict[Tuple[int, int], InstanceCoupling] = {}

    dropped = [False]

    def touch(a: int, b: int, router: str, mechanism: str) -> None:
        key = (min(a, b), max(a, b))
        coupling = couplings.get(key)
        if coupling is None:
            if max_couplings is not None and len(couplings) >= max_couplings:
                dropped[0] = True
                return
            coupling = couplings[key] = InstanceCoupling(
                instance_a=key[0], instance_b=key[1]
            )
        coupling.routers.add(router)
        coupling.mechanisms.add(mechanism)

    # Sorted iteration: under a ``max_couplings`` bound, which instance
    # pairs make the cut must not depend on config ingestion order.
    for key, proc in sorted(
        network.processes.items(), key=lambda item: _process_sort_key(item[0])
    ):
        for redist in proc.config.redistributes:
            source = _resolve_redistribute_source(
                network, key[0], redist.source_protocol, redist.source_id
            )
            if source is None or source not in membership:
                continue
            a = membership[source].instance_id
            b = membership[key].instance_id
            if a != b:
                touch(a, b, key[0], "redistribution")

    for session in sorted(
        network.bgp_sessions,
        key=lambda s: (_process_sort_key(s.local), s.neighbor_address.value),
    ):
        if session.remote_key is None or not session.is_ebgp:
            continue
        a = membership[session.local].instance_id
        b = membership[session.remote_key].instance_id
        if a != b:
            touch(a, b, session.local[0], "ebgp")
            touch(a, b, session.remote_key[0], "ebgp")

    result = sorted(couplings.values(), key=lambda c: (c.instance_a, c.instance_b))
    result = _CouplingList(result)
    result.truncated = dropped[0]
    return result


class _CouplingList(List[InstanceCoupling]):
    """A coupling list that remembers whether a bound dropped pairs."""

    truncated: bool = False


def static_route_conflicts(
    network: Network, min_routers: int = 2
) -> Dict[Prefix, List[str]]:
    """Destination prefixes reached via static routes on several routers.

    §8.1: maintenance should avoid disabling multiple routers holding
    static routes to the same destination prefix simultaneously.
    """
    by_prefix: Dict[Prefix, Set[str]] = defaultdict(set)
    for name, router in network.routers.items():
        for route in router.config.static_routes:
            by_prefix[route.prefix].add(name)
    return {
        prefix: sorted(routers)
        for prefix, routers in sorted(by_prefix.items())
        if len(routers) >= min_routers
    }


@traced("survivability")
def analyze_survivability(
    network: Network,
    instances: Optional[List[RoutingInstance]] = None,
    max_couplings: Optional[int] = None,
) -> SurvivabilityReport:
    """Run the full §8.1 what-if battery.

    ``max_couplings`` is the degraded-mode bound on distinct instance
    pairs tracked; the report is marked ``truncated`` when it bit.
    """
    couplings = instance_couplings(network, instances, max_couplings=max_couplings)
    return SurvivabilityReport(
        articulation_routers=articulation_routers(network),
        bridge_links=bridge_links(network),
        couplings=list(couplings),
        static_route_conflicts=static_route_conflicts(network),
        truncated=getattr(couplings, "truncated", False),
    )
